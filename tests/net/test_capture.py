"""Tests for packet capture and replay."""

import io

import pytest

from repro.core.config import UrcgcConfig
from repro.core.message import DecisionMessage, RequestMessage, UserMessage
from repro.errors import WireFormatError
from repro.harness.cluster import SimCluster
from repro.net.capture import Direction, PacketCapture
from repro.types import ProcessId
from repro.workloads.generators import FixedBudgetWorkload


def captured_cluster(n=3, total=6, max_rounds=20):
    cluster = SimCluster(
        UrcgcConfig(n=n),
        workload=FixedBudgetWorkload([ProcessId(i) for i in range(n)], total=total),
        max_rounds=max_rounds,
    )
    capture = PacketCapture()
    capture.attach_to(cluster.network, cluster.kernel)
    cluster.run()
    return cluster, capture


def test_capture_sees_sends_and_deliveries():
    _, capture = captured_cluster()
    assert len(capture.filter(direction=Direction.SENT)) > 0
    assert len(capture.filter(direction=Direction.DELIVERED)) > 0


def test_capture_decodes_pdus():
    _, capture = captured_cluster()
    kinds = set()
    for record in capture.records[:50]:
        decoded = record.decode()
        kinds.add(type(decoded).__name__)
    assert {"UserMessage", "RequestMessage", "DecisionMessage"} <= kinds


def test_filter_by_kind_and_endpoint():
    _, capture = captured_cluster()
    requests = capture.filter(kind="ctrl-request", direction=Direction.SENT)
    assert requests
    assert all(isinstance(r.decode(), RequestMessage) for r in requests)
    to_p0 = capture.filter(direction=Direction.DELIVERED, dst=0)
    assert to_p0
    assert all(r.dst == 0 for r in to_p0)


def test_volume_by_kind():
    _, capture = captured_cluster()
    volumes = capture.volume_by_kind(Direction.SENT)
    assert "data" in volumes and "ctrl-request" in volumes
    for count, volume in volumes.values():
        assert count > 0 and volume > 0


def test_save_load_roundtrip():
    _, capture = captured_cluster()
    data = capture.roundtrip_bytes()
    loaded = PacketCapture.from_bytes(data)
    assert loaded.records == capture.records


def test_load_rejects_garbage():
    with pytest.raises(WireFormatError):
        PacketCapture.load(io.BytesIO(b"NOPE"))
    with pytest.raises(WireFormatError):
        PacketCapture.from_bytes(b"RPC1" + b"\x00\x00\x00\x09" + b"short")


def test_multicast_send_records_dst_minus_one():
    _, capture = captured_cluster()
    data_sends = capture.filter(kind="data", direction=Direction.SENT)
    assert all(r.dst == -1 for r in data_sends)
    roundtripped = PacketCapture.from_bytes(capture.roundtrip_bytes())
    assert all(
        r.dst == -1
        for r in roundtripped.filter(kind="data", direction=Direction.SENT)
    )


def test_timestamps_monotone():
    _, capture = captured_cluster()
    times = [r.time for r in capture.records]
    assert times == sorted(times)
