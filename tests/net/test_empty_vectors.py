"""Degenerate-shape regressions for the wire codec.

The vectorized u32-row fast path must keep the legacy behavior at the
empty end: zero-length lists, empty payloads and dependency sets, and
a 0-member group view (all decision vectors empty) must round-trip
rather than crash in ``struct`` packing.
"""

import pytest

from repro.core.decision import Decision, RequestInfo
from repro.core.message import (
    DecisionMessage,
    GenerateBatch,
    RecoveryRequest,
    RecoveryResponse,
    RequestMessage,
    UserMessage,
)
from repro.core.mid import Mid
from repro.core.rejoin import JoinRequest
from repro.errors import WireFormatError
from repro.net.wire import BatchFrame, Reader, Writer, decode_message, encode_message
from repro.types import ProcessId, SeqNo, SubrunNo

ZERO_MEMBER_DECISION = Decision(
    number=SubrunNo(0),
    chain=1,
    coordinator=ProcessId(0),
    alive=(),
    attempts=(),
    stable=(),
    contributors=(),
    full_group=True,
    max_processed=(),
    most_updated=(),
    min_waiting=(),
    full_group_count=1,
)


def test_empty_u32_list_roundtrip():
    writer = Writer()
    writer.u32_list([])
    data = writer.getvalue()
    assert data == b"\x00\x00"  # just the u16 count
    reader = Reader(data)
    assert reader.u32_list() == []
    reader.expect_end()


def test_empty_u32_list_from_generator():
    writer = Writer()
    writer.u32_list(x for x in ())
    assert Reader(writer.getvalue()).u32_list() == []


@pytest.mark.parametrize(
    "message",
    [
        UserMessage(Mid(ProcessId(0), SeqNo(1)), (), b""),
        DecisionMessage(ZERO_MEMBER_DECISION),
        RequestMessage(
            ProcessId(0), SubrunNo(0), RequestInfo((), ()), ZERO_MEMBER_DECISION
        ),
        RecoveryRequest(ProcessId(0), ()),
        RecoveryResponse(ProcessId(0), ()),
        JoinRequest(ProcessId(0), 1, ()),
        GenerateBatch(
            origin=ProcessId(0),
            first_seq=SeqNo(1),
            shared_deps=(),
            ext_flags=(True, True),
            payloads=(b"", b""),
        ),
    ],
    ids=lambda m: type(m).__name__,
)
def test_degenerate_messages_roundtrip(message):
    assert decode_message(encode_message(message)) == message


def test_generate_batch_with_empty_payloads_expands():
    batch = GenerateBatch(
        origin=ProcessId(2),
        first_seq=SeqNo(1),
        shared_deps=(),
        ext_flags=(True, False),
        payloads=(b"", b""),
    )
    expanded = list(batch.expand())
    assert [m.mid for m in expanded] == [
        Mid(ProcessId(2), SeqNo(1)),
        Mid(ProcessId(2), SeqNo(2)),
    ]
    assert all(m.payload == b"" for m in expanded)


def test_batch_frame_rejects_degenerate_shapes():
    with pytest.raises(WireFormatError):
        BatchFrame(())  # an empty envelope is a codec bug, not a message
    with pytest.raises(WireFormatError):
        BatchFrame((b"",))  # as is an empty sub-message


def test_batch_frame_of_empty_payload_messages_roundtrips():
    frames = tuple(
        encode_message(UserMessage(Mid(ProcessId(0), SeqNo(s)), (), b""))
        for s in (1, 2)
    )
    frame = BatchFrame(frames)
    assert decode_message(encode_message(frame)) == frame
