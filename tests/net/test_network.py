"""Unit tests for the simulated datagram network."""

import pytest

from repro.errors import PacketTooLargeError, UnknownAddressError
from repro.net.addressing import GroupAddress, UnicastAddress
from repro.net.faults import CrashSchedule, FaultPlan
from repro.net.network import DatagramNetwork
from repro.net.packet import HEADER_OVERHEAD_BYTES, Packet
from repro.sim.kernel import Kernel
from repro.types import ProcessId


def _build(n=3, **kwargs):
    kernel = Kernel()
    network = DatagramNetwork(kernel, **kwargs)
    inboxes = {ProcessId(i): [] for i in range(n)}
    group = GroupAddress("G")
    for i in range(n):
        pid = ProcessId(i)
        network.attach(pid, lambda p, pid=pid: inboxes[pid].append(p))
        network.join(group, pid)
    return kernel, network, inboxes, group


def test_unicast_delivery_after_one_way_delay():
    kernel, network, inboxes, _ = _build()
    network.send(Packet(ProcessId(0), UnicastAddress(ProcessId(1)), b"hi"))
    assert inboxes[ProcessId(1)] == []  # not delivered synchronously
    kernel.run()
    assert kernel.now == 0.5
    assert len(inboxes[ProcessId(1)]) == 1
    assert inboxes[ProcessId(1)][0].payload == b"hi"


def test_multicast_excludes_sender():
    kernel, network, inboxes, group = _build(n=4)
    network.send(Packet(ProcessId(0), group, b"x"))
    kernel.run()
    assert len(inboxes[ProcessId(0)]) == 0
    for i in (1, 2, 3):
        assert len(inboxes[ProcessId(i)]) == 1


def test_unknown_group_raises():
    _, network, _, _ = _build()
    with pytest.raises(UnknownAddressError):
        network.send(Packet(ProcessId(0), GroupAddress("nope"), b"x"))


def test_mtu_enforced():
    kernel = Kernel()
    network = DatagramNetwork(kernel, mtu=100)
    network.attach(ProcessId(1), lambda p: None)
    with pytest.raises(PacketTooLargeError):
        network.send(
            Packet(ProcessId(0), UnicastAddress(ProcessId(1)), b"x" * 101)
        )
    # Exactly at MTU (payload + header) is fine.
    network.send(
        Packet(ProcessId(0), UnicastAddress(ProcessId(1)), b"x" * (100 - HEADER_OVERHEAD_BYTES))
    )


def test_detach_stops_delivery():
    kernel, network, inboxes, _ = _build()
    network.detach(ProcessId(1))
    network.send(Packet(ProcessId(0), UnicastAddress(ProcessId(1)), b"x"))
    kernel.run()
    assert inboxes[ProcessId(1)] == []
    assert network.stats.kind("data").dropped == 1


def test_detach_removes_from_groups():
    _, network, _, group = _build()
    network.detach(ProcessId(1))
    assert ProcessId(1) not in network.members(group)


def test_crashed_destination_in_flight_drop():
    """A packet in flight to a process that crashes before delivery is
    lost (the destination never observes it)."""
    schedule = CrashSchedule()
    schedule.crash(ProcessId(1), 0.3)
    kernel = Kernel()
    network = DatagramNetwork(kernel, faults=FaultPlan(crashes=schedule))
    received = []
    network.attach(ProcessId(1), received.append)
    network.send(Packet(ProcessId(0), UnicastAddress(ProcessId(1)), b"x"))
    kernel.run()
    assert received == []


def test_stats_account_send_and_delivery():
    kernel, network, _, group = _build(n=3)
    network.send(Packet(ProcessId(0), group, b"abc", kind="data"))
    kernel.run()
    stats = network.stats.kind("data")
    assert stats.sent == 1
    assert stats.delivered == 2
    assert stats.sent_bytes == 3 + HEADER_OVERHEAD_BYTES


def test_one_way_delay_configurable():
    kernel = Kernel()
    network = DatagramNetwork(kernel, one_way_delay=0.25)
    times = []
    network.attach(ProcessId(1), lambda p: times.append(kernel.now))
    network.send(Packet(ProcessId(0), UnicastAddress(ProcessId(1)), b"x"))
    kernel.run()
    assert times == [0.25]


def test_join_idempotent():
    _, network, _, group = _build()
    network.join(group, ProcessId(0))
    assert network.members(group).count(ProcessId(0)) == 1


def test_send_omission_drops_whole_multicast():
    """A send omission loses the message for every destination."""
    from repro.net.faults import OmissionModel

    kernel = Kernel()
    plan = FaultPlan()
    plan.set_send_omission(ProcessId(0), OmissionModel(0.5, periodic=True))
    network = DatagramNetwork(kernel, faults=plan)
    group = GroupAddress("G")
    counts = {1: 0, 2: 0}
    for i in (0, 1, 2):
        pid = ProcessId(i)
        network.attach(pid, lambda p, i=i: counts.__setitem__(i, counts.get(i, 0) + 1))
        network.join(group, pid)
    network.send(Packet(ProcessId(0), group, b"first"))   # kept
    network.send(Packet(ProcessId(0), group, b"second"))  # omitted
    kernel.run()
    assert counts[1] == 1
    assert counts[2] == 1
