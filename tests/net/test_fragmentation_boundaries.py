"""Boundary cases of the fragmentation sublayer.

Exactly-at-MTU frames must not fragment, one byte over must, exact
chunk multiples must not grow a trailing empty fragment, and fragments
interleaved from two senders — even sharing a message id — must
reassemble per source.
"""

import struct

from repro.net.addressing import UnicastAddress
from repro.net.fragmentation import (
    FRAGMENT_HEADER_BYTES,
    Fragmenter,
    Reassembler,
)
from repro.net.network import DatagramNetwork
from repro.net.transport import MulticastTransport
from repro.sim.kernel import Kernel
from repro.types import ProcessId

#: u8 frame tag + u32 transfer id preceding the application bytes.
_FRAME_OVERHEAD = 5

_HDR = struct.Struct("!IHH")


def _pair(mtu):
    kernel = Kernel()
    network = DatagramNetwork(kernel)
    received = {0: [], 1: []}
    transports = [
        MulticastTransport(
            kernel,
            network,
            ProcessId(i),
            on_data=lambda src, data, i=i: received[i].append((src, data)),
            mtu=mtu,
        )
        for i in range(2)
    ]
    return kernel, network, transports, received


def test_frame_exactly_at_mtu_is_not_fragmented():
    mtu = 128
    kernel, network, transports, received = _pair(mtu)
    payload = b"x" * (mtu - _FRAME_OVERHEAD)  # frame == MTU exactly
    transports[0].t_data_rq(UnicastAddress(ProcessId(1)), payload)
    kernel.run()
    assert received[1] == [(ProcessId(0), payload)]
    assert network.stats.kind("data").sent == 1


def test_frame_one_byte_over_mtu_fragments():
    mtu = 128
    kernel, network, transports, received = _pair(mtu)
    payload = b"x" * (mtu - _FRAME_OVERHEAD + 1)  # frame == MTU + 1
    transports[0].t_data_rq(UnicastAddress(ProcessId(1)), payload)
    kernel.run()
    assert received[1] == [(ProcessId(0), payload)]
    assert network.stats.kind("data").sent == 2


def test_pdu_at_exact_chunk_multiple_has_no_empty_tail_fragment():
    fragmenter = Fragmenter(FRAGMENT_HEADER_BYTES + 16)  # chunk size 16
    for chunks in (1, 2, 5):
        pdu = bytes(range(16)) * chunks
        fragments = fragmenter.fragment(pdu)
        assert len(fragments) == chunks
        assert all(
            len(f) == FRAGMENT_HEADER_BYTES + 16 for f in fragments
        )
        one_over = fragmenter.fragment(pdu + b"!")
        assert len(one_over) == chunks + 1
        assert len(one_over[-1]) == FRAGMENT_HEADER_BYTES + 1


def test_interleaved_fragments_from_two_senders_reassemble_per_source():
    reassembler = Reassembler()

    def frag(message_id, index, total, chunk):
        return _HDR.pack(message_id, index, total) + chunk

    # Both senders use the same message id: only the source keys the
    # partial state apart.
    assert reassembler.accept("A", frag(7, 0, 3, b"a0")) is None
    assert reassembler.accept("B", frag(7, 0, 2, b"b0")) is None
    assert reassembler.accept("A", frag(7, 2, 3, b"a2")) is None
    assert reassembler.accept("B", frag(7, 1, 2, b"b1")) == b"b0b1"
    assert reassembler.accept("A", frag(7, 1, 3, b"a1")) == b"a0a1a2"
    assert reassembler.pending_count == 0


def test_interleaved_transport_frames_from_two_senders():
    kernel = Kernel()
    network = DatagramNetwork(kernel)
    received = []
    receiver = ProcessId(2)
    MulticastTransport(
        kernel,
        network,
        receiver,
        on_data=lambda src, data: received.append((src, data)),
        mtu=48,
    )
    senders = [
        MulticastTransport(
            kernel, network, ProcessId(i), on_data=lambda src, data: None, mtu=48
        )
        for i in range(2)
    ]
    payloads = [bytes([i]) * 300 for i in range(2)]
    # Both multi-fragment transfers are queued before anything is
    # delivered, so their fragments interleave on the receiver.
    senders[0].t_data_rq(UnicastAddress(receiver), payloads[0])
    senders[1].t_data_rq(UnicastAddress(receiver), payloads[1])
    kernel.run()
    assert sorted(received) == [
        (ProcessId(0), payloads[0]),
        (ProcessId(1), payloads[1]),
    ]
