#!/usr/bin/env python
"""Regenerate the golden wire vectors from the canonical specimens.

Run from the repository root after an *intentional* wire-format change::

    PYTHONPATH=src python tests/net/vectors/regenerate.py

and commit the rewritten ``.bin`` files together with the codec change.
``test_golden_vectors.py`` fails until the two agree.
"""

from __future__ import annotations

import pathlib
import sys

_VECTORS = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(_VECTORS.parents[2]))  # repo root: makes `tests` importable

from tests.net.golden_specimens import registered_tags, specimens  # noqa: E402

from repro.net.wire import encode_message, global_registry  # noqa: E402


def main() -> None:
    known = specimens()
    missing = registered_tags() - set(known)
    if missing:
        raise SystemExit(
            f"no specimen for registered wire tag(s) {sorted(missing)}; "
            "add them to tests/net/golden_specimens.py first"
        )
    registry = global_registry.registered()
    for old in _VECTORS.glob("*.bin"):
        old.unlink()
    for tag, message in sorted(known.items()):
        name = f"{tag:02d}_{registry[tag].__name__}.bin"
        (_VECTORS / name).write_bytes(encode_message(message))
        print(f"wrote {name}")


if __name__ == "__main__":
    main()
