"""Unit tests for the general-omission fault models."""

import random

import pytest

from repro.errors import ConfigError
from repro.net.addressing import UnicastAddress
from repro.net.faults import CrashSchedule, FaultPlan, OmissionModel
from repro.net.packet import Packet
from repro.types import ProcessId


def _packet(src=0, dst=1):
    return Packet(ProcessId(src), UnicastAddress(ProcessId(dst)), b"x")


class TestCrashSchedule:
    def test_crash_takes_effect_at_time(self):
        schedule = CrashSchedule()
        schedule.crash(ProcessId(1), 5.0)
        assert not schedule.is_crashed(ProcessId(1), 4.9)
        assert schedule.is_crashed(ProcessId(1), 5.0)
        assert schedule.is_crashed(ProcessId(1), 100.0)

    def test_uncrashed_process(self):
        schedule = CrashSchedule()
        assert not schedule.is_crashed(ProcessId(0), 1e9)
        assert schedule.crash_time(ProcessId(0)) is None

    def test_double_crash_rejected(self):
        schedule = CrashSchedule()
        schedule.crash(ProcessId(1), 1.0)
        with pytest.raises(ConfigError):
            schedule.crash(ProcessId(1), 2.0)

    def test_crashed_by(self):
        schedule = CrashSchedule()
        schedule.crash(ProcessId(1), 1.0)
        schedule.crash(ProcessId(2), 3.0)
        assert schedule.crashed_by(2.0) == {ProcessId(1)}

    def test_partial_budget_consumption(self):
        schedule = CrashSchedule()
        schedule.crash(ProcessId(1), 1.0, partial_deliveries=2)
        assert schedule.consume_partial(ProcessId(1))
        assert schedule.consume_partial(ProcessId(1))
        assert not schedule.consume_partial(ProcessId(1))

    def test_no_partial_budget(self):
        schedule = CrashSchedule()
        schedule.crash(ProcessId(1), 1.0)
        assert not schedule.consume_partial(ProcessId(1))

    def test_negative_partial_rejected(self):
        schedule = CrashSchedule()
        with pytest.raises(ConfigError):
            schedule.crash(ProcessId(1), 1.0, partial_deliveries=-1)


class TestOmissionModel:
    def test_zero_rate_never_drops(self):
        model = OmissionModel(0.0)
        rng = random.Random(0)
        assert not any(model.should_drop(rng) for _ in range(1000))

    def test_random_rate_statistics(self):
        model = OmissionModel(0.1)
        rng = random.Random(1)
        drops = sum(model.should_drop(rng) for _ in range(10000))
        assert 800 < drops < 1200

    def test_periodic_drops_every_nth(self):
        model = OmissionModel(0.25, periodic=True)
        rng = random.Random(0)
        results = [model.should_drop(rng) for _ in range(8)]
        assert results == [False, False, False, True] * 2

    def test_periodic_requires_integer_period(self):
        with pytest.raises(ConfigError):
            OmissionModel(0.3, periodic=True)

    def test_rate_bounds(self):
        with pytest.raises(ConfigError):
            OmissionModel(1.0)
        with pytest.raises(ConfigError):
            OmissionModel(-0.1)


class TestFaultPlan:
    def test_default_plan_is_reliable(self):
        plan = FaultPlan()
        assert not plan.check_send(_packet(), 0.0)
        assert not plan.check_receive(_packet(), ProcessId(1), 0.0)

    def test_crashed_sender_dropped(self):
        schedule = CrashSchedule()
        schedule.crash(ProcessId(0), 1.0)
        plan = FaultPlan(crashes=schedule)
        assert not plan.check_send(_packet(src=0), 0.5)
        decision = plan.check_send(_packet(src=0), 1.0)
        assert decision.dropped
        assert decision.reason == "src-crashed"

    def test_crashed_receiver_dropped(self):
        schedule = CrashSchedule()
        schedule.crash(ProcessId(1), 1.0)
        plan = FaultPlan(crashes=schedule)
        decision = plan.check_receive(_packet(dst=1), ProcessId(1), 2.0)
        assert decision.dropped
        assert decision.reason == "dst-crashed"

    def test_send_omission(self):
        plan = FaultPlan()
        plan.set_send_omission(ProcessId(0), OmissionModel(0.5, periodic=True))
        decisions = [plan.check_send(_packet(src=0), 0.0).dropped for _ in range(4)]
        assert decisions == [False, True, False, True]

    def test_receive_omission_is_per_destination(self):
        plan = FaultPlan()
        plan.set_receive_omission(ProcessId(1), OmissionModel(0.5, periodic=True))
        packet = _packet(dst=1)
        # Destination 2 has no omission model: never dropped.
        assert not plan.check_receive(packet, ProcessId(2), 0.0)
        results = [plan.check_receive(packet, ProcessId(1), 0.0).dropped for _ in range(4)]
        assert results == [False, True, False, True]

    def test_uniform_omission_covers_both_directions(self):
        plan = FaultPlan()
        plan.set_uniform_omission([ProcessId(0)], 0.5, periodic=True)
        assert [plan.check_send(_packet(src=0), 0.0).dropped for _ in range(2)] == [
            False,
            True,
        ]
        assert [
            plan.check_receive(_packet(dst=0), ProcessId(0), 0.0).dropped
            for _ in range(2)
        ] == [False, True]

    def test_link_loss(self):
        plan = FaultPlan(link_loss=0.5, rng=random.Random(3))
        drops = sum(
            plan.check_receive(_packet(), ProcessId(1), 0.0).dropped
            for _ in range(1000)
        )
        assert 400 < drops < 600

    def test_link_loss_bounds(self):
        with pytest.raises(ConfigError):
            FaultPlan(link_loss=1.0)

    def test_partial_broadcast_on_crash(self):
        """A crashing sender's final multicast reaches only the first
        partial_deliveries destinations."""
        schedule = CrashSchedule()
        schedule.crash(ProcessId(0), 1.0, partial_deliveries=2)
        plan = FaultPlan(crashes=schedule)
        packet = _packet(src=0)
        assert not plan.check_send(packet, 1.0)  # send allowed at crash instant
        outcomes = [
            plan.check_receive(packet, ProcessId(d), 1.0).dropped for d in (1, 2, 3)
        ]
        assert outcomes == [False, False, True]


class TestOmissionWindow:
    def test_omission_only_inside_window(self):
        plan = FaultPlan()
        plan.set_send_omission(ProcessId(0), OmissionModel(0.5, periodic=True))
        plan.set_omission_window(2.0, 4.0)
        # Outside the window: never dropped (the model is dormant, and
        # its periodic counter does not advance).
        assert not any(plan.check_send(_packet(src=0), 1.0).dropped for _ in range(4))
        inside = [plan.check_send(_packet(src=0), 3.0).dropped for _ in range(4)]
        assert inside == [False, True, False, True]
        assert not any(plan.check_send(_packet(src=0), 5.0).dropped for _ in range(4))

    def test_window_applies_to_receive_side(self):
        plan = FaultPlan()
        plan.set_receive_omission(ProcessId(1), OmissionModel(0.5, periodic=True))
        plan.set_omission_window(0.0, 1.0)
        packet = _packet(dst=1)
        assert not plan.check_receive(packet, ProcessId(1), 2.0).dropped

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan().set_omission_window(3.0, 3.0)


class TestPeriodicRateValidation:
    def test_accepts_every_reciprocal_rate(self):
        """Regression: float-equality validation rejected valid 1/N
        rates whose reciprocal doesn't round-trip (e.g. N=49)."""
        for period in range(2, 101):
            model = OmissionModel(1.0 / period, periodic=True)
            rng = random.Random(0)
            results = [model.should_drop(rng) for _ in range(2 * period)]
            assert results == ([False] * (period - 1) + [True]) * 2, period

    def test_still_rejects_non_reciprocal_rates(self):
        for rate in (0.3, 0.123, 0.9, 1.0 / 49 + 1e-4):
            with pytest.raises(ConfigError):
                OmissionModel(rate, periodic=True)


class TestPartitionMap:
    def test_partition_blocks_across_islands_only(self):
        from repro.net.faults import PartitionMap

        partitions = PartitionMap()
        partitions.partition([ProcessId(0), ProcessId(1)], [ProcessId(2)])
        assert partitions.blocks(ProcessId(0), ProcessId(2))
        assert partitions.blocks(ProcessId(2), ProcessId(1))
        assert not partitions.blocks(ProcessId(0), ProcessId(1))
        assert len(partitions) == 4  # both directions, two pairs

    def test_heal_restores_everything(self):
        from repro.net.faults import PartitionMap

        partitions = PartitionMap()
        partitions.partition([ProcessId(0)], [ProcessId(1)], [ProcessId(2)])
        assert partitions
        partitions.heal()
        assert not partitions
        assert not partitions.blocks(ProcessId(0), ProcessId(1))

    def test_asymmetric_block_and_unblock(self):
        from repro.net.faults import PartitionMap

        partitions = PartitionMap()
        partitions.block(ProcessId(0), ProcessId(1))
        assert partitions.blocks(ProcessId(0), ProcessId(1))
        assert not partitions.blocks(ProcessId(1), ProcessId(0))
        partitions.unblock(ProcessId(0), ProcessId(1))
        assert not partitions.blocks(ProcessId(0), ProcessId(1))

    def test_plan_reports_partition_drops(self):
        plan = FaultPlan()
        plan.partitions.block(ProcessId(0), ProcessId(1))
        decision = plan.check_receive(_packet(dst=1), ProcessId(1), 0.0)
        assert decision.dropped
        assert decision.reason == "partition"
        # Send side is unaffected: partitions cut paths, not sources.
        assert not plan.check_send(_packet(src=0), 0.0)


class TestCustomFilterTyping:
    def test_filters_receive_documented_signatures(self):
        plan = FaultPlan()
        seen = []
        plan.custom_send_filter = lambda packet, now: seen.append(
            ("send", packet.src, now)
        ) or False
        plan.custom_receive_filter = lambda packet, dst, now: seen.append(
            ("recv", dst, now)
        ) or False
        plan.check_send(_packet(src=0), 1.5)
        plan.check_receive(_packet(dst=1), ProcessId(1), 2.5)
        assert seen == [("send", ProcessId(0), 1.5), ("recv", ProcessId(1), 2.5)]
