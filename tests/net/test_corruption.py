"""Tests for packet-corruption faults."""

import random

import pytest

from repro.core.config import UrcgcConfig
from repro.errors import ConfigError
from repro.harness.cluster import SimCluster
from repro.net.faults import FaultPlan
from repro.types import ProcessId
from repro.workloads.generators import FixedBudgetWorkload


class TestMaybeCorrupt:
    def test_zero_rate_never_corrupts(self):
        plan = FaultPlan()
        assert plan.maybe_corrupt(b"hello") is None

    def test_full_rate_flips_one_bit(self):
        plan = FaultPlan(corruption=0.99, rng=random.Random(1))
        original = b"hello world"
        for _ in range(20):
            corrupted = plan.maybe_corrupt(original)
            if corrupted is None:
                continue
            assert len(corrupted) == len(original)
            diffs = [
                (a ^ b) for a, b in zip(original, corrupted) if a != b
            ]
            assert len(diffs) == 1
            assert bin(diffs[0]).count("1") == 1  # exactly one bit

    def test_empty_payload_untouched(self):
        plan = FaultPlan(corruption=0.99, rng=random.Random(1))
        assert plan.maybe_corrupt(b"") is None

    def test_rate_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(corruption=1.0)


def test_corrupted_group_run_still_converges():
    """Corruption behaves like loss: parse failures are drops, and the
    history recovery heals them."""
    n = 5
    pids = [ProcessId(i) for i in range(n)]
    faults = FaultPlan(corruption=0.03, rng=random.Random(7))
    cluster = SimCluster(
        UrcgcConfig(n=n, K=3),
        workload=FixedBudgetWorkload(pids, total=40),
        faults=faults,
        max_rounds=500,
        seed=7,
    )
    done = cluster.run_until_quiescent(drain_subruns=4)
    assert done is not None
    report = cluster.delay_report()
    assert report.incomplete_messages == 0
    # Corruption drops actually happened and were traced as such.
    corrupt_drops = cluster.kernel.trace.select(
        "net.drop", predicate=lambda r: r["reason"] == "corrupt"
    )
    assert corrupt_drops
