"""Tests for transport-level fragmentation (Section 5's sublayer)."""


from repro.core.config import UrcgcConfig
from repro.harness.cluster import SimCluster
from repro.net.addressing import GroupAddress, UnicastAddress
from repro.net.network import DatagramNetwork
from repro.net.transport import MulticastTransport
from repro.sim.kernel import Kernel
from repro.types import ProcessId
from repro.workloads.generators import ScriptedWorkload


def _pair(mtu):
    kernel = Kernel()
    network = DatagramNetwork(kernel)
    received = {0: [], 1: []}
    transports = [
        MulticastTransport(
            kernel,
            network,
            ProcessId(i),
            on_data=lambda src, data, i=i: received[i].append((src, data)),
            mtu=mtu,
        )
        for i in range(2)
    ]
    return kernel, network, transports, received


def test_small_frames_unfragmented():
    kernel, network, transports, received = _pair(mtu=200)
    transports[0].t_data_rq(UnicastAddress(ProcessId(1)), b"small")
    kernel.run()
    assert received[1] == [(ProcessId(0), b"small")]
    assert network.stats.kind("data").sent == 1


def test_large_frame_fragmented_and_reassembled():
    kernel, network, transports, received = _pair(mtu=64)
    payload = bytes(range(256))
    transports[0].t_data_rq(UnicastAddress(ProcessId(1)), payload)
    kernel.run()
    assert received[1] == [(ProcessId(0), payload)]
    # Several fragments actually crossed the wire.
    assert network.stats.kind("data").sent > 1


def test_fragmented_multicast():
    kernel = Kernel()
    network = DatagramNetwork(kernel)
    group = GroupAddress("G")
    received = {i: [] for i in range(3)}
    transports = []
    for i in range(3):
        pid = ProcessId(i)
        transports.append(
            MulticastTransport(
                kernel,
                network,
                pid,
                on_data=lambda src, data, i=i: received[i].append(data),
                mtu=48,
            )
        )
        network.join(group, pid)
    payload = b"x" * 300
    transports[0].t_data_rq(group, payload)
    kernel.run()
    assert received[1] == [payload]
    assert received[2] == [payload]


def test_lost_fragment_loses_whole_frame():
    from repro.net.faults import FaultPlan

    kernel = Kernel()
    faults = FaultPlan()
    dropped = {"n": 0}

    def drop_second_fragment(packet, dst, now):
        # Drop exactly one fragment of the burst.
        if packet.payload[:1] == b"\x03" and dropped["n"] == 0:
            dropped["n"] += 1
            return True
        return False

    faults.custom_receive_filter = drop_second_fragment
    network = DatagramNetwork(kernel, faults=faults)
    received = []
    MulticastTransport(
        kernel, network, ProcessId(1),
        on_data=lambda src, data: received.append(data), mtu=64,
    )
    sender = MulticastTransport(
        kernel, network, ProcessId(0), on_data=lambda s, d: None, mtu=64
    )
    sender.t_data_rq(UnicastAddress(ProcessId(1)), b"y" * 200)
    kernel.run()
    assert received == []  # whole frame lost, like a datagram loss


def test_urcgc_group_over_tiny_mtu():
    """The full protocol with every frame forced through fragmentation:
    requests/decisions (O(n) bytes) exceed a 96-byte MTU at n=6."""
    n = 6
    pids = [ProcessId(i) for i in range(n)]
    cluster = SimCluster(
        UrcgcConfig(n=n),
        workload=ScriptedWorkload(
            {r: [(pids[r % n], b"payload-" + bytes([r]))] for r in range(6)}
        ),
        max_rounds=60,
        mtu=96,
    )
    done = cluster.run_until_quiescent(drain_subruns=2)
    assert done is not None
    assert all(m.processed_count == 6 for m in cluster.members)
