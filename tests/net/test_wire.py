"""Unit tests for the binary wire codec primitives."""

import pytest

from repro.errors import WireFormatError
from repro.net.wire import CodecRegistry, Reader, Writer


class TestWriterReader:
    def test_fixed_width_roundtrip(self):
        writer = Writer()
        writer.u8(7).u16(300).u32(70000).u64(2**40).f64(1.5).boolean(True)
        reader = Reader(writer.getvalue())
        assert reader.u8() == 7
        assert reader.u16() == 300
        assert reader.u32() == 70000
        assert reader.u64() == 2**40
        assert reader.f64() == 1.5
        assert reader.boolean() is True
        reader.expect_end()

    def test_bytes_field_roundtrip(self):
        writer = Writer()
        writer.bytes_field(b"hello")
        reader = Reader(writer.getvalue())
        assert reader.bytes_field() == b"hello"

    def test_empty_bytes_field(self):
        writer = Writer()
        writer.bytes_field(b"")
        assert Reader(writer.getvalue()).bytes_field() == b""

    def test_u32_list_roundtrip(self):
        writer = Writer()
        writer.u32_list([1, 2, 3])
        assert Reader(writer.getvalue()).u32_list() == [1, 2, 3]

    def test_truncated_read_raises(self):
        reader = Reader(b"\x01")
        with pytest.raises(WireFormatError):
            reader.u32()

    def test_trailing_bytes_detected(self):
        reader = Reader(b"\x01\x02")
        reader.u8()
        with pytest.raises(WireFormatError):
            reader.expect_end()

    def test_writer_len_tracks_bytes(self):
        writer = Writer()
        writer.u32(1)
        writer.u8(2)
        assert len(writer) == 5

    def test_network_byte_order(self):
        writer = Writer()
        writer.u16(0x0102)
        assert writer.getvalue() == b"\x01\x02"

    def test_oversized_bytes_field_rejected(self):
        writer = Writer()
        with pytest.raises(WireFormatError):
            writer.bytes_field(b"x" * 70000)


class _Ping:
    def __init__(self, value):
        self.value = value

    def encode_fields(self, writer):
        writer.u32(self.value)

    @classmethod
    def decode_fields(cls, reader):
        return cls(reader.u32())


class TestCodecRegistry:
    def test_roundtrip(self):
        registry = CodecRegistry()
        registry.register(1, _Ping, _Ping.decode_fields)
        data = registry.encode(_Ping(42))
        decoded = registry.decode(data)
        assert isinstance(decoded, _Ping)
        assert decoded.value == 42

    def test_unknown_tag(self):
        registry = CodecRegistry()
        with pytest.raises(WireFormatError):
            registry.decode(b"\x99")

    def test_unregistered_type(self):
        registry = CodecRegistry()
        with pytest.raises(WireFormatError):
            registry.encode(_Ping(1))

    def test_duplicate_tag_rejected(self):
        registry = CodecRegistry()
        registry.register(1, _Ping, _Ping.decode_fields)

        class Other(_Ping):
            pass

        with pytest.raises(WireFormatError):
            registry.register(1, Other, Other.decode_fields)

    def test_duplicate_type_rejected(self):
        registry = CodecRegistry()
        registry.register(1, _Ping, _Ping.decode_fields)
        with pytest.raises(WireFormatError):
            registry.register(2, _Ping, _Ping.decode_fields)

    def test_trailing_garbage_rejected(self):
        registry = CodecRegistry()
        registry.register(1, _Ping, _Ping.decode_fields)
        data = registry.encode(_Ping(42)) + b"\x00"
        with pytest.raises(WireFormatError):
            registry.decode(data)
