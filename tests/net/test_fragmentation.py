"""Unit tests for the fragmentation sublayer."""

import pytest

from repro.errors import ConfigError, WireFormatError
from repro.net.fragmentation import FRAGMENT_HEADER_BYTES, Fragmenter, Reassembler


def test_small_pdu_single_fragment():
    fragmenter = Fragmenter(100)
    fragments = fragmenter.fragment(b"tiny")
    assert len(fragments) == 1
    assert Reassembler().accept("src", fragments[0]) == b"tiny"


def test_large_pdu_roundtrip():
    fragmenter = Fragmenter(50)
    pdu = bytes(range(256)) * 3
    fragments = fragmenter.fragment(pdu)
    assert len(fragments) > 1
    assert all(len(f) <= 50 for f in fragments)
    reassembler = Reassembler()
    results = [reassembler.accept("src", f) for f in fragments]
    assert results[:-1] == [None] * (len(fragments) - 1)
    assert results[-1] == pdu


def test_reordered_fragments_reassemble():
    fragmenter = Fragmenter(20)
    pdu = b"abcdefghij" * 10
    fragments = fragmenter.fragment(pdu)
    reassembler = Reassembler()
    out = None
    for fragment in reversed(fragments):
        out = reassembler.accept("src", fragment) or out
    assert out == pdu


def test_interleaved_pdus_from_same_source():
    fragmenter = Fragmenter(20)
    a = fragmenter.fragment(b"A" * 40)
    b = fragmenter.fragment(b"B" * 40)
    reassembler = Reassembler()
    outputs = []
    for fragment in [a[0], b[0], a[1], b[1], a[2], b[2], a[3], b[3]]:
        result = reassembler.accept("src", fragment)
        if result is not None:
            outputs.append(result)
    assert outputs == [b"A" * 40, b"B" * 40]


def test_sources_do_not_mix():
    fragmenter = Fragmenter(20)
    fragments = fragmenter.fragment(b"x" * 40)
    reassembler = Reassembler()
    # Same fragments from two different sources stay separate.
    assert reassembler.accept("s1", fragments[0]) is None
    assert reassembler.accept("s2", fragments[1]) is None
    assert reassembler.pending_count == 2


def test_empty_pdu():
    fragmenter = Fragmenter(20)
    fragments = fragmenter.fragment(b"")
    assert len(fragments) == 1
    assert Reassembler().accept("s", fragments[0]) == b""


def test_eviction_of_stale_partials():
    fragmenter = Fragmenter(20)
    reassembler = Reassembler(max_pending=2)
    for _ in range(4):
        fragment = fragmenter.fragment(b"y" * 40)[0]  # first fragment only
        reassembler.accept("s", fragment)
    assert reassembler.pending_count == 2
    assert reassembler.evicted_count == 2


def test_bad_header_rejected():
    reassembler = Reassembler()
    from repro.net.wire import Writer

    writer = Writer()
    writer.u32(1)
    writer.u16(5)
    writer.u16(2)  # index 5 of total 2
    with pytest.raises(WireFormatError):
        reassembler.accept("s", writer.getvalue())


def test_inconsistent_total_rejected():
    from repro.net.wire import Writer

    def frag(message_id, index, total):
        writer = Writer()
        writer.u32(message_id)
        writer.u16(index)
        writer.u16(total)
        return writer.getvalue()

    reassembler = Reassembler()
    reassembler.accept("s", frag(1, 0, 3))
    with pytest.raises(WireFormatError):
        reassembler.accept("s", frag(1, 1, 4))


def test_mtu_validation():
    with pytest.raises(ConfigError):
        Fragmenter(FRAGMENT_HEADER_BYTES)
    with pytest.raises(ConfigError):
        Reassembler(max_pending=0)
