"""Unit tests for the (m, h, v, d) multicast transport."""

import pytest

from repro.errors import ConfigError
from repro.net.addressing import GroupAddress, UnicastAddress
from repro.net.faults import FaultPlan, OmissionModel
from repro.net.network import DatagramNetwork
from repro.net.transport import MulticastTransport
from repro.sim.kernel import Kernel
from repro.types import ProcessId


def _build(n=3, h=1, faults=None, **kwargs):
    kernel = Kernel()
    network = DatagramNetwork(kernel, faults=faults)
    group = GroupAddress("G")
    received = {ProcessId(i): [] for i in range(n)}
    transports = []
    for i in range(n):
        pid = ProcessId(i)
        transport = MulticastTransport(
            kernel,
            network,
            pid,
            on_data=lambda src, data, pid=pid: received[pid].append((src, data)),
            h=h,
            **kwargs,
        )
        network.join(group, pid)
        transports.append(transport)
    return kernel, network, group, received, transports


def test_h1_is_fire_and_forget():
    kernel, network, group, received, transports = _build(h=1)
    status = transports[0].t_data_rq(group, b"payload")
    assert status.complete  # completes immediately: no acks requested
    kernel.run()
    assert received[ProcessId(1)] == [(ProcessId(0), b"payload")]
    assert received[ProcessId(2)] == [(ProcessId(0), b"payload")]
    assert network.stats.kind("t-ack").sent == 0


def test_h2_collects_acks():
    kernel, _, group, received, transports = _build(h=2)
    status = transports[0].t_data_rq(group, b"payload", h=2)
    assert not status.complete
    kernel.run()
    assert status.complete
    assert status.reply_count == 2
    assert received[ProcessId(1)] == [(ProcessId(0), b"payload")]


def test_retransmission_until_h_replies():
    """With a receiver that omits the first copy, the transport
    retransmits and still completes with h replies."""
    plan = FaultPlan()
    plan.set_receive_omission(ProcessId(1), OmissionModel(0.5, periodic=True))
    kernel, network, group, received, transports = _build(h=2, faults=plan)
    # Warm the periodic dropper so the *second* packet to p1 drops.
    status = transports[0].t_data_rq(group, b"m1", h=2)
    kernel.run()
    assert status.complete
    assert status.reply_count >= 2
    # Each payload is delivered to the app at most once per receiver.
    payloads = [data for _, data in received[ProcessId(1)]]
    assert payloads.count(b"m1") <= 1


def test_gives_up_after_max_retries_but_never_fails():
    """The paper: 'the primitive never fails, even if less than h
    replies are received'."""
    plan = FaultPlan()
    plan.set_receive_omission(ProcessId(1), OmissionModel(0.5, periodic=True))
    plan.set_receive_omission(ProcessId(2), OmissionModel(0.5, periodic=True))
    kernel, _, group, _, transports = _build(h=3, faults=plan, max_retries=1)
    status = transports[0].t_data_rq(group, b"x", h=3)
    kernel.run()
    assert status.complete
    assert status.retries_used <= 1


def test_duplicate_suppression():
    kernel, _, group, received, transports = _build(h=2, ack_timeout=0.6)
    transports[0].t_data_rq(group, b"dup", h=2)
    kernel.run()
    for pid in (ProcessId(1), ProcessId(2)):
        assert len(received[pid]) == 1


def test_unicast_transfer():
    kernel, _, _, received, transports = _build()
    transports[0].t_data_rq(UnicastAddress(ProcessId(2)), b"direct")
    kernel.run()
    assert received[ProcessId(2)] == [(ProcessId(0), b"direct")]
    assert received[ProcessId(1)] == []


def test_invalid_h_rejected():
    kernel, _, group, _, transports = _build()
    with pytest.raises(ConfigError):
        transports[0].t_data_rq(group, b"x", h=0)
    with pytest.raises(ConfigError):
        MulticastTransport(
            Kernel(), DatagramNetwork(Kernel()), ProcessId(0), on_data=lambda s, d: None, h=0
        )


def test_kind_label_propagates_to_stats():
    kernel, network, group, _, transports = _build()
    transports[0].t_data_rq(group, b"x", kind="ctrl-request")
    kernel.run()
    assert network.stats.kind("ctrl-request").sent == 1
