"""Hardened receive path: malformed or out-of-range datagrams are
losses, never crashes (PROTOCOL §13).

Three layers are pinned down:

* :func:`repro.net.wire.decode_message` raises nothing but
  :class:`WireFormatError` on arbitrary garbage and on truncations or
  single-byte corruptions of every golden specimen;
* the sim driver's receive hook counts both failure modes under
  ``decode_errors`` and keeps running;
* mutated-in-flight packets (the :class:`FaultPlan` mutator axis) are
  dropped by the same path during a live simulated run.
"""

import random

from repro.core.config import UrcgcConfig
from repro.core.message import KIND_DATA, UserMessage
from repro.core.mid import Mid
from repro.errors import WireFormatError
from repro.harness.cluster import SimCluster
from repro.net.faults import FaultPlan
from repro.net.wire import decode_message, encode_message
from repro.types import ProcessId, SeqNo
from repro.workloads.generators import ScriptedWorkload

from .golden_specimens import specimens


def test_decode_raises_only_wire_format_error_on_garbage():
    rng = random.Random(0)
    for _ in range(500):
        blob = rng.randbytes(rng.randint(0, 64))
        try:
            decode_message(blob)
        except WireFormatError:
            pass  # the one allowed failure mode


def test_decode_survives_truncations_and_bit_flips_of_every_tag():
    rng = random.Random(1)
    for tag, message in specimens().items():
        data = encode_message(message)
        for cut in range(len(data)):
            try:
                decode_message(data[:cut])
            except WireFormatError:
                pass
        for _ in range(50):
            corrupted = bytearray(data)
            corrupted[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
            try:
                decode_message(bytes(corrupted))
            except WireFormatError:
                pass


def _cluster(n: int = 3) -> SimCluster:
    return SimCluster(
        UrcgcConfig(n=n, K=2),
        workload=ScriptedWorkload({0: [(ProcessId(0), b"x")]}),
        max_rounds=30,
    )


def test_sim_driver_counts_malformed_datagrams_as_parse_errors():
    cluster = _cluster()
    cluster._on_data(ProcessId(0), ProcessId(1), b"\xff\x00garbage")
    assert cluster.decode_errors == 1
    cluster.run_until_quiescent()  # the group is unharmed
    assert cluster.quiescent()


def test_sim_driver_drops_semantically_out_of_range_pdus():
    cluster = _cluster()
    forged = UserMessage(
        Mid(ProcessId(1), SeqNo(1)),
        (Mid(ProcessId(0xFFFF), SeqNo(1)),),  # origin no group can hold
    )
    cluster._on_data(ProcessId(0), ProcessId(1), encode_message(forged))
    assert cluster.decode_errors == 1
    assert not cluster.members[0].already_seen(forged.mid)


def test_mutated_packets_are_shed_during_a_live_sim_run():
    plan = FaultPlan()

    def corrupt_some_data(packet, dst, now):
        if packet.kind == KIND_DATA and int(dst) == 2:
            return packet.payload[: max(1, len(packet.payload) - 4)]
        return None

    plan.add_mutator(corrupt_some_data)
    cluster = SimCluster(
        UrcgcConfig(n=3, K=2),
        workload=ScriptedWorkload(
            {0: [(ProcessId(0), b"a")], 2: [(ProcessId(1), b"b")]}
        ),
        faults=plan,
        max_rounds=80,
    )
    cluster.run_until_quiescent()
    assert cluster.decode_errors > 0
    # The protocol recovered the shed copies: the group still agreed.
    assert cluster.quiescent()
    vectors = {m.last_processed_vector() for m in cluster.members}
    assert len(vectors) == 1
