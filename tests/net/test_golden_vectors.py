"""Golden wire-format vectors: the committed bytes are the contract.

Every registered wire message has one canonical ``.bin`` under
``tests/net/vectors/`` (written by ``vectors/regenerate.py``).  These
tests fail on any accidental wire-format change — decode of the
committed bytes must yield the canonical specimen, and re-encoding the
specimen must reproduce the committed bytes exactly.  An *intentional*
format change reruns the regeneration script and commits the new
vectors alongside the codec.
"""

import pathlib

import pytest

from repro.net.wire import decode_message, encode_message, global_registry

from .golden_specimens import registered_tags, specimens

VECTORS = pathlib.Path(__file__).parent / "vectors"

SPECIMENS = specimens()


def _vector_path(tag: int) -> pathlib.Path:
    cls = global_registry.registered()[tag]
    return VECTORS / f"{tag:02d}_{cls.__name__}.bin"


def test_every_registered_tag_has_a_specimen_and_a_vector():
    tags = registered_tags()
    assert tags == set(SPECIMENS), (
        "specimen set out of sync with the wire registry; update "
        "tests/net/golden_specimens.py"
    )
    missing = [tag for tag in tags if not _vector_path(tag).exists()]
    assert not missing, (
        f"no committed vector for tag(s) {missing}; run "
        "PYTHONPATH=src python tests/net/vectors/regenerate.py"
    )


def test_no_orphan_vector_files():
    expected = {_vector_path(tag).name for tag in registered_tags()}
    on_disk = {path.name for path in VECTORS.glob("*.bin")}
    assert on_disk == expected


@pytest.mark.parametrize("tag", sorted(SPECIMENS), ids=lambda t: f"tag{t:02d}")
def test_golden_vector_decodes_to_specimen(tag):
    data = _vector_path(tag).read_bytes()
    assert decode_message(data) == SPECIMENS[tag]


@pytest.mark.parametrize("tag", sorted(SPECIMENS), ids=lambda t: f"tag{t:02d}")
def test_specimen_reencodes_to_golden_bytes(tag):
    assert encode_message(SPECIMENS[tag]) == _vector_path(tag).read_bytes()
