"""Unit tests for the shared-medium timing models."""

import pytest

from repro.core.config import UrcgcConfig
from repro.errors import ConfigError
from repro.net.addressing import UnicastAddress
from repro.net.network import DatagramNetwork
from repro.net.packet import Packet
from repro.net.topology import EthernetBus, FixedDelay
from repro.sim.kernel import Kernel
from repro.types import ProcessId


def packet(size_payload=92):
    return Packet(ProcessId(0), UnicastAddress(ProcessId(1)), b"x" * size_payload)


class TestFixedDelay:
    def test_constant_latency(self):
        medium = FixedDelay(0.5)
        assert medium.schedule(packet(), 1.0) == 1.5
        assert medium.schedule(packet(), 1.0) == 1.5  # no contention

    def test_validation(self):
        with pytest.raises(ConfigError):
            FixedDelay(0)


class TestEthernetBus:
    def test_serialization_delay(self):
        bus = EthernetBus(bandwidth=1000, propagation=0.5)
        # 92 + 8 header = 100 bytes at 1000 B/rtd = 0.1 rtd on the bus.
        assert bus.schedule(packet(), 0.0) == pytest.approx(0.6)

    def test_default_propagation_fits_round(self):
        bus = EthernetBus(bandwidth=100_000)
        assert bus.schedule(packet(), 0.0) < 0.5

    def test_queueing_when_busy(self):
        bus = EthernetBus(bandwidth=1000, propagation=0.0)
        first = bus.schedule(packet(), 0.0)
        second = bus.schedule(packet(), 0.0)  # same instant: queues
        assert first == pytest.approx(0.1)
        assert second == pytest.approx(0.2)

    def test_idle_bus_does_not_queue(self):
        bus = EthernetBus(bandwidth=1000, propagation=0.0)
        bus.schedule(packet(), 0.0)
        late = bus.schedule(packet(), 5.0)
        assert late == pytest.approx(5.1)

    def test_utilization(self):
        bus = EthernetBus(bandwidth=1000, propagation=0.0)
        bus.schedule(packet(), 0.0)  # 0.1 rtd of airtime
        assert bus.utilization(1.0) == pytest.approx(0.1)
        assert bus.utilization(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            EthernetBus(0)
        with pytest.raises(ConfigError):
            EthernetBus(100, propagation=-1)


class TestNetworkIntegration:
    def test_network_uses_medium_schedule(self):
        kernel = Kernel()
        bus = EthernetBus(bandwidth=100, propagation=0.5)
        network = DatagramNetwork(kernel, medium=bus)
        times = []
        network.attach(ProcessId(1), lambda p: times.append(kernel.now))
        # Two back-to-back packets of 100B wire size each: serialize.
        network.send(packet())
        network.send(packet())
        kernel.run()
        assert times[0] == pytest.approx(1.5)  # 1.0 tx + 0.5 prop
        assert times[1] == pytest.approx(2.5)

    def test_saturated_bus_raises_group_delay(self):
        """End-to-end: a congested bus pushes D above the 0.5 floor."""
        from repro.harness.cluster import SimCluster
        from repro.workloads.generators import FixedBudgetWorkload

        n = 6
        pids = [ProcessId(i) for i in range(n)]

        def delay_with_bandwidth(bandwidth):
            cluster = SimCluster(
                UrcgcConfig(n=n),
                workload=FixedBudgetWorkload(pids, total=24),
                medium=EthernetBus(bandwidth=bandwidth),
                max_rounds=200,
            )
            cluster.run_until_quiescent(drain_subruns=3)
            return cluster.delay_report().mean_delay

        fast = delay_with_bandwidth(1_000_000)
        slow = delay_with_bandwidth(6_000)
        # Light load: one-way ~ propagation (serialization negligible).
        assert fast < 0.5
        # Contention queues packets behind each other: D rises.
        assert slow > fast


class TestJitteredDelay:
    def test_delivery_within_bounds(self):
        import random

        from repro.net.topology import JitteredDelay

        medium = JitteredDelay(base=0.3, jitter=0.1, rng=random.Random(1))
        times = [medium.schedule(packet(), 1.0) for _ in range(200)]
        assert all(1.3 <= t <= 1.4 for t in times)

    def test_late_counting(self):
        import random

        from repro.net.topology import JitteredDelay

        medium = JitteredDelay(base=0.45, jitter=0.2, rng=random.Random(1))
        for _ in range(200):
            medium.schedule(packet(), 0.0)
        assert 0 < medium.late_count < 200

    def test_validation(self):
        from repro.net.topology import JitteredDelay

        with pytest.raises(ConfigError):
            JitteredDelay(base=0)
        with pytest.raises(ConfigError):
            JitteredDelay(jitter=-0.1)

    def test_group_survives_jitter_past_round_boundary(self):
        """Occasional late packets are absorbed by recovery."""
        import random

        from repro.core.config import UrcgcConfig
        from repro.harness.cluster import SimCluster
        from repro.net.topology import JitteredDelay
        from repro.workloads.generators import FixedBudgetWorkload

        n = 5
        pids = [ProcessId(i) for i in range(n)]
        medium = JitteredDelay(base=0.4, jitter=0.2, rng=random.Random(3))
        cluster = SimCluster(
            UrcgcConfig(n=n, K=4),
            workload=FixedBudgetWorkload(pids, total=20),
            medium=medium,
            max_rounds=300,
        )
        done = cluster.run_until_quiescent(drain_subruns=4)
        assert done is not None
        assert medium.late_count > 0  # jitter really crossed boundaries
        assert all(m.processed_count == 20 for m in cluster.members)
