"""Canonical specimen messages for the golden wire-format vectors.

One representative instance per registered wire tag, with every
optional field exercised (rejoin vectors, retransmission flags,
non-empty dependency lists).  ``tests/net/vectors/regenerate.py``
serializes these to ``.bin`` files; ``test_golden_vectors.py`` checks
the committed bytes still decode to exactly these objects — a change
in either direction is a wire-format break.
"""

from repro.baselines.cbcast.messages import (
    CbcastData,
    Flush,
    StabilityGossip,
    VectorClock,
    ViewChange,
)
from repro.baselines.psync.protocol import PsyncData
from repro.core.decision import Decision, RequestInfo
from repro.core.message import (
    DecisionMessage,
    GenerateBatch,
    HeartbeatMessage,
    RecoveryRequest,
    RecoveryResponse,
    RequestMessage,
    UserMessage,
)
from repro.core.mid import Mid
from repro.core.rejoin import JoinRequest
from repro.net.wire import BatchFrame, encode_message, global_registry
from repro.svc.wire import (
    ACK_DELIVER,
    ClientAck,
    ClientDeliver,
    ClientHello,
    ClientPublish,
)
from repro.types import ProcessId, SeqNo, SubrunNo


def _mid(origin: int, seq: int) -> Mid:
    return Mid(ProcessId(origin), SeqNo(seq))


_DECISION = Decision(
    number=SubrunNo(7),
    chain=9,
    coordinator=ProcessId(1),
    alive=(True, True, False, True),
    attempts=(0, 1, 3, 0),
    stable=(SeqNo(4), SeqNo(5), SeqNo(0), SeqNo(2)),
    contributors=(True, True, False, True),
    full_group=True,
    max_processed=(SeqNo(6), SeqNo(5), SeqNo(4), SeqNo(3)),
    most_updated=(ProcessId(0), ProcessId(1), ProcessId(1), ProcessId(3)),
    min_waiting=(SeqNo(0), SeqNo(2), SeqNo(0), SeqNo(1)),
    full_group_count=3,
    joiners=(ProcessId(2),),
    void_from=(SeqNo(0), SeqNo(0), SeqNo(3), SeqNo(0)),
    join_boundary=(SeqNo(0), SeqNo(0), SeqNo(5), SeqNo(0)),
)

_USER = UserMessage(_mid(1, 3), (_mid(1, 2), _mid(0, 5)), b"golden payload")


def specimens() -> dict[int, object]:
    """tag -> canonical instance, for every registered wire message."""
    return {
        10: _USER,
        11: RequestMessage(
            ProcessId(2),
            SubrunNo(8),
            RequestInfo(
                (SeqNo(6), SeqNo(5), SeqNo(4), SeqNo(3)),
                (SeqNo(0), SeqNo(0), SeqNo(7), SeqNo(0)),
            ),
            _DECISION,
        ),
        12: DecisionMessage(_DECISION),
        13: RecoveryRequest(
            ProcessId(3),
            ((ProcessId(1), SeqNo(2), SeqNo(5)), (ProcessId(0), SeqNo(1), SeqNo(1))),
        ),
        14: RecoveryResponse(
            ProcessId(0),
            (UserMessage(_mid(0, 1), (), b"r1"), UserMessage(_mid(0, 2), (_mid(0, 1),), b"r2")),
        ),
        15: JoinRequest(
            ProcessId(2), 3, (SeqNo(4), SeqNo(5), SeqNo(6), SeqNo(7))
        ),
        16: BatchFrame(
            (
                encode_message(UserMessage(_mid(2, 1), (), b"f1")),
                encode_message(UserMessage(_mid(2, 2), (_mid(2, 1),), b"f2")),
            )
        ),
        17: GenerateBatch(
            origin=ProcessId(1),
            first_seq=SeqNo(3),
            shared_deps=(_mid(0, 2), _mid(2, 1)),
            ext_flags=(True, False, True),
            payloads=(b"b1", b"b2", b"b3"),
        ),
        18: HeartbeatMessage(ProcessId(2), 1, 14),
        19: ClientHello(987_654_321_012, credit=64, resume_seq=17, acked_seq=11),
        20: ClientPublish(
            987_654_321_012,
            18,
            (b"chat/lobby", b"chat/ops"),
            b"client publish payload",
        ),
        21: ClientDeliver(
            987_654_321_012,
            5,
            42,
            123_456_789,
            9,
            b"chat/lobby",
            b"delivered payload",
            epoch=3,
        ),
        22: ClientAck(
            ACK_DELIVER, 987_654_321_012, 5, 42, 16, resume_seq=17, epoch=3
        ),
        30: CbcastData(
            ProcessId(1),
            VectorClock((1, 2, 3)),
            VectorClock((0, 1, 2)),
            b"cbcast payload",
            retransmission=True,
        ),
        31: StabilityGossip(ProcessId(0), VectorClock((3, 1, 4))),
        32: ViewChange(ProcessId(2), 5, (True, False, True), commit=True),
        33: Flush(ProcessId(1), 5, VectorClock((2, 2, 2))),
        40: PsyncData(
            ProcessId(0),
            4,
            ((ProcessId(1), SeqNo(3)), (ProcessId(2), SeqNo(1))),
            b"psync payload",
        ),
    }


def registered_tags() -> set[int]:
    """Every tag the importing of the specimen modules registered."""
    return set(global_registry.registered())
