"""Tests for causal graph extraction and DOT export."""

from repro.analysis.causal_graph import build_causal_graph
from repro.core.config import UrcgcConfig
from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.harness.cluster import SimCluster
from repro.types import ProcessId, SeqNo
from repro.workloads.generators import FixedBudgetWorkload


def m(origin, seq):
    return Mid(ProcessId(origin), SeqNo(seq))


def msg(origin, seq, deps=()):
    return UserMessage(m(origin, seq), tuple(deps), b"x" * 4)


def diamond():
    return [
        msg(0, 1),
        msg(1, 1, [m(0, 1)]),
        msg(2, 1, [m(0, 1)]),
        msg(0, 2, [m(0, 1), m(1, 1), m(2, 1)]),
    ]


def test_build_and_query():
    graph = build_causal_graph(diamond())
    assert len(graph) == 4
    assert graph.roots() == [m(0, 1)]
    assert graph.dependents_of(m(0, 1)) == [m(0, 2), m(1, 1), m(2, 1)]
    assert graph.origins() == [0, 1, 2]


def test_depths():
    graph = build_causal_graph(diamond())
    assert graph.depth_of(m(0, 1)) == 0
    assert graph.depth_of(m(1, 1)) == 1
    assert graph.depth_of(m(0, 2)) == 2


def test_concurrency_width():
    graph = build_causal_graph(diamond())
    # m(1,1) and m(2,1) sit at the same depth: width 2.
    assert graph.concurrency_width() == 2


def test_duplicates_ignored():
    messages = diamond() + diamond()
    graph = build_causal_graph(messages)
    assert len(graph) == 4


def test_dot_output_well_formed():
    dot = build_causal_graph(diamond()).to_dot(title="t")
    assert dot.startswith('digraph "t" {')
    assert dot.rstrip().endswith("}")
    assert '"m(0,2)" -> "m(1,1)";' in dot
    assert "cluster_p1" in dot
    assert "4B" in dot


def test_graph_from_real_run():
    n = 3
    cluster = SimCluster(
        UrcgcConfig(n=n),
        workload=FixedBudgetWorkload([ProcessId(i) for i in range(n)], total=9),
        max_rounds=40,
    )
    cluster.run_until_quiescent(drain_subruns=2)
    graph = build_causal_graph(cluster.services[0].delivered)
    assert len(graph) == 9
    # Round-0 messages are the roots (no prior traffic).
    assert set(graph.roots()) == {m(0, 1), m(1, 1), m(2, 1)}
    dot = graph.to_dot()
    assert dot.count("->") > 0
