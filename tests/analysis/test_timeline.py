"""Tests for protocol timeline reconstruction."""

from repro.analysis.timeline import build_timeline
from repro.core.config import UrcgcConfig
from repro.harness.cluster import SimCluster
from repro.types import ProcessId
from repro.workloads.generators import FixedBudgetWorkload
from repro.workloads.scenarios import consecutive_coordinator_crashes, crashes


def pids(n):
    return [ProcessId(i) for i in range(n)]


def test_reliable_run_has_decision_every_subrun():
    n = 4
    cluster = SimCluster(
        UrcgcConfig(n=n),
        workload=FixedBudgetWorkload(pids(n), total=8),
        max_rounds=20,
    )
    cluster.run()
    timeline = build_timeline(cluster.kernel.trace)
    # Every completed subrun (except possibly the last, cut off by
    # max_rounds) produced a decision.
    assert timeline.decisionless_subruns() in ([], [timeline.subruns[-1].subrun])
    # Coordinators rotate 0, 1, 2, 3, 0, ...
    coords = [s.coordinator for s in timeline.subruns if s.coordinator is not None]
    assert coords[:4] == [0, 1, 2, 3]


def test_coordinator_crash_shows_decisionless_subrun():
    n = 5
    cluster = SimCluster(
        UrcgcConfig(n=n, K=2),
        workload=FixedBudgetWorkload(pids(n), total=10),
        faults=consecutive_coordinator_crashes(n, f=1, first_subrun=1),
        max_rounds=60,
    )
    cluster.run_until_quiescent(drain_subruns=4)
    timeline = build_timeline(cluster.kernel.trace)
    assert 1 in timeline.decisionless_subruns()


def test_departures_recorded():
    n = 4
    cluster = SimCluster(
        UrcgcConfig(n=n, K=2),
        workload=FixedBudgetWorkload(pids(n), total=12),
        faults=crashes({ProcessId(3): 2.0}),
        max_rounds=120,
    )
    cluster.run_until_quiescent(drain_subruns=3)
    timeline = build_timeline(cluster.kernel.trace)
    assert timeline.full_group_count() > 0
    assert timeline.quiescent_at == cluster.quiescent_at


def test_render_is_readable():
    n = 3
    cluster = SimCluster(
        UrcgcConfig(n=n),
        workload=FixedBudgetWorkload(pids(n), total=3),
        max_rounds=12,
    )
    cluster.run()
    text = build_timeline(cluster.kernel.trace).render()
    assert "subrun 0:" in text
    assert "decision #0 by p0" in text


def test_empty_trace():
    from repro.sim.trace import Trace

    timeline = build_timeline(Trace())
    assert timeline.subruns == []
    assert timeline.render() == ""


def test_through_limit():
    n = 3
    cluster = SimCluster(
        UrcgcConfig(n=n),
        workload=FixedBudgetWorkload(pids(n), total=6),
        max_rounds=20,
    )
    cluster.run()
    full = build_timeline(cluster.kernel.trace)
    early = build_timeline(cluster.kernel.trace, through=1.9)
    assert len(early.subruns) < len(full.subruns)
