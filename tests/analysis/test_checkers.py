"""Unit tests for the URCGC invariant checkers."""

import pytest

from repro.analysis.checkers import (
    check_bridge_ordering,
    check_local_causal_order,
    check_uniform_atomicity,
    check_uniform_ordering,
)
from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.types import ProcessId, SeqNo


def m(origin, seq):
    return Mid(ProcessId(origin), SeqNo(seq))


def msg(origin, seq, deps=()):
    return UserMessage(m(origin, seq), tuple(deps))


class TestLocalCausalOrder:
    def test_valid_stream(self):
        stream = [msg(1, 1), msg(2, 1, [m(1, 1)]), msg(1, 2, [m(1, 1)])]
        assert check_local_causal_order(ProcessId(0), stream).ok

    def test_dependency_violation(self):
        stream = [msg(2, 1, [m(1, 1)]), msg(1, 1)]
        result = check_local_causal_order(ProcessId(0), stream)
        assert not result.ok
        assert "dependency" in result.violations[0].detail

    def test_sequence_gap_violation(self):
        stream = [msg(1, 2, [m(1, 1)])]
        result = check_local_causal_order(ProcessId(0), stream)
        assert not result.ok

    def test_raise_if_failed(self):
        result = check_local_causal_order(ProcessId(0), [msg(1, 2, [m(1, 1)])])
        with pytest.raises(AssertionError):
            result.raise_if_failed()


class TestUniformAtomicity:
    def test_all_processed(self):
        active = {ProcessId(0), ProcessId(1)}
        result = check_uniform_atomicity(
            [m(0, 1)], {m(0, 1): {ProcessId(0), ProcessId(1)}}, active
        )
        assert result.ok

    def test_none_processed_is_fine_when_discarded(self):
        active = {ProcessId(0), ProcessId(1)}
        result = check_uniform_atomicity(
            [m(0, 1)], {}, active, discarded={m(0, 1)}
        )
        assert result.ok

    def test_partial_processing_violates(self):
        active = {ProcessId(0), ProcessId(1)}
        result = check_uniform_atomicity(
            [m(0, 1)], {m(0, 1): {ProcessId(0)}}, active
        )
        assert not result.ok

    def test_crashed_processors_ignored(self):
        active = {ProcessId(0)}
        result = check_uniform_atomicity(
            [m(0, 1)], {m(0, 1): {ProcessId(0), ProcessId(9)}}, active
        )
        assert result.ok


class TestUniformOrdering:
    def test_agreeing_streams(self):
        streams = {
            ProcessId(0): [msg(1, 1), msg(2, 1)],
            ProcessId(1): [msg(2, 1), msg(1, 1)],  # concurrent: order free
        }
        assert check_uniform_ordering(streams).ok

    def test_sequence_disagreement(self):
        streams = {
            ProcessId(0): [msg(1, 1), msg(1, 2, [m(1, 1)])],
            ProcessId(1): [msg(1, 1)],  # missing the second message
        }
        result = check_uniform_ordering(streams)
        assert not result.ok

    def test_local_violations_propagate(self):
        streams = {ProcessId(0): [msg(1, 2, [m(1, 1)])]}
        assert not check_uniform_ordering(streams).ok


class TestUniformOrderingConvergence:
    def test_prefix_lag_ok_when_not_converged(self):
        streams = {
            ProcessId(0): [msg(1, 1), msg(1, 2, [m(1, 1)])],
            ProcessId(1): [msg(1, 1)],  # lagging, but a prefix
        }
        assert check_uniform_ordering(streams, converged=False).ok
        assert not check_uniform_ordering(streams, converged=True).ok

    def test_conflicting_prefixes_always_violate(self):
        streams = {
            ProcessId(0): [msg(1, 1)],
            ProcessId(1): [msg(2, 1)],
        }
        # Different origins entirely: each is a (trivial) prefix.
        assert check_uniform_ordering(streams, converged=False).ok


class TestBridgeOrdering:
    """The cross-shard intersection-rule checker."""

    @staticmethod
    def record(origin, seq, stamp, dests):
        return ((origin, seq), stamp, tuple(dests))

    def test_clean_logs_pass(self):
        r1 = self.record(1, 1, 1, (0, 1))
        r2 = self.record(2, 1, 2, (0, 1))
        logs = {
            0: {ProcessId(0): [r1, r2], ProcessId(1): [r1, r2]},
            1: {ProcessId(0): [r1, r2]},
        }
        assert check_bridge_ordering(logs).ok

    def test_intra_shard_disagreement(self):
        r1 = self.record(1, 1, 1, (0, 1))
        r2 = self.record(2, 1, 2, (0, 1))
        logs = {0: {ProcessId(0): [r1, r2], ProcessId(1): [r2, r1]}}
        result = check_bridge_ordering(logs)
        assert any("disagrees" in str(v) for v in result.violations)

    def test_cross_shard_inversion(self):
        r1 = self.record(1, 1, 1, (0, 1))
        r2 = self.record(2, 1, 2, (0, 1))
        logs = {
            0: {ProcessId(0): [r1, r2]},
            1: {ProcessId(0): [r2, r1]},
        }
        result = check_bridge_ordering(logs)
        assert any("shared-destination" in str(v) for v in result.violations)

    def test_disjoint_destinations_unconstrained(self):
        """Messages never sharing a shard may order freely (the
        Generic-Multicast freedom a global sequencer would forbid)."""
        a = self.record(1, 1, 1, (0, 1))
        b = self.record(2, 1, 1, (2, 3))
        logs = {
            0: {ProcessId(0): [a]},
            1: {ProcessId(0): [a]},
            2: {ProcessId(0): [b]},
            3: {ProcessId(0): [b]},
        }
        assert check_bridge_ordering(logs).ok

    def test_wrong_destination_flagged(self):
        stray = self.record(1, 1, 1, (1, 2))
        logs = {0: {ProcessId(0): [stray]}}
        result = check_bridge_ordering(logs)
        assert any("destined only" in str(v) for v in result.violations)

    def test_non_monotone_stamps_flagged(self):
        r1 = self.record(1, 1, 5, (0, 1))
        r2 = self.record(2, 1, 3, (0, 1))
        logs = {0: {ProcessId(0): [r1, r2]}, 1: {ProcessId(0): [r1, r2]}}
        result = check_bridge_ordering(logs)
        assert any("strictly increasing" in str(v) for v in result.violations)
