"""Unit tests for delay accounting."""

from repro.analysis.delay import DeliveryLog
from repro.core.mid import Mid
from repro.types import ProcessId, SeqNo


def m(origin, seq):
    return Mid(ProcessId(origin), SeqNo(seq))


def test_group_delay_is_max_over_final_members():
    log = DeliveryLog()
    log.on_generated(m(0, 1), 0.0)
    log.on_processed(m(0, 1), ProcessId(0), 0.0)
    log.on_processed(m(0, 1), ProcessId(1), 0.5)
    log.on_processed(m(0, 1), ProcessId(2), 1.5)
    report = log.report({ProcessId(0), ProcessId(1), ProcessId(2)})
    assert report.mean_delay == 1.5
    assert report.complete_messages == 1


def test_incomplete_when_member_missing():
    log = DeliveryLog()
    log.on_generated(m(0, 1), 0.0)
    log.on_processed(m(0, 1), ProcessId(0), 0.0)
    report = log.report({ProcessId(0), ProcessId(1)})
    assert report.complete_messages == 0
    assert report.incomplete_messages == 1


def test_crashed_member_not_required():
    log = DeliveryLog()
    log.on_generated(m(0, 1), 0.0)
    log.on_processed(m(0, 1), ProcessId(0), 0.0)
    log.on_processed(m(0, 1), ProcessId(1), 0.5)
    # p2 crashed and is not in the final membership.
    report = log.report({ProcessId(0), ProcessId(1)})
    assert report.complete_messages == 1
    assert report.mean_delay == 0.5


def test_discarded_messages_counted_separately():
    log = DeliveryLog()
    log.on_generated(m(0, 1), 0.0)
    log.on_discarded((m(0, 1),))
    report = log.report({ProcessId(0)})
    assert report.complete_messages == 0
    assert report.incomplete_messages == 0
    assert report.discarded_messages == 1


def test_first_delivery_delay_excludes_sender():
    log = DeliveryLog()
    log.on_generated(m(0, 1), 1.0)
    log.on_processed(m(0, 1), ProcessId(0), 1.0)
    log.on_processed(m(0, 1), ProcessId(1), 1.5)
    log.on_processed(m(0, 1), ProcessId(2), 2.5)
    report = log.report({ProcessId(0), ProcessId(1), ProcessId(2)})
    assert report.first_delivery_delay.mean == 0.5


def test_mean_over_multiple_messages():
    log = DeliveryLog()
    for seq, latest in ((1, 0.5), (2, 1.5)):
        log.on_generated(m(0, seq), 0.0)
        log.on_processed(m(0, seq), ProcessId(0), latest)
    report = log.report({ProcessId(0)})
    assert report.mean_delay == 1.0


def test_generation_time_is_first_write_wins():
    log = DeliveryLog()
    log.on_generated(m(0, 1), 1.0)
    log.on_generated(m(0, 1), 9.0)  # retransmission must not reset it
    log.on_processed(m(0, 1), ProcessId(0), 2.0)
    report = log.report({ProcessId(0)})
    assert report.mean_delay == 1.0
