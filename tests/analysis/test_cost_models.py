"""Unit tests for the paper's closed-form cost models."""

import pytest

from repro.analysis.cost_models import (
    cbcast_agreement_time,
    cbcast_control_traffic,
    urcgc_agreement_time,
    urcgc_control_traffic,
    urcgc_history_bound,
)
from repro.errors import ConfigError


class TestTable1Forms:
    def test_urcgc_reliable_messages(self):
        assert urcgc_control_traffic(15).messages == 2 * 14

    def test_urcgc_crash_messages(self):
        traffic = urcgc_control_traffic(10, K=3, f=2, crash=True)
        assert traffic.messages == 2 * (2 * 3 + 2) * 9

    def test_urcgc_size_unchanged_by_crash(self):
        reliable = urcgc_control_traffic(10, K=3)
        crash = urcgc_control_traffic(10, K=3, f=4, crash=True)
        assert reliable.message_size_bytes == crash.message_size_bytes

    def test_cbcast_reliable(self):
        traffic = cbcast_control_traffic(15)
        assert traffic.messages == 16
        assert traffic.message_size_bytes == 4 * 16

    def test_cbcast_crash_messages(self):
        traffic = cbcast_control_traffic(10, K=3, f=1, crash=True)
        assert traffic.messages == 3 * (2 * (2 * 10 - 3) + 1)
        assert traffic.message_size_bytes == 4 * 9

    def test_total_bytes(self):
        traffic = urcgc_control_traffic(5)
        assert traffic.total_bytes == traffic.messages * traffic.message_size_bytes

    def test_ip_datagram_boundary(self):
        """Paper: n=15 urcgc messages fit in a 576-byte IP datagram."""
        assert urcgc_control_traffic(15).message_size_bytes <= 576
        assert urcgc_control_traffic(40).message_size_bytes <= 1500


class TestFigure5Forms:
    def test_urcgc_agreement(self):
        assert urcgc_agreement_time(3, 0) == 6
        assert urcgc_agreement_time(3, 4) == 10

    def test_cbcast_agreement(self):
        assert cbcast_agreement_time(3, 0) == 18
        assert cbcast_agreement_time(2, 3) == 2 * 21

    def test_urcgc_always_beats_cbcast(self):
        for K in (1, 2, 3, 5):
            for f in range(8):
                assert urcgc_agreement_time(K, f) < cbcast_agreement_time(K, f)

    def test_urcgc_slope_is_one(self):
        deltas = [
            urcgc_agreement_time(3, f + 1) - urcgc_agreement_time(3, f)
            for f in range(5)
        ]
        assert all(d == 1 for d in deltas)

    def test_cbcast_slope_is_5k(self):
        deltas = [
            cbcast_agreement_time(3, f + 1) - cbcast_agreement_time(3, f)
            for f in range(5)
        ]
        assert all(d == 15 for d in deltas)


class TestHistoryBound:
    def test_formula(self):
        assert urcgc_history_bound(40, K=3) == 2 * 6 * 40
        assert urcgc_history_bound(40, K=3, f=2) == 2 * 8 * 40

    def test_grows_with_k(self):
        assert urcgc_history_bound(10, K=4) > urcgc_history_bound(10, K=2)


def test_validation():
    with pytest.raises(ConfigError):
        urcgc_control_traffic(1)
    with pytest.raises(ConfigError):
        cbcast_control_traffic(5, K=0, crash=True)
    with pytest.raises(ConfigError):
        urcgc_agreement_time(2, -1)
