"""Unit tests for report rendering."""

import pytest

from repro.analysis.report import format_value, render_series, render_table


class TestFormatValue:
    def test_int(self):
        assert format_value(42) == "42"

    def test_float_precision(self):
        assert format_value(1.23456, precision=2) == "1.23"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_nan(self):
        assert format_value(float("nan")) == "-"

    def test_string_passthrough(self):
        assert format_value("x") == "x"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bbb"], [[1, 2.0], [100, 3.5]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderSeries:
    def test_contains_values(self):
        out = render_series("hist", [(0.0, 1.0), (1.0, 3.0)])
        assert "hist" in out
        assert "3.00" in out

    def test_thinning(self):
        points = [(float(i), float(i)) for i in range(1000)]
        out = render_series("s", points, max_points=10)
        assert len(out.splitlines()) == 11  # name + 10 samples

    def test_empty_series(self):
        assert render_series("s", []) == "s"

    def test_bars_scale_to_peak(self):
        out = render_series("s", [(0.0, 30.0)])
        assert "#" * 30 in out
