"""Smoke tests: every example script runs to completion.

The examples double as executable documentation; a refactor that
breaks one should fail CI, not a reader.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"
