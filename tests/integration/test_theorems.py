"""End-to-end checks of the paper's correctness theorems.

Theorem 4.1 (Uniform Atomicity): every message is processed by all
active processes or by none of them, within bounded time.

Theorem 4.2 (Uniform Ordering): if ``msg ->p msg'`` then every active
process processes ``msg`` before ``msg'``.

The checks run full simulations under randomized general-omission
failure injection across several seeds and inspect the per-member
delivery logs recorded by the service layer.
"""

import random

import pytest

from repro.core.config import UrcgcConfig
from repro.harness.cluster import SimCluster
from repro.types import ProcessId
from repro.workloads.generators import BernoulliWorkload, FixedBudgetWorkload
from repro.workloads.scenarios import general_omission, omission


def pids(n):
    return [ProcessId(i) for i in range(n)]


def assert_causal_order(cluster):
    """Every member's delivery order respects declared dependencies
    and per-origin seq order (Theorem 4.2 at each site)."""
    from repro.analysis.checkers import check_local_causal_order

    for pid in cluster.active_pids():
        check_local_causal_order(
            pid, cluster.services[pid].delivered
        ).raise_if_failed()


def assert_atomicity(cluster):
    """At quiescence, every non-discarded generated message has been
    processed by every final active member (all-or-none, and 'none'
    only for discarded orphans).

    Strengthens Definition 3.2 slightly: at quiescence nothing is in
    flight, so 'some processed it' must mean 'all processed it'."""
    from repro.analysis.checkers import check_uniform_atomicity

    active = set(cluster.active_pids())
    log = cluster.delivery_log
    check_uniform_atomicity(
        log.generated_at,
        {mid: set(by) for mid, by in log.processed_at.items()},
        active,
        discarded=log.discarded,
    ).raise_if_failed()
    # At quiescence atomicity is total: non-discarded => processed by
    # all, or by none (every holder died before any survivor got it).
    for mid in log.generated_at:
        if mid in log.discarded:
            continue
        got = set(log.processed_at.get(mid, {})) & active
        assert got == active or not got, (
            f"{mid} processed by {sorted(got)} but active set is {sorted(active)}"
        )


def assert_uniform_order_across_members(cluster):
    """Any two members process every *causally related* pair in the
    same order; per-origin sequences are a total order shared by all."""
    from repro.analysis.checkers import check_uniform_ordering

    streams = {
        pid: cluster.services[pid].delivered for pid in cluster.active_pids()
    }
    check_uniform_ordering(streams).raise_if_failed()


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_theorems_under_general_omission(seed):
    n = 6
    faults = general_omission(
        pids(n),
        crash_schedule={ProcessId(n - 1): 3.0},
        one_in=40,
        rng=random.Random(seed),
    )
    cluster = SimCluster(
        UrcgcConfig(n=n, K=2),
        workload=FixedBudgetWorkload(pids(n), total=48),
        faults=faults,
        max_rounds=600,
        seed=seed,
    )
    done = cluster.run_until_quiescent(drain_subruns=6)
    assert done is not None, "group failed to reach quiescence"
    assert_causal_order(cluster)
    assert_atomicity(cluster)
    assert_uniform_order_across_members(cluster)


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_theorems_under_heavy_omission(seed):
    n = 5
    cluster = SimCluster(
        UrcgcConfig(n=n, K=3),
        workload=BernoulliWorkload(
            pids(n), 0.5, rng=random.Random(seed), stop_after_round=30
        ),
        faults=omission(pids(n), 15, rng=random.Random(seed)),
        max_rounds=800,
        seed=seed,
    )
    done = cluster.run_until_quiescent(drain_subruns=6)
    assert done is not None
    assert_causal_order(cluster)
    assert_atomicity(cluster)
    assert_uniform_order_across_members(cluster)


def test_partial_broadcast_reaches_everyone_via_recovery():
    """Uniformity under an interrupted send: the crashing process's
    final broadcast reaches one destination only; recovery must spread
    it to the whole group (case i of Theorem 4.1)."""
    n = 5
    from repro.net.faults import CrashSchedule, FaultPlan

    schedule = CrashSchedule()
    # p4 crashes exactly at round 4 (t=2.0) as it broadcasts, with only
    # one destination receiving the final message.
    schedule.crash(ProcessId(4), 2.0, partial_deliveries=1)
    faults = FaultPlan(crashes=schedule)
    cluster = SimCluster(
        UrcgcConfig(n=n, K=2),
        workload=FixedBudgetWorkload(pids(n), total=25),
        faults=faults,
        max_rounds=200,
        seed=2,
    )
    done = cluster.run_until_quiescent(drain_subruns=4)
    assert done is not None
    assert_atomicity(cluster)
    assert_causal_order(cluster)
    # The partially-broadcast message (p4's message of round 4, seq 3)
    # was generated; if anyone got it, everyone must have it.
    last_by_member = {
        cluster.members[p].tracker.last_processed(ProcessId(4))
        for p in cluster.active_pids()
    }
    assert len(last_by_member) == 1


def test_orphan_sequence_discarded_consistently():
    """Theorem 4.1 case ii: when every holder of a message crashes,
    survivors destroy the dependent tail of the sequence — 'none of
    them' processes it."""
    n = 5
    from repro.net.faults import CrashSchedule, FaultPlan

    schedule = CrashSchedule()
    schedule.crash(ProcessId(4), 3.2)  # after sending at round 6 (t=3.0)
    faults = FaultPlan(crashes=schedule)

    # Drop p4's first data broadcast entirely (only p4 processes
    # m(4,1)) and its recovery responses (nobody can fetch m(4,1) from
    # its history before the crash): m(4,1) dies with p4.
    def drop(packet, now):
        if packet.src != 4:
            return False
        if packet.kind == "data" and now < 1.0:
            return True
        return packet.kind == "ctrl-recovery-rsp"

    faults.custom_send_filter = drop
    cluster = SimCluster(
        UrcgcConfig(n=n, K=2),
        workload=FixedBudgetWorkload(pids(n), total=40),
        faults=faults,
        max_rounds=300,
        seed=4,
    )
    done = cluster.run_until_quiescent(drain_subruns=6)
    assert done is not None
    # m(4,1) was processed only by the crashed p4; every survivor must
    # have discarded the dependent tail m(4,2..), never processing it.
    for pid in cluster.active_pids():
        member = cluster.members[pid]
        assert member.tracker.last_processed(ProcessId(4)) == 0
        assert member.waiting_length == 0
    discarded = cluster.delivery_log.discarded
    assert any(mid.origin == 4 for mid in discarded)
    assert_atomicity(cluster)
    assert_causal_order(cluster)


def test_receive_omitting_member_leaves_under_strict_rule():
    """A process that can receive *nothing* can never learn it missed
    decisions, so only the STRICT leave rule ("fails to receive from K
    consecutive coordinators") gets it out of the group — after which
    the survivors converge."""
    n = 5
    from repro.core.config import LeaveRule
    from repro.net.faults import FaultPlan

    faults = FaultPlan()

    # p3 receives nothing after t=1.0 (total receive omission).
    faults.custom_receive_filter = lambda packet, dst, now: dst == 3 and now >= 1.0
    cluster = SimCluster(
        UrcgcConfig(n=n, K=2, leave_rule=LeaveRule.STRICT),
        workload=FixedBudgetWorkload(pids(n), total=30),
        faults=faults,
        max_rounds=300,
        seed=1,
    )
    done = cluster.run_until_quiescent(drain_subruns=4)
    assert done is not None
    member = cluster.members[3]
    assert member.has_left
    assert "consecutive coordinators" in (member.left_reason or "")
    survivors = [p for p in cluster.active_pids() if p != ProcessId(3)]
    vectors = {cluster.members[p].last_processed_vector() for p in survivors}
    assert len(vectors) == 1


def test_forked_decision_from_isolated_coordinator_rejected():
    """A totally receive-omitting process that takes its coordinator
    turn computes decisions from stale knowledge; the decision-chain
    guard must stop them from assassinating the healthy majority."""
    n = 5
    from repro.net.faults import FaultPlan

    faults = FaultPlan()
    faults.custom_receive_filter = lambda packet, dst, now: dst == 3 and now >= 1.0
    cluster = SimCluster(
        UrcgcConfig(n=n, K=2),  # CONFIRMED rule: p3 never leaves
        workload=FixedBudgetWorkload(pids(n), total=30),
        faults=faults,
        max_rounds=300,
        seed=1,
    )
    cluster.run(max_events=200_000)
    healthy = [p for p in cluster.active_pids() if p != ProcessId(3)]
    # Nobody suicided on p3's forked decisions; the healthy members
    # all processed the full workload.
    assert len(healthy) == 4
    vectors = {cluster.members[p].last_processed_vector() for p in healthy}
    assert len(vectors) == 1
    assert max(v[0] for v in vectors) == 6


def test_suicide_on_learning_presumed_death():
    """A send-omitting (but receiving) process is declared crashed by
    the coordinators and, on seeing the decision, commits suicide."""
    n = 5
    from repro.net.faults import FaultPlan

    faults = FaultPlan()
    # p3 cannot send anything from t=1.0 on, but still receives.
    faults.custom_send_filter = lambda packet, now: packet.src == 3 and now >= 1.0
    cluster = SimCluster(
        UrcgcConfig(n=n, K=2),
        workload=FixedBudgetWorkload(pids(n), total=20),
        faults=faults,
        max_rounds=200,
        seed=1,
    )
    cluster.run_until_quiescent(drain_subruns=4)
    member = cluster.members[3]
    assert member.has_left
    assert "suicide" in (member.left_reason or "")
    for pid in cluster.active_pids():
        assert not cluster.members[pid].view.is_alive(ProcessId(3))
