"""Paper-scale and adversarial stress runs.

These go beyond the unit scenarios: the paper's n=40 configuration,
multi-crash pile-ups, and long lossy runs — all ending with the URCGC
invariant checkers over the full delivery logs.
"""

import random

import pytest

from repro.analysis.checkers import (
    check_local_causal_order,
    check_uniform_ordering,
)
from repro.core.config import UrcgcConfig
from repro.harness.cluster import SimCluster
from repro.types import ProcessId
from repro.workloads.generators import BernoulliWorkload, FixedBudgetWorkload
from repro.workloads.scenarios import general_omission, reliable


def pids(n):
    return [ProcessId(i) for i in range(n)]


def verify(cluster):
    streams = {
        pid: cluster.services[pid].delivered for pid in cluster.active_pids()
    }
    check_uniform_ordering(streams).raise_if_failed()
    for pid, stream in streams.items():
        check_local_causal_order(pid, stream).raise_if_failed()


def test_paper_scale_reliable_run():
    """n=40, 480 messages — the Figure 6 configuration, reliable."""
    n = 40
    cluster = SimCluster(
        UrcgcConfig(n=n, K=3),
        workload=FixedBudgetWorkload(pids(n), total=480),
        faults=reliable(),
        max_rounds=80,
        trace=False,
    )
    done = cluster.run_until_quiescent(drain_subruns=3)
    assert done is not None and done <= 15  # paper: ~15 rtd
    assert all(m.processed_count == 480 for m in cluster.members)
    report = cluster.delay_report()
    assert report.mean_delay == 0.5
    verify(cluster)


def test_paper_scale_general_omission_run():
    """n=40 with the paper's faulty Figure 6 scenario."""
    n = 40
    cluster = SimCluster(
        UrcgcConfig(n=n, K=3),
        workload=FixedBudgetWorkload(pids(n), total=480),
        faults=general_omission(
            pids(n),
            crash_schedule={ProcessId(n - 1): 4.0},
            one_in=500,
            rng=random.Random(99),
        ),
        max_rounds=400,
        seed=99,
        trace=False,
    )
    done = cluster.run_until_quiescent(drain_subruns=8)
    assert done is not None
    report = cluster.delay_report()
    assert report.incomplete_messages == 0
    verify(cluster)


def test_multi_crash_pileup():
    """Half the group crashes in a staggered pile-up; the survivors
    still converge and clean their histories."""
    n = 8
    schedule = {ProcessId(n - 1 - i): 2.0 + 1.0 * i for i in range(n // 2)}
    from repro.workloads.scenarios import crashes

    cluster = SimCluster(
        UrcgcConfig(n=n, K=2, R=8),
        workload=FixedBudgetWorkload(pids(n), total=48),
        faults=crashes(schedule),
        max_rounds=300,
        trace=False,
    )
    done = cluster.run_until_quiescent(drain_subruns=6)
    assert done is not None
    survivors = cluster.active_pids()
    assert survivors == [ProcessId(i) for i in range(n // 2)]
    vectors = {cluster.members[p].last_processed_vector() for p in survivors}
    assert len(vectors) == 1
    assert all(cluster.members[p].history_length == 0 for p in survivors)
    verify(cluster)


@pytest.mark.parametrize("seed", [21, 22])
def test_long_lossy_run_with_churny_load(seed):
    """A sustained bursty workload over a lossy network: hundreds of
    messages, every invariant intact at the end."""
    n = 7
    cluster = SimCluster(
        UrcgcConfig(n=n, K=3),
        workload=BernoulliWorkload(
            pids(n), 0.7, rng=random.Random(seed), stop_after_round=80
        ),
        faults=general_omission(
            pids(n),
            crash_schedule={ProcessId(n - 1): 10.0},
            one_in=60,
            rng=random.Random(seed),
        ),
        max_rounds=1000,
        seed=seed,
        trace=False,
    )
    done = cluster.run_until_quiescent(drain_subruns=8)
    assert done is not None
    report = cluster.delay_report()
    assert report.complete_messages > 200
    assert report.incomplete_messages == 0
    verify(cluster)


def test_flow_controlled_run_loses_nothing():
    """A tight flow-control threshold throttles but never loses."""
    n = 10
    cluster = SimCluster(
        UrcgcConfig(n=n, K=2, flow_threshold=n),
        workload=FixedBudgetWorkload(pids(n), total=120),
        faults=reliable(),
        max_rounds=600,
        trace=False,
    )
    done = cluster.run_until_quiescent(drain_subruns=3)
    assert done is not None
    assert sum(m.flow_blocked_rounds for m in cluster.members) > 0
    assert all(m.processed_count == 120 for m in cluster.members)
    verify(cluster)
