"""Unit tests for vector clocks."""

import pytest

from repro.baselines.cbcast.vector_clock import VectorClock
from repro.errors import ConfigError
from repro.types import ProcessId


def test_starts_at_zero():
    assert VectorClock(3).as_tuple() == (0, 0, 0)


def test_tick_and_getitem():
    clock = VectorClock(3)
    clock.tick(ProcessId(1))
    clock.tick(ProcessId(1))
    assert clock[1] == 2
    assert clock[0] == 0


def test_merge_is_componentwise_max():
    a = VectorClock([1, 5, 2])
    b = VectorClock([3, 1, 2])
    a.merge(b)
    assert a.as_tuple() == (3, 5, 2)


def test_copy_is_independent():
    a = VectorClock([1, 2])
    b = a.copy()
    b.tick(ProcessId(0))
    assert a.as_tuple() == (1, 2)


def test_partial_order():
    a = VectorClock([1, 0])
    b = VectorClock([1, 1])
    assert a <= b
    assert a < b
    assert not b <= a


def test_concurrency():
    a = VectorClock([1, 0])
    b = VectorClock([0, 1])
    assert a.concurrent_with(b)
    assert not a.concurrent_with(a)


def test_equality_and_hash():
    assert VectorClock([1, 2]) == VectorClock([1, 2])
    assert hash(VectorClock([1, 2])) == hash(VectorClock([1, 2]))


def test_width_mismatch_rejected():
    with pytest.raises(ConfigError):
        VectorClock([1]) <= VectorClock([1, 2])


def test_invalid_construction():
    with pytest.raises(ConfigError):
        VectorClock(0)
    with pytest.raises(ConfigError):
        VectorClock([])
    with pytest.raises(ConfigError):
        VectorClock([-1])


class TestDeliverableFrom:
    def test_next_in_sequence_deliverable(self):
        local = VectorClock([0, 0])
        stamp = VectorClock([1, 0])
        assert stamp.deliverable_from(ProcessId(0), local)

    def test_gap_not_deliverable(self):
        local = VectorClock([0, 0])
        stamp = VectorClock([2, 0])
        assert not stamp.deliverable_from(ProcessId(0), local)

    def test_causal_predecessor_missing(self):
        # m from p0 was sent after p0 saw message 1 from p1.
        local = VectorClock([0, 0])
        stamp = VectorClock([1, 1])
        assert not stamp.deliverable_from(ProcessId(0), local)
        local = VectorClock([0, 1])
        assert stamp.deliverable_from(ProcessId(0), local)
