"""Edge cases for the CBCAST engine: blocked submissions, stale view
traffic, crash mid-everything."""

import pytest

from repro.baselines.cbcast.messages import Flush, ViewChange
from repro.baselines.cbcast.protocol import CbcastEngine
from repro.baselines.cbcast.vector_clock import VectorClock
from repro.core.effects import Deliver, Send
from repro.errors import MemberLeftError
from repro.types import ProcessId


def sends_of(effects, kind=None):
    return [e for e in effects if isinstance(e, Send) and (kind is None or e.kind == kind)]


def test_submissions_resume_after_view_installed():
    engine = CbcastEngine(ProcessId(1), 3)
    engine.on_message(ViewChange(ProcessId(0), 1, (True, True, False)))
    engine.submit(b"queued-during-flush")
    assert sends_of(engine.on_round(0), "data") == []
    engine.on_message(ViewChange(ProcessId(0), 1, (True, True, False), commit=True))
    effects = engine.on_round(1)
    data = sends_of(effects, "data")
    assert len(data) == 1
    assert data[0].message.payload == b"queued-during-flush"


def test_stale_proposal_ignored():
    engine = CbcastEngine(ProcessId(1), 3)
    engine.on_message(ViewChange(ProcessId(0), 5, (True, True, False), commit=True))
    assert engine.view_id == 5
    engine.on_message(ViewChange(ProcessId(0), 2, (True, True, True)))
    assert engine.view_id == 5
    assert not engine.blocked


def test_flush_for_wrong_view_ignored():
    manager = CbcastEngine(ProcessId(0), 3)
    manager.suspect(ProcessId(2))
    stale_flush = Flush(ProcessId(1), 99, VectorClock(3))
    effects = manager.on_message(stale_flush)
    assert sends_of(effects, "ctrl-viewchange") == []
    assert manager.blocked


def test_flush_from_non_manager_position_ignored():
    engine = CbcastEngine(ProcessId(1), 3)  # not running a view change
    effects = engine.on_message(Flush(ProcessId(2), 1, VectorClock(3)))
    assert effects == []


def test_crashed_engine_fully_inert():
    engine = CbcastEngine(ProcessId(0), 2)
    engine.crash()
    assert engine.on_round(0) == []
    assert engine.on_message(ViewChange(ProcessId(1), 1, (True, True))) == []
    assert engine.suspect(ProcessId(1)) == []
    with pytest.raises(MemberLeftError):
        engine.submit(b"x")


def test_suspecting_self_is_noop():
    engine = CbcastEngine(ProcessId(0), 3)
    assert engine.suspect(ProcessId(0)) == []


def test_duplicate_suspicion_is_noop():
    engine = CbcastEngine(ProcessId(0), 3)
    first = engine.suspect(ProcessId(2))
    assert sends_of(first, "ctrl-viewchange")
    assert engine.suspect(ProcessId(2)) == []
    assert engine.view_changes_started == 1


def test_manager_reproposes_while_blocked():
    """Lost proposals are re-broadcast each subrun until flushed."""
    manager = CbcastEngine(ProcessId(0), 3)
    manager.suspect(ProcessId(2))
    effects = manager.on_round(1)  # odd round while blocked
    assert len(sends_of(effects, "ctrl-viewchange")) == 1


def test_unexpected_message_type_rejected():
    engine = CbcastEngine(ProcessId(0), 2)
    with pytest.raises(TypeError):
        engine.on_message(42)


def test_retransmissions_not_delivered_twice_across_views():
    a = CbcastEngine(ProcessId(0), 3)
    b = CbcastEngine(ProcessId(1), 3)
    a.submit(b"m")
    m = sends_of(a.on_round(0), "data")[0].message
    assert [e for e in b.on_message(m) if isinstance(e, Deliver)]
    # Flush retransmits m; b must not deliver it again.
    proposal = ViewChange(ProcessId(0), 1, (True, True, False))
    retransmissions = [
        s.message for s in sends_of(a.on_message(proposal), "data")
    ]
    assert retransmissions
    for retransmission in retransmissions:
        assert not [
            e for e in b.on_message(retransmission) if isinstance(e, Deliver)
        ]
