"""Unit tests for the Psync baseline."""

import pytest

from repro.baselines.psync.context_graph import ContextGraph, GraphNode
from repro.baselines.psync.protocol import PsyncData, PsyncEngine
from repro.core.effects import Deliver, Send
from repro.errors import DuplicateMidError
from repro.net.wire import decode_message, encode_message
from repro.types import ProcessId


def node(sender, seq, preds=(), payload=b""):
    return GraphNode((ProcessId(sender), seq), tuple(preds), payload)


def delivers_of(effects):
    return [e.message for e in effects if isinstance(e, Deliver)]


def sends_of(effects):
    return [e for e in effects if isinstance(e, Send)]


class TestContextGraph:
    def test_root_attaches_immediately(self):
        graph = ContextGraph()
        released = graph.attach(node(0, 1))
        assert len(released) == 1
        assert graph.leaves() == ((ProcessId(0), 1),)

    def test_leaves_update_on_attach(self):
        graph = ContextGraph()
        graph.attach(node(0, 1))
        graph.attach(node(1, 1, preds=[(ProcessId(0), 1)]))
        assert graph.leaves() == ((ProcessId(1), 1),)

    def test_concurrent_messages_are_both_leaves(self):
        graph = ContextGraph()
        graph.attach(node(0, 1))
        graph.attach(node(1, 1))
        assert graph.leaves() == ((ProcessId(0), 1), (ProcessId(1), 1))

    def test_missing_context_pends(self):
        graph = ContextGraph()
        released = graph.attach(node(1, 1, preds=[(ProcessId(0), 1)]))
        assert released == []
        assert graph.pending_count == 1
        released = graph.attach(node(0, 1))
        assert [n.mid for n in released] == [(0, 1), (1, 1)]

    def test_duplicate_rejected(self):
        graph = ContextGraph()
        graph.attach(node(0, 1))
        with pytest.raises(DuplicateMidError):
            graph.attach(node(0, 1))

    def test_pending_bound_drops_arrival(self):
        graph = ContextGraph(pending_bound=1)
        graph.attach(node(1, 2, preds=[(ProcessId(1), 1)]))
        graph.attach(node(2, 2, preds=[(ProcessId(2), 1)]))  # dropped
        assert graph.pending_count == 1
        assert graph.induced_omissions == 1

    def test_mask_out_waives_context(self):
        graph = ContextGraph()
        graph.attach(node(1, 1, preds=[(ProcessId(0), 1)]))
        released = graph.mask_out(ProcessId(0))
        assert [n.mid for n in released] == [(1, 1)]

    def test_mask_out_drops_pending_from_victim(self):
        graph = ContextGraph()
        graph.attach(node(0, 2, preds=[(ProcessId(0), 1)]))
        graph.mask_out(ProcessId(0))
        assert graph.pending_count == 0
        assert not graph.contains((ProcessId(0), 2))

    def test_masked_sender_arrivals_dropped(self):
        graph = ContextGraph()
        graph.mask_out(ProcessId(0))
        assert graph.attach(node(0, 1)) == []
        assert graph.induced_omissions == 1


class TestPsyncEngine:
    def test_send_carries_leaves_as_context(self):
        a = PsyncEngine(ProcessId(0), 2)
        b = PsyncEngine(ProcessId(1), 2)
        a.submit(b"m1")
        m1 = sends_of(a.on_round(0))[0].message
        assert m1.preds == ()
        b.on_message(m1)
        b.submit(b"m2")
        m2 = sends_of(b.on_round(1))[0].message
        assert m2.preds == ((ProcessId(0), 1),)

    def test_context_order_delivery(self):
        a = PsyncEngine(ProcessId(0), 2)
        b = PsyncEngine(ProcessId(1), 2)
        a.submit(b"m1")
        m1 = sends_of(a.on_round(0))[0].message
        a.submit(b"m2")
        m2 = sends_of(a.on_round(1))[0].message
        assert delivers_of(b.on_message(m2)) == []
        out = delivers_of(b.on_message(m1))
        assert [m.payload for m in out] == [b"m1", b"m2"]

    def test_duplicate_ignored(self):
        a = PsyncEngine(ProcessId(0), 2)
        b = PsyncEngine(ProcessId(1), 2)
        a.submit(b"m")
        m = sends_of(a.on_round(0))[0].message
        b.on_message(m)
        assert b.on_message(m) == []

    def test_mask_out_releases_blocked(self):
        b = PsyncEngine(ProcessId(1), 3)
        blocked = PsyncData(ProcessId(2), 1, ((ProcessId(0), 1),), b"x")
        assert delivers_of(b.on_message(blocked)) == []
        released = delivers_of(b.mask_out(ProcessId(0)))
        assert [m.payload for m in released] == [b"x"]

    def test_wire_roundtrip(self):
        message = PsyncData(ProcessId(1), 3, ((ProcessId(0), 2), (ProcessId(2), 1)), b"p")
        assert decode_message(encode_message(message)) == message

    def test_crashed_engine_inert(self):
        engine = PsyncEngine(ProcessId(0), 2)
        engine.crash()
        assert engine.on_round(0) == []
        from repro.errors import MemberLeftError

        with pytest.raises(MemberLeftError):
            engine.submit(b"x")
