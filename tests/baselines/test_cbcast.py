"""Unit tests for the CBCAST baseline: delivery, stability, flush."""

from repro.baselines.cbcast.delivery import CausalDeliveryQueue
from repro.baselines.cbcast.messages import (
    CbcastData,
    Flush,
    StabilityGossip,
    ViewChange,
)
from repro.baselines.cbcast.protocol import CbcastEngine
from repro.baselines.cbcast.stability import StabilityTracker
from repro.baselines.cbcast.vector_clock import VectorClock
from repro.core.effects import Deliver, Send
from repro.net.wire import decode_message, encode_message
from repro.types import ProcessId


def data(sender, vt, delivered=None, payload=b"", retransmission=False):
    n = len(vt)
    return CbcastData(
        ProcessId(sender),
        VectorClock(list(vt)),
        VectorClock(list(delivered) if delivered else [0] * n),
        payload,
        retransmission,
    )


def sends_of(effects, kind=None):
    return [e for e in effects if isinstance(e, Send) and (kind is None or e.kind == kind)]


def delivers_of(effects):
    return [e.message for e in effects if isinstance(e, Deliver)]


class TestDeliveryQueue:
    def test_in_order_delivery(self):
        queue = CausalDeliveryQueue(ProcessId(0), 2)
        out = queue.receive(data(1, [0, 1]))
        assert len(out) == 1
        assert queue.local.as_tuple() == (0, 1)

    def test_gap_delays(self):
        queue = CausalDeliveryQueue(ProcessId(0), 2)
        assert queue.receive(data(1, [0, 2])) == []
        assert queue.delayed_count == 1
        out = queue.receive(data(1, [0, 1]))
        assert [m.vt[1] for m in out] == [1, 2]

    def test_causal_dependency_across_senders(self):
        queue = CausalDeliveryQueue(ProcessId(0), 3)
        # p2's message was sent after seeing p1's first message.
        assert queue.receive(data(2, [0, 1, 1])) == []
        out = queue.receive(data(1, [0, 1, 0]))
        assert [(m.sender, m.vt[m.sender]) for m in out] == [(1, 1), (2, 1)]

    def test_duplicates_ignored(self):
        queue = CausalDeliveryQueue(ProcessId(0), 2)
        queue.receive(data(1, [0, 1]))
        assert queue.receive(data(1, [0, 1])) == []

    def test_duplicate_of_delayed_ignored(self):
        queue = CausalDeliveryQueue(ProcessId(0), 2)
        queue.receive(data(1, [0, 2]))
        queue.receive(data(1, [0, 2]))
        assert queue.delayed_count == 1

    def test_missing_from(self):
        queue = CausalDeliveryQueue(ProcessId(0), 2)
        queue.receive(data(1, [0, 3]))
        assert queue.missing_from(ProcessId(1)) == 1
        assert queue.missing_from(ProcessId(0)) is None


class TestStabilityTracker:
    def test_stable_vector_is_min(self):
        tracker = StabilityTracker(2)
        tracker.note_report(ProcessId(0), VectorClock([3, 1]))
        tracker.note_report(ProcessId(1), VectorClock([2, 4]))
        assert tracker.stable_vector([True, True]).as_tuple() == (2, 1)

    def test_crashed_member_excluded(self):
        tracker = StabilityTracker(2)
        tracker.note_report(ProcessId(0), VectorClock([3, 3]))
        # p1 never reported, but it is dead: stability over survivors.
        assert tracker.stable_vector([True, False]).as_tuple() == (3, 3)

    def test_garbage_collection(self):
        tracker = StabilityTracker(2)
        tracker.buffer(data(0, [1, 0]))
        tracker.buffer(data(0, [2, 0]))
        tracker.note_report(ProcessId(0), VectorClock([2, 0]))
        tracker.note_report(ProcessId(1), VectorClock([1, 0]))
        dropped = tracker.collect_garbage([True, True])
        assert dropped == 1
        assert tracker.buffered_count == 1
        assert tracker.unstable_messages()[0].vt[0] == 2

    def test_reports_merge_monotonically(self):
        tracker = StabilityTracker(2)
        tracker.note_report(ProcessId(0), VectorClock([3, 0]))
        tracker.note_report(ProcessId(0), VectorClock([1, 2]))
        assert tracker.stable_vector([True, False]).as_tuple() == (3, 2)


class TestMessagesWire:
    def test_data_roundtrip(self):
        message = data(1, [0, 2, 1], delivered=[0, 1, 1], payload=b"x")
        assert decode_message(encode_message(message)) == message

    def test_view_change_roundtrip(self):
        message = ViewChange(ProcessId(0), 3, (True, False, True), commit=True)
        assert decode_message(encode_message(message)) == message

    def test_flush_roundtrip(self):
        message = Flush(ProcessId(2), 3, VectorClock([1, 2, 3]))
        assert decode_message(encode_message(message)) == message

    def test_gossip_roundtrip(self):
        message = StabilityGossip(ProcessId(1), VectorClock([4, 5]))
        assert decode_message(encode_message(message)) == message

    def test_data_size_linear_in_n(self):
        small = len(encode_message(data(0, [1] * 5)))
        large = len(encode_message(data(0, [1] * 10)))
        assert large - small == 5 * 2 * 4  # two vectors, 4 bytes each


class TestEngine:
    def test_send_delivers_locally_and_broadcasts(self):
        engine = CbcastEngine(ProcessId(0), 3)
        engine.submit(b"hello")
        effects = engine.on_round(0)
        assert len(sends_of(effects, "data")) == 1
        assert len(delivers_of(effects)) == 1
        assert engine.queue.local.as_tuple() == (1, 0, 0)

    def test_received_message_delivered_causally(self):
        a = CbcastEngine(ProcessId(0), 2)
        b = CbcastEngine(ProcessId(1), 2)
        a.submit(b"m1")
        m1 = sends_of(a.on_round(0), "data")[0].message
        a.submit(b"m2")
        m2 = sends_of(a.on_round(1), "data")[0].message
        # b gets m2 first: delayed; then m1 releases both.
        assert delivers_of(b.on_message(m2)) == []
        out = delivers_of(b.on_message(m1))
        assert [m.payload for m in out] == [b"m1", b"m2"]

    def test_idle_gossip_only_with_unstable_buffer(self):
        engine = CbcastEngine(ProcessId(0), 2)
        # Nothing buffered: fully quiescent, no gossip at all.
        assert sends_of(engine.on_round(0), "ctrl-stability") == []
        assert sends_of(engine.on_round(1), "ctrl-stability") == []
        # An unstable message makes the idle engine gossip once per
        # subrun (second round) until it stabilizes.
        engine.submit(b"m")
        engine.on_round(2)
        assert engine.unstable_count == 1
        assert sends_of(engine.on_round(4), "ctrl-stability") == []
        assert len(sends_of(engine.on_round(5), "ctrl-stability")) == 1

    def test_stability_garbage_collects_buffer(self):
        a = CbcastEngine(ProcessId(0), 2)
        b = CbcastEngine(ProcessId(1), 2)
        a.submit(b"m")
        m = sends_of(a.on_round(0), "data")[0].message
        b.on_message(m)
        # b learned a's delivery from the piggyback, so m is already
        # stable at b and b's buffer is empty.
        assert b.unstable_count == 0
        assert a.unstable_count == 1
        # a still gossips; b replies with its delivery vector, which
        # stabilizes m at a.
        gossip = sends_of(a.on_round(1), "ctrl-stability")[0].message
        reply = sends_of(b.on_message(gossip), "ctrl-stability")[0].message
        a.on_message(reply)
        assert a.unstable_count == 0

    def test_suspect_starts_view_change_at_manager(self):
        engine = CbcastEngine(ProcessId(0), 3)
        effects = engine.suspect(ProcessId(2))
        views = sends_of(effects, "ctrl-viewchange")
        assert len(views) == 1
        assert not views[0].message.commit
        assert engine.blocked

    def test_non_manager_waits_for_proposal(self):
        engine = CbcastEngine(ProcessId(1), 3)
        effects = engine.suspect(ProcessId(2))
        assert sends_of(effects, "ctrl-viewchange") == []
        assert not engine.blocked

    def test_flush_round_trip_installs_view(self):
        manager = CbcastEngine(ProcessId(0), 3)
        member = CbcastEngine(ProcessId(1), 3)
        proposal = sends_of(manager.suspect(ProcessId(2)), "ctrl-viewchange")[0].message
        member_effects = member.on_message(proposal)
        assert member.blocked
        flush = sends_of(member_effects, "ctrl-flush")[0].message
        commit_effects = manager.on_message(flush)
        commits = sends_of(commit_effects, "ctrl-viewchange")
        assert len(commits) == 1 and commits[0].message.commit
        assert not manager.blocked
        member.on_message(commits[0].message)
        assert not member.blocked
        assert member.alive == [True, True, False]

    def test_blocked_engine_does_not_send_data(self):
        engine = CbcastEngine(ProcessId(1), 3)
        proposal = ViewChange(ProcessId(0), 1, (True, True, False))
        engine.on_message(proposal)
        engine.submit(b"queued")
        effects = engine.on_round(0)
        assert sends_of(effects, "data") == []
        assert engine.blocked_rounds == 1
        assert engine.pending_submissions == 1

    def test_unstable_messages_retransmitted_in_flush(self):
        member = CbcastEngine(ProcessId(1), 3)
        member.submit(b"unstable")
        member.on_round(0)
        assert member.unstable_count == 1
        proposal = ViewChange(ProcessId(0), 1, (True, True, False))
        effects = member.on_message(proposal)
        retransmissions = [
            s.message
            for s in sends_of(effects, "data")
            if s.message.retransmission
        ]
        assert len(retransmissions) == 1
        assert retransmissions[0].payload == b"unstable"

    def test_manager_crash_restarts_protocol(self):
        """The paper: the flush 'has to be started all over again on
        the occurrence of each coordinator failure'."""
        member = CbcastEngine(ProcessId(1), 4)
        proposal = ViewChange(ProcessId(0), 1, (True, True, True, False))
        member.on_message(proposal)
        assert member.blocked
        # Manager p0 crashes; p1 becomes manager and restarts.
        effects = member.suspect(ProcessId(0))
        new_proposals = sends_of(effects, "ctrl-viewchange")
        assert len(new_proposals) == 1
        assert new_proposals[0].message.manager == 1
        assert new_proposals[0].message.view_id == 2
        assert new_proposals[0].message.alive == (False, True, True, False)
        assert member.view_changes_started == 1
