"""Unit tests for the failure-scenario builders."""

import pytest

from repro.errors import ConfigError
from repro.types import ProcessId, time_of_round
from repro.workloads.scenarios import (
    consecutive_coordinator_crashes,
    crashes,
    general_omission,
    omission,
    reliable,
)


def test_reliable_has_no_failures():
    plan = reliable()
    assert not plan.crashes.crashed_by(1e9)
    assert plan.link_loss == 0.0


def test_crashes_schedule():
    plan = crashes({ProcessId(1): 2.0, ProcessId(3): 4.0})
    assert plan.is_crashed(ProcessId(1), 2.0)
    assert not plan.is_crashed(ProcessId(3), 3.9)
    assert plan.crashes.crashed_by(5.0) == {ProcessId(1), ProcessId(3)}


def test_omission_rate():
    pids = [ProcessId(i) for i in range(3)]
    plan = omission(pids, 100)
    # Rate applied to every pid in both directions: smoke via models.
    from repro.net.packet import Packet
    from repro.net.addressing import UnicastAddress

    drops = sum(
        plan.check_receive(
            Packet(ProcessId(0), UnicastAddress(ProcessId(1)), b"x"), ProcessId(1), 0.0
        ).dropped
        for _ in range(5000)
    )
    assert 20 < drops < 90  # ~1/100


def test_omission_minimum_period():
    with pytest.raises(ConfigError):
        omission([ProcessId(0)], 1)


def test_general_omission_spares_crashed_from_omission_model():
    pids = [ProcessId(i) for i in range(3)]
    plan = general_omission(
        pids, crash_schedule={ProcessId(2): 1.0}, one_in=2, periodic=True
    )
    # p2 crashes; its loss is modelled by the crash, not by omission.
    from repro.net.packet import Packet
    from repro.net.addressing import UnicastAddress

    packet = Packet(ProcessId(2), UnicastAddress(ProcessId(0)), b"x")
    assert not plan.check_send(packet, 0.0).dropped  # no omission pre-crash
    assert plan.check_send(packet, 1.0).dropped  # crashed


class TestConsecutiveCoordinatorCrashes:
    def test_victims_and_times(self):
        plan = consecutive_coordinator_crashes(5, f=3, first_subrun=1)
        # Victims are the rotation positions 1, 2, 3; each dies at its
        # decision round (second round of its subrun).
        for i, pid in enumerate((1, 2, 3)):
            expected = time_of_round(2 * (1 + i) + 1)
            assert plan.crashes.crash_time(ProcessId(pid)) == expected

    def test_f_zero_is_reliable(self):
        plan = consecutive_coordinator_crashes(5, f=0)
        assert not plan.crashes.crashed_by(1e9)

    def test_f_bounds(self):
        with pytest.raises(ConfigError):
            consecutive_coordinator_crashes(5, f=5)
        with pytest.raises(ConfigError):
            consecutive_coordinator_crashes(5, f=-1)

    def test_wraparound_positions(self):
        plan = consecutive_coordinator_crashes(3, f=2, first_subrun=2)
        assert plan.crashes.crash_time(ProcessId(2)) is not None
        assert plan.crashes.crash_time(ProcessId(0)) is not None
