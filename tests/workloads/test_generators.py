"""Unit tests for workload generators."""

import random

import pytest

from repro.errors import ConfigError
from repro.types import ProcessId
from repro.workloads.generators import (
    BernoulliWorkload,
    FixedBudgetWorkload,
    NullWorkload,
    ScriptedWorkload,
    payload_for,
)


PIDS = [ProcessId(i) for i in range(4)]


def test_null_workload():
    assert NullWorkload().submissions(0) == []


class TestPayloadFor:
    def test_size_exact(self):
        assert len(payload_for(ProcessId(0), 0, size=32)) == 32
        assert len(payload_for(ProcessId(0), 0, size=4)) == 4

    def test_self_describing(self):
        assert payload_for(ProcessId(3), 7).startswith(b"p3r7:")


class TestBernoulli:
    def test_probability_zero(self):
        workload = BernoulliWorkload(PIDS, 0.0)
        assert all(workload.submissions(r) == [] for r in range(10))

    def test_probability_one(self):
        workload = BernoulliWorkload(PIDS, 1.0)
        subs = workload.submissions(0)
        assert [pid for pid, _ in subs] == PIDS

    def test_offered_counter(self):
        workload = BernoulliWorkload(PIDS, 1.0)
        workload.submissions(0)
        workload.submissions(1)
        assert workload.offered == 8

    def test_statistical_rate(self):
        workload = BernoulliWorkload(PIDS, 0.25, rng=random.Random(0))
        total = sum(len(workload.submissions(r)) for r in range(1000))
        assert 800 < total < 1200

    def test_stop_after_round(self):
        workload = BernoulliWorkload(PIDS, 1.0, stop_after_round=1)
        assert workload.submissions(1)
        assert workload.submissions(2) == []

    def test_invalid_probability(self):
        with pytest.raises(ConfigError):
            BernoulliWorkload(PIDS, 1.5)


class TestFixedBudget:
    def test_budget_exhausted_exactly(self):
        workload = FixedBudgetWorkload(PIDS, total=10)
        total = 0
        for r in range(10):
            total += len(workload.submissions(r))
        assert total == 10
        assert workload.offered == 10

    def test_round_robin_across_pids(self):
        workload = FixedBudgetWorkload(PIDS, total=6)
        first = workload.submissions(0)
        assert [pid for pid, _ in first] == PIDS
        second = workload.submissions(1)
        assert [pid for pid, _ in second] == PIDS[:2]

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError):
            FixedBudgetWorkload(PIDS, total=-1)


class TestScripted:
    def test_exact_schedule(self):
        schedule = {0: [(PIDS[1], b"a")], 3: [(PIDS[0], b"b"), (PIDS[2], b"c")]}
        workload = ScriptedWorkload(schedule)
        assert workload.submissions(0) == [(PIDS[1], b"a")]
        assert workload.submissions(1) == []
        assert len(workload.submissions(3)) == 2


class TestBurst:
    def test_on_off_pattern(self):
        from repro.workloads.generators import BurstWorkload

        workload = BurstWorkload(PIDS, on_rounds=2, off_rounds=3)
        pattern = [bool(workload.submissions(r)) for r in range(10)]
        assert pattern == [True, True, False, False, False] * 2

    def test_total_budget(self):
        from repro.workloads.generators import BurstWorkload

        workload = BurstWorkload(PIDS, on_rounds=1, off_rounds=0, total=6)
        counts = [len(workload.submissions(r)) for r in range(3)]
        assert counts == [4, 2, 0]

    def test_validation(self):
        from repro.workloads.generators import BurstWorkload

        with pytest.raises(ConfigError):
            BurstWorkload(PIDS, on_rounds=0, off_rounds=1)


class TestPoisson:
    def test_zero_rate(self):
        from repro.workloads.generators import PoissonWorkload

        workload = PoissonWorkload(PIDS, 0.0)
        assert all(workload.submissions(r) == [] for r in range(20))

    def test_mean_rate(self):
        from repro.workloads.generators import PoissonWorkload

        workload = PoissonWorkload(PIDS, 0.5, rng=random.Random(2))
        total = sum(len(workload.submissions(r)) for r in range(500))
        # 4 pids * 0.5 per round * 500 rounds = 1000 expected.
        assert 850 < total < 1150

    def test_stop_after(self):
        from repro.workloads.generators import PoissonWorkload

        workload = PoissonWorkload(PIDS, 2.0, stop_after_round=0)
        workload.submissions(0)
        assert workload.submissions(1) == []

    def test_negative_rate_rejected(self):
        from repro.workloads.generators import PoissonWorkload

        with pytest.raises(ConfigError):
            PoissonWorkload(PIDS, -1)


class TestZipfTopics:
    def test_popularity_is_rank_ordered(self):
        from repro.workloads.generators import ZipfTopics

        zipf = ZipfTopics(50, s=1.2, rng=random.Random(4))
        counts = {}
        for _ in range(20000):
            topic = zipf.draw()
            counts[topic] = counts.get(topic, 0) + 1
        names = zipf.names
        assert counts[names[0]] > counts[names[4]] > counts.get(names[30], 0)

    def test_deterministic_under_seed(self):
        from repro.workloads.generators import ZipfTopics

        a = ZipfTopics(20, rng=random.Random(9))
        b = ZipfTopics(20, rng=random.Random(9))
        assert [a.draw() for _ in range(50)] == [b.draw() for _ in range(50)]

    def test_draw_set_distinct(self):
        from repro.workloads.generators import ZipfTopics

        zipf = ZipfTopics(10, rng=random.Random(1))
        for _ in range(20):
            picked = zipf.draw_set(4)
            assert len(picked) == len(set(picked)) == 4

    def test_validation(self):
        from repro.workloads.generators import ZipfTopics

        with pytest.raises(ConfigError):
            ZipfTopics(0)
        with pytest.raises(ConfigError):
            ZipfTopics(5, s=0.0)
        with pytest.raises(ConfigError):
            ZipfTopics(5, rng=random.Random(0)).draw_set(6)
