"""Tests for capture-replay workloads."""

from repro.core.config import UrcgcConfig
from repro.harness.cluster import SimCluster
from repro.net.capture import PacketCapture
from repro.types import ProcessId
from repro.workloads.generators import FixedBudgetWorkload
from repro.workloads.replay import ReplayWorkload


def record_run(n=3, total=9):
    cluster = SimCluster(
        UrcgcConfig(n=n),
        workload=FixedBudgetWorkload([ProcessId(i) for i in range(n)], total=total),
        max_rounds=40,
    )
    capture = PacketCapture()
    capture.attach_to(cluster.network, cluster.kernel)
    cluster.run_until_quiescent(drain_subruns=2)
    return cluster, capture


def test_replay_reproduces_the_original_traffic():
    original, capture = record_run()
    replay = ReplayWorkload(capture)
    assert replay.total == 9
    cluster = SimCluster(UrcgcConfig(n=3), workload=replay, max_rounds=60)
    done = cluster.run_until_quiescent(drain_subruns=2)
    assert done is not None
    # Same messages, same origins, same payloads at every member.
    original_payloads = sorted(
        (m.mid.origin, m.payload) for m in original.services[0].delivered
    )
    replayed_payloads = sorted(
        (m.mid.origin, m.payload) for m in cluster.services[0].delivered
    )
    assert replayed_payloads == original_payloads


def test_replay_against_a_different_configuration():
    """Replay the same workload against a lossy network: it still
    completes (history recovery) with the identical payload set."""
    import random

    from repro.workloads.scenarios import omission

    _, capture = record_run(n=3, total=9)
    replay = ReplayWorkload(capture)
    cluster = SimCluster(
        UrcgcConfig(n=3),
        workload=replay,
        faults=omission([ProcessId(i) for i in range(3)], 25, rng=random.Random(2)),
        max_rounds=300,
        seed=2,
    )
    done = cluster.run_until_quiescent(drain_subruns=4)
    assert done is not None
    assert all(m.processed_count == 9 for m in cluster.members)


def test_retransmissions_replayed_once():
    _, capture = record_run(n=3, total=6)
    # Duplicate every data record to simulate captured retransmissions.
    capture.records.extend(
        [r for r in capture.records if r.kind == "data"]
    )
    replay = ReplayWorkload(capture)
    assert replay.total == 6
