"""Tests for the JSONL, Prometheus, and bench exporters."""

import io
import json

import pytest

from repro.obs import (
    Recorder,
    Registry,
    bench_payload,
    events_as_dicts,
    prometheus_text,
    read_jsonl,
    registry_records,
    write_bench_json,
    write_jsonl,
)


def _recorder() -> Recorder:
    ticks = iter(float(i) for i in range(100))
    recorder = Recorder(clock=lambda: next(ticks), clock_kind="sim")
    recorder.subrun(0)
    recorder.generated("p0:1", node=0)
    recorder.processed("p0:1", node=1)
    recorder.registry.count("net.sent", 3, kind="data")
    recorder.registry.observe("rtt", 0.25, node=1)
    recorder.registry.set_gauge("depth", 2.0)
    return recorder


class TestJsonl:
    def test_round_trip(self, tmp_path):
        recorder = _recorder()
        path = tmp_path / "trace.jsonl"
        write_jsonl(str(path), recorder, runner="test", n=2)
        records = read_jsonl(str(path))
        meta = records[0]
        assert meta["ev"] == "meta"
        assert meta["clock"] == "sim"
        assert meta["runner"] == "test"
        assert meta["version"] == 1
        kinds = [r["ev"] for r in records[1:]]
        assert kinds[:3] == ["subrun", "generated", "processed"]
        assert all(kind == "metric" for kind in kinds[3:])
        assert len([k for k in kinds if k == "metric"]) == 3

    def test_every_line_is_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(str(path), _recorder())
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_read_reports_bad_line(self):
        stream = io.StringIO('{"ev": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            read_jsonl(stream)

    def test_none_extras_dropped(self):
        recorder = Recorder(clock=lambda: 0.0)
        recorder.decision(4, node=0)  # subrun=None stays out of the record
        (record,) = events_as_dicts(recorder.events)
        assert "subrun" not in record
        assert record["number"] == 4

    def test_registry_records_split_value_vs_summary(self):
        records = {r.name: r for r in registry_records(_recorder().registry)}
        assert records["net.sent"].value == 3.0
        assert records["net.sent"].summary is None
        assert records["rtt"].value is None
        assert records["rtt"].summary["count"] == 1
        assert records["depth"].value == 2.0


class TestPrometheus:
    def test_exposition_shape(self):
        text = prometheus_text(_recorder().registry)
        assert '# TYPE repro_net_sent counter' in text
        assert 'repro_net_sent{kind="data"} 3' in text
        assert '# TYPE repro_rtt summary' in text
        assert 'repro_rtt{node="1",quantile="0.5"} 0.25' in text
        assert 'repro_rtt_count{node="1"} 1' in text
        assert '# TYPE repro_depth gauge' in text

    def test_empty_registry(self):
        assert prometheus_text(Registry()) == ""

    def test_series_render_as_summary(self):
        registry = Registry()
        for t, v in enumerate([1.0, 2.0, 3.0]):
            registry.sample("hist", float(t), v)
        text = prometheus_text(registry)
        assert 'repro_hist{quantile="0.5"} 2' in text
        assert "repro_hist_count 3" in text


class TestBenchExport:
    ROWS = [
        {"name": "test_a", "stats": {"mean": 0.5}, "extra_info": {"n": 8}},
        {"name": "test_b", "stats": {"mean": 1.5}, "extra_info": {}, "group": "g"},
    ]

    def test_payload_schema(self):
        payload = bench_payload("test_module", self.ROWS)
        assert payload["bench"] == "test_module"
        assert payload["schema"] == 1
        assert payload["results"]["test_a"]["stats"]["mean"] == 0.5
        assert payload["results"]["test_b"]["group"] == "g"

    def test_write(self, tmp_path):
        path = tmp_path / "BENCH_test_module.json"
        write_bench_json(str(path), "test_module", self.ROWS)
        payload = json.loads(path.read_text())
        assert set(payload["results"]) == {"test_a", "test_b"}
