"""Unit tests for the labelled metric registry and its primitives."""

import math

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricSet, Registry, Series


class TestLabels:
    def test_same_name_different_labels_are_distinct(self):
        registry = Registry()
        registry.count("net.sent", kind="data")
        registry.count("net.sent", kind="ctrl-request")
        registry.count("net.sent", kind="data")
        assert registry.counter("net.sent", kind="data").value == 2
        assert registry.counter("net.sent", kind="ctrl-request").value == 1

    def test_label_order_is_canonical(self):
        registry = Registry()
        registry.count("x", node=1, kind="data")
        registry.count("x", kind="data", node=1)
        assert registry.counter("x", node=1, kind="data").value == 2

    def test_label_values_stringified(self):
        registry = Registry()
        registry.count("x", node=3)
        assert registry.counter("x", node="3").value == 1


class TestFamilies:
    def test_gauge(self):
        registry = Registry()
        registry.set_gauge("depth", 4.0, node=0)
        registry.gauge("depth", node=0).add(1.0)
        assert registry.gauge("depth", node=0).value == 5.0
        assert float(Gauge()) == 0.0

    def test_histogram_exact_percentiles(self):
        registry = Registry()
        for value in range(101):
            registry.observe("rtt", float(value))
        histogram = registry.histogram("rtt")
        assert histogram.count == 101
        assert histogram.percentile(0.5) == 50.0
        assert histogram.percentile(0.95) == 95.0
        assert histogram.percentile(0.99) == 99.0
        assert histogram.sum == sum(range(101))

    def test_histogram_empty_percentile_is_nan(self):
        assert math.isnan(Histogram().percentile(0.5))

    def test_histogram_out_of_order_observations(self):
        histogram = Histogram()
        for value in (5.0, 1.0, 3.0):
            histogram.observe(value)
        assert histogram.percentile(0.5) == 3.0

    def test_series_time_indexed(self):
        registry = Registry()
        registry.sample("hist", 0.0, 1.0, node=2)
        registry.sample("hist", 1.0, 4.0, node=2)
        assert registry.series_for("hist", node=2).at_or_before(0.5) == 1.0

    def test_walk_is_sorted_and_complete(self):
        registry = Registry()
        registry.count("b")
        registry.count("a", kind="x")
        registry.set_gauge("g", 1.0)
        registry.observe("h", 2.0)
        registry.sample("s", 0.0, 3.0)
        rows = list(registry.walk())
        families = [row[0] for row in rows]
        assert families == ["counter", "counter", "gauge", "histogram", "series"]
        counter_names = [row[1] for row in rows if row[0] == "counter"]
        assert counter_names == ["a", "b"]


class TestMetricSetCompatibility:
    def test_metricset_is_registry(self):
        assert MetricSet is Registry

    def test_unlabelled_views(self):
        registry = Registry()
        registry.count("plain")
        registry.count("labelled", kind="data")
        registry.sample("s", 0.0, 1.0)
        assert set(registry.counters) == {"plain"}
        assert set(registry.series) == {"s"}

    def test_counter_monotonic(self):
        with pytest.raises(ValueError):
            Counter().add(-1)

    def test_series_max_and_len(self):
        series = Series()
        assert series.max() == 0.0
        series.record(0.0, 2.0)
        series.record(1.0, 7.0)
        assert series.max() == 7.0
        assert len(series) == 2
