"""Tests for the span recorder and the disabled (null) path."""

import pytest

from repro.core.mid import Mid
from repro.obs import NULL_RECORDER, NullRecorder, Recorder, mid_label
from repro.types import ProcessId, SeqNo


def _mid(origin: int, seq: int) -> Mid:
    return Mid(ProcessId(origin), SeqNo(seq))


class TestRecorder:
    def test_clock_stamps_events(self):
        ticks = iter([1.5, 2.5])
        recorder = Recorder(clock=lambda: next(ticks), clock_kind="sim")
        recorder.subrun(0)
        recorder.subrun(1)
        assert [event.time for event in recorder.events] == [1.5, 2.5]

    def test_explicit_time_wins(self):
        recorder = Recorder(clock=lambda: 99.0, clock_kind="sim")
        recorder.processed(_mid(0, 1), node=0, time=3.0)
        assert recorder.events[0].time == 3.0

    def test_span_taxonomy(self):
        recorder = Recorder(clock=lambda: 0.0, clock_kind="sim")
        recorder.subrun(2)
        recorder.generated(_mid(1, 1), (_mid(0, 1),), node=1)
        recorder.request(2, node=1)
        recorder.decision(2, node=0)
        recorder.decision(2, node=1, applied=True)
        recorder.processed(_mid(1, 1), node=0)
        recorder.discarded(_mid(2, 1), node=0, count=3)
        kinds = [event.kind for event in recorder.events]
        assert kinds == [
            "subrun",
            "generated",
            "request",
            "decision",
            "decision",
            "processed",
            "discarded",
        ]
        generated = recorder.events[1]
        assert generated.mid == "p1:1"
        assert generated.extra["deps"] == ["p0:1"]
        assert recorder.events[3].extra["applied"] is False
        assert recorder.events[4].extra["applied"] is True
        assert recorder.events[6].extra["count"] == 3

    def test_clear(self):
        recorder = Recorder(clock=lambda: 0.0)
        recorder.subrun(0)
        recorder.clear()
        assert recorder.events == []

    def test_clock_kind_validated(self):
        with pytest.raises(ValueError):
            Recorder(clock_kind="lamport")

    def test_shares_registry(self):
        from repro.obs import Registry

        registry = Registry()
        recorder = Recorder(registry=registry)
        recorder.registry.count("x")
        assert registry.counter("x").value == 1


class TestMidLabel:
    def test_mid(self):
        assert mid_label(_mid(3, 7)) == "p3:7"

    def test_fallback_str(self):
        assert mid_label("already-a-label") == "already-a-label"


class TestNullRecorder:
    def test_disabled_and_shared(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullRecorder)

    def test_emit_is_noop(self):
        NULL_RECORDER.subrun(0)
        NULL_RECORDER.generated(_mid(0, 1), node=0)
        assert NULL_RECORDER.events == []

    def test_registry_swallows_writes(self):
        NULL_RECORDER.registry.count("x", kind="data")
        NULL_RECORDER.registry.observe("h", 1.0)
        NULL_RECORDER.registry.set_gauge("g", 1.0)
        NULL_RECORDER.registry.sample("s", 0.0, 1.0)
        assert list(NULL_RECORDER.registry.walk()) == []
