"""Tests for timeline reconstruction and the report CLI."""

import pytest

from repro.harness.runner import main as repro_main
from repro.obs import message_timeline, render_trace_report

TRACE = [
    {"ev": "meta", "version": 1, "clock": "sim", "runner": "sim", "n": 3},
    {"ev": "subrun", "t": 0.0, "k": 0},
    {"ev": "generated", "t": 0.0, "node": 0, "mid": "p0:1", "deps": []},
    {"ev": "request", "t": 0.0, "node": 0, "subrun": 0},
    {"ev": "generated", "t": 0.5, "node": 1, "mid": "p1:1", "deps": ["p0:1"]},
    {"ev": "decision", "t": 0.5, "node": 2, "number": 0, "applied": False},
    {"ev": "processed", "t": 0.5, "node": 0, "mid": "p0:1"},
    {"ev": "processed", "t": 0.5, "node": 1, "mid": "p0:1"},
    {"ev": "processed", "t": 1.0, "node": 2, "mid": "p0:1"},
    {
        "ev": "metric", "name": "net.sent", "family": "counter",
        "labels": {"kind": "data"}, "value": 2.0,
    },
    {
        "ev": "metric", "name": "rtt", "family": "histogram", "labels": {},
        "summary": {"count": 2, "mean": 0.5, "p50": 0.5, "p95": 0.5,
                    "p99": 0.5, "maximum": 0.5},
    },
]


class TestMessageTimeline:
    def test_default_is_first_generated(self):
        timeline = message_timeline(TRACE)
        assert timeline["mid"] == "p0:1"
        assert timeline["origin"] == 0

    def test_full_pipeline_stages(self):
        timeline = message_timeline(TRACE, "p0:1")
        stages = [stage for stage, _, _ in timeline["stages"]]
        assert stages == [
            "generated",
            "requested",
            "decided",
            "processed@p0",
            "processed@p1",
            "processed@p2",
        ]
        assert timeline["group_processed"] == 1.0

    def test_deps_preserved(self):
        timeline = message_timeline(TRACE, "p1:1")
        assert timeline["deps"] == ["p0:1"]
        # p1:1 was never processed anywhere in this trace
        assert timeline["group_processed"] is None

    def test_unknown_mid_raises(self):
        with pytest.raises(KeyError):
            message_timeline(TRACE, "p9:9")

    def test_empty_trace_raises(self):
        with pytest.raises(KeyError):
            message_timeline([{"ev": "meta"}])


class TestRenderTraceReport:
    def test_sections_present(self):
        text = render_trace_report(TRACE)
        assert "trace: " in text
        assert "Span events" in text
        assert "Counters and gauges" in text
        assert "Histograms and series" in text
        assert "Timeline of p0:1" in text

    def test_mid_selection(self):
        text = render_trace_report(TRACE, mid="p1:1")
        assert "Timeline of p1:1" in text
        assert "declared deps: p0:1" in text

    def test_no_generated_messages_degrades_gracefully(self):
        text = render_trace_report([{"ev": "meta"}, {"ev": "subrun", "t": 0.0}])
        assert "no generated message" in text


class TestReportCli:
    def test_report_renders_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in TRACE) + "\n")
        assert repro_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Timeline of p0:1" in out

    def test_report_missing_file_errors(self, tmp_path, capsys):
        assert repro_main(["report", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_report_requires_trace_or_demo(self, capsys):
        assert repro_main(["report"]) == 2
        assert "TRACE path" in capsys.readouterr().err

    def test_report_demo_writes_trace(self, tmp_path, capsys):
        path = tmp_path / "demo.jsonl"
        assert repro_main(["report", "--demo", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Timeline of" in out
        assert path.exists()
        from repro.obs import read_jsonl

        records = read_jsonl(str(path))
        assert records[0]["ev"] == "meta"
        assert records[0]["runner"] == "sim"

    def test_report_demo_without_path(self, capsys):
        assert repro_main(["report", "--demo"]) == 0
        assert "Span events" in capsys.readouterr().out
