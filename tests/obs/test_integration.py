"""End-to-end observability: both drivers produce reconstructible traces.

The acceptance check of the obs subsystem: a simulated run and a live
asyncio run each export a JSONL trace from which a message's full
generated → requested → decided → processed timeline can be rebuilt,
and the disabled path records nothing.
"""

import asyncio

import pytest

from repro.core.config import UrcgcConfig
from repro.harness.cluster import SimCluster
from repro.obs import message_timeline, read_jsonl
from repro.runtime.chaos import ChaosFabric
from repro.runtime.lan import AsyncLan
from repro.runtime.node import AsyncGroup
from repro.types import ProcessId
from repro.workloads.generators import FixedBudgetWorkload


def _sim_cluster(observability: bool) -> SimCluster:
    config = UrcgcConfig(n=4, observability=observability)
    pids = [ProcessId(0), ProcessId(1)]
    return SimCluster(config, workload=FixedBudgetWorkload(pids, 6))


class TestSimulatedTrace:
    def test_trace_reconstructs_full_timeline(self, tmp_path):
        cluster = _sim_cluster(observability=True)
        cluster.run_until_quiescent(drain_subruns=2)
        path = tmp_path / "sim.jsonl"
        cluster.write_trace(str(path), experiment="integration")
        records = read_jsonl(str(path))

        meta = records[0]
        assert meta["runner"] == "sim"
        assert meta["clock"] == "sim"
        assert meta["experiment"] == "integration"

        timeline = message_timeline(records)
        stages = [stage for stage, _, _ in timeline["stages"]]
        assert stages[:3] == ["generated", "requested", "decided"]
        processed = [s for s in stages if s.startswith("processed@")]
        assert len(processed) == 4  # every node processed it
        assert timeline["group_processed"] is not None

        # Stage times are monotone along the pipeline.
        times = [time for _, time, _ in timeline["stages"]]
        assert times[0] <= times[1] <= times[2]

    def test_net_counters_exported_with_kind_labels(self, tmp_path):
        cluster = _sim_cluster(observability=True)
        cluster.run_until_quiescent(drain_subruns=2)
        path = tmp_path / "sim.jsonl"
        cluster.write_trace(str(path))
        metric_records = [r for r in read_jsonl(str(path)) if r["ev"] == "metric"]
        sent = {
            r["labels"]["kind"]: r["value"]
            for r in metric_records
            if r["name"] == "net.sent"
        }
        assert sent["data"] == 6.0
        assert sent["ctrl-request"] > 0
        # history occupancy series ride the same registry
        assert any(r["name"] == "history.max" for r in metric_records)

    def test_disabled_records_nothing(self):
        cluster = _sim_cluster(observability=False)
        cluster.run_until_quiescent(drain_subruns=2)
        assert cluster.recorder.enabled is False
        assert cluster.recorder.events == []
        with pytest.raises(RuntimeError):
            cluster.write_trace("never-written.jsonl")

    def test_same_run_with_and_without_observability(self):
        observed = _sim_cluster(observability=True)
        plain = _sim_cluster(observability=False)
        t_observed = observed.run_until_quiescent(drain_subruns=2)
        t_plain = plain.run_until_quiescent(drain_subruns=2)
        # Observation must not perturb the simulation.
        assert t_observed == t_plain
        assert [m.last_processed_vector() for m in observed.members] == [
            m.last_processed_vector() for m in plain.members
        ]


class TestLiveTrace:
    def test_live_group_trace(self, tmp_path):
        async def run() -> list[dict]:
            config = UrcgcConfig(n=3, observability=True)
            group = AsyncGroup(config, round_interval=0.005)
            group.start()
            await group.run_workload(
                [(ProcessId(0), b"hello"), (ProcessId(1), b"world")],
                timeout=10.0,
            )
            await group.stop()
            path = tmp_path / "live.jsonl"
            group.write_trace(str(path))
            return read_jsonl(str(path))

        records = asyncio.run(run())
        meta = records[0]
        assert meta["runner"] == "live"
        assert meta["clock"] == "wall"

        timeline = message_timeline(records, "p0:1")
        stages = [stage for stage, _, _ in timeline["stages"]]
        assert stages[0] == "generated"
        assert "decided" in stages
        assert sum(1 for s in stages if s.startswith("processed@")) == 3

    def test_chaos_fabric_counters_in_registry(self, tmp_path):
        async def run() -> list[dict]:
            config = UrcgcConfig(n=3, observability=True)
            fabric = ChaosFabric(AsyncLan(), duplication=0.2, seed=11)
            group = AsyncGroup(config, lan=fabric, round_interval=0.005)
            group.start()
            await group.run_workload([(ProcessId(0), b"x")], timeout=10.0)
            await group.stop()
            path = tmp_path / "chaos.jsonl"
            group.write_trace(str(path))
            return read_jsonl(str(path))

        records = asyncio.run(run())
        names = {r["name"] for r in records if r["ev"] == "metric"}
        assert "chaos.sent" in names
        assert "chaos.delivered" in names

    def test_live_disabled_is_null(self):
        async def run() -> AsyncGroup:
            group = AsyncGroup(UrcgcConfig(n=2), round_interval=0.005)
            group.start()
            await group.run_workload([(ProcessId(0), b"x")], timeout=10.0)
            await group.stop()
            return group

        group = asyncio.run(run())
        assert group.recorder.enabled is False
        assert group.recorder.events == []
        with pytest.raises(RuntimeError):
            group.write_trace("never-written.jsonl")
