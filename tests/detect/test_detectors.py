"""Unit tests for the pluggable failure detectors (PROTOCOL §13)."""

import pytest

from repro.core.config import (
    DETECTOR_KINDS,
    FailureDetectorConfig,
    LeaveRule,
    UrcgcConfig,
)
from repro.detect import (
    FailureDetector,
    KConsecutiveDetector,
    OracleDetector,
    make_detector,
)
from repro.detect.heartbeat import HeartbeatDetector
from repro.errors import ConfigError
from repro.types import ProcessId, SubrunNo

P0 = ProcessId(0)


def _config(**kwargs) -> UrcgcConfig:
    kwargs.setdefault("n", 4)
    kwargs.setdefault("K", 2)
    return UrcgcConfig(**kwargs)


# ----------------------------------------------------------------------
# configuration + factory
# ----------------------------------------------------------------------


def test_make_detector_dispatches_every_kind():
    assert isinstance(make_detector(P0, _config()), KConsecutiveDetector)
    by_kind = {
        kind: make_detector(
            P0, _config(failure_detector=FailureDetectorConfig(kind=kind))
        )
        for kind in DETECTOR_KINDS
    }
    assert type(by_kind["k-consecutive"]) is KConsecutiveDetector
    assert type(by_kind["heartbeat"]) is HeartbeatDetector
    assert type(by_kind["oracle"]) is OracleDetector
    for kind, detector in by_kind.items():
        assert detector.name == kind


def test_failure_detector_config_validates():
    with pytest.raises(ConfigError):
        FailureDetectorConfig(kind="psychic")
    with pytest.raises(ConfigError):
        FailureDetectorConfig(heartbeat_every=0)
    with pytest.raises(ConfigError):
        FailureDetectorConfig(timeout_floor=0.0)
    with pytest.raises(ConfigError):
        FailureDetectorConfig(backoff=0.5)
    with pytest.raises(ConfigError):
        FailureDetectorConfig(timeout_floor=100.0, max_timeout=50.0)


def test_base_detector_is_inert():
    detector = FailureDetector()
    assert detector.account_missed_decision(SubrunNo(3), excused=False) is None
    assert detector.observe_chain_gap(99) is None
    detector.decision_adopted(SubrunNo(1))
    detector.advance(7)
    detector.observe_alive(ProcessId(1))
    detector.observe_heartbeat(ProcessId(1), 0)
    detector.reset()
    assert detector.heartbeat_due(SubrunNo(0)) is False
    assert detector.suspects() == frozenset()
    assert detector.poll_events() == []


# ----------------------------------------------------------------------
# K-consecutive rule
# ----------------------------------------------------------------------


def test_strict_rule_counts_to_k_and_excuses():
    detector = KConsecutiveDetector(_config(K=3, leave_rule=LeaveRule.STRICT))
    assert detector.account_missed_decision(SubrunNo(0), excused=False) is None
    assert detector.account_missed_decision(SubrunNo(1), excused=True) is None
    assert detector.strict_misses == 1  # excusal does not count
    assert detector.account_missed_decision(SubrunNo(2), excused=False) is None
    reason = detector.account_missed_decision(SubrunNo(3), excused=False)
    assert reason is not None and "3 consecutive" in reason


def test_strict_rule_frontier_skips_already_seen_subruns():
    detector = KConsecutiveDetector(_config(K=2, leave_rule=LeaveRule.STRICT))
    detector.decision_adopted(SubrunNo(5))
    assert detector.account_missed_decision(SubrunNo(4), excused=False) is None
    assert detector.strict_misses == 0
    assert detector.account_missed_decision(SubrunNo(6), excused=False) is None
    assert detector.strict_misses == 1
    detector.decision_adopted(SubrunNo(7))
    assert detector.strict_misses == 0  # adoption resets the count


def test_confirmed_rule_uses_chain_gap_only():
    detector = KConsecutiveDetector(_config(K=2, leave_rule=LeaveRule.CONFIRMED))
    assert detector.account_missed_decision(SubrunNo(0), excused=False) is None
    assert detector.strict_misses == 0
    assert detector.observe_chain_gap(1) is None
    assert detector.observe_chain_gap(2) is not None


def test_rejoin_reset_clears_misses_not_frontier():
    detector = KConsecutiveDetector(_config(K=3, leave_rule=LeaveRule.STRICT))
    detector.account_missed_decision(SubrunNo(0), excused=False)
    detector.decision_adopted(SubrunNo(4), reset_misses=False)
    assert detector.strict_misses == 1
    detector.reset()
    assert detector.strict_misses == 0
    assert detector.decision_seen_for == SubrunNo(4)


# ----------------------------------------------------------------------
# oracle
# ----------------------------------------------------------------------


def test_oracle_reports_transitions_as_events():
    detector = OracleDetector(
        _config(failure_detector=FailureDetectorConfig(kind="oracle"))
    )
    assert detector.tracks_suspicion
    detector.set_crashed([ProcessId(1), ProcessId(2)])
    assert detector.suspects() == frozenset({ProcessId(1), ProcessId(2)})
    events = detector.poll_events()
    assert [(e.pid, e.suspected) for e in events] == [
        (ProcessId(1), True),
        (ProcessId(2), True),
    ]
    detector.set_crashed([ProcessId(2)])
    events = detector.poll_events()
    assert [(e.pid, e.suspected) for e in events] == [(ProcessId(1), False)]
    assert detector.poll_events() == []  # drained
    assert detector.suspicions_total == 2


# ----------------------------------------------------------------------
# heartbeat
# ----------------------------------------------------------------------


def _heartbeat(**overrides) -> HeartbeatDetector:
    spec = FailureDetectorConfig(kind="heartbeat", **overrides)
    return HeartbeatDetector(
        P0, _config(failure_detector=spec, leave_rule=LeaveRule.STRICT)
    )


def test_heartbeat_first_tick_grants_grace():
    detector = _heartbeat(timeout_floor=4.0)
    detector.advance(0)
    assert detector.suspects() == frozenset()
    detector.advance(4)  # silence == floor: not yet over the bound
    assert detector.suspects() == frozenset()
    detector.advance(5)
    assert detector.suspects() == frozenset({ProcessId(1), ProcessId(2), ProcessId(3)})


def test_heartbeat_false_suspicion_backs_off():
    detector = _heartbeat(timeout_floor=4.0, backoff=2.0)
    peer = ProcessId(1)
    detector.advance(0)
    detector.advance(5)
    assert peer in detector.suspects()
    detector.observe_alive(peer)  # it was alive all along
    assert peer not in detector.suspects()
    assert detector.false_suspicions_total >= 1
    assert detector._scale[peer] == 2.0
    events = detector.poll_events()
    assert any(e.pid == peer and e.suspected for e in events)
    assert any(e.pid == peer and not e.suspected for e in events)


def test_heartbeat_ignores_self_and_out_of_range_peers():
    detector = _heartbeat()
    detector.advance(0)
    detector.observe_alive(P0)
    detector.observe_alive(ProcessId(99))
    assert P0 not in detector._last_seen
    assert ProcessId(99) not in detector._last_seen


def test_heartbeat_due_follows_cadence():
    detector = _heartbeat(heartbeat_every=3)
    assert detector.wants_heartbeats
    assert detector.heartbeat_due(SubrunNo(0))
    assert not detector.heartbeat_due(SubrunNo(1))
    assert detector.heartbeat_due(SubrunNo(3))


def test_heartbeat_inherits_leave_rule():
    detector = _heartbeat()
    assert isinstance(detector, KConsecutiveDetector)
    assert detector.account_missed_decision(SubrunNo(0), excused=False) is None
    assert detector.strict_misses == 1
