"""Coverage for the shared scalar helpers and the exception hierarchy."""

import pytest

from repro import errors
from repro.types import (
    ROUNDS_PER_SUBRUN,
    RTD_PER_SUBRUN,
    round_of_subrun,
    subrun_of_round,
    time_of_round,
)


class TestTimeHelpers:
    def test_round_of_subrun(self):
        assert round_of_subrun(0) == 0
        assert round_of_subrun(0, second=True) == 1
        assert round_of_subrun(3) == 6
        assert round_of_subrun(3, second=True) == 7

    def test_subrun_of_round(self):
        assert [subrun_of_round(r) for r in range(6)] == [0, 0, 1, 1, 2, 2]

    def test_time_of_round(self):
        assert time_of_round(0) == 0.0
        assert time_of_round(1) == 0.5
        assert time_of_round(4) == 2.0

    def test_round_trip(self):
        for subrun in range(10):
            assert subrun_of_round(round_of_subrun(subrun)) == subrun
            assert subrun_of_round(round_of_subrun(subrun, second=True)) == subrun

    def test_constants(self):
        assert RTD_PER_SUBRUN == 1.0
        assert ROUNDS_PER_SUBRUN == 2


class TestErrorHierarchy:
    def test_everything_is_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            if name == "ReproError":
                continue
            assert issubclass(cls, errors.ReproError), name

    def test_config_error_is_value_error(self):
        assert issubclass(errors.ConfigError, ValueError)

    def test_unknown_address_is_key_error(self):
        assert issubclass(errors.UnknownAddressError, KeyError)

    def test_wire_format_is_value_error(self):
        assert issubclass(errors.WireFormatError, ValueError)

    def test_protocol_errors_grouped(self):
        for name in (
            "NotInGroupError",
            "DuplicateMidError",
            "UnknownMidError",
            "CausalityViolationError",
            "HistoryOverflowError",
            "FlowControlBlocked",
            "MemberLeftError",
        ):
            assert issubclass(getattr(errors, name), errors.ProtocolError)

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.MemberLeftError("gone")
