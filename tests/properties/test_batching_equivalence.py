"""The throughput layer is observationally transparent.

Three properties pin down ISSUE 5's correctness claims:

* **Run equivalence** — the same scenario driven through the full
  simulated stack with wire batching on and off processes the *same*
  message sequence at every member, and both runs satisfy Definition
  3.2 (Uniform Atomicity + Uniform Ordering) plus the site-local
  causal-order invariant.  Only deterministic faults (scheduled
  crashes) are used: a probabilistic omission model draws from the
  fault rng per datagram, and batching changes the datagram count, so
  the two runs would diverge for reasons unrelated to batching.
* **Pack/expand round-trip** — any canonical burst of user messages
  survives ``Batcher.pack`` → wire → ``expand_message`` byte-for-byte,
  in order, however the batcher decides to group it.
* **Decision-fold refactor** — the single-pass ``compute_decision``
  fold equals a straightforward reference implementation of the
  original three-pass fold on arbitrary inputs.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.checkers import (
    check_local_causal_order,
    check_uniform_atomicity,
    check_uniform_ordering,
)
from repro.core.batcher import Batcher, expand_message
from repro.core.config import BatchingConfig, UrcgcConfig
from repro.core.decision import (
    Decision,
    RequestInfo,
    _merge_min_waiting,
    compute_decision,
)
from repro.core.effects import Send
from repro.core.message import KIND_DATA, UserMessage
from repro.core.mid import NO_MESSAGE, Mid
from repro.harness.cluster import SimCluster
from repro.net.addressing import BROADCAST_GROUP
from repro.net.faults import CrashSchedule, FaultPlan
from repro.net.wire import decode_message, encode_message
from repro.types import ProcessId, SeqNo, SubrunNo
from repro.workloads.generators import BernoulliWorkload

# ---------------------------------------------------------------------------
# Property 1: batched == unbatched, end to end.
# ---------------------------------------------------------------------------


@st.composite
def scenarios(draw):
    n = draw(st.integers(3, 6))
    K = draw(st.integers(1, 2))
    seed = draw(st.integers(0, 10_000))
    load = draw(st.floats(0.2, 1.0))
    burst = draw(st.integers(1, 4))
    crash_count = draw(st.integers(0, max(0, n - 3)))
    crash_times = [draw(st.floats(1.0, 8.0)) for _ in range(crash_count)]
    return n, K, seed, load, burst, crash_times


def _run(scenario, batching: BatchingConfig | None):
    n, K, seed, load, burst, crash_times = scenario
    pids = [ProcessId(i) for i in range(n)]
    schedule = CrashSchedule()
    for i, time in enumerate(crash_times):
        schedule.crash(ProcessId(n - 1 - i), time)
    cluster = SimCluster(
        UrcgcConfig(n=n, K=K, R=2 * K + 4, generate_burst=burst, batching=batching),
        workload=BernoulliWorkload(
            pids, load, rng=random.Random(seed), stop_after_round=10
        ),
        faults=FaultPlan(crashes=schedule, rng=random.Random(seed)),
        max_rounds=300,
        seed=seed,
        trace=False,
    )
    quiesced = cluster.run_until_quiescent(drain_subruns=2 * K + 2)
    return cluster, quiesced


@given(scenarios())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_batched_run_processes_identically_to_unbatched(scenario):
    plain, plain_quiesced = _run(scenario, None)
    batched, batched_quiesced = _run(scenario, BatchingConfig())

    # Same fault schedule, same kernel seed: the runs must agree on who
    # survived before their logs are comparable at all.
    assert plain.active_pids() == batched.active_pids()
    assert (plain_quiesced is None) == (batched_quiesced is None)

    n = scenario[0]
    for pid in range(n):
        plain_log = [
            (m.mid, m.deps, m.payload) for m in plain.services[pid].delivered
        ]
        batched_log = [
            (m.mid, m.deps, m.payload) for m in batched.services[pid].delivered
        ]
        assert plain_log == batched_log, f"p{pid} diverged"

    # Both runs independently satisfy Definition 3.2.
    for cluster, quiesced in ((plain, plain_quiesced), (batched, batched_quiesced)):
        active = set(cluster.active_pids())
        streams = {pid: cluster.services[pid].delivered for pid in active}
        for pid, stream in streams.items():
            check_local_causal_order(pid, stream).raise_if_failed()
        if active:
            check_uniform_ordering(
                streams, converged=quiesced is not None
            ).raise_if_failed()
        if quiesced is not None and active:
            log = cluster.delivery_log
            check_uniform_atomicity(
                log.generated_at,
                {mid: set(by) for mid, by in log.processed_at.items()},
                active,
                discarded=log.discarded,
            ).raise_if_failed()


# ---------------------------------------------------------------------------
# Property 2: pack -> wire -> expand is the identity on the PDU stream.
# ---------------------------------------------------------------------------


@st.composite
def canonical_bursts(draw):
    """A burst of user messages in the engine's canonical dep shape:
    ``(predecessor, *external)`` with the external set frozen for the
    whole burst (what ``_maybe_generate`` emits within one round)."""
    origin = ProcessId(draw(st.integers(0, 5)))
    first_seq = draw(st.integers(1, 200))
    count = draw(st.integers(1, 12))
    others = [p for p in range(6) if p != origin]
    ext = tuple(
        Mid(ProcessId(p), SeqNo(draw(st.integers(1, 50))))
        for p in draw(st.lists(st.sampled_from(others), max_size=3, unique=True))
    )
    messages = []
    for i in range(count):
        seq = SeqNo(first_seq + i)
        predecessor = (Mid(origin, SeqNo(seq - 1)),) if seq > 1 else ()
        with_ext = draw(st.booleans())
        payload = draw(st.binary(max_size=32))
        messages.append(
            UserMessage(
                Mid(origin, seq),
                predecessor + (ext if with_ext else ()),
                payload,
            )
        )
    max_batch = draw(st.integers(2, 16))
    return messages, max_batch


@given(canonical_bursts())
@settings(max_examples=200, deadline=None)
def test_pack_then_expand_is_identity(case):
    messages, max_batch = case
    batcher = Batcher(BatchingConfig(max_batch=max_batch))
    sends = [Send(BROADCAST_GROUP, m, KIND_DATA) for m in messages]
    packed = batcher.pack(sends)
    expanded = [
        sub
        for send in packed
        for sub in expand_message(decode_message(encode_message(send.message)))
    ]
    assert expanded == messages
    assert all(send.dst == BROADCAST_GROUP for send in packed)


# ---------------------------------------------------------------------------
# Property 3: the optimized decision fold equals the original.
# ---------------------------------------------------------------------------


def _reference_compute_decision(subrun, coordinator, prev, requests, K):
    """The pre-optimization three-pass fold, kept verbatim as the
    semantic reference for ``compute_decision``."""
    n = prev.n
    alive = list(prev.alive)
    attempts = list(prev.attempts)
    for pid in range(n):
        if not alive[pid]:
            attempts[pid] = K
            continue
        if ProcessId(pid) in requests:
            attempts[pid] = 0
        else:
            attempts[pid] += 1
            if attempts[pid] >= K:
                alive[pid] = False
    contacted = {pid for pid in requests if alive[pid]}
    if prev.full_group:
        contributors = set(contacted)
        stable = [NO_MESSAGE for _ in range(n)]
        min_waiting = [NO_MESSAGE for _ in range(n)]
        have_prev_minima = False
    else:
        contributors = {
            ProcessId(i) for i, c in enumerate(prev.contributors) if c and alive[i]
        } | contacted
        stable = list(prev.stable)
        min_waiting = list(prev.min_waiting)
        have_prev_minima = True
    max_processed = [NO_MESSAGE for _ in range(n)]
    most_updated = [ProcessId(k) for k in range(n)]
    for k in range(n):
        fresh_values = [requests[pid].last_processed[k] for pid in sorted(contacted)]
        if fresh_values:
            fresh_min = min(fresh_values)
            stable[k] = min(stable[k], fresh_min) if have_prev_minima else fresh_min
        elif not have_prev_minima:
            stable[k] = NO_MESSAGE
        best_val = NO_MESSAGE
        best_pid = ProcessId(k)
        for pid in sorted(contacted):
            val = requests[pid].last_processed[k]
            if val > best_val or (val == best_val and pid == k):
                best_val = val
                best_pid = pid
        if alive[prev.most_updated[k]] and prev.max_processed[k] > best_val:
            best_val = prev.max_processed[k]
            best_pid = prev.most_updated[k]
        max_processed[k] = best_val
        most_updated[k] = best_pid
        for pid in sorted(contacted):
            min_waiting[k] = _merge_min_waiting(
                min_waiting[k], requests[pid].waiting[k]
            )
    alive_set = {ProcessId(i) for i in range(n) if alive[i]}
    full_group = alive_set <= contributors
    return Decision(
        number=subrun,
        chain=prev.chain + 1,
        coordinator=coordinator,
        alive=tuple(alive),
        attempts=tuple(attempts),
        stable=tuple(stable),
        contributors=tuple(ProcessId(i) in contributors for i in range(n)),
        full_group=full_group,
        max_processed=tuple(max_processed),
        most_updated=tuple(most_updated),
        min_waiting=tuple(min_waiting),
        full_group_count=prev.full_group_count + (1 if full_group else 0),
    )


@st.composite
def decision_cases(draw):
    n = draw(st.integers(1, 6))
    K = draw(st.integers(1, 4))
    seq = st.integers(0, 40)
    alive = [draw(st.booleans()) for _ in range(n)]
    prev = Decision(
        number=SubrunNo(draw(st.integers(0, 50))),
        chain=draw(st.integers(1, 60)),
        coordinator=ProcessId(draw(st.integers(0, n - 1))),
        alive=tuple(alive),
        attempts=tuple(
            draw(st.integers(0, K)) if alive[i] else K for i in range(n)
        ),
        stable=tuple(SeqNo(draw(seq)) for _ in range(n)),
        contributors=tuple(draw(st.booleans()) for _ in range(n)),
        full_group=draw(st.booleans()),
        max_processed=tuple(SeqNo(draw(seq)) for _ in range(n)),
        most_updated=tuple(
            ProcessId(draw(st.integers(0, n - 1))) for _ in range(n)
        ),
        min_waiting=tuple(SeqNo(draw(seq)) for _ in range(n)),
        full_group_count=draw(st.integers(0, 30)),
    )
    contacting = draw(
        st.lists(st.integers(0, n - 1), max_size=n, unique=True)
    )
    requests = {
        ProcessId(pid): RequestInfo(
            tuple(SeqNo(draw(seq)) for _ in range(n)),
            tuple(SeqNo(draw(seq)) for _ in range(n)),
        )
        for pid in contacting
    }
    subrun = SubrunNo(int(prev.number) + 1)
    coordinator = ProcessId(draw(st.integers(0, n - 1)))
    return subrun, coordinator, prev, requests, K


@given(decision_cases())
@settings(max_examples=300, deadline=None)
def test_decision_fold_matches_reference(case):
    subrun, coordinator, prev, requests, K = case
    assert compute_decision(
        subrun, coordinator, prev, requests, K
    ) == _reference_compute_decision(subrun, coordinator, prev, requests, K)
