"""Property tests for the observability metric primitives.

The registry's histograms and ``summarize`` must agree — they are two
paths to the same statistics (one incremental, one batch) — and the
time-series index must behave like the obvious linear scan regardless
of recording order.
"""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.obs import Histogram, Series, summarize

finite_floats = st.floats(-1e6, 1e6, allow_nan=False)


@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_histogram_percentiles_agree_with_summarize(samples):
    histogram = Histogram()
    for value in samples:
        histogram.observe(value)
    summary = summarize(samples)
    assert histogram.count == summary.count
    for q, expected in ((0.5, summary.p50), (0.95, summary.p95), (0.99, summary.p99)):
        assert math.isclose(histogram.percentile(q), expected, rel_tol=1e-12, abs_tol=1e-12)
    assert math.isclose(
        histogram.summary().mean, summary.mean, rel_tol=1e-9, abs_tol=1e-9
    )


@given(st.lists(finite_floats, max_size=100))
def test_histogram_summary_matches_batch_summarize(samples):
    histogram = Histogram()
    for value in samples:
        histogram.observe(value)
    assert histogram.summary() == summarize(samples)


@given(
    st.lists(
        st.tuples(st.floats(0, 100, allow_nan=False), finite_floats),
        min_size=1,
        max_size=100,
    ),
    st.floats(-1, 101, allow_nan=False),
)
def test_series_at_or_before_matches_linear_scan(samples, query):
    series = Series()
    for time, value in samples:
        series.record(time, value)
    # Reference: last (by time, stable on ties) sample with t <= query.
    eligible = [
        (time, order, value)
        for order, (time, value) in enumerate(samples)
        if time <= query
    ]
    expected = max(eligible)[2] if eligible else None
    assert series.at_or_before(query) == expected


@given(
    st.lists(
        st.tuples(st.floats(0, 100, allow_nan=False), finite_floats), max_size=100
    )
)
def test_series_readers_are_chronological(samples):
    series = Series()
    for time, value in samples:
        series.record(time, value)
    assert series.times == sorted(series.times)
    assert list(series) == [
        (t, v) for t, v in zip(series.times, series.values)
    ]
    if samples:
        assert series.max() == max(v for _, v in samples)
