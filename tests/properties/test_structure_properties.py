"""Property-based tests on the core data structures' invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cbcast.vector_clock import VectorClock
from repro.core.history import History
from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.core.waiting import WaitingList
from repro.sim.events import EventQueue
from repro.sim.metrics import summarize
from repro.types import ProcessId, SeqNo


# ----------------------------------------------------------------------
# Vector clock algebra
# ----------------------------------------------------------------------

vectors = st.lists(st.integers(0, 50), min_size=1, max_size=6)


@given(st.data())
def test_merge_commutative_associative_idempotent(data):
    n = data.draw(st.integers(1, 6))
    values = st.lists(st.integers(0, 50), min_size=n, max_size=n)
    a, b, c = (VectorClock(data.draw(values)) for _ in range(3))

    ab = a.copy().merge(b)
    ba = b.copy().merge(a)
    assert ab == ba

    abc1 = a.copy().merge(b).merge(c)
    abc2 = a.copy().merge(b.copy().merge(c))
    assert abc1 == abc2

    assert a.copy().merge(a) == a


@given(st.data())
def test_merge_is_least_upper_bound(data):
    n = data.draw(st.integers(1, 6))
    values = st.lists(st.integers(0, 50), min_size=n, max_size=n)
    a = VectorClock(data.draw(values))
    b = VectorClock(data.draw(values))
    merged = a.copy().merge(b)
    assert a <= merged and b <= merged


# ----------------------------------------------------------------------
# History invariants under arbitrary store/clean interleavings
# ----------------------------------------------------------------------


@st.composite
def history_ops(draw):
    """A valid operation sequence: per-origin stores are in seq order."""
    ops = []
    next_seq = {}
    for _ in range(draw(st.integers(0, 40))):
        origin = ProcessId(draw(st.integers(0, 4)))
        if draw(st.booleans()):
            seq = next_seq.get(origin, 0) + 1
            next_seq[origin] = seq
            ops.append(("store", origin, seq))
        else:
            upto = draw(st.integers(0, next_seq.get(origin, 0)))
            ops.append(("clean", origin, upto))
    return ops


@given(history_ops())
@settings(max_examples=80)
def test_history_total_matches_entries(ops):
    history = History()
    floors: dict = {}
    for op, origin, value in ops:
        if op == "store":
            if value > floors.get(origin, 0):
                deps = (Mid(origin, SeqNo(value - 1)),) if value > 1 else ()
                history.store(UserMessage(Mid(origin, SeqNo(value)), deps))
        else:
            history.clean(origin, SeqNo(value))
            floors[origin] = max(floors.get(origin, 0), value)
    assert len(history) == sum(history.length_of(o) for o in history.origins())
    assert len(history) == sum(1 for _ in history.all_messages())
    for origin in history.origins():
        assert history.floor(origin) >= floors.get(origin, 0)


@given(history_ops())
@settings(max_examples=80)
def test_history_fetch_range_only_stored(ops):
    history = History()
    for op, origin, value in ops:
        if op == "store" and value > history.floor(origin):
            deps = (Mid(origin, SeqNo(value - 1)),) if value > 1 else ()
            if not history.contains(Mid(origin, SeqNo(value))):
                history.store(UserMessage(Mid(origin, SeqNo(value)), deps))
        elif op == "clean":
            history.clean(origin, SeqNo(value))
    for origin in history.origins():
        fetched = history.fetch_range(origin, SeqNo(1), SeqNo(1000))
        assert [m.mid.seq for m in fetched] == sorted(m.mid.seq for m in fetched)
        assert all(m.mid.seq > history.floor(origin) for m in fetched)


# ----------------------------------------------------------------------
# Waiting list: arbitrary arrival orders release in dependency order
# ----------------------------------------------------------------------


@given(st.permutations(list(range(1, 9))))
def test_waiting_list_releases_chain_in_order(arrival_order):
    """Messages (0, 1..8) forming one chain, arriving in any order,
    are released exactly in seq order."""
    origin = ProcessId(0)
    waiting = WaitingList()
    processed = []

    def process(message):
        processed.append(message.mid.seq)
        for released in waiting.notify_processed(message.mid):
            process(released)

    last = 0
    pending = {}
    for seq in arrival_order:
        deps = (Mid(origin, SeqNo(seq - 1)),) if seq > 1 else ()
        message = UserMessage(Mid(origin, SeqNo(seq)), deps)
        missing = {d for d in deps if d.seq > last and d.seq not in processed}
        missing = {d for d in deps if d.seq not in processed}
        if missing:
            waiting.add(message, missing)
        else:
            process(message)
    assert processed == sorted(processed)
    assert processed == list(range(1, 9))
    assert len(waiting) == 0


# ----------------------------------------------------------------------
# Event queue ordering
# ----------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.floats(0, 100, allow_nan=False), st.integers(0, 3)),
        max_size=50,
    )
)
def test_event_queue_pops_sorted(entries):
    queue = EventQueue()
    for time, priority in entries:
        queue.push(time, lambda: None, priority=priority)
    popped = []
    while (event := queue.pop()) is not None:
        popped.append((event.time, event.priority, event.seq))
    assert popped == sorted(popped)


# ----------------------------------------------------------------------
# Summary statistics sanity
# ----------------------------------------------------------------------


@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200))
def test_summarize_bounds(samples):
    summary = summarize(samples)
    eps = 1e-9 * max(1.0, abs(summary.maximum), abs(summary.minimum))
    assert summary.count == len(samples)
    assert summary.minimum - eps <= summary.p50 <= summary.maximum + eps
    assert summary.minimum - eps <= summary.mean <= summary.maximum + eps
    assert summary.stdev >= 0
