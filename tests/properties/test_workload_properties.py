"""Property-based tests on workload-generator invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.types import ProcessId
from repro.workloads.generators import (
    BernoulliWorkload,
    BurstWorkload,
    FixedBudgetWorkload,
    PoissonWorkload,
    ScriptedWorkload,
)

pids_lists = st.lists(
    st.integers(0, 10).map(ProcessId), min_size=1, max_size=6, unique=True
)


@given(pids_lists, st.integers(0, 60), st.integers(0, 40))
def test_fixed_budget_offers_exactly_total(pids, total, rounds):
    workload = FixedBudgetWorkload(pids, total=total)
    offered = sum(len(workload.submissions(r)) for r in range(rounds))
    assert offered == min(total, rounds * len(pids))
    assert workload.offered == offered
    if offered == total:
        assert workload.finished(rounds)


@given(pids_lists, st.floats(0, 1), st.integers(0, 30), st.integers(0, 50))
def test_bernoulli_offered_counter_consistent(pids, p, stop_after, rounds):
    workload = BernoulliWorkload(
        pids, p, rng=random.Random(1), stop_after_round=stop_after
    )
    offered = sum(len(workload.submissions(r)) for r in range(rounds))
    assert workload.offered == offered
    # finished() is monotone and truthful: no submissions after it.
    if workload.finished(rounds):
        assert workload.submissions(rounds) == []


@given(pids_lists, st.integers(1, 5), st.integers(0, 5), st.integers(0, 40))
def test_burst_pattern_periodicity(pids, on, off, rounds):
    workload = BurstWorkload(pids, on_rounds=on, off_rounds=off)
    for r in range(rounds):
        subs = workload.submissions(r)
        if workload.in_burst(r):
            assert len(subs) == len(pids)
        else:
            assert subs == []


@given(pids_lists, st.floats(0, 3), st.integers(1, 50))
@settings(max_examples=50)
def test_poisson_counter_consistent(pids, rate, rounds):
    workload = PoissonWorkload(pids, rate, rng=random.Random(2))
    offered = sum(len(workload.submissions(r)) for r in range(rounds))
    assert workload.offered == offered


@given(
    st.dictionaries(
        st.integers(0, 30),
        st.lists(
            st.tuples(st.integers(0, 5).map(ProcessId), st.binary(max_size=8)),
            max_size=3,
        ),
        max_size=8,
    )
)
def test_scripted_finished_truthful(schedule):
    workload = ScriptedWorkload(schedule)
    horizon = max(schedule, default=-1) + 2
    for r in range(horizon + 5):
        if workload.finished(r):
            assert workload.submissions(r) == []


@given(pids_lists, st.integers(0, 40))
def test_every_submission_comes_from_a_configured_pid(pids, rounds):
    workload = FixedBudgetWorkload(pids, total=1000)
    for r in range(rounds):
        for pid, payload in workload.submissions(r):
            assert pid in pids
            assert isinstance(payload, bytes) and payload
