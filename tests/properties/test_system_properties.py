"""Whole-system property test: random groups, workloads, and failure
mixes must never violate the URCGC invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.checkers import (
    check_local_causal_order,
    check_uniform_atomicity,
    check_uniform_ordering,
)
from repro.core.config import UrcgcConfig
from repro.harness.cluster import SimCluster
from repro.net.faults import CrashSchedule, FaultPlan, OmissionModel
from repro.types import ProcessId
from repro.workloads.generators import BernoulliWorkload


@st.composite
def scenarios(draw):
    n = draw(st.integers(3, 7))
    K = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 10_000))
    load = draw(st.floats(0.1, 1.0))
    crash_count = draw(st.integers(0, max(0, n - 2)))
    crash_times = [
        draw(st.floats(1.0, 8.0)) for _ in range(crash_count)
    ]
    omission_rate = draw(st.sampled_from([0.0, 0.0, 0.01, 0.03]))
    return n, K, seed, load, crash_times, omission_rate


@given(scenarios())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_scenarios_respect_urcgc_invariants(scenario):
    n, K, seed, load, crash_times, omission_rate = scenario
    pids = [ProcessId(i) for i in range(n)]

    schedule = CrashSchedule()
    for i, time in enumerate(crash_times):
        schedule.crash(ProcessId(n - 1 - i), time)
    faults = FaultPlan(crashes=schedule, rng=random.Random(seed))
    if omission_rate:
        for pid in pids:
            faults.set_send_omission(pid, OmissionModel(omission_rate))
            faults.set_receive_omission(pid, OmissionModel(omission_rate))

    cluster = SimCluster(
        UrcgcConfig(n=n, K=K, R=2 * K + 4),
        workload=BernoulliWorkload(
            pids, load, rng=random.Random(seed), stop_after_round=16
        ),
        faults=faults,
        max_rounds=400,
        seed=seed,
        trace=False,
    )
    quiesced = cluster.run_until_quiescent(drain_subruns=2 * K + 2)

    active = set(cluster.active_pids())
    streams = {pid: cluster.services[pid].delivered for pid in active}

    # Safety invariants hold whether or not the run quiesced (streams
    # need only be prefix-consistent while messages are in flight).
    for pid, stream in streams.items():
        check_local_causal_order(pid, stream).raise_if_failed()
    if active:
        check_uniform_ordering(
            streams, converged=quiesced is not None
        ).raise_if_failed()

    # Liveness + atomicity: at quiescence everything non-discarded is
    # everywhere.
    if quiesced is not None and active:
        log = cluster.delivery_log
        check_uniform_atomicity(
            log.generated_at,
            {mid: set(by) for mid, by in log.processed_at.items()},
            active,
            discarded=log.discarded,
        ).raise_if_failed()
        for mid in log.generated_at:
            if mid in log.discarded:
                continue
            got = set(log.processed_at.get(mid, {})) & active
            # All-or-none: "none" is legitimate when every holder
            # crashed or left before any survivor received the message.
            assert got == active or not got, (
                f"{mid}: {sorted(got)} != {sorted(active)}"
            )
