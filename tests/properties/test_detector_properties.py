"""Property tests for the pluggable failure detectors.

Two families:

* **Extraction equivalence** — the K-consecutive rule now lives in
  :class:`repro.detect.KConsecutiveDetector`; these properties replay
  arbitrary decision/miss traces against a reimplementation of the
  pre-refactor inline ``Member`` logic (``_strict_misses`` /
  ``_decision_seen_for`` / chain-gap) and require identical leave
  decisions and identical state at every step, for both leave rules.
* **Eventual perfection** — the heartbeat detector must eventually
  suspect a peer that falls permanently silent (strong completeness)
  and must stop falsely suspecting a peer whose evidence keeps
  arriving with a bounded period (eventual strong accuracy via the
  timeout backoff).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FailureDetectorConfig, LeaveRule, UrcgcConfig
from repro.detect import KConsecutiveDetector, make_detector
from repro.detect.heartbeat import HeartbeatDetector
from repro.types import ProcessId, SubrunNo


# ----------------------------------------------------------------------
# extraction equivalence: detector == pre-refactor inline logic
# ----------------------------------------------------------------------


class InlineLeaveRule:
    """The exact leave-rule bookkeeping ``Member`` used to inline.

    Transcribed from the pre-refactor ``_account_missed_decision`` /
    ``_apply_decision`` bodies: a strict-rule miss counter with
    coordinator excusal and a seen-decision frontier, plus the
    CONFIRMED-rule chain-gap check.
    """

    def __init__(self, K: int, rule: LeaveRule) -> None:
        self._K = K
        self._rule = rule
        self._strict_misses = 0
        self._decision_seen_for = SubrunNo(-1)

    def account_missed_decision(self, previous: SubrunNo, excused: bool) -> str | None:
        if self._rule is not LeaveRule.STRICT:
            return None
        if self._decision_seen_for >= previous:
            return None
        if excused:
            return None
        self._strict_misses += 1
        if self._strict_misses >= self._K:
            return (
                f"missed decisions from {self._strict_misses} "
                "consecutive coordinators"
            )
        return None

    def observe_chain_gap(self, chain_gap: int) -> str | None:
        if self._rule is LeaveRule.CONFIRMED and chain_gap >= self._K:
            return f"missed {chain_gap} consecutive decisions"
        return None

    def decision_adopted(self, number: SubrunNo, reset_misses: bool) -> None:
        if number > self._decision_seen_for:
            self._decision_seen_for = number
        if reset_misses:
            self._strict_misses = 0

    def reset(self) -> None:
        self._strict_misses = 0


@st.composite
def leave_traces(draw):
    """An arbitrary interleaving of the leave-rule surface's calls."""
    ops = []
    for _ in range(draw(st.integers(0, 40))):
        kind = draw(st.sampled_from(["miss", "gap", "adopt", "reset"]))
        if kind == "miss":
            ops.append(("miss", draw(st.integers(0, 20)), draw(st.booleans())))
        elif kind == "gap":
            ops.append(("gap", draw(st.integers(0, 8))))
        elif kind == "adopt":
            ops.append(("adopt", draw(st.integers(0, 20)), draw(st.booleans())))
        else:
            ops.append(("reset",))
    return ops


@given(
    trace=leave_traces(),
    K=st.integers(2, 5),
    rule=st.sampled_from([LeaveRule.STRICT, LeaveRule.CONFIRMED]),
)
@settings(max_examples=120, deadline=None)
def test_kconsecutive_matches_pre_refactor_inline_logic(trace, K, rule):
    config = UrcgcConfig(n=6, K=K, leave_rule=rule)
    detector = KConsecutiveDetector(config)
    inline = InlineLeaveRule(K, rule)
    for op in trace:
        if op[0] == "miss":
            _, previous, excused = op
            got = detector.account_missed_decision(
                SubrunNo(previous), excused=excused
            )
            want = inline.account_missed_decision(SubrunNo(previous), excused)
        elif op[0] == "gap":
            got = detector.observe_chain_gap(op[1])
            want = inline.observe_chain_gap(op[1])
        elif op[0] == "adopt":
            _, number, reset = op
            detector.decision_adopted(SubrunNo(number), reset_misses=reset)
            inline.decision_adopted(SubrunNo(number), reset)
            got = want = None
        else:
            detector.reset()
            inline.reset()
            got = want = None
        assert got == want
        assert detector.strict_misses == inline._strict_misses
        assert detector.decision_seen_for == inline._decision_seen_for


@given(
    trace=leave_traces(),
    K=st.integers(2, 5),
    rule=st.sampled_from([LeaveRule.STRICT, LeaveRule.CONFIRMED]),
)
@settings(max_examples=60, deadline=None)
def test_unset_failure_detector_config_resolves_to_kconsecutive(trace, K, rule):
    """``failure_detector=None`` must route through the same extracted
    rule object — the bit-identical default path."""
    config = UrcgcConfig(n=6, K=K, leave_rule=rule)
    assert config.failure_detector is None
    detector = make_detector(ProcessId(0), config)
    assert type(detector) is KConsecutiveDetector
    assert not detector.wants_heartbeats
    assert not detector.tracks_suspicion
    assert detector.suspects() == frozenset()


# ----------------------------------------------------------------------
# heartbeat detector: eventual perfection
# ----------------------------------------------------------------------


def _heartbeat_detector(n: int, **overrides) -> HeartbeatDetector:
    spec = FailureDetectorConfig(kind="heartbeat", **overrides)
    config = UrcgcConfig(n=n, K=2, failure_detector=spec)
    return HeartbeatDetector(ProcessId(0), config)


@given(
    evidence_rounds=st.lists(st.integers(1, 5), min_size=0, max_size=20),
    max_timeout=st.sampled_from([16.0, 64.0]),
)
@settings(max_examples=60, deadline=None)
def test_heartbeat_eventually_suspects_a_silent_peer(
    evidence_rounds, max_timeout
):
    """Strong completeness: once a peer falls silent for good, it is
    suspected within ``max_timeout`` rounds of its last evidence —
    regardless of the evidence pattern that preceded the silence."""
    detector = _heartbeat_detector(3, max_timeout=max_timeout)
    peer = ProcessId(1)
    now = 0
    detector.advance(now)
    for gap in evidence_rounds:
        for _ in range(gap):
            now += 1
            detector.advance(now)
        detector.observe_alive(peer)
    silent_since = now
    while now - silent_since <= max_timeout + 1:
        now += 1
        detector.advance(now)
    assert peer in detector.suspects()
    events = detector.poll_events()
    assert any(e.pid == peer and e.suspected for e in events)


@given(
    period=st.integers(1, 24),
    backoff=st.sampled_from([2.0, 4.0]),
)
@settings(max_examples=40, deadline=None)
def test_heartbeat_no_false_suspicion_after_stabilization(period, backoff):
    """Eventual strong accuracy: a peer whose evidence arrives every
    ``period`` rounds forever is eventually never suspected again —
    each false suspicion backs the timeout off multiplicatively, so
    only finitely many can occur."""
    detector = _heartbeat_detector(
        3, backoff=backoff, timeout_floor=2.0, max_timeout=4096.0
    )
    peer = ProcessId(1)
    horizon = 400 * max(1, period // 4)
    false_before_tail = None
    for now in range(1, horizon):
        detector.advance(now)
        if now % period == 0:
            detector.observe_alive(peer)
        if now == horizon - 10 * period:
            false_before_tail = detector.false_suspicions_total
    # The backoff caps the total number of false suspicions...
    bound = math.ceil(math.log(period + 1, backoff)) + 2
    assert detector.false_suspicions_total <= bound
    # ...and the tail of the run is suspicion-free.
    assert false_before_tail is not None
    assert detector.false_suspicions_total == false_before_tail
    assert peer not in detector.suspects()
