"""Property-based tests on protocol-level invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cbcast.delivery import CausalDeliveryQueue
from repro.baselines.cbcast.messages import CbcastData
from repro.baselines.cbcast.vector_clock import VectorClock
from repro.core.config import UrcgcConfig
from repro.core.decision import RequestInfo, compute_decision, initial_decision
from repro.core.effects import Deliver
from repro.core.member import Member
from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.types import ProcessId, SeqNo, SubrunNo


# ----------------------------------------------------------------------
# Member causal delivery under arbitrary arrival orders
# ----------------------------------------------------------------------


@st.composite
def message_pool(draw):
    """A causally consistent pool of messages from 3 senders.

    Each sender produces a chain; cross-dependencies point to already-
    generated messages of other senders (as the real protocol would)."""
    n_senders = 3
    counts = [draw(st.integers(0, 5)) for _ in range(n_senders)]
    generated: list[UserMessage] = []
    latest: dict[int, Mid] = {}
    # Interleave generation sender-by-sender round-robin.
    pending = [1] * n_senders
    order = draw(
        st.permutations(
            [s for s in range(n_senders) for _ in range(counts[s])]
        )
    )
    for sender in order:
        seq = pending[sender]
        pending[sender] += 1
        mid = Mid(ProcessId(sender + 1), SeqNo(seq))  # origins 1..3 (pid 0 receives)
        deps = []
        if seq > 1:
            deps.append(Mid(ProcessId(sender + 1), SeqNo(seq - 1)))
        for other, dep in latest.items():
            if other != sender and draw(st.booleans()):
                deps.append(dep)
        message = UserMessage(mid, tuple(deps))
        generated.append(message)
        latest[sender] = mid
    return generated


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_member_delivers_in_causal_order_any_arrival(data):
    pool = data.draw(message_pool())
    arrival = data.draw(st.permutations(pool))
    member = Member(ProcessId(0), UrcgcConfig(n=4))
    delivered: list[UserMessage] = []
    for message in arrival:
        for effect in member.on_message(message):
            if isinstance(effect, Deliver):
                delivered.append(effect.message)
    # Everything was eventually delivered (no losses here).
    assert {m.mid for m in delivered} == {m.mid for m in pool}
    # And in an order where every dependency precedes its dependent.
    seen = set()
    last_seq: dict[int, int] = {}
    for message in delivered:
        for dep in message.deps:
            assert dep in seen
        assert message.mid.seq == last_seq.get(message.mid.origin, 0) + 1
        last_seq[message.mid.origin] = message.mid.seq
        seen.add(message.mid)
    assert member.waiting_length == 0


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_member_idempotent_under_duplicates(data):
    pool = data.draw(message_pool())
    arrival = data.draw(st.permutations(pool * 2))  # every message twice
    member = Member(ProcessId(0), UrcgcConfig(n=4))
    delivered = []
    for message in arrival:
        for effect in member.on_message(message):
            if isinstance(effect, Deliver):
                delivered.append(effect.message.mid)
    assert len(delivered) == len(set(delivered)) == len(pool)


# ----------------------------------------------------------------------
# General causal deliverer over random DAGs
# ----------------------------------------------------------------------


@st.composite
def random_dag_messages(draw):
    """Messages whose deps form a random DAG (edges point backwards in
    generation order, so acyclicity holds by construction)."""
    from repro.core.mid import Mid as _Mid

    count = draw(st.integers(0, 12))
    messages = []
    for i in range(count):
        origin = ProcessId(draw(st.integers(0, 3)))
        # Unique mids: per-origin running counters.
        seq = sum(1 for m in messages if m.mid.origin == origin) + 1
        candidates = [m.mid for m in messages if m.mid.origin != origin or True]
        deps = []
        seen_origins = set()
        for dep in draw(st.permutations(candidates)):
            if len(deps) >= 3:
                break
            if dep.origin in seen_origins or (dep.origin == origin and dep.seq >= seq):
                continue
            if draw(st.booleans()):
                deps.append(dep)
                seen_origins.add(dep.origin)
        messages.append(UserMessage(_Mid(origin, SeqNo(seq)), tuple(deps)))
    return messages


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_general_deliverer_any_arrival_order(data):
    from repro.core.deliverer import CausalDeliverer

    pool = data.draw(random_dag_messages())
    arrival = data.draw(st.permutations(pool))
    deliverer = CausalDeliverer()
    deliverer.check_acyclic(pool)
    delivered = []
    for message in arrival:
        delivered.extend(deliverer.receive(message))
    assert {m.mid for m in delivered} == {m.mid for m in pool}
    seen = set()
    for message in delivered:
        assert all(dep in seen for dep in message.deps)
        seen.add(message.mid)
    assert deliverer.waiting_count == 0


# ----------------------------------------------------------------------
# Decision computation invariants
# ----------------------------------------------------------------------


@st.composite
def request_maps(draw, n):
    contacted = draw(
        st.lists(st.integers(0, n - 1), unique=True, max_size=n)
    )
    requests = {}
    for pid in contacted:
        last = tuple(SeqNo(draw(st.integers(0, 20))) for _ in range(n))
        waiting = tuple(SeqNo(draw(st.integers(0, 20))) for _ in range(n))
        requests[ProcessId(pid)] = RequestInfo(last, waiting)
    return requests


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_decision_invariants_over_random_chains(data):
    n = data.draw(st.integers(2, 6))
    K = data.draw(st.integers(1, 4))
    decision = initial_decision(n)
    steps = data.draw(st.integers(1, 8))
    for s in range(steps):
        requests = data.draw(request_maps(n))
        alive_before = decision.alive
        coordinator = ProcessId(data.draw(st.integers(0, n - 1)))
        next_decision = compute_decision(
            SubrunNo(s), coordinator, decision, requests, K
        )
        # Chain grows by exactly one; number is the subrun.
        assert next_decision.chain == decision.chain + 1
        assert next_decision.number == s
        # Membership is monotone non-increasing.
        for i in range(n):
            assert not (next_decision.alive[i] and not alive_before[i])
        # Attempts: contacted-and-alive processes reset to 0; silent
        # alive ones increment; attempts >= K implies removed.
        for i in range(n):
            if next_decision.alive[i]:
                if ProcessId(i) in requests:
                    assert next_decision.attempts[i] == 0
                else:
                    assert next_decision.attempts[i] == decision.attempts[i] + 1
                assert next_decision.attempts[i] < K
        # full_group implies every alive process contributed.
        if next_decision.full_group:
            for i in range(n):
                if next_decision.alive[i]:
                    assert next_decision.contributors[i]
        # stable never exceeds max_processed for contacted sequences.
        contacted_alive = [
            p for p in requests if next_decision.alive[p]
        ]
        if contacted_alive:
            for k in range(n):
                assert next_decision.stable[k] <= max(
                    next_decision.max_processed[k], next_decision.stable[k]
                )
        decision = next_decision


# ----------------------------------------------------------------------
# CBCAST delivery queue under arbitrary arrival orders
# ----------------------------------------------------------------------


@st.composite
def cbcast_pool(draw):
    """Causally consistent CBCAST messages from 2 senders (receiver is
    pid 0 of a 3-wide group)."""
    clocks = {1: [0, 0, 0], 2: [0, 0, 0]}
    messages = []
    for _ in range(draw(st.integers(0, 8))):
        sender = draw(st.sampled_from([1, 2]))
        # Sender may have observed the other's messages so far.
        other = 2 if sender == 1 else 1
        observe = draw(st.integers(0, clocks[other][other]))
        clock = clocks[sender]
        clock[other] = max(clock[other], observe)
        clock[sender] += 1
        messages.append(
            CbcastData(
                ProcessId(sender),
                VectorClock(list(clock)),
                VectorClock([0, 0, 0]),
            )
        )
    return messages


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_cbcast_queue_delivers_all_in_causal_order(data):
    pool = data.draw(cbcast_pool())
    arrival = data.draw(st.permutations(pool))
    queue = CausalDeliveryQueue(ProcessId(0), 3)
    delivered = []
    for message in arrival:
        delivered.extend(queue.receive(message))
    assert len(delivered) == len(pool)
    local = VectorClock(3)
    for message in delivered:
        assert message.vt.deliverable_from(message.sender, local)
        local.merge(message.vt)
    assert queue.delayed_count == 0


# ----------------------------------------------------------------------
# Total-order view: identical release order across members fed the
# same decision chain, regardless of local arrival interleavings
# ----------------------------------------------------------------------


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_total_order_views_agree_on_any_arrival_order(data):
    from repro.core.decision import compute_decision
    from repro.core.member import Member
    from repro.core.message import DecisionMessage
    from repro.core.total_order import TotalOrderView

    pool = data.draw(message_pool())
    n = 4
    members = [Member(ProcessId(0), UrcgcConfig(n=n)) for _ in range(2)]
    # Distinct observer instances must not share pid 0's generation
    # stream; they only *receive*, so this is fine.
    views = [TotalOrderView(m) for m in members]

    # Feed each view the same messages in an independent random order.
    for member, view in zip(members, views):
        arrival = data.draw(st.permutations(pool))
        for message in arrival:
            view.process_effects(member.on_message(message))

    # One shared decision chain declares everything stable.
    last = {}
    for message in pool:
        last[message.mid.origin] = max(
            last.get(message.mid.origin, 0), message.mid.seq
        )
    info_vec = tuple(
        SeqNo(last.get(ProcessId(k), 0)) for k in range(n)
    )
    requests = {
        ProcessId(k): RequestInfo(info_vec, tuple(SeqNo(0) for _ in range(n)))
        for k in range(n)
    }
    decision = compute_decision(
        SubrunNo(0), ProcessId(1), initial_decision(n), requests, K=3
    )
    for member, view in zip(members, views):
        view.process_effects(member.on_message(DecisionMessage(decision)))

    orders = [tuple(m.mid for m in view.ordered) for view in views]
    assert orders[0] == orders[1]
    assert set(orders[0]) == {m.mid for m in pool}
    for view in views:
        assert not view.desynchronized
