"""Property-based round-trip tests for every wire codec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cbcast.messages import (
    CbcastData,
    Flush,
    StabilityGossip,
    ViewChange,
)
from repro.baselines.cbcast.vector_clock import VectorClock
from repro.baselines.psync.protocol import PsyncData
from repro.core.decision import Decision, RequestInfo
from repro.core.message import (
    DecisionMessage,
    RecoveryRequest,
    RecoveryResponse,
    RequestMessage,
    UserMessage,
)
from repro.core.mid import Mid
from repro.net.wire import decode_message, encode_message
from repro.types import ProcessId, SeqNo, SubrunNo

pids = st.integers(min_value=0, max_value=200).map(ProcessId)
seqs = st.integers(min_value=1, max_value=2**31).map(SeqNo)
seqs0 = st.integers(min_value=0, max_value=2**31).map(SeqNo)
payloads = st.binary(max_size=300)


@st.composite
def mids(draw):
    return Mid(draw(pids), draw(seqs))


@st.composite
def user_messages(draw):
    mid = draw(mids())
    dep_origins = draw(
        st.lists(pids.filter(lambda p: True), max_size=5, unique=True)
    )
    deps = []
    for origin in dep_origins:
        if origin == mid.origin:
            if mid.seq > 1:
                deps.append(Mid(origin, SeqNo(draw(st.integers(1, mid.seq - 1)))))
        else:
            deps.append(Mid(origin, draw(seqs)))
    return UserMessage(mid, tuple(deps), draw(payloads))


@st.composite
def decisions(draw, n=None):
    if n is None:
        n = draw(st.integers(min_value=1, max_value=12))
    vec = lambda: tuple(draw(st.lists(seqs0, min_size=n, max_size=n)))
    return Decision(
        number=SubrunNo(draw(st.integers(-1, 10_000))),
        chain=draw(st.integers(0, 10_000)),
        coordinator=ProcessId(draw(st.integers(0, n - 1))),
        alive=tuple(draw(st.lists(st.booleans(), min_size=n, max_size=n))),
        attempts=tuple(draw(st.lists(st.integers(0, 255), min_size=n, max_size=n))),
        stable=vec(),
        contributors=tuple(draw(st.lists(st.booleans(), min_size=n, max_size=n))),
        full_group=draw(st.booleans()),
        max_processed=vec(),
        most_updated=tuple(
            ProcessId(draw(st.integers(0, n - 1))) for _ in range(n)
        ),
        min_waiting=vec(),
        full_group_count=draw(st.integers(0, 10_000)),
        # Rejoin extension: either absent (legacy frame) or full-width.
        joiners=tuple(
            ProcessId(p)
            for p in draw(
                st.lists(st.integers(0, n - 1), max_size=3, unique=True)
            )
        ),
        void_from=vec() if draw(st.booleans()) else (),
        join_boundary=vec() if draw(st.booleans()) else (),
    )


@given(user_messages())
def test_user_message_roundtrip(message):
    assert decode_message(encode_message(message)) == message


@given(decisions())
@settings(max_examples=60)
def test_decision_roundtrip(decision):
    wrapped = DecisionMessage(decision)
    assert decode_message(encode_message(wrapped)) == wrapped


@given(st.data())
@settings(max_examples=60)
def test_request_roundtrip(data):
    decision = data.draw(decisions())
    n = decision.n
    info = RequestInfo(
        tuple(data.draw(st.lists(seqs0, min_size=n, max_size=n))),
        tuple(data.draw(st.lists(seqs0, min_size=n, max_size=n))),
    )
    message = RequestMessage(
        ProcessId(data.draw(st.integers(0, n - 1))),
        SubrunNo(data.draw(st.integers(0, 100_000))),
        info,
        decision,
    )
    assert decode_message(encode_message(message)) == message


@given(
    pids,
    st.lists(st.tuples(pids, seqs, st.integers(0, 1000)), max_size=8),
)
def test_recovery_request_roundtrip(sender, raw_ranges):
    ranges = tuple(
        (origin, first, SeqNo(first + extra)) for origin, first, extra in raw_ranges
    )
    message = RecoveryRequest(sender, ranges)
    assert decode_message(encode_message(message)) == message


@given(pids, st.lists(user_messages(), max_size=6))
def test_recovery_response_roundtrip(sender, messages):
    unique = {m.mid: m for m in messages}
    message = RecoveryResponse(sender, tuple(unique.values()))
    assert decode_message(encode_message(message)) == message


@given(st.data())
@settings(max_examples=60)
def test_cbcast_data_roundtrip(data):
    n = data.draw(st.integers(1, 12))
    vt = VectorClock(data.draw(st.lists(st.integers(0, 2**31), min_size=n, max_size=n)))
    delivered = VectorClock(
        data.draw(st.lists(st.integers(0, 2**31), min_size=n, max_size=n))
    )
    message = CbcastData(
        ProcessId(data.draw(st.integers(0, n - 1))),
        vt,
        delivered,
        data.draw(payloads),
        data.draw(st.booleans()),
    )
    assert decode_message(encode_message(message)) == message


@given(st.data())
def test_view_change_and_flush_roundtrip(data):
    n = data.draw(st.integers(1, 12))
    view = ViewChange(
        ProcessId(data.draw(st.integers(0, n - 1))),
        data.draw(st.integers(0, 1000)),
        tuple(data.draw(st.lists(st.booleans(), min_size=n, max_size=n))),
        data.draw(st.booleans()),
    )
    assert decode_message(encode_message(view)) == view
    flush = Flush(
        view.manager,
        view.view_id,
        VectorClock(data.draw(st.lists(st.integers(0, 100), min_size=n, max_size=n))),
    )
    assert decode_message(encode_message(flush)) == flush
    gossip = StabilityGossip(view.manager, flush.delivered)
    assert decode_message(encode_message(gossip)) == gossip


@given(st.data())
def test_psync_data_roundtrip(data):
    preds = tuple(
        (ProcessId(p), s)
        for p, s in data.draw(
            st.lists(
                st.tuples(st.integers(0, 100), st.integers(1, 10_000)), max_size=6
            )
        )
    )
    message = PsyncData(
        ProcessId(data.draw(st.integers(0, 100))),
        data.draw(st.integers(1, 10_000)),
        preds,
        data.draw(payloads),
    )
    assert decode_message(encode_message(message)) == message


# ----------------------------------------------------------------------
# Fuzzing: untrusted bytes never crash the codec with anything but
# WireFormatError (the network treats that as a datagram loss).
# ----------------------------------------------------------------------

from repro.errors import WireFormatError


@given(st.binary(max_size=400))
@settings(max_examples=300)
def test_decode_untrusted_bytes_is_total(data):
    try:
        decode_message(data)
    except WireFormatError:
        pass  # the only acceptable failure mode


@given(user_messages(), st.integers(0, 399), st.integers(0, 7))
def test_single_bitflip_never_crashes_codec(message, index, bit):
    encoded = bytearray(encode_message(message))
    index %= len(encoded)
    encoded[index] ^= 1 << bit
    try:
        decode_message(bytes(encoded))
    except WireFormatError:
        pass


@given(st.data())
@settings(max_examples=60)
def test_join_request_roundtrip(data):
    from repro.core.rejoin import JoinRequest

    n = data.draw(st.integers(1, 12))
    message = JoinRequest(
        ProcessId(data.draw(st.integers(0, n - 1))),
        data.draw(st.integers(1, 2**31)),
        tuple(data.draw(st.lists(seqs0, min_size=n, max_size=n))),
    )
    assert decode_message(encode_message(message)) == message
