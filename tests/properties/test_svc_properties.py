"""Service-tier properties: single-shard equivalence and bridge order.

Two properties anchor the tier to the protocol underneath:

* **Single-shard equivalence** — a one-shard service is just a group
  with extra bookkeeping: what every member processes through the tier
  (client ingress, envelopes, frontends) must equal what the same
  member of a plain group processes when the same payloads are
  submitted through the same ingress pids in the same order.
* **Bridge non-inversion** — however publishes scatter over topics and
  shards, two cross-shard messages sharing a destination shard must
  never appear in opposite orders at two shards (and every shard's
  members must agree internally) — audited by
  :func:`~repro.analysis.checkers.check_bridge_ordering`.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.checkers import check_bridge_ordering, check_uniform_ordering
from repro.core.config import UrcgcConfig
from repro.harness.cluster import SimCluster
from repro.svc.bridge import CausalBridge
from repro.svc.envelope import Envelope
from repro.svc.tier import ShardedService

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def chat_scripts(draw):
    """(seed, [(client, n_topics)]) publish scripts over a small tier."""
    seed = draw(st.integers(0, 1000))
    clients = draw(st.lists(st.integers(0, 2**48), min_size=1, max_size=4, unique=True))
    script = draw(
        st.lists(
            st.tuples(st.sampled_from(clients), st.integers(1, 3)),
            min_size=1,
            max_size=20,
        )
    )
    return seed, clients, script


@given(chat_scripts())
@_SETTINGS
def test_single_shard_tier_equals_plain_group(case):
    """Per-member processed payload sequences through a 1-shard tier
    match a plain SimCluster fed the same payloads at the same pids."""
    seed, clients, script = case
    members = 3
    tier = ShardedService(1, members, seed=seed)
    for client in clients:
        tier.connect(client)
    payloads = []
    for i, (client, _) in enumerate(script):
        payload = b"m%d:c%d" % (i, client)
        payloads.append((tier.router.ingress_member(client, members), payload))
        tier.publish(client, (b"the-topic",), payload)
    tier.run()

    plain = SimCluster(UrcgcConfig(n=members), seed=seed, max_rounds=20_000)
    for pid, payload in payloads:
        # Same ingress pid, same submission order, envelope-wrapped so
        # the only difference is the tier machinery around the group.
        origin = next(
            (c for c in clients
             if tier.router.ingress_member(c, members) == pid), 0
        )
        plain.services[pid].data_rq(
            Envelope(origin, 1, (b"the-topic",), payload).to_bytes()
        )
    plain.run_until_quiescent(drain_subruns=2)

    for pid in range(members):
        via_tier = [
            Envelope.from_bytes(m.payload).payload
            for m in tier.clusters[0].services[pid].delivered
        ]
        via_plain = [
            Envelope.from_bytes(m.payload).payload
            for m in plain.services[pid].delivered
        ]
        assert via_tier == via_plain


@given(chat_scripts())
@_SETTINGS
def test_bridge_never_inverts_cross_shard_messages(case):
    seed, clients, script = case
    shards = 3
    tier = ShardedService(shards, 3, seed=seed)
    # Topics engineered to span all shards so multi-topic publishes
    # regularly cross the bridge.
    spread: dict[int, bytes] = {}
    i = 0
    while len(spread) < shards:
        topic = b"spread-%d" % i
        spread.setdefault(tier.router.shard_for(topic), topic)
        i += 1
    topics = list(spread.values())
    for client in clients:
        tier.connect(client)
    for i, (client, n_topics) in enumerate(script):
        tier.publish(client, tuple(topics[:n_topics]), b"m%d" % i)
        if i % 5 == 4:
            tier.step()
    tier.run()

    assert check_bridge_ordering(tier.bridge_logs()).ok
    for shard in range(shards):
        assert check_uniform_ordering(tier.shard_streams(shard)).ok
    # Every session's publishes fully acknowledged: client-level
    # uniformity of the bridged path.
    for session in tier.sessions.values():
        assert session.outstanding == 0 and session.queued == 0


@given(
    st.lists(
        st.sets(st.integers(0, 4), min_size=2, max_size=4).map(
            lambda s: tuple(sorted(s))
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=100, deadline=None)
def test_bridge_stamps_order_every_intersecting_pair(dest_sets):
    """Pure bridge property: any two stamps whose destination sets
    intersect are strictly ordered (Generic-Multicast agreement)."""
    bridge = CausalBridge(5)
    stamps = [bridge.stamp(dests) for dests in dest_sets]
    for i in range(len(dest_sets)):
        for j in range(i + 1, len(dest_sets)):
            if set(dest_sets[i]) & set(dest_sets[j]):
                assert stamps[i] < stamps[j]


@st.composite
def failover_scripts(draw):
    """(seed, [(client, n_topics)], chaos plan) over a 2-shard/5-member
    tier: publishes interleaved with frontend kills and reconnects."""
    seed = draw(st.integers(0, 1000))
    clients = draw(st.lists(st.integers(0, 2**48), min_size=2, max_size=4, unique=True))
    script = draw(
        st.lists(
            st.tuples(st.sampled_from(clients), st.integers(1, 3)),
            min_size=4,
            max_size=24,
        )
    )
    # Chaos plan: at up to 3 script positions, either kill a frontend
    # (None) or voluntarily reconnect a client.
    chaos = draw(
        st.dictionaries(
            st.integers(0, max(0, len(script) - 1)),
            st.one_of(st.none(), st.sampled_from(clients)),
            max_size=3,
        )
    )
    return seed, clients, script, chaos


@given(failover_scripts())
@_SETTINGS
def test_kill_and_reconnect_preserve_guarantees(case):
    """Under random frontend kills and voluntary re-HELLOs, no acked
    publish is lost, no delivery stream duplicates or inverts, and the
    bridge stays ordered."""
    from repro.errors import ProtocolError

    seed, clients, script, chaos = case
    shards = 2
    tier = ShardedService(shards, 5, seed=seed)
    spread: dict[int, bytes] = {}
    i = 0
    while len(spread) < shards:
        topic = b"spread-%d" % i
        spread.setdefault(tier.router.shard_for(topic), topic)
        i += 1
    topics = list(spread.values())
    subscriber = clients[0]
    for client in clients:
        tier.connect(client)
    tier.subscribe(subscriber, tuple(topics))
    for i, (client, n_topics) in enumerate(script):
        tier.publish(client, tuple(topics[:n_topics]), b"m%d" % i)
        if i in chaos:
            tier.step()
            target = chaos[i]
            if target is None:
                live = tier.live_members(i % shards)
                try:
                    tier.fail_frontend(i % shards, max(live))
                except ProtocolError:
                    pass  # majority guard: the kill would be fatal
            else:
                tier.reconnect(target)
    tier.run()

    # No acked publish lost, nothing stuck.
    for session in tier.sessions.values():
        assert session.acked == session.next_seq - 1
        assert session.retained == 0 and session.queued == 0
    # Streams neither duplicate nor invert; the bridge stays ordered.
    delivered = tier.sessions[subscriber].delivered
    per_shard: dict[int, list[tuple[int, int]]] = {}
    for d in delivered:
        per_shard.setdefault(d.shard, []).append((d.origin, d.origin_seq))
    for ids in per_shard.values():
        assert len(ids) == len(set(ids))
    assert check_bridge_ordering(tier.bridge_logs()).ok
