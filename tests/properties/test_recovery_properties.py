"""Recovery determinism properties.

The crash-recovery contract: at *any* crash point — any prefix of the
WAL, torn at any byte — replaying snapshot + WAL yields a member whose
durable state (``last_processed`` frontier, history floors, own seq
counter) matches what the pre-crash member had after exactly the
replayed records, and whose delivered log is a prefix of the pre-crash
log.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import UrcgcConfig
from repro.harness.cluster import SimCluster
from repro.storage import (
    GroupStorage,
    MemoryBackend,
    NodeStorage,
    restore_member,
)
from repro.types import ProcessId
from repro.workloads.generators import BernoulliWorkload

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def run_durable_cluster(n, K, seed, load, snapshot_interval):
    pids = [ProcessId(i) for i in range(n)]
    storage = GroupStorage(MemoryBackend(), snapshot_interval=snapshot_interval)
    cluster = SimCluster(
        UrcgcConfig(n=n, K=K),
        workload=BernoulliWorkload(
            pids, load, rng=random.Random(seed), stop_after_round=12
        ),
        storage=storage,
        max_rounds=300,
        seed=seed,
        trace=False,
    )
    cluster.run_until_quiescent(drain_subruns=2)
    return cluster, storage


@st.composite
def durable_scenarios(draw):
    n = draw(st.integers(3, 5))
    K = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 10_000))
    load = draw(st.floats(0.2, 0.8))
    snapshot_interval = draw(st.sampled_from([4, 16, 1000]))
    victim = draw(st.integers(0, n - 1))
    return n, K, seed, load, snapshot_interval, victim


@given(durable_scenarios())
@SETTINGS
def test_full_replay_reproduces_live_state(scenario):
    n, K, seed, load, snapshot_interval, victim = scenario
    cluster, storage = run_durable_cluster(n, K, seed, load, snapshot_interval)
    pid = ProcessId(victim)
    snapshot, records = storage.node(pid).load()
    member, delivered = restore_member(pid, cluster.config, snapshot, records)
    live = cluster.members[pid]
    assert member.last_processed_vector() == live.last_processed_vector()
    assert [m.mid for m in delivered] == [m.mid for m in cluster.delivered[pid]]
    for origin in range(n):
        assert member.history.floor(ProcessId(origin)) == live.history.floor(
            ProcessId(origin)
        ), f"floor of origin {origin}"


@given(durable_scenarios(), st.data())
@SETTINGS
def test_any_wal_prefix_replays_to_a_delivered_prefix(scenario, data):
    """Crash at any record boundary: the rebuilt member's delivered log
    is a prefix of the full-replay log, and the rebuilt state is
    internally consistent (replaying the rest reconverges)."""
    n, K, seed, load, snapshot_interval, victim = scenario
    cluster, storage = run_durable_cluster(n, K, seed, load, snapshot_interval)
    pid = ProcessId(victim)
    node = storage.node(pid)
    snapshot, records = node.load()
    full_member, full_delivered = restore_member(
        pid, cluster.config, snapshot, records
    )
    cut = data.draw(st.integers(0, len(records)), label="crash point")
    member, delivered = restore_member(pid, cluster.config, snapshot, records[:cut])
    assert [m.mid for m in delivered] == [
        m.mid for m in full_delivered[: len(delivered)]
    ]
    # Resuming the replay from the crash point reconverges exactly.
    from repro.core.rejoin import replay

    delivered.extend(
        replay(member, (r.as_replay_tuple() for r in records[cut:]))
    )
    assert member.last_processed_vector() == full_member.last_processed_vector()
    assert [m.mid for m in delivered] == [m.mid for m in full_delivered]


@given(durable_scenarios(), st.data())
@SETTINGS
def test_torn_tail_at_any_byte_recovers_a_record_prefix(scenario, data):
    """Tear the WAL at any byte offset: open() must recover exactly the
    records whose frames fit below the tear, and the replayed member
    must match a clean replay of that record prefix."""
    n, K, seed, load, snapshot_interval, victim = scenario
    cluster, storage = run_durable_cluster(n, K, seed, load, snapshot_interval)
    pid = ProcessId(victim)
    node = storage.node(pid)
    snapshot, records = node.load()
    blob = storage.backend.read(node.wal.name) or b""
    cut = data.draw(st.integers(0, len(blob)), label="tear byte")
    storage.backend.write(node.wal.name, blob[:cut])
    torn = NodeStorage(
        storage.backend, pid, snapshot_interval=snapshot_interval
    )
    torn_snapshot, torn_records = torn.load()
    assert len(torn_records) <= len(records)
    for torn_record, record in zip(torn_records, records):
        assert torn_record == record
    member, delivered = restore_member(
        pid, cluster.config, torn_snapshot, torn_records
    )
    reference, reference_delivered = restore_member(
        pid, cluster.config, snapshot, records[: len(torn_records)]
    )
    assert member.last_processed_vector() == reference.last_processed_vector()
    assert [m.mid for m in delivered] == [m.mid for m in reference_delivered]
