"""Integration tests for the UDP socket transport."""

import asyncio

import pytest

from repro.core.config import UrcgcConfig
from repro.errors import RuntimeTransportError
from repro.net.addressing import GroupAddress, UnicastAddress
from repro.runtime.node import AsyncGroup
from repro.runtime.udp import UdpFabric
from repro.types import ProcessId


def run(coro):
    return asyncio.run(coro)


def test_basic_datagram_roundtrip():
    async def main():
        fabric = await UdpFabric.create(2)
        try:
            endpoint = fabric.attach(ProcessId(1))
            fabric.sendto(ProcessId(0), UnicastAddress(ProcessId(1)), b"over udp")
            datagram = await asyncio.wait_for(endpoint.recv(), 2)
            assert datagram.src == 0
            assert datagram.data == b"over udp"
        finally:
            fabric.close()

    run(main())


def test_multicast_fans_out():
    async def main():
        fabric = await UdpFabric.create(3)
        group = GroupAddress("G")
        try:
            for i in range(3):
                fabric.join(group, ProcessId(i))
            fabric.sendto(ProcessId(0), group, b"x")
            for i in (1, 2):
                datagram = await asyncio.wait_for(
                    fabric.attach(ProcessId(i)).recv(), 2
                )
                assert datagram.data == b"x"
            assert fabric.attach(ProcessId(0)).queue.qsize() == 0
        finally:
            fabric.close()

    run(main())


def test_unbound_pid_rejected():
    async def main():
        fabric = await UdpFabric.create(1)
        try:
            with pytest.raises(RuntimeTransportError):
                fabric.attach(ProcessId(5))
        finally:
            fabric.close()

    run(main())


def test_closed_fabric_rejects_sends():
    async def main():
        fabric = await UdpFabric.create(2)
        fabric.close()
        with pytest.raises(RuntimeTransportError):
            fabric.sendto(ProcessId(0), UnicastAddress(ProcessId(1)), b"x")

    run(main())


def test_urcgc_group_over_real_udp():
    """The full protocol over genuine loopback UDP sockets."""

    async def main():
        fabric = await UdpFabric.create(3)
        group = AsyncGroup(UrcgcConfig(n=3), lan=fabric, round_interval=0.005)
        group.start()
        try:
            submissions = [(ProcessId(i % 3), f"udp-{i}".encode()) for i in range(9)]
            await group.run_workload(submissions, timeout=20)
            for node in group.nodes:
                assert len(node.delivered) == 9
            vectors = {n.member.last_processed_vector() for n in group.nodes}
            assert vectors == {(3, 3, 3)}
        finally:
            await group.stop()

    run(main())


def test_urcgc_group_over_lossy_udp():
    async def main():
        fabric = await UdpFabric.create(4, loss=0.05, seed=3)
        group = AsyncGroup(UrcgcConfig(n=4), lan=fabric, round_interval=0.005)
        group.start()
        try:
            submissions = [(ProcessId(i % 4), f"m{i}".encode()) for i in range(12)]
            await group.run_workload(submissions, timeout=30)
            for node in group.nodes:
                assert len(node.delivered) == 12
        finally:
            await group.stop()

    run(main())


def test_create_node_multiprocess_convention():
    """Two fabrics in one process, each owning one socket, find each
    other via the (host, base_port + pid) convention."""

    async def main():
        import random

        base_port = random.Random(99).randint(20000, 55000)
        a = await UdpFabric.create_node(ProcessId(0), 2, base_port=base_port)
        b = await UdpFabric.create_node(ProcessId(1), 2, base_port=base_port)
        try:
            a.sendto(ProcessId(0), UnicastAddress(ProcessId(1)), b"cross")
            datagram = await asyncio.wait_for(b.attach(ProcessId(1)).recv(), 2)
            assert datagram.src == 0
            assert datagram.data == b"cross"
        finally:
            a.close()
            b.close()

    run(main())


def test_runt_datagram_counted_and_dropped():
    """A datagram shorter than the pid header is discarded, but the
    per-endpoint counter records it."""

    async def main():
        fabric = await UdpFabric.create(2)
        try:
            endpoint = fabric.attach(ProcessId(1))
            assert endpoint.transport is not None
            endpoint.transport.sendto(b"x", endpoint.address)  # 1-byte runt
            fabric.sendto(ProcessId(0), UnicastAddress(ProcessId(1)), b"real")
            datagram = await asyncio.wait_for(endpoint.recv(), 2)
            assert datagram.data == b"real"
            assert endpoint.queue.qsize() == 0  # runt never enqueued
            assert endpoint.dropped_count == 1
            assert endpoint.error_count == 0
        finally:
            fabric.close()

    run(main())


def test_icmp_error_counted_per_endpoint():
    async def main():
        from repro.runtime.udp import UdpEndpoint, _Protocol

        endpoint = UdpEndpoint(ProcessId(0))
        protocol = _Protocol(endpoint)
        protocol.error_received(OSError(111, "Connection refused"))
        protocol.error_received(OSError(111, "Connection refused"))
        assert endpoint.error_count == 2
        assert endpoint.dropped_count == 0

    run(main())
