"""Unit tests for the asyncio datagram fabric."""

import asyncio

import pytest

from repro.errors import RuntimeTransportError, UnknownAddressError
from repro.net.addressing import GroupAddress, UnicastAddress
from repro.runtime.lan import AsyncLan
from repro.types import ProcessId


def run(coro):
    return asyncio.run(coro)


def test_unicast_delivery():
    async def main():
        lan = AsyncLan()
        endpoint = lan.attach(ProcessId(1))
        lan.sendto(ProcessId(0), UnicastAddress(ProcessId(1)), b"hello")
        datagram = await asyncio.wait_for(endpoint.recv(), 1)
        assert datagram.src == 0
        assert datagram.data == b"hello"

    run(main())


def test_multicast_excludes_sender():
    async def main():
        lan = AsyncLan()
        group = GroupAddress("G")
        endpoints = {}
        for i in range(3):
            pid = ProcessId(i)
            endpoints[pid] = lan.attach(pid)
            lan.join(group, pid)
        lan.sendto(ProcessId(0), group, b"x")
        await asyncio.sleep(0)
        assert endpoints[ProcessId(0)].queue.qsize() == 0
        assert endpoints[ProcessId(1)].queue.qsize() == 1
        assert endpoints[ProcessId(2)].queue.qsize() == 1

    run(main())


def test_unknown_group_raises():
    async def main():
        lan = AsyncLan()
        lan.attach(ProcessId(0))
        with pytest.raises(UnknownAddressError):
            lan.sendto(ProcessId(0), GroupAddress("nope"), b"x")

    run(main())


def test_loss_injection_statistics():
    async def main():
        lan = AsyncLan(loss=0.5, seed=1)
        lan.attach(ProcessId(1))
        for _ in range(1000):
            lan.sendto(ProcessId(0), UnicastAddress(ProcessId(1)), b"x")
        assert 350 < lan.dropped_count < 650

    run(main())


def test_send_to_unattached_endpoint_drops():
    async def main():
        lan = AsyncLan()
        lan.sendto(ProcessId(0), UnicastAddress(ProcessId(9)), b"x")
        assert lan.dropped_count == 1

    run(main())


def test_closed_lan_rejects_sends():
    async def main():
        lan = AsyncLan()
        lan.attach(ProcessId(1))
        lan.close()
        with pytest.raises(RuntimeTransportError):
            lan.sendto(ProcessId(0), UnicastAddress(ProcessId(1)), b"x")

    run(main())


def test_invalid_loss_rejected():
    with pytest.raises(RuntimeTransportError):
        AsyncLan(loss=1.0)


def test_latency_delays_delivery():
    async def main():
        lan = AsyncLan(latency=0.02)
        endpoint = lan.attach(ProcessId(1))
        lan.sendto(ProcessId(0), UnicastAddress(ProcessId(1)), b"x")
        await asyncio.sleep(0)
        assert endpoint.queue.qsize() == 0  # still in flight
        await asyncio.sleep(0.05)
        assert endpoint.queue.qsize() == 1

    run(main())
