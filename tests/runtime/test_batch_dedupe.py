"""Duplicate-delivery accounting when fabric duplication hits a batch.

A duplicated BatchFrame re-expands every sub-message, so without
dedupe the engine's duplicate accounting sees ``max_batch`` duplicates
for one duplicated datagram.  The drivers suppress the expanded copies
once, under ``dup_suppressed`` / the ``batch.dup_suppressed`` metric —
checked deterministically at the sim driver and end-to-end over a
duplicating :class:`ChaosFabric` in the live runtime.
"""

import asyncio

from repro.core.config import BatchingConfig, UrcgcConfig
from repro.core.mid import Mid
from repro.harness.cluster import SimCluster
from repro.harness.live_torture import audit_group
from repro.net.wire import BatchFrame, encode_message
from repro.runtime.chaos import ChaosFabric
from repro.runtime.lan import AsyncLan
from repro.runtime.node import AsyncGroup
from repro.types import ProcessId, SeqNo
from repro.workloads.generators import NullWorkload


def _user(origin: int, seq: int, deps=()):  # small helper
    from repro.core.message import UserMessage

    return UserMessage(Mid(ProcessId(origin), SeqNo(seq)), tuple(deps))


def test_sim_driver_suppresses_redelivered_batch_expansions():
    cluster = SimCluster(
        UrcgcConfig(n=3, K=2, batching=BatchingConfig()),
        workload=NullWorkload(),
        max_rounds=10,
    )
    m1, m2 = _user(1, 1), _user(1, 2, (Mid(ProcessId(1), SeqNo(1)),))
    frame = encode_message(BatchFrame((encode_message(m1), encode_message(m2))))
    cluster._on_data(ProcessId(0), ProcessId(1), frame)
    assert cluster.dup_suppressed == 0
    seen_once = cluster.members[0].duplicate_count
    # The duplicated datagram: both expansions are suppressed before
    # the engine, counted exactly once each.
    cluster._on_data(ProcessId(0), ProcessId(1), frame)
    assert cluster.dup_suppressed == 2
    assert cluster.members[0].duplicate_count == seen_once


def test_unbatched_duplicates_still_reach_the_engine():
    """Dedupe is batch-scoped: a duplicated *plain* datagram keeps the
    engine's own duplicate accounting intact."""
    cluster = SimCluster(
        UrcgcConfig(n=3, K=2, batching=BatchingConfig()),
        workload=NullWorkload(),
        max_rounds=10,
    )
    data = encode_message(_user(1, 1))
    cluster._on_data(ProcessId(0), ProcessId(1), data)
    cluster._on_data(ProcessId(0), ProcessId(1), data)
    assert cluster.dup_suppressed == 0


def test_live_duplicating_fabric_with_batching_stays_clean():
    async def main() -> None:
        fabric = ChaosFabric(AsyncLan(), duplication=0.6, seed=7)
        group = AsyncGroup(
            UrcgcConfig(n=3, K=2, batching=BatchingConfig(max_batch=4)),
            lan=fabric,
            round_interval=0.005,
        )
        group.start()
        try:
            submissions = [
                (ProcessId(i % 3), f"dup-{i}".encode()) for i in range(9)
            ]
            await group.run_workload(submissions, timeout=15.0)
            assert fabric.duplicated_count > 0
            violations = audit_group(group, converged=True)
            assert violations == []
        finally:
            await group.stop()

    asyncio.run(main())
