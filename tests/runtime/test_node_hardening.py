"""Live receive-path hardening and suspicion surfacing in AsyncNode."""

import asyncio

from repro.core.config import FailureDetectorConfig, UrcgcConfig
from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.net.addressing import UnicastAddress
from repro.net.wire import encode_message
from repro.runtime.lan import AsyncLan
from repro.runtime.node import AsyncGroup
from repro.types import ProcessId, SeqNo


def _run(coro):
    return asyncio.run(coro)


def test_garbage_and_forged_datagrams_do_not_kill_the_receiver():
    async def main() -> None:
        lan = AsyncLan()
        group = AsyncGroup(UrcgcConfig(n=3, K=2), lan=lan, round_interval=0.005)
        group.start()
        try:
            target = ProcessId(0)
            lan.sendto(ProcessId(1), UnicastAddress(target), b"\x07not-a-pdu")
            forged = UserMessage(
                Mid(ProcessId(1), SeqNo(1)),
                (Mid(ProcessId(0xFFFF), SeqNo(1)),),
            )
            lan.sendto(
                ProcessId(1), UnicastAddress(target), encode_message(forged)
            )
            await group.wait_until(
                lambda: group.nodes[target].decode_errors >= 2, timeout=5.0
            )
            # The node survived both and the group still makes progress.
            group.nodes[ProcessId(1)].submit(b"after")
            await group.wait_until(group.quiescent, timeout=10.0)
            delivered = [m.payload for m in group.nodes[target].delivered]
            assert b"after" in delivered
        finally:
            await group.stop()

    _run(main())


def test_live_crash_surfaces_suspicion_events():
    async def main() -> None:
        group = AsyncGroup(
            UrcgcConfig(
                n=3,
                K=2,
                failure_detector=FailureDetectorConfig(kind="heartbeat"),
            ),
            round_interval=0.005,
        )
        group.start()
        try:
            for i in range(3):
                group.nodes[ProcessId(i)].submit(f"s{i}".encode())
            await group.wait_until(group.quiescent, timeout=10.0)
            victim = ProcessId(2)
            await group.crash(victim)
            await group.wait_until(
                lambda: any(
                    event.pid == int(victim) and event.suspected
                    for node in group.live_nodes
                    for event in node.suspicion_events
                ),
                timeout=10.0,
            )
        finally:
            await group.stop()

    _run(main())
