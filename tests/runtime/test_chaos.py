"""Tests for the fault-injecting chaos fabric and node lifecycle."""

import asyncio

import pytest

from repro.core.config import UrcgcConfig
from repro.errors import RuntimeTransportError
from repro.harness.cluster import SimCluster
from repro.net.addressing import GroupAddress, UnicastAddress
from repro.net.faults import FaultPlan
from repro.runtime.chaos import ChaosFabric
from repro.runtime.lan import AsyncLan
from repro.runtime.node import AsyncGroup
from repro.types import ProcessId
from repro.workloads.generators import ScriptedWorkload


def run(coro):
    return asyncio.run(coro)


FAST = 0.004  # round interval: keep the tests quick

P0, P1, P2, P3 = (ProcessId(i) for i in range(4))


def make_fabric(n=3, faults=None, **kwargs):
    fabric = ChaosFabric(AsyncLan(), faults, **kwargs)
    group = GroupAddress("G")
    endpoints = {}
    for i in range(n):
        pid = ProcessId(i)
        endpoints[pid] = fabric.attach(pid)
        fabric.join(group, pid)
    return fabric, group, endpoints


# ----------------------------------------------------------------------
# fabric-level fault mechanics
# ----------------------------------------------------------------------


def test_transparent_without_faults():
    async def main():
        fabric, group, endpoints = make_fabric()
        fabric.sendto(P0, group, b"x")
        await asyncio.sleep(0)
        assert endpoints[P1].queue.qsize() == 1
        assert endpoints[P2].queue.qsize() == 1
        assert endpoints[P0].queue.qsize() == 0
        assert fabric.dropped_count == 0

    run(main())


def test_partition_blocks_then_heals():
    async def main():
        plan = FaultPlan()
        fabric, group, endpoints = make_fabric(faults=plan)
        plan.partitions.partition([P0, P1], [P2])
        fabric.sendto(P0, group, b"during")
        await asyncio.sleep(0)
        assert endpoints[P1].queue.qsize() == 1
        assert endpoints[P2].queue.qsize() == 0
        assert fabric.stats.dropped_for("partition") == 1
        plan.partitions.heal()
        fabric.sendto(P0, group, b"after")
        await asyncio.sleep(0)
        assert endpoints[P2].queue.qsize() == 1

    run(main())


def test_asymmetric_block_is_directional():
    async def main():
        plan = FaultPlan()
        plan.partitions.block(P0, P1)
        fabric, _, endpoints = make_fabric(faults=plan)
        fabric.sendto(P0, UnicastAddress(P1), b"blocked")
        fabric.sendto(P1, UnicastAddress(P0), b"flows")
        await asyncio.sleep(0)
        assert endpoints[P1].queue.qsize() == 0
        assert endpoints[P0].queue.qsize() == 1

    run(main())


def test_duplication_delivers_extra_copies():
    async def main():
        fabric, _, endpoints = make_fabric(duplication=0.9, seed=5)
        for _ in range(20):
            fabric.sendto(P0, UnicastAddress(P1), b"x")
        await asyncio.sleep(0)
        assert fabric.duplicated_count > 0
        assert endpoints[P1].queue.qsize() == 20 + fabric.duplicated_count

    run(main())


def test_jitter_reorders_datagrams():
    async def main():
        fabric, _, endpoints = make_fabric(jitter=0.02, seed=3)
        for i in range(20):
            fabric.sendto(P0, UnicastAddress(P1), bytes([i]))
        await asyncio.sleep(0.05)
        received = []
        while not endpoints[P1].queue.empty():
            received.append(endpoints[P1].queue.get_nowait().data[0])
        assert sorted(received) == list(range(20))  # nothing lost
        assert received != list(range(20))  # but not in send order

    run(main())


def test_crash_with_partial_broadcast_cuts_dying_multicast():
    async def main():
        plan = FaultPlan()
        fabric, group, endpoints = make_fabric(n=4, faults=plan)
        fabric.sendto(P0, group, b"warmup")
        fabric.crash(P0, partial_deliveries=1)
        fabric.sendto(P0, group, b"dying")  # 3 destinations, 1 survives
        fabric.sendto(P0, group, b"post-mortem")  # fully dropped
        await asyncio.sleep(0)
        received = {}
        for pid in (P1, P2, P3):
            items = []
            while not endpoints[pid].queue.empty():
                items.append(endpoints[pid].queue.get_nowait().data)
            received[pid] = items
        assert sum(b"dying" in items for items in received.values()) == 1
        assert received[P1] == [b"warmup", b"dying"]  # first destination
        assert b"post-mortem" not in received[P1]
        assert fabric.stats.dropped_for("src-crashed-midsend") == 2
        assert fabric.stats.dropped_for("src-crashed") == 3

    run(main())


def test_crashed_destination_receives_nothing():
    async def main():
        fabric, _, endpoints = make_fabric()
        fabric.sendto(P0, UnicastAddress(P1), b"warmup")
        fabric.crash(P1)
        fabric.sendto(P0, UnicastAddress(P1), b"too-late")
        await asyncio.sleep(0)
        assert endpoints[P1].queue.qsize() == 1
        assert fabric.stats.dropped_for("dst-crashed") == 1

    run(main())


def test_send_omission_drops_whole_multicast():
    async def main():
        from repro.net.faults import OmissionModel

        plan = FaultPlan()
        plan.set_send_omission(P0, OmissionModel(0.5, periodic=True))
        fabric, group, endpoints = make_fabric(faults=plan)
        fabric.sendto(P0, group, b"1")  # periodic N=2: second send drops
        fabric.sendto(P0, group, b"2")
        await asyncio.sleep(0)
        assert endpoints[P1].queue.qsize() == 1
        assert endpoints[P2].queue.qsize() == 1
        assert fabric.stats.dropped_for("send-omission") == 2

    run(main())


def test_closed_fabric_rejects_sends():
    async def main():
        fabric, group, _ = make_fabric()
        fabric.close()
        with pytest.raises(RuntimeTransportError):
            fabric.sendto(P0, group, b"x")

    run(main())


def test_invalid_knobs_rejected():
    with pytest.raises(RuntimeTransportError):
        ChaosFabric(AsyncLan(), duplication=1.0)
    with pytest.raises(RuntimeTransportError):
        ChaosFabric(AsyncLan(), jitter=-0.1)


# ----------------------------------------------------------------------
# live protocol runs under chaos
# ----------------------------------------------------------------------


def test_partition_then_heal_convergence():
    """A short two-island partition mid-workload heals and the whole
    group still processes everything, identically."""

    async def main():
        plan = FaultPlan()
        fabric = ChaosFabric(AsyncLan(), plan)
        group = AsyncGroup(UrcgcConfig(n=4, K=3), lan=fabric, round_interval=FAST)
        group.start()
        try:
            for i in range(8):
                group.nodes[i % 4].submit(f"m{i}".encode())
            await asyncio.sleep(2 * FAST)
            plan.partitions.partition([P0, P1], [P2, P3])
            await asyncio.sleep(4 * FAST)  # ~2 subruns of darkness
            plan.partitions.heal()
            await group.wait_until(group.quiescent, timeout=20)
            assert fabric.stats.dropped_for("partition") > 0
            assert len(group.live_nodes) == 4
            for node in group.nodes:
                assert len(node.delivered) == 8
            vectors = {n.member.last_processed_vector() for n in group.nodes}
            assert len(vectors) == 1
        finally:
            await group.stop()

    run(main())


def test_duplicated_decision_idempotence():
    """Heavy datagram duplication: every node still processes each
    message exactly once (duplicates detected and dropped)."""

    async def main():
        fabric = ChaosFabric(AsyncLan(), duplication=0.5, seed=11)
        group = AsyncGroup(UrcgcConfig(n=3), lan=fabric, round_interval=FAST)
        group.start()
        try:
            submissions = [(ProcessId(i % 3), f"m{i}".encode()) for i in range(9)]
            await group.run_workload(submissions, timeout=20)
            assert fabric.duplicated_count > 0
            for node in group.nodes:
                mids = [m.mid for m in node.delivered]
                assert len(mids) == 9
                assert len(set(mids)) == 9  # no double processing
            assert sum(n.member.duplicate_count for n in group.nodes) > 0
        finally:
            await group.stop()

    run(main())


def test_coordinator_crash_with_partial_broadcast_live():
    """The paper's rotating-coordinator failover, on the wall clock:
    the subrun-1 coordinator dies mid-multicast and the survivors
    still agree on one common order."""

    async def main():
        from repro.harness.live_torture import audit_group

        plan = FaultPlan()
        fabric = ChaosFabric(AsyncLan(), plan)
        group = AsyncGroup(UrcgcConfig(n=4, K=2), lan=fabric, round_interval=FAST)
        group.start()
        try:
            for i in range(8):
                group.nodes[i % 4].submit(f"m{i}".encode())
            crashed = await group.crash_coordinator_at_subrun(
                1, partial_deliveries=1, timeout=10
            )
            assert crashed == P1  # rotating coordinator of subrun 1
            assert not group.nodes[crashed].is_live
            await group.wait_until(group.quiescent, timeout=20)
            survivors = group.live_nodes
            assert len(survivors) == 3
            # The fabric actually cut the dead coordinator off.
            reasons = fabric.stats.drop_reasons
            assert any(
                reason.startswith("src-crashed") or reason == "dst-crashed"
                for reason in reasons
            ), reasons
            # Live audit: Definition 3.2 holds over the survivors.
            assert audit_group(group, converged=True) == []
            vectors = {n.member.last_processed_vector() for n in survivors}
            assert len(vectors) == 1
        finally:
            await group.stop()

    run(main())


def test_node_crash_is_idempotent_and_preserves_logs():
    async def main():
        group = AsyncGroup(UrcgcConfig(n=3), round_interval=FAST)
        group.start()
        try:
            await group.run_workload([(P0, b"x")], timeout=10)
            before = list(group.nodes[2].delivered)
            await group.nodes[2].crash()
            await group.nodes[2].crash()  # idempotent
            assert group.nodes[2].crashed
            assert group.nodes[2].delivered == before  # post-mortem intact
            assert len(group.live_nodes) == 2
        finally:
            await group.stop()

    run(main())


# ----------------------------------------------------------------------
# the unified fault model: one plan, both worlds
# ----------------------------------------------------------------------


def test_same_fault_plan_drives_sim_and_live():
    """One FaultPlan object runs a partition scenario first in the
    discrete-event SimCluster, then live over a ChaosFabric."""
    plan = FaultPlan()
    plan.partitions.partition([P0, P1], [P2])

    # --- simulated world ---------------------------------------------
    cluster = SimCluster(
        UrcgcConfig(n=3, K=2),
        workload=ScriptedWorkload({0: [(P0, b"sim")]}),
        faults=plan,
        max_rounds=60,
        trace=False,
    )
    cluster.run()
    assert cluster.network.stats.dropped_for("partition") > 0
    assert cluster.members[0].processed_count >= 1
    assert cluster.members[1].processed_count >= 1
    assert cluster.members[2].processed_count == 0  # far side of the cut

    # --- live world, same plan object --------------------------------
    async def live():
        fabric = ChaosFabric(AsyncLan(), plan)
        group = AsyncGroup(UrcgcConfig(n=3, K=2), lan=fabric, round_interval=FAST)
        group.start()
        try:
            group.nodes[0].submit(b"live")
            await group.wait_until(
                lambda: len(group.nodes[1].delivered) == 1, timeout=10
            )
            # p2 is on the far side of the very same partition object.
            assert fabric.stats.dropped_for("partition") > 0
            assert len(group.nodes[2].delivered) == 0
        finally:
            await group.stop()

    run(live())
    plan.partitions.heal()
    assert not plan.partitions
