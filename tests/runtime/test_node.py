"""Integration tests for the asyncio urcgc runtime."""

import asyncio

import pytest

from repro.core.config import UrcgcConfig
from repro.runtime.lan import AsyncLan
from repro.runtime.node import AsyncGroup
from repro.types import ProcessId


def run(coro):
    return asyncio.run(coro)


FAST = 0.004  # round interval: keep the tests quick


def test_reliable_group_processes_everything():
    async def main():
        group = AsyncGroup(UrcgcConfig(n=3), round_interval=FAST)
        group.start()
        try:
            submissions = [(ProcessId(i % 3), f"m{i}".encode()) for i in range(9)]
            await group.run_workload(submissions, timeout=15)
            for node in group.nodes:
                assert len(node.delivered) == 9
            vectors = {n.member.last_processed_vector() for n in group.nodes}
            assert vectors == {(3, 3, 3)}
        finally:
            await group.stop()

    run(main())


def test_causal_order_preserved_at_every_node():
    async def main():
        group = AsyncGroup(UrcgcConfig(n=3), round_interval=FAST)
        group.start()
        try:
            submissions = [(ProcessId(i % 3), f"m{i}".encode()) for i in range(12)]
            await group.run_workload(submissions, timeout=15)
            for node in group.nodes:
                seen = set()
                for message in node.delivered:
                    for dep in message.deps:
                        assert dep in seen
                    seen.add(message.mid)
        finally:
            await group.stop()

    run(main())


def test_lossy_lan_heals_via_recovery():
    async def main():
        lan = AsyncLan(loss=0.05, seed=7)
        group = AsyncGroup(UrcgcConfig(n=4), lan=lan, round_interval=FAST)
        group.start()
        try:
            submissions = [(ProcessId(i % 4), f"m{i}".encode()) for i in range(16)]
            await group.run_workload(submissions, timeout=30)
            assert lan.dropped_count > 0  # losses actually happened
            for node in group.nodes:
                assert len(node.delivered) == 16
        finally:
            await group.stop()

    run(main())


def test_indication_callback_fires():
    async def main():
        indications = []
        group = AsyncGroup(
            UrcgcConfig(n=3),
            round_interval=FAST,
            on_indication=lambda pid, m: indications.append((pid, m.mid)),
        )
        group.start()
        try:
            await group.run_workload([(ProcessId(0), b"x")], timeout=10)
            pids = {pid for pid, _ in indications}
            assert pids == {0, 1, 2}
        finally:
            await group.stop()

    run(main())


def test_confirms_recorded():
    async def main():
        group = AsyncGroup(UrcgcConfig(n=3), round_interval=FAST)
        group.start()
        try:
            await group.run_workload([(ProcessId(1), b"a"), (ProcessId(1), b"b")], timeout=10)
            assert len(group.nodes[1].confirmed_mids) == 2
        finally:
            await group.stop()

    run(main())


def test_node_double_start_rejected():
    async def main():
        group = AsyncGroup(UrcgcConfig(n=2), round_interval=FAST)
        group.start()
        try:
            with pytest.raises(RuntimeError):
                group.nodes[0].start()
        finally:
            await group.stop()

    run(main())


def test_wait_until_times_out():
    async def main():
        group = AsyncGroup(UrcgcConfig(n=2), round_interval=FAST)
        group.start()
        try:
            with pytest.raises(asyncio.TimeoutError):
                await group.wait_until(lambda: False, timeout=0.05)
        finally:
            await group.stop()

    run(main())
