"""Regression tests for the races the interleaving analyzer surfaced.

Each test here pins a finding from ``python -m repro lint --rules I,T``
(see docs/ANALYSIS.md): the stale-task-list read across ``stop()``'s
gather (I501), the shared node list iterated across suspension in
``AsyncGroup.stop`` (I503), and the blocking snapshot write that used
to run inline on the event loop (I502), now offloaded to the default
executor via ``NodeStorage.begin_snapshot`` / ``finish_snapshot``.
"""

import asyncio
import threading

from repro.core.config import UrcgcConfig
from repro.core.rejoin import (
    RECORD_DECISION,
    RECORD_GENERATED,
    RECORD_PROCESSED,
)
from repro.runtime.node import AsyncGroup
from repro.storage import GroupStorage, MemoryBackend
from repro.types import ProcessId


def _run(coro):
    return asyncio.run(coro)


FAST = 0.004


class ThreadRecordingBackend(MemoryBackend):
    """Records which thread performed each full-blob write."""

    def __init__(self) -> None:
        super().__init__()
        self.write_threads: dict[str, set[int]] = {}

    def write(self, name: str, data: bytes) -> None:
        self.write_threads.setdefault(name, set()).add(threading.get_ident())
        super().write(name, data)


def test_stop_detaches_tasks_before_suspending():
    # I501 regression: stop() used to clear self._tasks only *after*
    # awaiting the gather, so anything running while it was suspended
    # saw a half-stopped node and start() raised "already started".
    async def main() -> None:
        group = AsyncGroup(UrcgcConfig(n=3), round_interval=FAST)
        group.start()
        node = group.nodes[0]
        stopper = asyncio.create_task(node.stop())
        await asyncio.sleep(0)  # stopper is now suspended at its gather
        node.start()  # must observe an already-stopped node
        await stopper
        await group.stop()

    _run(main())


def test_group_stop_survives_membership_mutation():
    # I503 regression: AsyncGroup.stop iterated self.nodes directly,
    # so a membership change during the per-node await skipped nodes.
    async def main() -> None:
        group = AsyncGroup(UrcgcConfig(n=3), round_interval=FAST)
        group.start()
        last = group.nodes[-1]
        real_stop = group.nodes[0].stop

        async def stop_and_shrink() -> None:
            await real_stop()
            group.nodes.pop()

        group.nodes[0].stop = stop_and_shrink
        await group.stop()
        assert not last._tasks  # the popped node was still stopped

    _run(main())


def test_snapshot_blob_writes_happen_off_the_loop_thread():
    # I502 regression: save_snapshot ran its backend write inline in
    # _execute; with a FileBackend that is fsync + rename on the one
    # thread every node shares.  The write must land on an executor
    # thread, with no WAL record lost around the compaction.
    async def main() -> None:
        loop_thread = threading.get_ident()
        backend = ThreadRecordingBackend()
        storage = GroupStorage(backend, snapshot_interval=8)
        group = AsyncGroup(
            UrcgcConfig(n=3, K=3), round_interval=FAST, storage=storage
        )
        group.start()
        try:
            for i in range(12):
                group.nodes[ProcessId(0)].submit(b"m%d" % i)
            await group.wait_until(group.quiescent, timeout=10.0)
            await group.wait_until(
                lambda: storage.node(ProcessId(0)).snapshots_taken >= 1,
                timeout=10.0,
            )
        finally:
            await group.stop()
        snap_threads = backend.write_threads["node-00000.snap"]
        assert loop_thread not in snap_threads
        # Durable state is still a consistent cut: snapshot + WAL
        # suffix replay to the node's delivered log.
        snapshot, records = storage.node(ProcessId(0)).load()
        assert snapshot is not None
        kinds = {RECORD_GENERATED, RECORD_PROCESSED, RECORD_DECISION}
        assert all(r.kind in kinds for r in records)

    _run(main())
