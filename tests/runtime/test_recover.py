"""End-to-end crash + recovery over the asyncio runtime."""

import asyncio

import pytest

from repro.core.config import UrcgcConfig
from repro.net.faults import FaultPlan
from repro.runtime.chaos import ChaosFabric
from repro.runtime.lan import AsyncLan
from repro.runtime.node import AsyncGroup
from repro.storage import GroupStorage, MemoryBackend
from repro.types import ProcessId


def run(coro):
    return asyncio.run(coro)


FAST = 0.004


def durable_group(n=3, K=3, snapshot_interval=16, seed=1):
    storage = GroupStorage(MemoryBackend(), snapshot_interval=snapshot_interval)
    fabric = ChaosFabric(AsyncLan(), FaultPlan(), seed=seed)
    group = AsyncGroup(
        UrcgcConfig(n=n, K=K, enable_rejoin=True),
        lan=fabric,
        round_interval=FAST,
        storage=storage,
    )
    return group, storage, fabric


def test_recover_requires_storage():
    async def main():
        group = AsyncGroup(
            UrcgcConfig(n=3, enable_rejoin=True), round_interval=FAST
        )
        group.start()
        try:
            await group.crash(ProcessId(1))
            with pytest.raises(RuntimeError, match="storage"):
                group.recover(ProcessId(1))
        finally:
            await group.stop()

    run(main())


def test_recover_requires_crash():
    async def main():
        group, _, _ = durable_group()
        group.start()
        try:
            with pytest.raises(RuntimeError, match="not crashed"):
                group.recover(ProcessId(1))
        finally:
            await group.stop()

    run(main())


def test_crash_recover_rejoin_and_converge():
    async def main():
        group, storage, fabric = durable_group()
        group.start()
        try:
            await group.run_workload(
                [(ProcessId(i % 3), f"pre{i}".encode()) for i in range(6)],
                timeout=20,
            )
            victim = ProcessId(1)
            await group.crash(victim)
            node = group.nodes[victim]
            pre_mids = [m.mid for m in node.delivered]
            # Survivors move on while the victim is down.
            await group.run_workload(
                [(ProcessId(0), b"down1"), (ProcessId(2), b"down2")], timeout=20
            )
            group.recover(victim)
            assert node.member.rejoining
            assert node.member.incarnation == 1
            await group.wait_until(
                lambda: not node.member.rejoining and node.is_live, timeout=20
            )
            # New incarnation generates alongside everyone.
            await group.run_workload(
                [(ProcessId(i), f"post{i}".encode()) for i in range(3)],
                timeout=20,
            )
            post_mids = [m.mid for m in node.delivered]
            assert post_mids[: len(pre_mids)] == pre_mids
            vectors = {n.member.last_processed_vector() for n in group.live_nodes}
            assert len(vectors) == 1
            assert len(group.live_nodes) == 3
        finally:
            await group.stop()

    run(main())


def test_recovered_node_survives_snapshot_compaction():
    async def main():
        group, storage, _ = durable_group(snapshot_interval=4)
        group.start()
        try:
            await group.run_workload(
                [(ProcessId(i % 3), f"m{i}".encode()) for i in range(12)],
                timeout=20,
            )
            victim = ProcessId(2)
            assert storage.node(victim).snapshots_taken > 0
            await group.crash(victim)
            node = group.nodes[victim]
            pre = len(node.delivered)
            group.recover(victim)
            await group.wait_until(
                lambda: not node.member.rejoining and node.is_live, timeout=20
            )
            assert len(node.delivered) >= pre
        finally:
            await group.stop()

    run(main())


def test_coordinator_crash_then_recover():
    async def main():
        group, storage, _ = durable_group(n=4)
        group.start()
        try:
            await group.run_workload(
                [(ProcessId(i % 4), f"m{i}".encode()) for i in range(8)],
                timeout=20,
            )
            subrun = group.nodes[0].current_subrun + 1
            victim = await group.crash_coordinator_at_subrun(subrun, timeout=20)
            assert victim is not None
            await group.run_workload(
                [
                    (pid, b"go")
                    for pid in [ProcessId(i) for i in range(4)]
                    if pid != victim
                ],
                timeout=20,
            )
            node = group.recover(victim)
            await group.wait_until(
                lambda: not node.member.rejoining and node.is_live, timeout=20
            )
            for peer in group.live_nodes:
                assert peer.member.view.is_alive(victim)
        finally:
            await group.stop()

    run(main())


def test_chaos_fabric_revive_allows_second_crash():
    async def main():
        group, storage, fabric = durable_group()
        group.start()
        try:
            await group.run_workload(
                [(ProcessId(i % 3), f"m{i}".encode()) for i in range(3)],
                timeout=20,
            )
            victim = ProcessId(1)
            await group.crash(victim)
            assert fabric.is_crashed(victim)
            node = group.recover(victim)
            assert not fabric.is_crashed(victim)
            await group.wait_until(
                lambda: not node.member.rejoining and node.is_live, timeout=20
            )
            # The revived incarnation can be fail-stopped again.
            await group.crash(victim)
            assert fabric.is_crashed(victim)
        finally:
            await group.stop()

    run(main())
