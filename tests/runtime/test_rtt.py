"""Tests for RTT estimation and adaptive round timing."""

import asyncio

import pytest

from repro.core.config import UrcgcConfig
from repro.errors import ConfigError
from repro.runtime.lan import AsyncLan
from repro.runtime.node import AsyncNode
from repro.runtime.rtt import AdaptiveRoundTimer, RttEstimator
from repro.types import ProcessId


class TestRttEstimator:
    def test_first_sample_initializes(self):
        estimator = RttEstimator()
        assert estimator.smoothed is None
        estimator.observe(0.1)
        assert estimator.smoothed == 0.1
        assert estimator.deviation == 0.05

    def test_smoothing_converges(self):
        estimator = RttEstimator()
        for _ in range(100):
            estimator.observe(0.2)
        assert estimator.smoothed == pytest.approx(0.2, rel=0.01)
        assert estimator.deviation == pytest.approx(0.0, abs=0.01)

    def test_jitter_raises_deviation(self):
        steady = RttEstimator()
        jittery = RttEstimator()
        for i in range(50):
            steady.observe(0.1)
            jittery.observe(0.05 if i % 2 else 0.15)
        assert jittery.deviation > steady.deviation

    def test_timeout_bound(self):
        estimator = RttEstimator()
        estimator.observe(0.1)
        assert estimator.timeout() >= 0.1

    def test_pre_sample_timeout_is_conservative(self):
        # Regression: timeout() before any sample used to return the
        # bare floor — 0.0 by default — which spins a retransmit loop.
        estimator = RttEstimator()
        assert estimator.timeout() == 1.0  # RFC 6298 initial RTO
        assert estimator.timeout(floor=0.3) == 1.0  # initial dominates
        assert estimator.timeout(floor=2.5) == 2.5  # larger floor wins

    def test_pre_sample_timeout_opt_out_requires_floor(self):
        estimator = RttEstimator(initial_timeout=None)
        assert estimator.timeout(floor=0.3) == 0.3
        with pytest.raises(ConfigError):
            estimator.timeout()  # no sample, no initial, no floor

    def test_first_sample_supersedes_initial(self):
        estimator = RttEstimator()
        estimator.observe(0.1)
        assert estimator.timeout() == pytest.approx(0.1 + 4 * 0.05)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RttEstimator(alpha=0)
        with pytest.raises(ConfigError):
            RttEstimator().observe(-1)
        with pytest.raises(ConfigError):
            RttEstimator(initial_timeout=0.0)
        with pytest.raises(ConfigError):
            RttEstimator(initial_timeout=-1.0)


class TestAdaptiveRoundTimer:
    def test_initial_interval_before_samples(self):
        timer = AdaptiveRoundTimer(initial=0.05)
        assert timer.interval() == 0.05

    def test_tracks_half_rtd(self):
        timer = AdaptiveRoundTimer(initial=0.05, max_interval=10.0)
        for _ in range(100):
            timer.observe(0.2)
        # One round = half the (conservative) rtd estimate.
        assert 0.09 <= timer.interval() <= 0.15

    def test_clamping(self):
        timer = AdaptiveRoundTimer(
            initial=0.05, min_interval=0.04, max_interval=0.06
        )
        for _ in range(10):
            timer.observe(10.0)
        assert timer.interval() == 0.06
        fast = AdaptiveRoundTimer(
            initial=0.05, min_interval=0.04, max_interval=0.06
        )
        for _ in range(10):
            fast.observe(0.0001)
        assert fast.interval() == 0.04

    def test_validation(self):
        with pytest.raises(ConfigError):
            AdaptiveRoundTimer(initial=0.001, min_interval=0.01)


def test_adaptive_group_converges_and_samples_rtt():
    """A live group with adaptive timers still agrees, and the timers
    actually collected request->decision samples."""

    async def main():
        lan = AsyncLan(latency=0.005)
        timers = [
            AdaptiveRoundTimer(initial=0.03, min_interval=0.005)
            for _ in range(3)
        ]
        nodes = [
            AsyncNode(
                ProcessId(i),
                UrcgcConfig(n=3),
                lan,
                adaptive_timer=timers[i],
            )
            for i in range(3)
        ]
        for node in nodes:
            node.start()
        try:
            for i, node in enumerate(nodes):
                node.submit(f"m{i}".encode())

            async def done():
                while True:
                    vectors = {n.member.last_processed_vector() for n in nodes}
                    sampled = any(t.estimator.samples > 0 for t in timers)
                    if vectors == {(1, 1, 1)} and sampled:
                        return
                    await asyncio.sleep(0.01)

            await asyncio.wait_for(done(), 15)
        finally:
            for node in nodes:
                await node.stop()
        # The non-coordinator nodes sampled RTTs (a node that was
        # coordinator of a subrun applies its own decision: no echo).
        assert any(t.estimator.samples > 0 for t in timers)
        for timer in timers:
            if timer.estimator.samples:
                assert timer.interval() >= 0.005

    asyncio.run(main())
