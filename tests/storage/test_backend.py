"""Unit tests for the blob-store backends."""

import pytest

from repro.storage.backend import FileBackend, MemoryBackend


@pytest.fixture(params=["memory", "file"])
def backend(request, tmp_path):
    if request.param == "memory":
        return MemoryBackend()
    return FileBackend(tmp_path / "store")


def test_read_missing_returns_none(backend):
    assert backend.read("absent.wal") is None


def test_write_read_roundtrip(backend):
    backend.write("a.snap", b"\x00\x01\x02")
    assert backend.read("a.snap") == b"\x00\x01\x02"


def test_write_overwrites(backend):
    backend.write("a.snap", b"old")
    backend.write("a.snap", b"new")
    assert backend.read("a.snap") == b"new"


def test_append_creates_and_extends(backend):
    backend.append("a.wal", b"one")
    backend.append("a.wal", b"two")
    assert backend.read("a.wal") == b"onetwo"


def test_delete_is_tolerant(backend):
    backend.delete("nothing.wal")  # no error
    backend.write("a.wal", b"x")
    backend.delete("a.wal")
    assert backend.read("a.wal") is None


def test_names_sorted(backend):
    backend.write("b.wal", b"")
    backend.write("a.wal", b"")
    assert backend.names() == ["a.wal", "b.wal"]


@pytest.mark.parametrize("name", ["", "../evil", "a/b", "a\\b", "a b"])
def test_unsafe_names_rejected(backend, name):
    with pytest.raises(ValueError):
        backend.write(name, b"x")


def test_file_backend_atomic_write_leaves_no_tmp(tmp_path):
    backend = FileBackend(tmp_path / "store")
    backend.write("a.snap", b"payload")
    assert backend.names() == ["a.snap"]


def test_memory_backend_read_is_a_copy():
    backend = MemoryBackend()
    backend.write("a.wal", b"abc")
    blob = backend.read("a.wal")
    backend.append("a.wal", b"def")
    assert blob == b"abc"
