"""Unit tests for snapshot encode/decode and member restore."""

import pytest

from repro.core.config import UrcgcConfig
from repro.core.member import Member
from repro.errors import StorageError
from repro.harness.cluster import SimCluster
from repro.storage import (
    GroupStorage,
    MemoryBackend,
    decode_snapshot,
    encode_snapshot,
    restore_member,
    snapshot_of,
)
from repro.types import ProcessId
from repro.workloads.generators import FixedBudgetWorkload


PIDS = [ProcessId(i) for i in range(4)]


def run_cluster(total=16, snapshot_interval=8, seed=3):
    storage = GroupStorage(MemoryBackend(), snapshot_interval=snapshot_interval)
    cluster = SimCluster(
        UrcgcConfig(n=4, K=2),
        workload=FixedBudgetWorkload(PIDS, total),
        storage=storage,
        seed=seed,
    )
    cluster.run_until_quiescent(drain_subruns=2)
    return cluster, storage


def test_snapshot_roundtrip_empty_member():
    config = UrcgcConfig(n=3)
    member = Member(ProcessId(1), config)
    snapshot = snapshot_of(member, [], round_no=0)
    decoded = decode_snapshot(encode_snapshot(snapshot))
    assert decoded.pid == 1
    restored, delivered = restore_member(ProcessId(1), config, decoded, [])
    assert delivered == []
    assert restored.last_processed_vector() == member.last_processed_vector()


def test_snapshot_roundtrip_after_traffic():
    cluster, storage = run_cluster()
    for pid in PIDS:
        live = cluster.members[pid]
        snapshot = snapshot_of(live, cluster.delivered[pid], round_no=10)
        decoded = decode_snapshot(encode_snapshot(snapshot))
        restored, delivered = restore_member(pid, cluster.config, decoded, [])
        assert restored.last_processed_vector() == live.last_processed_vector()
        assert [m.mid for m in delivered] == [
            m.mid for m in cluster.delivered[pid]
        ]
        assert decoded.round_no == 10


def test_restore_from_snapshot_plus_wal():
    """The durable state written during a run reproduces the live
    member: snapshot + WAL suffix, whatever the compaction cadence."""
    for interval in (8, 1000):
        cluster, storage = run_cluster(snapshot_interval=interval)
        for pid in PIDS:
            snapshot, records = storage.node(pid).load()
            restored, delivered = restore_member(
                pid, cluster.config, snapshot, records
            )
            live = cluster.members[pid]
            assert (
                restored.last_processed_vector() == live.last_processed_vector()
            ), f"pid {pid} interval {interval}"
            assert [m.mid for m in delivered] == [
                m.mid for m in cluster.delivered[pid]
            ]


def test_compaction_actually_happened():
    cluster, storage = run_cluster(snapshot_interval=8)
    assert any(storage.node(pid).snapshots_taken > 0 for pid in PIDS)


def test_corrupted_snapshot_raises_storage_error():
    config = UrcgcConfig(n=3)
    member = Member(ProcessId(0), config)
    blob = bytearray(encode_snapshot(snapshot_of(member, [])))
    blob[10] ^= 0xFF
    with pytest.raises(StorageError):
        decode_snapshot(bytes(blob))


def test_truncated_snapshot_raises_storage_error():
    config = UrcgcConfig(n=3)
    member = Member(ProcessId(0), config)
    blob = encode_snapshot(snapshot_of(member, []))
    with pytest.raises(StorageError):
        decode_snapshot(blob[:3])


def test_unsupported_version_raises_storage_error():
    import zlib

    config = UrcgcConfig(n=3)
    member = Member(ProcessId(0), config)
    blob = bytearray(encode_snapshot(snapshot_of(member, [])))
    body = bytearray(blob[4:])
    body[0] = 99  # version byte
    crc = zlib.crc32(bytes(body))
    fixed = crc.to_bytes(4, "big") + bytes(body)
    with pytest.raises(StorageError):
        decode_snapshot(fixed)


def test_pid_mismatch_raises_storage_error():
    config = UrcgcConfig(n=3)
    member = Member(ProcessId(0), config)
    snapshot = decode_snapshot(encode_snapshot(snapshot_of(member, [])))
    with pytest.raises(StorageError):
        restore_member(ProcessId(2), config, snapshot, [])


def test_restore_without_snapshot_is_fresh_member():
    config = UrcgcConfig(n=3)
    member, delivered = restore_member(ProcessId(1), config, None, [])
    assert delivered == []
    assert member.last_processed_vector() == (0, 0, 0)
