"""Unit tests for the write-ahead log, torn tail included."""

import pytest

from repro.core.decision import Decision
from repro.core.message import DecisionMessage, UserMessage
from repro.core.mid import Mid
from repro.core.rejoin import RECORD_DECISION, RECORD_GENERATED, RECORD_PROCESSED
from repro.storage.backend import MemoryBackend
from repro.storage.wal import WriteAheadLog, encode_record
from repro.types import ProcessId, SeqNo


def msg(origin, seq, deps=(), payload=b"x"):
    return UserMessage(Mid(ProcessId(origin), SeqNo(seq)), tuple(deps), payload)


def decision(number=1):
    zeros = (SeqNo(0), SeqNo(0), SeqNo(0))
    return Decision(
        number=number,
        chain=1,
        coordinator=ProcessId(0),
        alive=(True, True, True),
        attempts=(0, 0, 0),
        stable=zeros,
        contributors=(True, True, True),
        full_group=True,
        max_processed=zeros,
        most_updated=(ProcessId(0),),
        min_waiting=zeros,
        full_group_count=1,
    )


@pytest.fixture
def wal():
    return WriteAheadLog(MemoryBackend(), "node-00001.wal")


def test_empty_log_opens_empty(wal):
    assert wal.open() == []
    assert wal.truncated_bytes == 0


def test_roundtrip_all_record_kinds(wal):
    wal.append_generated(msg(1, 1))
    wal.append_processed(msg(2, 1))
    wal.append_decision(decision())
    records = wal.open()
    assert [r.kind for r in records] == [
        RECORD_GENERATED,
        RECORD_PROCESSED,
        RECORD_DECISION,
    ]
    assert records[0].pdu == msg(1, 1)
    assert records[1].pdu == msg(2, 1)
    assert isinstance(records[2].pdu, DecisionMessage)
    assert records[2].pdu.decision == decision()


def test_as_replay_tuple_unwraps_decisions(wal):
    wal.append_decision(decision())
    (record,) = wal.open()
    kind, pdu = record.as_replay_tuple()
    assert kind == RECORD_DECISION
    assert pdu == decision()


def test_order_preserved(wal):
    for seq in range(1, 6):
        wal.append_generated(msg(0, seq))
    records = wal.open()
    assert [r.pdu.mid.seq for r in records] == [1, 2, 3, 4, 5]


def test_reset_truncates(wal):
    wal.append_generated(msg(0, 1))
    wal.reset()
    assert wal.open() == []


def test_torn_tail_truncated(wal):
    wal.append_generated(msg(0, 1))
    wal.append_generated(msg(0, 2))
    blob = wal.backend.read(wal.name)
    # Crash mid-append: half of the final record made it to disk.
    wal.backend.write(wal.name, blob[: len(blob) - 7])
    records = wal.open()
    assert [r.pdu.mid.seq for r in records] == [1]
    assert wal.truncated_bytes > 0
    # The torn bytes were physically removed, so appends resume cleanly.
    wal.append_generated(msg(0, 2))
    records = wal.open()
    assert [r.pdu.mid.seq for r in records] == [1, 2]
    assert wal.truncated_bytes == 0


def test_corrupted_crc_truncates_from_there(wal):
    wal.append_generated(msg(0, 1))
    wal.append_generated(msg(0, 2))
    wal.append_generated(msg(0, 3))
    blob = bytearray(wal.backend.read(wal.name))
    first_len = len(encode_record(RECORD_GENERATED, msg(0, 1)))
    blob[first_len + 12] ^= 0xFF  # flip a byte inside record 2's payload
    wal.backend.write(wal.name, bytes(blob))
    records = wal.open()
    # Record 2's crc fails; record 3 is unreachable behind the tear.
    assert [r.pdu.mid.seq for r in records] == [1]


def test_unknown_record_kind_treated_as_tear(wal):
    wal.append_generated(msg(0, 1))
    bad = encode_record(RECORD_GENERATED, msg(0, 2))
    # Patch the kind byte to garbage but keep the crc consistent.
    import struct
    import zlib

    payload = bytes([99]) + bad[9:]
    framed = struct.pack("!II", len(payload), zlib.crc32(payload)) + payload
    wal.backend.append(wal.name, framed)
    records = wal.open()
    assert [r.pdu.mid.seq for r in records] == [1]


def test_garbage_only_log_truncates_to_empty(wal):
    wal.backend.write(wal.name, b"\xde\xad\xbe\xef" * 4)
    assert wal.open() == []
    assert wal.backend.read(wal.name) == b""


def test_every_prefix_of_the_log_is_readable(wal):
    """Torn-tail handling works at *any* byte boundary."""
    messages = [msg(0, 1), msg(1, 1, [Mid(ProcessId(0), SeqNo(1))]), msg(0, 2)]
    for m in messages:
        wal.append_generated(m)
    blob = wal.backend.read(wal.name)
    boundaries = []
    pos = 0
    for m in messages:
        pos += len(encode_record(RECORD_GENERATED, m))
        boundaries.append(pos)
    for cut in range(len(blob) + 1):
        wal.backend.write(wal.name, blob[:cut])
        records = wal.open()
        expected = sum(1 for b in boundaries if b <= cut)
        assert len(records) == expected, f"cut at {cut}"
