"""Unit tests for NodeStorage / GroupStorage facades."""

import pytest

from repro.core.config import UrcgcConfig
from repro.core.member import Member
from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.storage import (
    GroupStorage,
    MemoryBackend,
    NodeStorage,
    snapshot_of,
)
from repro.types import ProcessId, SeqNo


def msg(origin, seq):
    return UserMessage(Mid(ProcessId(origin), SeqNo(seq)), (), b"p")


def test_snapshot_cadence():
    storage = NodeStorage(MemoryBackend(), ProcessId(0), snapshot_interval=3)
    assert not storage.should_snapshot()
    storage.log_generated(msg(0, 1))
    storage.log_processed(msg(1, 1))
    assert not storage.should_snapshot()
    storage.log_processed(msg(1, 2))
    assert storage.should_snapshot()


def test_save_snapshot_truncates_wal_and_resets_counter():
    storage = NodeStorage(MemoryBackend(), ProcessId(0), snapshot_interval=2)
    storage.log_generated(msg(0, 1))
    storage.log_generated(msg(0, 2))
    member = Member(ProcessId(0), UrcgcConfig(n=3))
    storage.save_snapshot(snapshot_of(member, []))
    assert storage.records_since_snapshot == 0
    assert storage.snapshots_taken == 1
    snapshot, records = storage.load()
    assert snapshot is not None
    assert records == []


def test_load_counts_wal_suffix():
    backend = MemoryBackend()
    storage = NodeStorage(backend, ProcessId(0), snapshot_interval=100)
    storage.log_generated(msg(0, 1))
    storage.log_processed(msg(1, 1))
    reopened = NodeStorage(backend, ProcessId(0), snapshot_interval=100)
    snapshot, records = reopened.load()
    assert snapshot is None
    assert len(records) == 2
    assert reopened.records_since_snapshot == 2


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        NodeStorage(MemoryBackend(), ProcessId(0), snapshot_interval=0)


def test_group_storage_caches_per_pid():
    group = GroupStorage(snapshot_interval=7)
    a = group.node(ProcessId(1))
    assert group.node(ProcessId(1)) is a
    assert group.node(ProcessId(2)) is not a
    assert a.snapshot_interval == 7


def test_group_storage_nodes_share_backend():
    group = GroupStorage()
    group.node(ProcessId(0)).log_generated(msg(0, 1))
    group.node(ProcessId(1)).log_generated(msg(1, 1))
    assert group.backend.names() == ["node-00000.wal", "node-00001.wal"]


# ----------------------------------------------------------------------
# Asynchronous snapshot protocol: begin / persist / finish.


def fresh_snapshot():
    return snapshot_of(Member(ProcessId(0), UrcgcConfig(n=3)), [])


def test_begin_finish_preserves_records_logged_in_flight():
    # The I502 fix moves the blob write off the event loop; records
    # appended while the write is in flight must survive compaction.
    backend = MemoryBackend()
    storage = NodeStorage(backend, ProcessId(0), snapshot_interval=2)
    storage.log_generated(msg(0, 1))
    storage.log_generated(msg(0, 2))
    job = storage.begin_snapshot(fresh_snapshot())
    storage.log_processed(msg(1, 1))  # lands while the write is in flight
    job.persist()
    storage.finish_snapshot()
    assert storage.snapshots_taken == 1
    assert storage.records_since_snapshot == 1
    snapshot, records = storage.load()
    assert snapshot is not None
    assert len(records) == 1
    assert records[0].pdu == msg(1, 1)


def test_should_snapshot_false_while_in_flight():
    storage = NodeStorage(MemoryBackend(), ProcessId(0), snapshot_interval=1)
    storage.log_generated(msg(0, 1))
    assert storage.should_snapshot()
    job = storage.begin_snapshot(fresh_snapshot())
    storage.log_generated(msg(0, 2))
    assert not storage.should_snapshot()  # no second snapshot mid-flight
    job.persist()
    storage.finish_snapshot()
    assert storage.should_snapshot()  # the buffered tail counts


def test_double_begin_and_stray_finish_rejected():
    storage = NodeStorage(MemoryBackend(), ProcessId(0), snapshot_interval=2)
    with pytest.raises(RuntimeError, match="no snapshot in flight"):
        storage.finish_snapshot()
    storage.begin_snapshot(fresh_snapshot())
    with pytest.raises(RuntimeError, match="already in flight"):
        storage.begin_snapshot(fresh_snapshot())
    with pytest.raises(RuntimeError, match="already in flight"):
        storage.save_snapshot(fresh_snapshot())


def test_crash_before_persist_loses_nothing():
    # begin_snapshot mutates no durable state: a crash before persist
    # leaves the full WAL, so recovery replays everything.
    backend = MemoryBackend()
    storage = NodeStorage(backend, ProcessId(0), snapshot_interval=2)
    storage.log_generated(msg(0, 1))
    storage.begin_snapshot(fresh_snapshot())
    storage.log_processed(msg(1, 1))
    reopened = NodeStorage(backend, ProcessId(0), snapshot_interval=2)
    snapshot, records = reopened.load()
    assert snapshot is None
    assert len(records) == 2


def test_crash_between_persist_and_finish_keeps_full_wal():
    # The snapshot blob landed but the WAL was never compacted: the
    # same overlap window the synchronous path has between its write
    # and reset, and recovery replay is idempotent over it.
    backend = MemoryBackend()
    storage = NodeStorage(backend, ProcessId(0), snapshot_interval=2)
    storage.log_generated(msg(0, 1))
    job = storage.begin_snapshot(fresh_snapshot())
    storage.log_processed(msg(1, 1))
    job.persist()  # crash here: no finish_snapshot()
    reopened = NodeStorage(backend, ProcessId(0), snapshot_interval=2)
    snapshot, records = reopened.load()
    assert snapshot is not None
    assert len(records) == 2  # nothing dropped before the compaction
