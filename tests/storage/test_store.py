"""Unit tests for NodeStorage / GroupStorage facades."""

import pytest

from repro.core.config import UrcgcConfig
from repro.core.member import Member
from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.storage import (
    GroupStorage,
    MemoryBackend,
    NodeStorage,
    snapshot_of,
)
from repro.types import ProcessId, SeqNo


def msg(origin, seq):
    return UserMessage(Mid(ProcessId(origin), SeqNo(seq)), (), b"p")


def test_snapshot_cadence():
    storage = NodeStorage(MemoryBackend(), ProcessId(0), snapshot_interval=3)
    assert not storage.should_snapshot()
    storage.log_generated(msg(0, 1))
    storage.log_processed(msg(1, 1))
    assert not storage.should_snapshot()
    storage.log_processed(msg(1, 2))
    assert storage.should_snapshot()


def test_save_snapshot_truncates_wal_and_resets_counter():
    storage = NodeStorage(MemoryBackend(), ProcessId(0), snapshot_interval=2)
    storage.log_generated(msg(0, 1))
    storage.log_generated(msg(0, 2))
    member = Member(ProcessId(0), UrcgcConfig(n=3))
    storage.save_snapshot(snapshot_of(member, []))
    assert storage.records_since_snapshot == 0
    assert storage.snapshots_taken == 1
    snapshot, records = storage.load()
    assert snapshot is not None
    assert records == []


def test_load_counts_wal_suffix():
    backend = MemoryBackend()
    storage = NodeStorage(backend, ProcessId(0), snapshot_interval=100)
    storage.log_generated(msg(0, 1))
    storage.log_processed(msg(1, 1))
    reopened = NodeStorage(backend, ProcessId(0), snapshot_interval=100)
    snapshot, records = reopened.load()
    assert snapshot is None
    assert len(records) == 2
    assert reopened.records_since_snapshot == 2


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        NodeStorage(MemoryBackend(), ProcessId(0), snapshot_interval=0)


def test_group_storage_caches_per_pid():
    group = GroupStorage(snapshot_interval=7)
    a = group.node(ProcessId(1))
    assert group.node(ProcessId(1)) is a
    assert group.node(ProcessId(2)) is not a
    assert a.snapshot_interval == 7


def test_group_storage_nodes_share_backend():
    group = GroupStorage()
    group.node(ProcessId(0)).log_generated(msg(0, 1))
    group.node(ProcessId(1)).log_generated(msg(1, 1))
    assert group.backend.names() == ["node-00000.wal", "node-00001.wal"]
