"""Service-tier failover and topic handoff (PROTOCOL §14.7-14.8).

End-to-end tests over real simulated clusters: frontends die mid-run
with envelopes in flight, sessions re-home through the negotiated
resume handshake, delivery streams re-anchor with bumped epochs, and
ring changes hand topics over through the causal-bridge fence.
"""

import pytest

from repro.analysis.checkers import check_bridge_ordering
from repro.errors import ProtocolError
from repro.svc.serve import audit_tier
from repro.svc.tier import HANDOFF_ORIGIN, ShardedService


def topics_for_shard(tier, shard, count=2, universe=200):
    found = []
    for i in range(universe):
        topic = b"topic/%d" % i
        if tier.router.shard_for(topic) == shard:
            found.append(topic)
            if len(found) == count:
                return found
    raise AssertionError(f"no {count} topics landed on shard {shard}")


def client_homed_at_shard(tier, shard, exclude=(), universe=500):
    for cid in range(1, universe):
        if cid in exclude:
            continue
        if tier.router.home_for(cid, tier.members)[0] == shard:
            return cid
    raise AssertionError(f"no client homes at shard {shard}")


def build(shards=2, members=5, seed=7):
    return ShardedService(shards, members=members, seed=seed)


class TestFrontendFailover:
    def test_kill_home_frontend_mid_run_loses_nothing(self):
        tier = build()
        t0 = topics_for_shard(tier, 0, 1)[0]
        t1 = topics_for_shard(tier, 1, 1)[0]
        publisher = client_homed_at_shard(tier, 0, exclude=(100,))
        tier.connect(100)
        tier.subscribe(100, (t0, t1))
        tier.connect(publisher)
        for i in range(4):
            tier.publish(publisher, (t0,), b"single-%d" % i)
            tier.publish(publisher, (t0, t1), b"multi-%d" % i)
        tier.step()
        home = tier._home[publisher]
        assert tier.sessions[publisher].retained > 0  # in-flight at the kill
        tier.fail_frontend(*home)
        assert tier._home[publisher] != home  # re-homed at a survivor
        for i in range(4, 6):
            tier.publish(publisher, (t0,), b"single-%d" % i)
            tier.publish(publisher, (t0, t1), b"multi-%d" % i)
        tier.run()
        session = tier.sessions[publisher]
        assert session.acked == session.next_seq - 1  # every publish acked
        assert session.retained == 0
        subscriber = tier.sessions[100]
        got = {d.payload for d in subscriber.delivered}
        expected = {b"single-%d" % i for i in range(6)} | {
            b"multi-%d" % i for i in range(6)
        }
        assert expected <= got  # nothing lost
        per_shard = {}
        for d in subscriber.delivered:
            per_shard.setdefault(d.shard, []).append((d.origin, d.origin_seq))
        for ids in per_shard.values():
            assert len(ids) == len(set(ids))  # no duplicates per stream
        assert audit_tier(tier, quiesced=True) == []

    def test_kill_delivery_agent_reanchors_stream(self):
        tier = build()
        t0 = topics_for_shard(tier, 0, 1)[0]
        publisher = client_homed_at_shard(tier, 1, exclude=(100,))
        tier.connect(100)
        tier.subscribe(100, (t0,))
        tier.connect(publisher)
        for i in range(3):
            tier.publish(publisher, (t0,), b"pre-%d" % i)
        tier.run()
        agent = tier._stream_member[(100, 0)]
        tier.fail_frontend(0, agent)
        session = tier.sessions[100]
        assert session.stream_epoch(0) == 1  # stream re-anchored
        assert tier._stream_member[(100, 0)] != agent
        for i in range(3):
            tier.publish(publisher, (t0,), b"post-%d" % i)
        tier.run()
        got = [d.payload for d in session.delivered]
        assert set(got) == {b"pre-%d" % i for i in range(3)} | {
            b"post-%d" % i for i in range(3)
        }
        assert len(got) == 6  # replayed history deduped, not repeated

    def test_majority_guard_refuses_fatal_kill(self):
        tier = build(members=3)
        tier.fail_frontend(0, 0)  # 2/3 left: still a majority
        with pytest.raises(ProtocolError):
            tier.fail_frontend(0, 1)  # 1/3 left would lose the quorum

    def test_double_kill_rejected(self):
        tier = build()
        tier.fail_frontend(0, 1)
        with pytest.raises(ProtocolError):
            tier.fail_frontend(0, 1)

    def test_failover_excludes_dead_members_from_roles(self):
        tier = build()
        tier.fail_frontend(0, 1)
        assert 1 not in tier.live_members(0)
        assert tier._bridge_agent(0) == min(tier.live_members(0))

    def test_reconnect_voluntary_rehello(self):
        tier = build()
        t0 = topics_for_shard(tier, 0, 1)[0]
        tier.connect(42)
        tier.publish(42, (t0,), b"before")
        tier.run()
        tier.reconnect(42)
        tier.publish(42, (t0,), b"after")
        tier.run()
        session = tier.sessions[42]
        assert session.acked == 2 and session.retained == 0

    def test_connect_avoids_dead_home(self):
        tier = build()
        victim_client = client_homed_at_shard(tier, 0)
        shard, member = tier.router.home_for(victim_client, tier.members)
        tier.fail_frontend(shard, member)
        tier.connect(victim_client)  # must not home at the corpse
        assert tier._home[victim_client][1] in tier.live_members(shard)


class TestTopicHandoff:
    def test_add_shard_moves_minority_and_loses_nothing(self):
        tier = ShardedService(4, members=3, seed=3)
        topics = [b"topic/%d" % i for i in range(32)]
        tier.connect(100)
        tier.subscribe(100, tuple(topics))
        tier.connect(7)
        for i, t in enumerate(topics):
            tier.publish(7, (t,), b"pre-%d" % i)
        tier.run()
        before = tier.router.assignment(topics)
        tier.add_shard()
        after = tier.router.assignment(topics)
        moved = [t for t in topics if before[t] != after[t]]
        # Consistent hashing: roughly 1/S of the topic space moves.
        assert 0 < len(moved) <= len(topics) // 2
        assert tier.moved_topics == len(moved)
        for i, t in enumerate(topics):
            tier.publish(7, (t,), b"post-%d" % i)
        tier.run()
        session = tier.sessions[100]
        got = {d.payload for d in session.delivered}
        assert {b"pre-%d" % i for i in range(32)} <= got
        assert {b"post-%d" % i for i in range(32)} <= got
        assert audit_tier(tier, quiesced=True) == []

    def test_remove_shard_hands_all_its_topics_over(self):
        tier = ShardedService(3, members=3, seed=5)
        topics = [b"topic/%d" % i for i in range(24)]
        tier.connect(100)
        tier.subscribe(100, tuple(topics))
        tier.connect(7)
        for i, t in enumerate(topics):
            tier.publish(7, (t,), b"a-%d" % i)
        tier.run()
        owned = [t for t in topics if tier.router.shard_for(t) == 1]
        tier.remove_shard(1)
        assert all(tier.router.shard_for(t) != 1 for t in topics)
        assert tier.moved_topics == len(owned)
        for i, t in enumerate(topics):
            tier.publish(7, (t,), b"b-%d" % i)
        tier.run()
        got = {d.payload for d in tier.sessions[100].delivered}
        assert {b"a-%d" % i for i in range(24)} <= got
        assert {b"b-%d" % i for i in range(24)} <= got

    def test_handoff_fences_cross_the_bridge(self):
        tier = ShardedService(2, members=3, seed=3)
        topics = [b"topic/%d" % i for i in range(16)]
        tier.connect(100)
        tier.subscribe(100, tuple(topics))
        tier.run()
        tier.add_shard()
        # Every (old, new) move pair pushed one marker through the
        # bridge; markers appear in the bridge logs as an auditable
        # causal fence under the reserved origin.
        fence_origins = {
            entry[0][0]
            for shard_logs in tier.bridge_logs().values()
            for log in shard_logs.values()
            for entry in log
        }
        assert HANDOFF_ORIGIN in fence_origins
        assert check_bridge_ordering(tier.bridge_logs()).violations == []

    def test_bridged_traffic_survives_kill_then_rebalance(self):
        tier = build(shards=2, members=5, seed=11)
        t0 = topics_for_shard(tier, 0, 1)[0]
        t1 = topics_for_shard(tier, 1, 1)[0]
        publisher = client_homed_at_shard(tier, 0, exclude=(100,))
        tier.connect(100)
        tier.subscribe(100, (t0, t1))
        tier.connect(publisher)
        for i in range(3):
            tier.publish(publisher, (t0, t1), b"m-%d" % i)
        tier.step()
        tier.fail_frontend(*tier._home[publisher])
        tier.add_shard()
        for i in range(3, 6):
            tier.publish(publisher, (t0, t1), b"m-%d" % i)
        tier.run()
        session = tier.sessions[publisher]
        assert session.acked == session.next_seq - 1
        assert check_bridge_ordering(tier.bridge_logs()).violations == []
        assert audit_tier(tier, quiesced=True) == []

    def test_remove_last_routable_shard_rejected(self):
        tier = ShardedService(2, members=3, seed=1)
        tier.remove_shard(0)
        with pytest.raises(ProtocolError):
            tier.remove_shard(1)
