"""Envelope byte format: round-trips, magic, bridge fields."""

import pytest

from repro.errors import WireFormatError
from repro.svc.envelope import ENVELOPE_MAGIC, Envelope


class TestRoundtrip:
    def test_plain(self):
        env = Envelope(7, 3, (b"a", b"b"), b"payload")
        assert Envelope.from_bytes(env.to_bytes()) == env
        assert not env.bridged

    def test_bridged(self):
        env = Envelope(2**60, 2**30, (b"t",), b"x").with_bridge(9, (0, 5))
        decoded = Envelope.from_bytes(env.to_bytes())
        assert decoded == env
        assert decoded.bridged and decoded.stamp == 9 and decoded.dests == (0, 5)

    def test_magic_first_byte(self):
        assert Envelope(1, 1, (b"t",)).to_bytes()[0] == ENVELOPE_MAGIC

    def test_msg_id(self):
        assert Envelope(4, 9, (b"t",)).msg_id == (4, 9)


class TestNonEnvelopes:
    def test_other_payloads_return_none(self):
        assert Envelope.from_bytes(b"") is None
        assert Envelope.from_bytes(b"\x01not an envelope") is None

    def test_bridged_needs_two_dests(self):
        with pytest.raises(WireFormatError):
            Envelope(1, 1, (b"t",), stamp=3, dests=(0,))
