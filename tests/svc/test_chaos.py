"""Failover/rebalance chaos scenarios (PROTOCOL §14.7-14.8)."""

from repro.harness.adversarial import SCENARIOS
from repro.svc.chaos import SVC_SCENARIOS, run_svc_scenario


class TestScenarioRuns:
    def test_frontend_failover_survives(self):
        result = run_svc_scenario("frontend-failover", seed=1)
        assert result.ok, [g for g in result.guarantees if g.verdict != "survived"]
        assert result.evidence["failovers"] == 2
        assert result.evidence["dropped_pdus"] == 0
        assert result.evidence["deliveries"] > 0

    def test_shard_rebalance_survives(self):
        result = run_svc_scenario("shard-rebalance", seed=1)
        assert result.ok, [g for g in result.guarantees if g.verdict != "survived"]
        assert result.evidence["moved_topics"] > 0
        # One fence crosses the bridge per (old, new) shard pair.
        assert result.evidence["bridged"] > 0

    def test_verdict_shape(self):
        result = run_svc_scenario("frontend-failover", seed=0)
        names = {g.guarantee for g in result.guarantees}
        assert names == {
            "causal-delivery",
            "bridge-ordering",
            "acked-durability",
            "stream-integrity",
        }
        for g in result.guarantees:
            assert g.expected == "survived"


class TestRegistry:
    def test_family_registered_with_adversarial_scenarios(self):
        assert set(SVC_SCENARIOS) <= set(SCENARIOS)
        assert set(SVC_SCENARIOS) == {
            "frontend-failover",
            "shard-rebalance",
            "failover-storm",
        }

    def test_registered_runner_executes(self):
        import asyncio

        run = SCENARIOS["frontend-failover"]
        result = asyncio.run(run(0, budget=1, round_interval=0.01))
        assert result.scenario == "frontend-failover"
        assert result.ok
