"""Tests for the promoted client-server group structure."""

import pytest

from repro.core.config import UrcgcConfig
from repro.errors import ConfigError, ProtocolError
from repro.harness.cluster import SimCluster
from repro.svc.groups import (
    CallHandle,
    ClientServerGroup,
    Role,
    first_reply,
    majority_vote,
)
from repro.types import ProcessId


def build_cs_cluster(n=4, servers=(0, 1), handler=None):
    """A SimCluster with ClientServerGroup adapters on every member."""
    cluster = SimCluster(UrcgcConfig(n=n), max_rounds=80)
    server_set = {ProcessId(s) for s in servers}
    handler = handler or (lambda client, body: b"ack:" + body)
    adapters = []
    for i in range(n):
        pid = ProcessId(i)
        role = Role.SERVER if pid in server_set else Role.CLIENT
        adapters.append(
            ClientServerGroup(
                cluster.services[i],
                role,
                server_set,
                handler=handler if role is Role.SERVER else None,
            )
        )
    return cluster, adapters


class TestVotingFunctions:
    def test_majority(self):
        assert majority_vote([b"a", b"b", b"a"]) == b"a"

    def test_majority_tie_deterministic(self):
        assert majority_vote([b"b", b"a"]) == majority_vote([b"a", b"b"])

    def test_first(self):
        assert first_reply([b"x", b"y"]) == b"x"

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            majority_vote([])
        with pytest.raises(ProtocolError):
            first_reply([])


class TestCallHandle:
    """Direct unit tests of the call resolution logic (no cluster)."""

    def test_resolves_at_h_replies(self):
        handle = CallHandle(1, 2, majority_vote)
        assert not handle.on_reply(ProcessId(0), b"x")
        assert not handle.resolved
        assert handle.on_reply(ProcessId(1), b"x")
        assert handle.resolved
        assert handle.result == b"x"
        assert handle.responders == [ProcessId(0), ProcessId(1)]

    def test_late_replies_ignored(self):
        handle = CallHandle(1, 1, first_reply)
        assert handle.on_reply(ProcessId(0), b"first")
        assert not handle.on_reply(ProcessId(1), b"late")
        assert handle.result == b"first"
        assert len(handle.replies) == 1

    def test_voting_folds_all_collected_replies(self):
        handle = CallHandle(1, 3, majority_vote)
        handle.on_reply(ProcessId(0), b"a")
        handle.on_reply(ProcessId(1), b"b")
        handle.on_reply(ProcessId(2), b"a")
        assert handle.result == b"a"


class _StubService:
    """Captures data_rq payloads; enough of UrcgcService for a role test."""

    class _Member:
        def __init__(self, pid):
            self.pid = pid

    def __init__(self, pid=0):
        self.member = self._Member(ProcessId(pid))
        self.sent = []
        self.handlers = []

    def data_rq(self, payload):
        self.sent.append(payload)

    def add_indication_handler(self, handler):
        self.handlers.append(handler)


class TestRoleLogic:
    """Direct unit tests of role checks via a stub service."""

    def test_client_call_submits_one_request(self):
        service = _StubService(pid=2)
        group = ClientServerGroup(
            service, Role.CLIENT, {ProcessId(0), ProcessId(1)}
        )
        group.call(b"payload")
        assert len(service.sent) == 1
        assert service.handlers  # registered composably, not exclusively

    def test_server_cannot_call_stub(self):
        service = _StubService(pid=0)
        group = ClientServerGroup(
            service, Role.SERVER, {ProcessId(0)}, handler=lambda c, b: b""
        )
        with pytest.raises(ProtocolError):
            group.call(b"nope")

    def test_foreign_payloads_skipped(self):
        """Traffic from other consumers of the member (e.g. a service
        frontend's envelopes) must not trip the call decoder."""
        from repro.core.mid import Mid
        from repro.core.message import UserMessage
        from repro.types import SeqNo

        service = _StubService(pid=1)
        group = ClientServerGroup(
            service, Role.CLIENT, {ProcessId(0)}
        )
        envelope_like = UserMessage(
            Mid(ProcessId(0), SeqNo(1)), (), bytes([0xE5]) + b"not ours"
        )
        group._on_indication(envelope_like)  # must not raise
        assert group.served_count == 0


class TestClientServer:
    def test_call_resolves_with_h_replies(self):
        cluster, adapters = build_cs_cluster()
        client = adapters[2]
        handle = client.call(b"read x", h=2, v=majority_vote)
        cluster.run_until_quiescent(drain_subruns=2)
        assert handle.resolved
        assert handle.result == b"ack:read x"
        assert len(handle.replies) >= 2
        assert set(handle.responders) <= {ProcessId(0), ProcessId(1)}

    def test_every_server_serves_each_call_once(self):
        cluster, adapters = build_cs_cluster()
        adapters[2].call(b"op")
        cluster.run_until_quiescent(drain_subruns=2)
        assert adapters[0].served_count == 1
        assert adapters[1].served_count == 1
        assert adapters[3].served_count == 0  # clients never serve

    def test_servers_process_calls_in_same_order(self):
        """Uniform ordering carries over: both servers see the two
        calls in the same causal order."""
        orders = {0: [], 1: []}

        def handler_for(sid):
            def handler(client, body):
                orders[sid].append(bytes(body))
                return b"ok"
            return handler

        cluster = SimCluster(UrcgcConfig(n=4), max_rounds=80)
        servers = {ProcessId(0), ProcessId(1)}
        adapters = []
        for i in range(4):
            pid = ProcessId(i)
            role = Role.SERVER if pid in servers else Role.CLIENT
            adapters.append(
                ClientServerGroup(
                    cluster.services[i],
                    role,
                    servers,
                    handler=handler_for(i) if role is Role.SERVER else None,
                )
            )
        adapters[2].call(b"first")
        adapters[3].call(b"second")
        cluster.run_until_quiescent(drain_subruns=2)
        assert sorted(orders[0]) == [b"first", b"second"]
        assert orders[0] == orders[1]

    def test_h_bounds_checked(self):
        _, adapters = build_cs_cluster()
        with pytest.raises(ConfigError):
            adapters[2].call(b"x", h=3)  # only 2 servers
        with pytest.raises(ConfigError):
            adapters[2].call(b"x", h=0)

    def test_config_validation(self):
        cluster = SimCluster(UrcgcConfig(n=3), max_rounds=10)
        with pytest.raises(ConfigError):
            ClientServerGroup(cluster.services[0], Role.SERVER, set())
        with pytest.raises(ConfigError):
            ClientServerGroup(
                cluster.services[0], Role.SERVER, {ProcessId(1)},
                handler=lambda c, b: b"",
            )
        with pytest.raises(ConfigError):
            ClientServerGroup(cluster.services[0], Role.SERVER, {ProcessId(0)})
