"""The cross-shard bridge: intersection-rule timestamp agreement."""

import pytest

from repro.errors import ConfigError, ProtocolError
from repro.svc.bridge import CausalBridge


class TestStamping:
    def test_stamps_strictly_increase_on_shared_destinations(self):
        bridge = CausalBridge(4)
        s1 = bridge.stamp((0, 1))
        s2 = bridge.stamp((1, 2))
        s3 = bridge.stamp((0, 2))
        assert s1 < s2 < s3  # every pair shares a destination

    def test_disjoint_destinations_may_tie(self):
        """The Generic-Multicast point: messages with disjoint
        destination sets exchange nothing, so their stamps may
        collide — no global sequencer."""
        bridge = CausalBridge(4)
        s1 = bridge.stamp((0, 1))
        s2 = bridge.stamp((2, 3))
        assert s1 == s2 == 1

    def test_decided_stamp_raises_all_destination_clocks(self):
        bridge = CausalBridge(3)
        bridge.stamp((0, 1))
        bridge.stamp((0, 1))  # clock[0] = clock[1] = 2
        decided = bridge.stamp((1, 2))  # proposals 3 and 1 -> max 3
        assert decided == 3
        assert bridge.clock(1) == 3
        assert bridge.clock(2) == 3
        assert bridge.clock(0) == 2  # not a destination: untouched

    def test_audit_log(self):
        bridge = CausalBridge(3)
        bridge.stamp((0, 2))
        bridge.stamp((1, 2))
        assert bridge.stamped == [(1, (0, 2)), (2, (1, 2))]


class TestValidation:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ConfigError):
            CausalBridge(0)

    def test_single_destination_rejected(self):
        with pytest.raises(ProtocolError):
            CausalBridge(2).stamp((0,))

    def test_duplicate_destinations_rejected(self):
        with pytest.raises(ProtocolError):
            CausalBridge(3).stamp((1, 1))
