"""The serve demo harness and its checker wiring."""

from repro.svc.serve import registry_report, serve


class TestServe:
    def test_small_run_clean(self):
        result = serve(
            shards=2, clients=10_000, sessions=6, messages=24, topics=16, seed=3
        )
        assert result.ok, result.violations
        assert result.deliveries > 0
        assert result.quiesced

    def test_client_scale_reported_from_registry(self):
        result = serve(
            shards=2, clients=500_000, sessions=4, messages=10, topics=8, seed=1
        )
        assert float(result.registry.gauge("svc.clients.registered")) == 500_000
        assert float(result.registry.gauge("svc.shards")) == 2

    def test_deterministic(self):
        a = serve(shards=2, clients=1000, sessions=5, messages=20, seed=7)
        b = serve(shards=2, clients=1000, sessions=5, messages=20, seed=7)
        assert a.deliveries == b.deliveries
        assert a.bridged == b.bridged
        assert a.pdus_moved == b.pdus_moved

    def test_multi_ratio_zero_never_bridges(self):
        result = serve(
            shards=4, clients=1000, sessions=6, messages=30, multi_ratio=0.0, seed=2
        )
        assert result.bridged == 0
        assert result.ok

    def test_report_renders(self):
        result = serve(shards=2, clients=1000, sessions=4, messages=10, seed=5)
        report = registry_report(result.registry)
        assert "svc.clients.registered" in report
        assert "svc.deliver" in report


class TestServeCli:
    def test_cli_smoke(self, tmp_path, capsys):
        from repro.harness.runner import main

        report_path = tmp_path / "serve-report.txt"
        code = main(
            [
                "serve",
                "--shards", "2",
                "--clients", "50000",
                "--sessions", "6",
                "--messages", "20",
                "--report", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve[OK]" in out
        assert report_path.read_text().startswith("serve[OK]")
