"""Client session state machine: lifecycle, windows, stream cursors."""

import pytest

from repro.errors import FlowControlBlocked, ProtocolError
from repro.svc.session import ClientSession, SessionState
from repro.svc.wire import ACK_DELIVER, ACK_PUBLISH, ClientAck, ClientDeliver


def active_session(client_id=7, credit=4):
    session = ClientSession(client_id, credit=credit)
    hello = session.hello()
    session.on_ack(ClientAck(ACK_PUBLISH, client_id, 0, hello.resume_seq, credit))
    assert session.state is SessionState.ACTIVE
    return session


class TestLifecycle:
    def test_hello_moves_to_connecting(self):
        session = ClientSession(1)
        hello = session.hello()
        assert session.state is SessionState.CONNECTING
        assert hello.client_id == 1
        assert hello.resume_seq == 0

    def test_hello_twice_rejected(self):
        session = ClientSession(1)
        session.hello()
        with pytest.raises(ProtocolError):
            session.hello()

    def test_publish_before_active_rejected(self):
        session = ClientSession(1)
        with pytest.raises(ProtocolError):
            session.publish((b"t",), b"x")

    def test_first_ack_activates(self):
        session = ClientSession(1)
        session.hello()
        session.on_ack(ClientAck(ACK_PUBLISH, 1, 0, 0, 8))
        assert session.state is SessionState.ACTIVE
        assert session.window == 8

    def test_close(self):
        session = active_session()
        session.close()
        assert session.state is SessionState.CLOSED


class TestPublishWindow:
    def test_sequences_are_contiguous(self):
        session = active_session()
        pubs = [session.publish((b"t",), b"%d" % i) for i in range(3)]
        assert [p.client_seq for p in pubs] == [1, 2, 3]

    def test_window_full_queues(self):
        session = active_session(credit=2)
        assert session.publish((b"t",), b"1") is not None
        assert session.publish((b"t",), b"2") is not None
        assert session.publish((b"t",), b"3") is None  # queued
        assert session.queued == 1
        assert session.outstanding == 2

    def test_try_publish_raises_when_blocked(self):
        session = active_session(credit=1)
        session.try_publish((b"t",), b"1")
        with pytest.raises(FlowControlBlocked):
            session.try_publish((b"t",), b"2")

    def test_ack_releases_queued_in_order(self):
        session = active_session(credit=1)
        session.publish((b"t",), b"1")
        session.publish((b"t",), b"2")
        session.publish((b"t",), b"3")
        released = session.on_ack(ClientAck(ACK_PUBLISH, 7, 0, 1, 1))
        assert [p.payload for p in released] == [b"2"]
        released = session.on_ack(ClientAck(ACK_PUBLISH, 7, 0, 2, 1))
        assert [p.payload for p in released] == [b"3"]

    def test_ack_beyond_sent_rejected(self):
        session = active_session()
        with pytest.raises(ProtocolError):
            session.on_ack(ClientAck(ACK_PUBLISH, 7, 0, 5, 4))

    def test_forged_oversized_credit_rejected(self):
        # T601 regression: the wire-decoded credit used to flow into
        # self.window unvalidated, so a forged ack could widen the
        # window beyond what the HELLO requested and let the client
        # over-publish past the frontend's admission bound.
        session = active_session(credit=4)
        with pytest.raises(ProtocolError, match="exceeds requested"):
            session.on_ack(ClientAck(ACK_PUBLISH, 7, 0, 0, 4096))
        assert session.window == 4  # the forged grant did not bind

    def test_credit_shrink_honored(self):
        # The frontend may legitimately grant less than requested.
        session = active_session(credit=4)
        session.on_ack(ClientAck(ACK_PUBLISH, 7, 0, 0, 2))
        assert session.window == 2

    def test_queue_preserves_fifo_even_with_window_room(self):
        """A queued backlog keeps new publishes behind it (client FIFO)."""
        session = active_session(credit=1)
        session.publish((b"t",), b"1")
        assert session.publish((b"t",), b"2") is None
        assert session.publish((b"t",), b"3") is None
        assert session.queued == 2


class TestDeliveryStreams:
    def test_contiguous_per_shard_cursors(self):
        session = active_session()
        ack = session.on_deliver(ClientDeliver(7, 3, 1, 9, 1, b"t", b"a"))
        assert ack is not None and ack.kind == ACK_DELIVER and ack.ack_seq == 1
        session.on_deliver(ClientDeliver(7, 3, 2, 9, 2, b"t", b"b"))
        session.on_deliver(ClientDeliver(7, 8, 1, 9, 3, b"t", b"c"))
        assert session.deliver_cursor(3) == 2
        assert session.deliver_cursor(8) == 1
        assert [d.payload for d in session.delivered] == [b"a", b"b", b"c"]

    def test_gap_rejected(self):
        session = active_session()
        session.on_deliver(ClientDeliver(7, 3, 1, 9, 1, b"t"))
        with pytest.raises(ProtocolError):
            session.on_deliver(ClientDeliver(7, 3, 3, 9, 2, b"t"))

    def test_manual_ack_mode(self):
        session = ClientSession(7, auto_ack=False)
        session.hello()
        session.on_ack(ClientAck(ACK_PUBLISH, 7, 0, 0, 4))
        assert session.on_deliver(ClientDeliver(7, 3, 1, 9, 1, b"t")) is None
        ack = session.ack_delivers(3)
        assert ack.ack_seq == 1 and ack.shard == 3

    def test_foreign_pdu_rejected(self):
        session = active_session()
        with pytest.raises(ProtocolError):
            session.on_deliver(ClientDeliver(8, 3, 1, 9, 1, b"t"))
        with pytest.raises(ProtocolError):
            session.on_ack(ClientAck(ACK_PUBLISH, 8, 0, 0, 4))


class TestReopenAndFailover:
    def test_reopen_from_active(self):
        # Regression: hello() used to raise from any non-IDLE state,
        # making a dead frontend unrecoverable; only a HELLO already in
        # flight (CONNECTING) is invalid now.
        session = active_session()
        hello = session.hello()
        assert session.state is SessionState.CONNECTING
        assert hello.resume_seq == 0 and hello.acked_seq == 0

    def test_reopen_from_closed(self):
        session = active_session()
        session.close()
        session.hello()
        assert session.state is SessionState.CONNECTING

    def test_hello_carries_both_frontiers(self):
        session = active_session(credit=8)
        for i in range(3):
            session.publish((b"t",), b"%d" % i)
        session.on_ack(ClientAck(ACK_PUBLISH, 7, 0, 1, 8))
        hello = session.hello()
        assert hello.resume_seq == 3  # sent frontier
        assert hello.acked_seq == 1  # durable frontier

    def test_resume_replays_unacked_past_offer(self):
        session = active_session(credit=8)
        sent = [session.publish((b"t",), b"%d" % i) for i in range(4)]
        session.on_ack(ClientAck(ACK_PUBLISH, 7, 0, 1, 8))
        session.hello()
        # The frontend's offer says it accepted up to seq 1: replay 2-4.
        replay = session.on_ack(ClientAck(ACK_PUBLISH, 7, 0, 1, 8, resume_seq=1))
        assert [p.client_seq for p in replay] == [2, 3, 4]
        assert replay == sent[1:]
        assert session.state is SessionState.ACTIVE

    def test_acked_publishes_are_pruned_from_replay_buffer(self):
        session = active_session(credit=8)
        for i in range(3):
            session.publish((b"t",), b"%d" % i)
        assert session.retained == 3
        session.on_ack(ClientAck(ACK_PUBLISH, 7, 0, 3, 8))
        assert session.retained == 0

    def test_resume_offer_beyond_sent_rejected(self):
        session = active_session(credit=8)
        session.publish((b"t",), b"x")
        session.hello()
        with pytest.raises(ProtocolError):
            session.on_ack(ClientAck(ACK_PUBLISH, 7, 0, 0, 8, resume_seq=5))


class TestConnectingDelivers:
    def test_deliver_during_connecting_accepted(self):
        # Regression: a fan-out deliver racing the hello-ack used to
        # raise and kill the session; it is a legitimate interleaving
        # over any real transport.
        session = ClientSession(7, credit=4)
        session.hello()
        ack = session.on_deliver(ClientDeliver(7, 0, 1, 9, 1, b"t", b"x"))
        assert ack is not None and ack.kind == ACK_DELIVER
        assert len(session.delivered) == 1
        assert session.state is SessionState.CONNECTING

    def test_deliver_in_idle_still_rejected(self):
        session = ClientSession(7, credit=4)
        with pytest.raises(ProtocolError):
            session.on_deliver(ClientDeliver(7, 0, 1, 9, 1, b"t", b"x"))


class TestStaleAckWindow:
    def test_stale_ack_does_not_shrink_window(self):
        # Regression: a reordered stale ack (lower ack_seq, older credit
        # snapshot) used to unconditionally rebind the window.
        session = active_session(credit=8)
        for i in range(4):
            session.publish((b"t",), b"%d" % i)
        session.on_ack(ClientAck(ACK_PUBLISH, 7, 0, 3, 8))
        assert session.window == 8
        session.on_ack(ClientAck(ACK_PUBLISH, 7, 0, 1, 2))  # stale + tiny credit
        assert session.window == 8  # not rebound
        assert session.acked == 3  # cumulative frontier kept

    def test_fresh_ack_still_rebinds_window(self):
        session = active_session(credit=8)
        session.publish((b"t",), b"x")
        session.on_ack(ClientAck(ACK_PUBLISH, 7, 0, 1, 4))
        assert session.window == 4


class TestStreamEpochs:
    def deliver(self, session, seq, *, shard=0, origin=9, origin_seq=None, epoch=0):
        return session.on_deliver(
            ClientDeliver(
                session.client_id, shard, seq, origin,
                origin_seq if origin_seq is not None else seq, b"t", b"p%d" % seq,
                epoch=epoch,
            )
        )

    def test_reanchor_bumps_epoch_and_resets_cursor(self):
        session = active_session()
        self.deliver(session, 1)
        self.deliver(session, 2)
        epoch = session.reanchor(0)
        assert epoch == 1 and session.stream_epoch(0) == 1
        assert session.deliver_cursor(0) == 0

    def test_stale_epoch_straggler_dropped(self):
        session = active_session()
        self.deliver(session, 1)
        session.reanchor(0)
        # A dead frontend's straggler from epoch 0 arrives late.
        assert self.deliver(session, 2, epoch=0) is None
        assert len(session.delivered) == 1

    def test_future_epoch_rejected(self):
        session = active_session()
        with pytest.raises(ProtocolError):
            self.deliver(session, 1, epoch=3)

    def test_replayed_history_deduped_by_content(self):
        session = active_session()
        self.deliver(session, 1, origin_seq=1)
        self.deliver(session, 2, origin_seq=2)
        epoch = session.reanchor(0)
        # The successor replays its whole log: seqs restart at 1, the
        # first two are content the client already has.
        self.deliver(session, 1, origin_seq=1, epoch=epoch)
        self.deliver(session, 2, origin_seq=2, epoch=epoch)
        self.deliver(session, 3, origin_seq=3, epoch=epoch)
        assert session.dup_filtered == 2
        assert [d.origin_seq for d in session.delivered] == [1, 2, 3]

    def test_deliver_ack_carries_epoch(self):
        session = active_session()
        epoch = session.reanchor(0)
        ack = self.deliver(session, 1, epoch=epoch)
        assert ack.epoch == epoch
