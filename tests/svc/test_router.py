"""Consistent-hash shard routing: stability, balance, health."""

import pytest

from repro.errors import ConfigError, ProtocolError
from repro.svc.router import ShardRouter


class TestRouting:
    def test_deterministic(self):
        a, b = ShardRouter(8), ShardRouter(8)
        for i in range(200):
            topic = b"topic-%d" % i
            assert a.shard_for(topic) == b.shard_for(topic)

    def test_all_shards_receive_some_topics(self):
        router = ShardRouter(8)
        owners = {router.shard_for(b"t%d" % i) for i in range(2000)}
        assert owners == set(range(8))

    def test_balance_roughly_uniform(self):
        router = ShardRouter(4, replicas=128)
        counts = [0] * 4
        for i in range(4000):
            counts[router.shard_for(b"topic-%d" % i)] += 1
        assert min(counts) > 400  # each shard gets a real share of 4000

    def test_adding_a_shard_moves_a_minority(self):
        """The consistent-hashing property: growing S by one remaps
        roughly 1/S of the topic space, not all of it."""
        before, after = ShardRouter(8), ShardRouter(9)
        moved = sum(
            1
            for i in range(4000)
            if before.shard_for(b"t%d" % i) != after.shard_for(b"t%d" % i)
        )
        assert moved < 4000 * 0.35

    def test_shards_for_sorted_unique(self):
        router = ShardRouter(4)
        dests = router.shards_for([b"a", b"b", b"c", b"a"])
        assert dests == tuple(sorted(set(dests)))

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ShardRouter(0)
        with pytest.raises(ConfigError):
            ShardRouter(1, replicas=0)


class TestPlacement:
    def test_home_stable_and_in_range(self):
        router = ShardRouter(16)
        for client in (0, 1, 2**40, 2**63):
            shard, member = router.home_for(client, 5)
            assert 0 <= shard < 16 and 0 <= member < 5
            assert router.home_for(client, 5) == (shard, member)

    def test_ingress_member_avoids_bridge_agent(self):
        router = ShardRouter(4)
        members = {router.ingress_member(c, 5) for c in range(500)}
        assert 0 not in members
        assert members <= {1, 2, 3, 4}

    def test_ingress_single_member_group(self):
        assert ShardRouter(2).ingress_member(42, 1) == 0


class TestRingChanges:
    def test_add_shard_matches_fresh_router(self):
        grown = ShardRouter(8)
        assert grown.add_shard() == 8
        fresh = ShardRouter(9)
        for i in range(500):
            topic = b"t%d" % i
            assert grown.shard_for(topic) == fresh.shard_for(topic)

    def test_add_shard_delta_targets_only_new_shard(self):
        router = ShardRouter(4)
        topics = [b"t%d" % i for i in range(1000)]
        before = router.assignment(topics)
        new = router.add_shard()
        delta = router.ownership_delta(before, router.assignment(topics))
        assert delta  # growth must claim something at this scale
        assert all(dst == new for _, dst in delta.values())
        assert len(delta) < len(topics) * 0.5

    def test_remove_shard_delta_sources_only_removed_shard(self):
        router = ShardRouter(4)
        topics = [b"t%d" % i for i in range(1000)]
        before = router.assignment(topics)
        router.remove_shard(2)
        after = router.assignment(topics)
        delta = router.ownership_delta(before, after)
        assert all(src == 2 for src, _ in delta.values())
        assert set(delta) == {t for t in topics if before[t] == 2}
        assert 2 not in after.values()

    def test_remove_shard_is_permanent(self):
        router = ShardRouter(3)
        router.remove_shard(1)
        assert router.is_removed(1)
        with pytest.raises(ProtocolError):
            router.remove_shard(1)
        router.mark_healthy(1)  # health bits cannot resurrect it
        assert not router.is_healthy(1)
        assert 1 not in router.healthy_shards()

    def test_remove_validation(self):
        router = ShardRouter(2)
        with pytest.raises(ConfigError):
            router.remove_shard(5)
        router.remove_shard(0)
        with pytest.raises(ProtocolError):
            router.remove_shard(1)  # would empty the ring

    def test_home_for_skips_removed_shards(self):
        router = ShardRouter(4)
        router.remove_shard(0)
        homes = {router.home_for(c, 3)[0] for c in range(300)}
        assert 0 not in homes and homes <= {1, 2, 3}

    def test_ownership_delta_ignores_unchanged_and_unknown(self):
        delta = ShardRouter.ownership_delta(
            {b"a": 0, b"b": 1, b"c": 2}, {b"a": 0, b"b": 2}
        )
        assert delta == {b"b": (1, 2)}


class TestFailoverPlacement:
    def test_successor_member_sticky_over_survivors(self):
        router = ShardRouter(2)
        alive = [0, 2, 3, 4]
        pick = router.successor_member(42, alive)
        assert pick in alive
        assert router.successor_member(42, list(reversed(alive))) == pick
        with pytest.raises(ProtocolError):
            router.successor_member(42, [])

    def test_ingress_member_alive_aware(self):
        router = ShardRouter(2)
        # Full pool behaves exactly like the default overload.
        for client in range(100):
            assert router.ingress_member(
                client, 5, alive=[0, 1, 2, 3, 4]
            ) == router.ingress_member(client, 5)
        # A shrunken pool still avoids its own (lowest-live) bridge agent.
        picks = {router.ingress_member(c, 5, alive=[1, 3, 4]) for c in range(300)}
        assert picks <= {3, 4}
        assert router.ingress_member(7, 5, alive=[2]) == 2
        with pytest.raises(ProtocolError):
            router.ingress_member(7, 5, alive=[])


class TestHealth:
    def test_unhealthy_shard_skipped(self):
        router = ShardRouter(4)
        topic = b"some-topic"
        owner = router.shard_for(topic)
        router.mark_unhealthy(owner)
        rerouted = router.shard_for(topic)
        assert rerouted != owner
        router.mark_healthy(owner)
        assert router.shard_for(topic) == owner

    def test_no_healthy_shard_raises(self):
        router = ShardRouter(2)
        router.mark_unhealthy(0)
        router.mark_unhealthy(1)
        with pytest.raises(ProtocolError):
            router.shard_for(b"t")

    def test_observe_health_majority_rule(self):
        router = ShardRouter(3)
        assert router.observe_health(0, members=3, suspected=1)
        assert not router.observe_health(0, members=3, suspected=2)
        assert router.healthy_shards() == (1, 2)
        assert router.observe_health(0, members=3, suspected=[])
        assert router.is_healthy(0)

    def test_observe_health_accepts_collections(self):
        router = ShardRouter(2)
        assert not router.observe_health(1, members=4, suspected=[0, 1, 1, 2])
