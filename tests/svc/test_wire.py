"""Wire round-trips and validation for the client-tier PDUs."""

import pytest

from repro.errors import WireFormatError
from repro.net.wire import decode_message, encode_message
from repro.svc.wire import (
    ACK_DELIVER,
    ACK_PUBLISH,
    MAX_TOPIC_LEN,
    MAX_TOPICS,
    ClientAck,
    ClientDeliver,
    ClientHello,
    ClientPublish,
)


def roundtrip(pdu):
    decoded = decode_message(encode_message(pdu))
    assert decoded == pdu
    return decoded


class TestRoundtrips:
    def test_hello(self):
        roundtrip(ClientHello(1, credit=32, resume_seq=0))
        roundtrip(ClientHello(2**63, credit=65535, resume_seq=2**31))

    def test_publish(self):
        roundtrip(ClientPublish(9, 1, (b"a",), b""))
        roundtrip(
            ClientPublish(
                2**40, 2**31, tuple(b"t%d" % i for i in range(MAX_TOPICS)), b"x" * 512
            )
        )

    def test_deliver(self):
        roundtrip(ClientDeliver(5, 0, 1, 7, 1, b"topic"))
        roundtrip(ClientDeliver(2**50, 65535, 2**31, 2**50, 2**31, b"t", b"payload"))

    def test_ack_both_kinds(self):
        roundtrip(ClientAck(ACK_PUBLISH, 1, 0, 4, 32))
        roundtrip(ClientAck(ACK_DELIVER, 2**60, 12, 99, 0))


class TestValidation:
    def test_hello_credit_bounds(self):
        with pytest.raises(WireFormatError):
            ClientHello(1, credit=0)
        with pytest.raises(WireFormatError):
            ClientHello(1, credit=65536)

    def test_publish_needs_positive_seq(self):
        with pytest.raises(WireFormatError):
            ClientPublish(1, 0, (b"a",))

    def test_publish_topic_count_bounds(self):
        with pytest.raises(WireFormatError):
            ClientPublish(1, 1, ())
        with pytest.raises(WireFormatError):
            ClientPublish(1, 1, tuple(b"t%d" % i for i in range(MAX_TOPICS + 1)))

    def test_publish_topics_distinct(self):
        with pytest.raises(WireFormatError):
            ClientPublish(1, 1, (b"a", b"a"))

    def test_publish_topic_length_bounds(self):
        with pytest.raises(WireFormatError):
            ClientPublish(1, 1, (b"",))
        with pytest.raises(WireFormatError):
            ClientPublish(1, 1, (b"x" * (MAX_TOPIC_LEN + 1),))

    def test_ack_kind_checked(self):
        with pytest.raises(WireFormatError):
            ClientAck(2, 1, 0, 0, 0)

    def test_truncated_bytes_rejected(self):
        data = encode_message(ClientPublish(1, 1, (b"a",), b"payload"))
        with pytest.raises(WireFormatError):
            decode_message(data[:-3])
