"""Frontend state machine tests against a stub service (no cluster)."""

import pytest

from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.errors import FlowControlBlocked, ProtocolError
from repro.svc.envelope import Envelope
from repro.svc.frontend import Frontend
from repro.svc.wire import (
    ACK_DELIVER,
    ACK_PUBLISH,
    ClientAck,
    ClientDeliver,
    ClientHello,
    ClientPublish,
)
from repro.types import ProcessId, SeqNo


class _StubService:
    class _Member:
        def __init__(self, pid):
            self.pid = pid

    def __init__(self, pid=0):
        self.member = self._Member(ProcessId(pid))
        self.submitted = []
        self.handlers = []

    def data_rq(self, payload):
        self.submitted.append(payload)

    def add_indication_handler(self, handler):
        self.handlers.append(handler)

    def indicate(self, payload, origin=0, seq=1):
        """Simulate a causal indication reaching the member."""
        message = UserMessage(Mid(ProcessId(origin), SeqNo(seq)), (), payload)
        for handler in self.handlers:
            handler(message)


def build(member=1, **kw):
    service = _StubService(pid=member)
    return Frontend(0, member, service, **kw), service


class TestHomeRole:
    def test_hello_then_contiguous_publishes(self):
        frontend, _ = build()
        ack = frontend.on_hello(ClientHello(9, credit=8))
        assert ack.kind == ACK_PUBLISH and ack.ack_seq == 0
        env = frontend.on_publish(ClientPublish(9, 1, (b"t",), b"x"))
        assert env.msg_id == (9, 1)
        frontend.on_publish(ClientPublish(9, 2, (b"t",), b"y"))

    def test_grant_is_capped(self):
        frontend, _ = build(grant_credit=4)
        ack = frontend.on_hello(ClientHello(9, credit=1000))
        assert ack.credit == 4

    def test_resume_must_match(self):
        frontend, _ = build()
        frontend.on_hello(ClientHello(9, credit=8))
        frontend.on_publish(ClientPublish(9, 1, (b"t",)))
        with pytest.raises(ProtocolError):
            frontend.on_hello(ClientHello(9, credit=8, resume_seq=5))
        # matching resume re-acks the frontier
        ack = frontend.on_hello(ClientHello(9, credit=8, resume_seq=1))
        assert ack.ack_seq == 0  # nothing processed yet

    def test_gap_and_unknown_session_rejected(self):
        frontend, _ = build()
        with pytest.raises(ProtocolError):
            frontend.on_publish(ClientPublish(9, 1, (b"t",)))
        frontend.on_hello(ClientHello(9, credit=8))
        with pytest.raises(ProtocolError):
            frontend.on_publish(ClientPublish(9, 2, (b"t",)))

    def test_window_overrun_blocked(self):
        frontend, _ = build(grant_credit=2)
        frontend.on_hello(ClientHello(9, credit=2))
        frontend.on_publish(ClientPublish(9, 1, (b"t",)))
        frontend.on_publish(ClientPublish(9, 2, (b"t",)))
        with pytest.raises(FlowControlBlocked):
            frontend.on_publish(ClientPublish(9, 3, (b"t",)))

    def test_cumulative_ack_waits_for_contiguity(self):
        frontend, _ = build()
        frontend.on_hello(ClientHello(9, credit=8))
        for seq in (1, 2, 3):
            frontend.on_publish(ClientPublish(9, seq, (b"t",)))
        # seq 2 processed before seq 1: no ack yet
        frontend.on_processed_elsewhere(Envelope(9, 2, (b"t",)))
        assert frontend.drain_outbox() == []
        frontend.on_processed_elsewhere(Envelope(9, 1, (b"t",)))
        out = frontend.drain_outbox()
        assert len(out) == 1
        _, ack = out[0]
        assert ack.ack_seq == 2  # frontier jumped over the gap


class TestInjection:
    def test_inject_submits_envelope_bytes(self):
        frontend, service = build()
        env = Envelope(9, 1, (b"t",), b"x")
        frontend.inject(env)
        assert service.submitted == [env.to_bytes()]

    def test_processed_hook_fires_once(self):
        seen = []
        service = _StubService(pid=1)
        frontend = Frontend(0, 1, service, on_processed=seen.append)
        env = Envelope(9, 1, (b"t",), b"x")
        frontend.inject(env)
        service.indicate(env.to_bytes())
        service.indicate(env.to_bytes())  # not pending anymore
        assert seen == [env]

    def test_non_envelope_payloads_ignored(self):
        frontend, service = build()
        service.indicate(b"\x01ordinary traffic")
        assert frontend.drain_outbox() == []

    def test_bridged_envelopes_logged(self):
        frontend, service = build()
        env = Envelope(9, 1, (b"t",), b"x").with_bridge(3, (0, 1))
        service.indicate(env.to_bytes())
        assert frontend.bridge_log == [env]


class TestDeliveryRole:
    def test_fanout_to_matching_streams(self):
        frontend, service = build()
        frontend.subscribe(5, {b"a"})
        frontend.subscribe(6, {b"a", b"b"})
        service.indicate(Envelope(9, 1, (b"a",), b"x").to_bytes())
        out = frontend.drain_outbox()
        assert {cid for cid, _ in out} == {5, 6}
        for _, deliver in out:
            assert isinstance(deliver, ClientDeliver)
            assert deliver.deliver_seq == 1 and deliver.topic == b"a"

    def test_window_parks_and_ack_unparks(self):
        frontend, service = build(deliver_window=2)
        frontend.subscribe(5, {b"t"})
        for seq in range(1, 5):
            service.indicate(Envelope(9, seq, (b"t",), b"%d" % seq).to_bytes(), seq=seq)
        out = frontend.drain_outbox()
        assert [d.deliver_seq for _, d in out] == [1, 2]  # window = 2
        frontend.on_deliver_ack(ClientAck(ACK_DELIVER, 5, 0, 2, 0))
        out = frontend.drain_outbox()
        assert [d.deliver_seq for _, d in out] == [3, 4]

    def test_deliver_ack_validation(self):
        frontend, _ = build()
        frontend.subscribe(5, {b"t"})
        with pytest.raises(ProtocolError):
            frontend.on_deliver_ack(ClientAck(ACK_PUBLISH, 5, 0, 0, 8))
        with pytest.raises(ProtocolError):
            frontend.on_deliver_ack(ClientAck(ACK_DELIVER, 6, 0, 0, 0))
        with pytest.raises(ProtocolError):
            frontend.on_deliver_ack(ClientAck(ACK_DELIVER, 5, 0, 3, 0))

    def test_subscribe_widens_topics(self):
        frontend, service = build()
        frontend.subscribe(5, {b"a"})
        frontend.subscribe(5, {b"b"})
        service.indicate(Envelope(9, 1, (b"b",), b"x").to_bytes())
        assert len(frontend.drain_outbox()) == 1
