"""Frontend state machine tests against a stub service (no cluster)."""

import pytest

from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.errors import FlowControlBlocked, ProtocolError
from repro.svc.envelope import Envelope
from repro.svc.frontend import Frontend
from repro.svc.wire import (
    ACK_DELIVER,
    ACK_PUBLISH,
    ClientAck,
    ClientDeliver,
    ClientHello,
    ClientPublish,
)
from repro.types import ProcessId, SeqNo


class _StubService:
    class _Member:
        def __init__(self, pid):
            self.pid = pid

    def __init__(self, pid=0):
        self.member = self._Member(ProcessId(pid))
        self.submitted = []
        self.handlers = []

    def data_rq(self, payload):
        self.submitted.append(payload)

    def add_indication_handler(self, handler):
        self.handlers.append(handler)

    def indicate(self, payload, origin=0, seq=1):
        """Simulate a causal indication reaching the member."""
        message = UserMessage(Mid(ProcessId(origin), SeqNo(seq)), (), payload)
        for handler in self.handlers:
            handler(message)


def build(member=1, **kw):
    service = _StubService(pid=member)
    return Frontend(0, member, service, **kw), service


class TestHomeRole:
    def test_hello_then_contiguous_publishes(self):
        frontend, _ = build()
        ack = frontend.on_hello(ClientHello(9, credit=8))
        assert ack.kind == ACK_PUBLISH and ack.ack_seq == 0
        env = frontend.on_publish(ClientPublish(9, 1, (b"t",), b"x"))
        assert env.msg_id == (9, 1)
        frontend.on_publish(ClientPublish(9, 2, (b"t",), b"y"))

    def test_grant_is_capped(self):
        frontend, _ = build(grant_credit=4)
        ack = frontend.on_hello(ClientHello(9, credit=1000))
        assert ack.credit == 4

    def test_resume_is_negotiated(self):
        frontend, _ = build()
        frontend.on_hello(ClientHello(9, credit=8))
        frontend.on_publish(ClientPublish(9, 1, (b"t",)))
        # A client that lost accepted state cannot resume (it can never
        # replay publishes it no longer remembers sending).
        with pytest.raises(ProtocolError):
            frontend.on_hello(ClientHello(9, credit=8, resume_seq=0))
        # Claiming acks beyond what was granted is a forgery.
        with pytest.raises(ProtocolError):
            frontend.on_hello(ClientHello(9, credit=8, resume_seq=5, acked_seq=2))
        # A client ahead of the frontend (publishes lost on the wire)
        # is legal: the ack answers with the accepted frontier and the
        # client replays the difference.
        ack = frontend.on_hello(ClientHello(9, credit=8, resume_seq=5))
        assert ack.resume_seq == 1 and ack.ack_seq == 0
        # Matching resume re-acks the frontier.
        ack = frontend.on_hello(ClientHello(9, credit=8, resume_seq=1))
        assert ack.resume_seq == 1 and ack.ack_seq == 0

    def test_unknown_session_resume_adopts_acked_not_claimed(self):
        # A successor frontend with no record of the session must not
        # trust the client's sent frontier: it adopts the *acked*
        # frontier (durable by construction) and asks for a replay of
        # everything past it.
        frontend, _ = build()
        ack = frontend.on_hello(ClientHello(9, credit=8, resume_seq=7, acked_seq=3))
        assert ack.resume_seq == 3 and ack.ack_seq == 3
        # The replayed publishes then continue the accepted chain.
        env = frontend.on_publish(ClientPublish(9, 4, (b"t",), b"x"))
        assert env.msg_id == (9, 4)

    def test_gap_and_unknown_session_rejected(self):
        frontend, _ = build()
        with pytest.raises(ProtocolError):
            frontend.on_publish(ClientPublish(9, 1, (b"t",)))
        frontend.on_hello(ClientHello(9, credit=8))
        with pytest.raises(ProtocolError):
            frontend.on_publish(ClientPublish(9, 2, (b"t",)))

    def test_window_overrun_blocked(self):
        frontend, _ = build(grant_credit=2)
        frontend.on_hello(ClientHello(9, credit=2))
        frontend.on_publish(ClientPublish(9, 1, (b"t",)))
        frontend.on_publish(ClientPublish(9, 2, (b"t",)))
        with pytest.raises(FlowControlBlocked):
            frontend.on_publish(ClientPublish(9, 3, (b"t",)))

    def test_cumulative_ack_waits_for_contiguity(self):
        frontend, _ = build()
        frontend.on_hello(ClientHello(9, credit=8))
        for seq in (1, 2, 3):
            frontend.on_publish(ClientPublish(9, seq, (b"t",)))
        # seq 2 processed before seq 1: no ack yet
        frontend.on_processed_elsewhere(Envelope(9, 2, (b"t",)))
        assert frontend.drain_outbox() == []
        frontend.on_processed_elsewhere(Envelope(9, 1, (b"t",)))
        out = frontend.drain_outbox()
        assert len(out) == 1
        _, ack = out[0]
        assert ack.ack_seq == 2  # frontier jumped over the gap


class TestInjection:
    def test_inject_submits_envelope_bytes(self):
        frontend, service = build()
        env = Envelope(9, 1, (b"t",), b"x")
        frontend.inject(env)
        assert service.submitted == [env.to_bytes()]

    def test_processed_hook_fires_once(self):
        seen = []
        service = _StubService(pid=1)
        frontend = Frontend(
            0, 1, service, on_processed=lambda env, shard: seen.append((env, shard))
        )
        env = Envelope(9, 1, (b"t",), b"x")
        frontend.inject(env)
        service.indicate(env.to_bytes())
        service.indicate(env.to_bytes())  # not pending anymore
        assert seen == [(env, 0)]

    def test_duplicate_indication_deduped_but_counted_processed(self):
        # A failover re-injection: the pending copy still resolves (the
        # hook fires) but the fan-out must not repeat the delivery.
        seen = []
        service = _StubService(pid=1)
        frontend = Frontend(
            0, 1, service, on_processed=lambda env, shard: seen.append(env)
        )
        frontend.subscribe(5, {b"t"})
        env = Envelope(9, 1, (b"t",), b"x")
        service.indicate(env.to_bytes(), seq=1)  # original copy, not pending here
        frontend.inject(env)  # salvaged re-injection
        service.indicate(env.to_bytes(), seq=2)
        assert seen == [env]  # the re-injection resolved
        out = [d for _, d in frontend.drain_outbox()]
        assert len(out) == 1  # but only one delivery went out
        assert frontend.processed_log == [env]

    def test_non_envelope_payloads_ignored(self):
        frontend, service = build()
        service.indicate(b"\x01ordinary traffic")
        assert frontend.drain_outbox() == []

    def test_bridged_envelopes_logged(self):
        frontend, service = build()
        env = Envelope(9, 1, (b"t",), b"x").with_bridge(3, (0, 1))
        service.indicate(env.to_bytes())
        assert frontend.bridge_log == [env]


class TestDeliveryRole:
    def test_fanout_to_matching_streams(self):
        frontend, service = build()
        frontend.subscribe(5, {b"a"})
        frontend.subscribe(6, {b"a", b"b"})
        service.indicate(Envelope(9, 1, (b"a",), b"x").to_bytes())
        out = frontend.drain_outbox()
        assert {cid for cid, _ in out} == {5, 6}
        for _, deliver in out:
            assert isinstance(deliver, ClientDeliver)
            assert deliver.deliver_seq == 1 and deliver.topic == b"a"

    def test_window_parks_and_ack_unparks(self):
        frontend, service = build(deliver_window=2)
        frontend.subscribe(5, {b"t"})
        for seq in range(1, 5):
            service.indicate(Envelope(9, seq, (b"t",), b"%d" % seq).to_bytes(), seq=seq)
        out = frontend.drain_outbox()
        assert [d.deliver_seq for _, d in out] == [1, 2]  # window = 2
        frontend.on_deliver_ack(ClientAck(ACK_DELIVER, 5, 0, 2, 0))
        out = frontend.drain_outbox()
        assert [d.deliver_seq for _, d in out] == [3, 4]

    def test_deliver_ack_validation(self):
        frontend, _ = build()
        frontend.subscribe(5, {b"t"})
        with pytest.raises(ProtocolError):
            frontend.on_deliver_ack(ClientAck(ACK_PUBLISH, 5, 0, 0, 8))
        with pytest.raises(ProtocolError):
            frontend.on_deliver_ack(ClientAck(ACK_DELIVER, 6, 0, 0, 0))
        with pytest.raises(ProtocolError):
            frontend.on_deliver_ack(ClientAck(ACK_DELIVER, 5, 0, 3, 0))

    def test_subscribe_widens_topics(self):
        frontend, service = build()
        frontend.subscribe(5, {b"a"})
        frontend.subscribe(5, {b"b"})
        service.indicate(Envelope(9, 1, (b"b",), b"x").to_bytes())
        assert len(frontend.drain_outbox()) == 1


class TestFailoverSurface:
    def test_subscribe_widen_applies_window(self):
        # Regression: widening an existing stream used to ignore the
        # window argument entirely.
        frontend, _ = build(deliver_window=8)
        frontend.subscribe(5, {b"a"})
        frontend.subscribe(5, {b"b"}, window=2)
        assert frontend.streams[5].window == 2
        assert frontend.streams[5].topics == {b"a", b"b"}

    def test_subscribe_replay_reanchors_from_processed_log(self):
        frontend, service = build()
        for seq in range(1, 4):
            service.indicate(
                Envelope(9, seq, (b"t",), b"p%d" % seq).to_bytes(), seq=seq
            )
        # A successor re-anchors the stream at epoch 1: the whole log
        # replays through the fresh stream in processing order.
        frontend.subscribe(5, {b"t"}, epoch=1, replay=True)
        out = [d for _, d in frontend.drain_outbox()]
        assert [d.deliver_seq for d in out] == [1, 2, 3]
        assert [d.origin_seq for d in out] == [1, 2, 3]
        assert all(d.epoch == 1 for d in out)

    def test_deliver_ack_epoch_guard(self):
        frontend, service = build()
        frontend.subscribe(5, {b"t"}, epoch=2, replay=True)
        service.indicate(Envelope(9, 1, (b"t",), b"x").to_bytes())
        # A straggler ack from the pre-failover stream is ignored...
        frontend.on_deliver_ack(ClientAck(ACK_DELIVER, 5, 0, 1, 0, epoch=1))
        assert frontend.streams[5].acked == 0
        # ...the current epoch's ack lands...
        frontend.on_deliver_ack(ClientAck(ACK_DELIVER, 5, 0, 1, 0, epoch=2))
        assert frontend.streams[5].acked == 1
        # ...and a future epoch is a protocol error.
        with pytest.raises(ProtocolError):
            frontend.on_deliver_ack(ClientAck(ACK_DELIVER, 5, 0, 1, 0, epoch=3))

    def test_unsubscribe_topics_narrows_stream(self):
        frontend, service = build()
        frontend.subscribe(5, {b"a", b"b"})
        frontend.unsubscribe_topics(5, {b"a"})
        service.indicate(Envelope(9, 1, (b"a",), b"x").to_bytes(), seq=1)
        assert frontend.drain_outbox() == []
        service.indicate(Envelope(9, 2, (b"b",), b"y").to_bytes(), seq=2)
        assert len(frontend.drain_outbox()) == 1

    def test_doubted_returns_injection_order_and_forget_clears(self):
        frontend, _ = build()
        envs = [Envelope(9, seq, (b"t",), b"%d" % seq) for seq in (1, 2, 3)]
        for env in envs:
            frontend.inject(env)
        assert frontend.doubted() == envs
        frontend.forget_pending()
        assert frontend.doubted() == []

    def test_processed_elsewhere_idempotent(self):
        frontend, _ = build()
        frontend.on_hello(ClientHello(9, credit=8))
        frontend.on_publish(ClientPublish(9, 1, (b"t",)))
        frontend.on_processed_elsewhere(Envelope(9, 1, (b"t",)))
        assert len(frontend.drain_outbox()) == 1
        # Failover replay can re-announce an already-acked publish.
        frontend.on_processed_elsewhere(Envelope(9, 1, (b"t",)))
        assert frontend.drain_outbox() == []
