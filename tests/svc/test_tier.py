"""End-to-end service-tier tests: routing, acks, bridge, audits."""

import pytest

from repro.analysis.checkers import check_bridge_ordering, check_uniform_ordering
from repro.errors import ConfigError, ProtocolError
from repro.svc.envelope import Envelope
from repro.svc.tier import ShardedService


def build(shards=2, members=3, **kw):
    return ShardedService(shards, members, seed=11, **kw)


class TestSessions:
    def test_connect_activates(self):
        tier = build()
        session = tier.connect(42)
        assert session.window > 0
        assert tier.registry.gauge("svc.sessions.active").__float__() == 1.0

    def test_double_connect_rejected(self):
        tier = build()
        tier.connect(42)
        with pytest.raises(ProtocolError):
            tier.connect(42)

    def test_publish_requires_connection(self):
        tier = build()
        with pytest.raises(ProtocolError):
            tier.publish(7, (b"t",), b"x")

    def test_config_members_mismatch_rejected(self):
        from repro.core.config import UrcgcConfig

        with pytest.raises(ConfigError):
            ShardedService(2, 3, config=UrcgcConfig(n=4))


class TestSingleShardDelivery:
    def test_publish_reaches_subscriber(self):
        tier = build()
        tier.connect(1)
        tier.connect(2)
        tier.subscribe(2, (b"news",))
        tier.publish(1, (b"news",), b"hello")
        tier.run()
        got = tier.sessions[2].delivered
        assert [(d.origin, d.payload) for d in got] == [(1, b"hello")]

    def test_publisher_hears_itself_when_subscribed(self):
        tier = build()
        tier.connect(1)
        tier.subscribe(1, (b"loop",))
        tier.publish(1, (b"loop",), b"echo")
        tier.run()
        assert [d.payload for d in tier.sessions[1].delivered] == [b"echo"]

    def test_client_order_preserved_per_topic(self):
        tier = build()
        tier.connect(1)
        tier.connect(2)
        tier.subscribe(2, (b"t",))
        for i in range(12):
            tier.publish(1, (b"t",), b"m%d" % i)
        tier.run()
        payloads = [d.payload for d in tier.sessions[2].delivered]
        assert payloads == [b"m%d" % i for i in range(12)]

    def test_publish_acks_advance_cumulatively(self):
        tier = build()
        session = tier.connect(1)
        for i in range(5):
            tier.publish(1, (b"t",), b"%d" % i)
        tier.run()
        assert session.acked == 5
        assert session.outstanding == 0

    def test_windowed_publishes_release_on_ack(self):
        tier = build()
        session = tier.connect(1, credit=2)
        sent_now = [tier.publish(1, (b"t",), b"%d" % i) for i in range(8)]
        assert sent_now.count(False) > 0  # some queued behind the window
        tier.run()
        assert session.acked == 8 and session.queued == 0


class TestBridgedDelivery:
    def _two_shard_topics(self, tier, want=2):
        """Find topics spread over `want` distinct shards."""
        by_shard = {}
        i = 0
        while len(by_shard) < want:
            topic = b"probe-%d" % i
            by_shard.setdefault(tier.router.shard_for(topic), topic)
            i += 1
        return tuple(by_shard.values())

    def test_multi_shard_publish_goes_through_bridge(self):
        tier = build()
        tier.connect(1)
        tier.connect(2)
        topics = self._two_shard_topics(tier)
        tier.subscribe(2, topics)
        tier.publish(1, topics, b"wide")
        tier.run()
        assert len(tier.bridge.stamped) == 1
        # Subscriber sees the publish once per shard stream it spans.
        got = {(d.shard, d.payload) for d in tier.sessions[2].delivered}
        assert len(got) == 2
        assert all(payload == b"wide" for _, payload in got)

    def test_bridged_traffic_passes_ordering_audit(self):
        tier = build(shards=3)
        for c in (1, 2, 3):
            tier.connect(c)
        topics = self._two_shard_topics(tier, want=3)
        tier.subscribe(3, topics)
        for i in range(6):
            tier.publish(1, topics[:2], b"a%d" % i)
            tier.publish(2, topics[1:], b"b%d" % i)
        tier.run()
        assert check_bridge_ordering(tier.bridge_logs()).ok

    def test_bridged_ack_waits_for_all_destinations(self):
        tier = build()
        session = tier.connect(1)
        topics = self._two_shard_topics(tier)
        tier.publish(1, topics, b"wide")
        tier.run()
        assert session.acked == 1
        assert not tier._multi_pending


class TestAudits:
    def test_shard_streams_satisfy_uniform_ordering(self):
        tier = build()
        tier.connect(1)
        tier.connect(2)
        tier.subscribe(2, (b"x", b"y"))
        for i in range(6):
            tier.publish(1, (b"x",), b"%d" % i)
            tier.publish(2, (b"y",), b"%d" % i)
        tier.run()
        for shard in range(tier.shards):
            assert check_uniform_ordering(tier.shard_streams(shard)).ok

    def test_refresh_health_all_up(self):
        tier = build()
        assert tier.refresh_health() == tuple(range(tier.shards))

    def test_settled_tracks_pending_work(self):
        tier = build()
        tier.connect(1)
        assert tier.settled()
        tier.publish(1, (b"t",), b"x")
        assert not tier.settled()
        tier.run()
        assert tier.settled()


class TestWirePath:
    def test_pdus_cross_real_codecs(self):
        tier = build()
        tier.connect(1)
        tier.connect(2)
        tier.subscribe(2, (b"t",))
        tier.publish(1, (b"t",), b"x")
        tier.run()
        assert tier.pdus_moved > 0

    def test_envelope_survives_group_transit(self):
        """What members process is the envelope byte format."""
        tier = build()
        tier.connect(1)
        tier.publish(1, (b"t",), b"payload")
        tier.run()
        shard = tier.router.shard_for(b"t")
        delivered = tier.shard_streams(shard)
        messages = next(iter(delivered.values()))
        envelopes = [Envelope.from_bytes(m.payload) for m in messages]
        assert envelopes and all(e is not None for e in envelopes)
        assert envelopes[0].payload == b"payload"
