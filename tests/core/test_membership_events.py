"""Tests for membership-change notifications."""

from dataclasses import replace

from repro.core.config import UrcgcConfig
from repro.core.decision import initial_decision
from repro.core.effects import MembershipChange
from repro.core.member import Member
from repro.core.message import DecisionMessage
from repro.core.service import UrcgcService
from repro.harness.cluster import SimCluster
from repro.types import ProcessId, SubrunNo
from repro.workloads.generators import FixedBudgetWorkload
from repro.workloads.scenarios import crashes


def make_decision(n, number, chain, alive):
    return replace(
        initial_decision(n),
        number=SubrunNo(number),
        chain=chain,
        alive=tuple(alive),
    )


def test_membership_change_effect_on_removal():
    member = Member(ProcessId(0), UrcgcConfig(n=3))
    decision = make_decision(3, 0, 1, [True, False, True])
    effects = member.on_message(DecisionMessage(decision))
    changes = [e for e in effects if isinstance(e, MembershipChange)]
    assert len(changes) == 1
    assert changes[0].removed == (1,)
    assert changes[0].alive == (True, False, True)


def test_no_effect_without_removal():
    member = Member(ProcessId(0), UrcgcConfig(n=3))
    decision = make_decision(3, 0, 1, [True, True, True])
    effects = member.on_message(DecisionMessage(decision))
    assert not any(isinstance(e, MembershipChange) for e in effects)


def test_repeat_decision_does_not_renotify():
    member = Member(ProcessId(0), UrcgcConfig(n=3))
    member.on_message(DecisionMessage(make_decision(3, 0, 1, [True, False, True])))
    effects = member.on_message(
        DecisionMessage(make_decision(3, 1, 2, [True, False, True]))
    )
    assert not any(isinstance(e, MembershipChange) for e in effects)


def test_service_callback_and_log():
    notified = []
    member = Member(ProcessId(0), UrcgcConfig(n=3))
    service = UrcgcService(member, on_membership=notified.append)
    service.dispatch(
        member.on_message(DecisionMessage(make_decision(3, 0, 1, [True, False, True])))
    )
    assert len(notified) == 1
    assert service.membership_changes == notified


def test_cluster_wide_view_change_after_crash():
    n = 4
    pids = [ProcessId(i) for i in range(n)]
    cluster = SimCluster(
        UrcgcConfig(n=n, K=2),
        workload=FixedBudgetWorkload(pids, total=16),
        faults=crashes({ProcessId(3): 2.0}),
        max_rounds=120,
    )
    cluster.run_until_quiescent(drain_subruns=3)
    for pid in cluster.active_pids():
        changes = cluster.services[pid].membership_changes
        assert len(changes) == 1
        assert changes[0].removed == (3,)
