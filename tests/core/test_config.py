"""Unit tests for UrcgcConfig validation."""

import pytest

from repro.core.config import LeaveRule, UrcgcConfig
from repro.errors import ConfigError


def test_defaults():
    config = UrcgcConfig(n=10)
    assert config.K == 3
    assert config.recovery_budget == 2 * 3 + 2
    assert config.effective_flow_threshold == 80  # the paper's 8n
    assert config.flow_control_enabled
    assert config.leave_rule is LeaveRule.CONFIRMED


def test_resilience_degree():
    """t = (n-1)/2, the paper's resilience bound."""
    assert UrcgcConfig(n=5).t == 2
    assert UrcgcConfig(n=6).t == 2
    assert UrcgcConfig(n=41).t == 20


def test_explicit_r_validated_against_2k():
    with pytest.raises(ConfigError):
        UrcgcConfig(n=5, K=3, R=6)  # R must exceed 2K
    assert UrcgcConfig(n=5, K=3, R=7).recovery_budget == 7


def test_flow_threshold_zero_disables():
    config = UrcgcConfig(n=5, flow_threshold=0)
    assert not config.flow_control_enabled


def test_flow_threshold_explicit():
    assert UrcgcConfig(n=5, flow_threshold=13).effective_flow_threshold == 13


def test_invalid_values_rejected():
    with pytest.raises(ConfigError):
        UrcgcConfig(n=1)
    with pytest.raises(ConfigError):
        UrcgcConfig(n=5, K=0)
    with pytest.raises(ConfigError):
        UrcgcConfig(n=5, flow_threshold=-1)
    with pytest.raises(ConfigError):
        UrcgcConfig(n=5, max_history=0)


def test_frozen():
    config = UrcgcConfig(n=5)
    with pytest.raises(AttributeError):
        config.K = 9
