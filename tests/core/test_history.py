"""Unit tests for the history buffer."""

import pytest

from repro.core.history import History
from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.errors import DuplicateMidError, HistoryOverflowError
from repro.types import ProcessId, SeqNo


def msg(origin, seq, deps=()):
    return UserMessage(Mid(ProcessId(origin), SeqNo(seq)), tuple(deps))


def test_store_and_get():
    history = History()
    message = msg(0, 1)
    history.store(message)
    assert history.get(message.mid) is message
    assert history.contains(message.mid)
    assert len(history) == 1


def test_length_per_origin():
    history = History()
    history.store(msg(0, 1))
    history.store(msg(0, 2, [Mid(ProcessId(0), SeqNo(1))]))
    history.store(msg(1, 1))
    assert history.length_of(ProcessId(0)) == 2
    assert history.length_of(ProcessId(1)) == 1
    assert history.length_of(ProcessId(9)) == 0


def test_duplicate_store_rejected():
    history = History()
    history.store(msg(0, 1))
    with pytest.raises(DuplicateMidError):
        history.store(msg(0, 1))


def test_max_seq_survives_cleaning():
    history = History()
    history.store(msg(0, 1))
    history.store(msg(0, 2, [Mid(ProcessId(0), SeqNo(1))]))
    history.clean(ProcessId(0), SeqNo(2))
    assert history.max_seq(ProcessId(0)) == 2
    assert len(history) == 0


def test_clean_partial():
    history = History()
    for s in range(1, 5):
        deps = [Mid(ProcessId(0), SeqNo(s - 1))] if s > 1 else []
        history.store(msg(0, s, deps))
    removed = history.clean(ProcessId(0), SeqNo(2))
    assert removed == 2
    assert not history.contains(Mid(ProcessId(0), SeqNo(2)))
    assert history.contains(Mid(ProcessId(0), SeqNo(3)))
    assert history.floor(ProcessId(0)) == 2


def test_clean_is_monotone():
    history = History()
    history.store(msg(0, 1))
    history.clean(ProcessId(0), SeqNo(1))
    assert history.clean(ProcessId(0), SeqNo(1)) == 0  # idempotent
    assert history.floor(ProcessId(0)) == 1


def test_store_below_floor_rejected():
    """A message that was already purged as stable must not re-enter."""
    history = History()
    history.store(msg(0, 1))
    history.clean(ProcessId(0), SeqNo(1))
    with pytest.raises(DuplicateMidError):
        history.store(msg(0, 1))


def test_fetch_range_returns_available_subset():
    history = History()
    history.store(msg(0, 1))
    history.store(msg(0, 2, [Mid(ProcessId(0), SeqNo(1))]))
    history.store(msg(0, 3, [Mid(ProcessId(0), SeqNo(2))]))
    history.clean(ProcessId(0), SeqNo(1))
    got = history.fetch_range(ProcessId(0), SeqNo(1), SeqNo(3))
    assert [m.mid.seq for m in got] == [2, 3]


def test_fetch_range_unknown_origin():
    assert History().fetch_range(ProcessId(5), SeqNo(1), SeqNo(3)) == []


def test_clean_vector():
    history = History()
    history.store(msg(0, 1))
    history.store(msg(1, 1))
    removed = history.clean_vector({ProcessId(0): SeqNo(1), ProcessId(1): SeqNo(0)})
    assert removed == 1
    assert history.contains(Mid(ProcessId(1), SeqNo(1)))


def test_hard_cap_overflow():
    history = History(max_length=2)
    history.store(msg(0, 1))
    history.store(msg(1, 1))
    with pytest.raises(HistoryOverflowError):
        history.store(msg(2, 1))


def test_origins_and_all_messages_ordered():
    history = History()
    history.store(msg(1, 1))
    history.store(msg(0, 1))
    history.store(msg(0, 2, [Mid(ProcessId(0), SeqNo(1))]))
    assert history.origins() == [ProcessId(0), ProcessId(1)]
    mids = [m.mid for m in history.all_messages()]
    assert mids == [
        Mid(ProcessId(0), SeqNo(1)),
        Mid(ProcessId(0), SeqNo(2)),
        Mid(ProcessId(1), SeqNo(1)),
    ]


def test_require_returns_or_raises():
    from repro.errors import UnknownMidError

    history = History()
    message = msg(0, 1)
    history.store(message)
    assert history.require(message.mid) is message
    with pytest.raises(UnknownMidError):
        history.require(Mid(ProcessId(0), SeqNo(9)))
    # Purged-as-stable is also absent, with the floor in the message.
    history.clean(ProcessId(0), SeqNo(1))
    with pytest.raises(UnknownMidError, match="floor"):
        history.require(message.mid)


class TestRecoveryFloors:
    """Recovery pins: cleaning must not advance past a floor a crashed
    or joining member still needs for state transfer."""

    def fill(self, history, origin=0, upto=5):
        prev = []
        for seq in range(1, upto + 1):
            history.store(msg(origin, seq, prev))
            prev = [Mid(ProcessId(origin), SeqNo(seq))]
        return history

    def test_clean_clamped_by_pin(self):
        history = self.fill(History())
        history.set_recovery_floor("join-p2", {ProcessId(0): SeqNo(2)})
        removed = history.clean(ProcessId(0), SeqNo(5))
        # Only 1..2 may go; 3..5 stay pinned for the recovering member.
        assert removed == 2
        assert history.contains(Mid(ProcessId(0), SeqNo(3)))
        assert history.floor(ProcessId(0)) == 2

    def test_clean_vector_clamped_by_pin(self):
        history = self.fill(self.fill(History(), origin=0), origin=1)
        history.set_recovery_floor("crash-p1", {ProcessId(1): SeqNo(0)})
        history.clean_vector({ProcessId(0): SeqNo(5), ProcessId(1): SeqNo(5)})
        assert not history.contains(Mid(ProcessId(0), SeqNo(5)))
        # Origin 1 fully pinned at 0: nothing removed.
        assert history.contains(Mid(ProcessId(1), SeqNo(1)))

    def test_minimum_over_multiple_pins_wins(self):
        history = self.fill(History())
        history.set_recovery_floor("a", {ProcessId(0): SeqNo(4)})
        history.set_recovery_floor("b", {ProcessId(0): SeqNo(1)})
        assert history.recovery_floor(ProcessId(0)) == 1
        history.clean(ProcessId(0), SeqNo(5))
        assert history.contains(Mid(ProcessId(0), SeqNo(2)))

    def test_release_unclamps(self):
        history = self.fill(History())
        history.set_recovery_floor("join-p2", {ProcessId(0): SeqNo(2)})
        history.clear_recovery_floor("join-p2")
        assert history.recovery_floor(ProcessId(0)) is None
        history.clean(ProcessId(0), SeqNo(5))
        assert not history.contains(Mid(ProcessId(0), SeqNo(5)))

    def test_clear_unknown_key_is_noop(self):
        history = History()
        history.clear_recovery_floor("never-set")

    def test_fetch_range_survives_thanks_to_pin(self):
        """The regression the pin exists for: without it, the state
        transfer to a rejoining member would hit a cleaned hole."""
        history = self.fill(History())
        history.set_recovery_floor("join-p2", {ProcessId(0): SeqNo(0)})
        history.clean(ProcessId(0), SeqNo(5))
        transfer = history.fetch_range(ProcessId(0), SeqNo(1), SeqNo(5))
        assert [m.mid.seq for m in transfer] == [1, 2, 3, 4, 5]
