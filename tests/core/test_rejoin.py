"""Sans-IO tests for the crash-recovery / rejoin protocol half.

A tiny in-memory bus drives several :class:`Member` engines round by
round, fail-stops one, lets the survivors vote it out, then rebuilds
it from exported state (as the storage layer would) and walks the whole
JOIN handshake: join broadcast, coordinator admission, realignment,
catch-up, and resumed generation.
"""

import pytest

from repro.core.config import UrcgcConfig
from repro.core.effects import Deliver, Discarded, Send
from repro.core.member import Member
from repro.core.rejoin import (
    KIND_JOIN,
    JoinRequest,
    build_member,
    export_state,
    replay,
)
from repro.errors import ConfigError
from repro.net.addressing import GroupAddress
from repro.types import ProcessId, SeqNo


def make_member(pid=0, n=3, **kwargs):
    kwargs.setdefault("enable_rejoin", True)
    return Member(ProcessId(pid), UrcgcConfig(n=n, **kwargs))


class Bus:
    """Round-driven sans-IO message bus over Member engines."""

    def __init__(self, members):
        self.members = {member.pid: member for member in members}
        self.inboxes = {pid: [] for pid in self.members}
        self.delivered = {pid: [] for pid in self.members}
        self.discarded = {pid: [] for pid in self.members}
        self.down = set()
        self.round = 0

    def execute(self, pid, effects):
        for effect in effects:
            if isinstance(effect, Send):
                if isinstance(effect.dst, GroupAddress):
                    targets = [p for p in self.members if p != pid]
                else:
                    targets = [effect.dst.pid]
                for target in targets:
                    if target not in self.down:
                        self.inboxes[target].append(effect.message)
            elif isinstance(effect, Deliver):
                self.delivered[pid].append(effect.message)
            elif isinstance(effect, Discarded):
                self.discarded[pid].extend((effect.lost, *effect.discarded))

    def tick(self, rounds=1):
        for _ in range(rounds):
            for pid, member in self.members.items():
                if pid in self.down or member.has_left:
                    continue
                inbox, self.inboxes[pid] = self.inboxes[pid], []
                for message in inbox:
                    self.execute(pid, member.on_message(message))
            for pid, member in self.members.items():
                if pid in self.down or member.has_left:
                    continue
                self.execute(pid, member.on_round(self.round))
                member.consume_realignment()
            self.round += 1

    def live(self):
        return [
            m
            for pid, m in self.members.items()
            if pid not in self.down and not m.has_left
        ]


class TestGuards:
    def test_begin_rejoin_requires_feature_flag(self):
        member = Member(ProcessId(0), UrcgcConfig(n=3))
        with pytest.raises(ConfigError):
            member.begin_rejoin()

    def test_begin_rejoin_bumps_incarnation(self):
        member = make_member()
        assert member.incarnation == 0
        member.begin_rejoin()
        assert member.incarnation == 1
        assert member.rejoining

    def test_consume_realignment_default_none(self):
        member = make_member()
        assert member.consume_realignment() is None

    def test_recovery_grace_validated(self):
        with pytest.raises(ConfigError):
            UrcgcConfig(n=3, recovery_grace=0)


class TestJoinBroadcast:
    def test_rejoining_member_sends_join_not_request(self):
        member = make_member(pid=1)
        member.begin_rejoin()
        effects = member.on_round(0)
        joins = [
            e for e in effects if isinstance(e, Send) and e.kind == KIND_JOIN
        ]
        assert len(joins) == 1
        request = joins[0].message
        assert isinstance(request, JoinRequest)
        assert request.sender == 1
        assert request.incarnation == 1
        others = [e for e in effects if isinstance(e, Send) and e.kind != KIND_JOIN]
        assert others == []

    def test_join_only_on_even_rounds(self):
        member = make_member(pid=1)
        member.begin_rejoin()
        assert member.on_round(1) == []

    def test_live_member_ignores_own_stale_join(self):
        member = make_member(pid=1)
        echo = JoinRequest(ProcessId(1), 1, (SeqNo(0),) * 3)
        assert member.on_message(echo) == []


class TestStateRoundtrip:
    def test_export_build_roundtrip_preserves_frontier(self):
        bus = Bus([make_member(pid=i) for i in range(3)])
        for pid in bus.members:
            bus.members[pid].submit(b"payload-%d" % pid)
        bus.tick(8)
        source = bus.members[ProcessId(1)]
        state = export_state(source)
        rebuilt = build_member(
            ProcessId(1),
            source.config,
            state,
            bus.delivered[ProcessId(1)],
        )
        assert (
            rebuilt.last_processed_vector() == source.last_processed_vector()
        )
        assert rebuilt.incarnation == source.incarnation

    def test_replay_reprocesses_and_collects_delivers(self):
        from repro.core.rejoin import RECORD_GENERATED, RECORD_PROCESSED

        fresh = make_member(pid=0)
        peer = make_member(pid=1)
        peer.submit(b"from-peer")
        sends = [
            e
            for e in peer.on_round(0)
            if isinstance(e, Send) and e.kind == "data"
        ]
        peer_msg = sends[0].message
        own = make_member(pid=0)
        own.submit(b"mine")
        own_sends = [
            e
            for e in own.on_round(0)
            if isinstance(e, Send) and e.kind == "data"
        ]
        own_msg = own_sends[0].message
        delivered = replay(
            fresh,
            [(RECORD_GENERATED, own_msg), (RECORD_PROCESSED, peer_msg)],
        )
        assert [m.mid for m in delivered] == [own_msg.mid, peer_msg.mid]
        # Replay is idempotent: feeding the same records again is a no-op.
        assert replay(fresh, [(RECORD_GENERATED, own_msg)]) == []


class TestFullRejoinFlow:
    def drive_crash_and_rejoin(self, n=3, K=2):
        members = [make_member(pid=i, n=n, K=K) for i in range(n)]
        bus = Bus(members)
        for member in members:
            member.submit(b"first-%d" % member.pid)
        bus.tick(6)
        victim = ProcessId(n - 1)
        pre_state = export_state(bus.members[victim])
        pre_delivered = list(bus.delivered[victim])
        bus.down.add(victim)
        # Survivors keep generating until the victim is voted out.
        bus.members[ProcessId(0)].submit(b"while-down")
        for _ in range(8 * K):
            bus.tick(1)
            if not bus.members[ProcessId(0)].view.is_alive(victim):
                break
        assert not bus.members[ProcessId(0)].view.is_alive(victim)
        # Rebuild the victim from its exported (durable) state.
        revived = build_member(
            victim, members[0].config, pre_state, pre_delivered
        )
        revived.begin_rejoin()
        bus.members[victim] = revived
        bus.delivered[victim] = list(pre_delivered)
        bus.inboxes[victim] = []
        bus.down.discard(victim)
        for _ in range(12 * K):
            bus.tick(1)
            if not revived.rejoining:
                break
        return bus, revived, victim, pre_delivered

    def test_victim_rejoins_and_is_alive_everywhere(self):
        bus, revived, victim, _ = self.drive_crash_and_rejoin()
        assert not revived.rejoining
        assert revived.incarnation == 1
        assert not revived.has_left
        bus.tick(6)
        for member in bus.live():
            assert member.view.is_alive(victim), f"p{member.pid} view"

    def test_rejoined_log_extends_pre_crash_log(self):
        bus, revived, victim, pre_delivered = self.drive_crash_and_rejoin()
        bus.tick(8)
        pre_mids = [m.mid for m in pre_delivered]
        post_mids = [m.mid for m in bus.delivered[victim]]
        assert post_mids[: len(pre_mids)] == pre_mids

    def test_rejoined_member_generates_again_and_group_converges(self):
        bus, revived, victim, _ = self.drive_crash_and_rejoin()
        revived.submit(b"second-life")
        for member in bus.live():
            if member.pid != victim:
                member.submit(b"more-%d" % member.pid)
        for _ in range(40):
            bus.tick(1)
            vectors = {m.last_processed_vector() for m in bus.live()}
            pending = any(
                m.pending_submissions or m.waiting_length for m in bus.live()
            )
            if len(vectors) == 1 and not pending:
                break
        vectors = {m.last_processed_vector() for m in bus.live()}
        assert len(vectors) == 1, vectors
        # The new incarnation's message reached everyone.
        mids = {
            m.mid for m in bus.delivered[ProcessId(0)] if m.mid.origin == victim
        }
        assert any(m.payload == b"second-life" for m in bus.delivered[ProcessId(0)])
