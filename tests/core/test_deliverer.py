"""Unit tests for the general (full Definition 3.1) causal deliverer."""

import pytest

from repro.core.causality import FullCausalContext
from repro.core.deliverer import CausalDeliverer
from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.errors import CausalityViolationError
from repro.types import ProcessId, SeqNo


def m(origin, seq):
    return Mid(ProcessId(origin), SeqNo(seq))


def msg(origin, seq, deps=()):
    return UserMessage(m(origin, seq), tuple(deps))


def test_root_delivers_immediately():
    deliverer = CausalDeliverer()
    out = deliverer.receive(msg(0, 1))
    assert [x.mid for x in out] == [m(0, 1)]


def test_concurrent_own_messages_need_no_order():
    """Full Def 3.1: (0,1) and (0,2) with no declared relation are
    concurrent — unlike the Member engine's implicit chain."""
    deliverer = CausalDeliverer()
    out2 = deliverer.receive(msg(0, 2))  # no deps: a second root
    assert [x.mid for x in out2] == [m(0, 2)]
    out1 = deliverer.receive(msg(0, 1))
    assert [x.mid for x in out1] == [m(0, 1)]


def test_explicit_deps_gate_delivery():
    deliverer = CausalDeliverer()
    assert deliverer.receive(msg(1, 2, [m(0, 1)])) == []
    assert deliverer.waiting_count == 1
    out = deliverer.receive(msg(0, 1))
    assert [x.mid for x in out] == [m(0, 1), m(1, 2)]


def test_diamond_dag():
    deliverer = CausalDeliverer()
    #      (0,1)
    #     /     \
    # (1,1)     (2,1)
    #     \     /
    #      (3,1)
    deliverer.receive(msg(3, 1, [m(1, 1), m(2, 1)]))
    deliverer.receive(msg(1, 1, [m(0, 1)]))
    deliverer.receive(msg(2, 1, [m(0, 1)]))
    out = deliverer.receive(msg(0, 1))
    mids = [x.mid for x in out]
    assert mids[0] == m(0, 1)
    assert mids[-1] == m(3, 1)
    assert set(mids) == {m(0, 1), m(1, 1), m(2, 1), m(3, 1)}


def test_duplicates_counted():
    deliverer = CausalDeliverer()
    deliverer.receive(msg(0, 1))
    deliverer.receive(msg(0, 1))
    deliverer.receive(msg(1, 2, [m(9, 9)]))
    deliverer.receive(msg(1, 2, [m(9, 9)]))
    assert deliverer.duplicate_count == 2


def test_missing_cut_and_all_missing():
    deliverer = CausalDeliverer()
    deliverer.receive(msg(2, 1, [m(0, 1), m(1, 1)]))
    assert deliverer.missing_cut(m(2, 1)) == {m(0, 1), m(1, 1)}
    assert deliverer.all_missing() == {m(0, 1), m(1, 1)}
    deliverer.receive(msg(0, 1))
    assert deliverer.missing_cut(m(2, 1)) == {m(1, 1)}


def test_works_with_full_causal_context():
    """End-to-end with the multi-root sender-side context."""
    sender = FullCausalContext(ProcessId(0))
    audio, a_deps = sender.next_message(sequence="audio")
    video, v_deps = sender.next_message(sequence="video")
    audio2, a2_deps = sender.next_message(sequence="audio")
    deliverer = CausalDeliverer()
    # Receive video first: deliverable at once (separate root).
    assert deliverer.receive(UserMessage(video, v_deps))
    # audio2 waits for audio1 (its chain), not for video.
    assert deliverer.receive(UserMessage(audio2, a2_deps)) == []
    out = deliverer.receive(UserMessage(audio, a_deps))
    assert [x.mid for x in out] == [audio, audio2]


def test_check_acyclic_accepts_dag():
    messages = [msg(0, 1), msg(1, 1, [m(0, 1)]), msg(2, 1, [m(0, 1), m(1, 1)])]
    CausalDeliverer().check_acyclic(messages)


def test_check_acyclic_rejects_cycle():
    messages = [
        UserMessage(m(0, 1), (m(1, 1),)),
        UserMessage(m(1, 1), (m(0, 1),)),
    ]
    with pytest.raises(CausalityViolationError):
        CausalDeliverer().check_acyclic(messages)
