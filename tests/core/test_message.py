"""Unit tests for the urcgc PDU codecs."""

import pytest

from repro.core.decision import RequestInfo, initial_decision
from repro.core.message import (
    DecisionMessage,
    RecoveryRequest,
    RecoveryResponse,
    RequestMessage,
    UserMessage,
)
from repro.core.mid import Mid
from repro.errors import WireFormatError
from repro.net.wire import decode_message, encode_message
from repro.types import ProcessId, SeqNo, SubrunNo


def m(origin, seq):
    return Mid(ProcessId(origin), SeqNo(seq))


def roundtrip(message):
    return decode_message(encode_message(message))


class TestUserMessage:
    def test_roundtrip(self):
        message = UserMessage(m(1, 2), (m(1, 1), m(0, 5)), b"payload")
        assert roundtrip(message) == message

    def test_empty_payload_and_deps(self):
        message = UserMessage(m(0, 1), ())
        assert roundtrip(message) == message

    def test_invalid_deps_rejected_at_construction(self):
        from repro.errors import CausalityViolationError

        with pytest.raises(CausalityViolationError):
            UserMessage(m(0, 1), (m(0, 1),))

    def test_size_grows_with_deps(self):
        small = encode_message(UserMessage(m(0, 2), (m(0, 1),)))
        large = encode_message(UserMessage(m(0, 2), (m(0, 1), m(1, 4), m(2, 9))))
        assert len(large) == len(small) + 2 * 6  # 6 bytes per mid


class TestDecisionMessage:
    def test_roundtrip_initial(self):
        message = DecisionMessage(initial_decision(5))
        assert roundtrip(message) == message

    def test_roundtrip_rich(self):
        base = initial_decision(3)
        from dataclasses import replace

        decision = replace(
            base,
            number=SubrunNo(7),
            chain=8,
            coordinator=ProcessId(1),
            alive=(True, False, True),
            attempts=(0, 3, 1),
            stable=(SeqNo(4), SeqNo(0), SeqNo(2)),
            contributors=(True, False, True),
            full_group=False,
            max_processed=(SeqNo(9), SeqNo(1), SeqNo(2)),
            most_updated=(ProcessId(2), ProcessId(0), ProcessId(2)),
            min_waiting=(SeqNo(5), SeqNo(0), SeqNo(0)),
        )
        assert roundtrip(DecisionMessage(decision)) == DecisionMessage(decision)

    def test_size_linear_in_n(self):
        """Decision size must be O(n) — the Table 1 property."""
        size10 = len(encode_message(DecisionMessage(initial_decision(10))))
        size20 = len(encode_message(DecisionMessage(initial_decision(20))))
        size40 = len(encode_message(DecisionMessage(initial_decision(40))))
        assert (size40 - size20) == pytest.approx(2 * (size20 - size10), abs=4)


class TestRequestMessage:
    def test_roundtrip(self):
        info = RequestInfo(
            (SeqNo(1), SeqNo(2), SeqNo(0)), (SeqNo(0), SeqNo(4), SeqNo(0))
        )
        message = RequestMessage(ProcessId(2), SubrunNo(5), info, initial_decision(3))
        assert roundtrip(message) == message

    def test_fits_in_ip_datagram_for_n15(self):
        """Paper: 'a message that urcgc generates for a group of 15
        processes fits into a single IP datagram packet (576 bytes)'."""
        n = 15
        info = RequestInfo(
            tuple(SeqNo(i) for i in range(n)), tuple(SeqNo(0) for _ in range(n))
        )
        message = RequestMessage(ProcessId(0), SubrunNo(9), info, initial_decision(n))
        assert len(encode_message(message)) <= 576

    def test_fits_in_ethernet_frame_for_n40(self):
        n = 40
        info = RequestInfo(
            tuple(SeqNo(i) for i in range(n)), tuple(SeqNo(0) for _ in range(n))
        )
        message = RequestMessage(ProcessId(0), SubrunNo(9), info, initial_decision(n))
        assert len(encode_message(message)) <= 1500


class TestRecoveryMessages:
    def test_request_roundtrip(self):
        message = RecoveryRequest(
            ProcessId(1), ((ProcessId(0), SeqNo(2), SeqNo(5)),)
        )
        assert roundtrip(message) == message

    def test_request_bad_range_rejected(self):
        with pytest.raises(WireFormatError):
            RecoveryRequest(ProcessId(1), ((ProcessId(0), SeqNo(5), SeqNo(2)),))

    def test_response_roundtrip(self):
        messages = (
            UserMessage(m(0, 1), (), b"a"),
            UserMessage(m(0, 2), (m(0, 1),), b"b"),
        )
        message = RecoveryResponse(ProcessId(2), messages)
        assert roundtrip(message) == message

    def test_empty_response(self):
        message = RecoveryResponse(ProcessId(2), ())
        assert roundtrip(message) == message


def test_garbage_rejected():
    with pytest.raises(WireFormatError):
        decode_message(b"\xfe\x00\x01")
