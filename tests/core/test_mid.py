"""Unit tests for message identifiers."""

import pytest

from repro.core.mid import NO_MESSAGE, Mid
from repro.errors import CausalityViolationError
from repro.types import ProcessId, SeqNo


def test_ordering_within_origin():
    assert Mid(ProcessId(0), SeqNo(1)) < Mid(ProcessId(0), SeqNo(2))


def test_equality_and_hash():
    a = Mid(ProcessId(1), SeqNo(3))
    b = Mid(ProcessId(1), SeqNo(3))
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


def test_predecessor():
    assert Mid(ProcessId(0), SeqNo(2)).predecessor == Mid(ProcessId(0), SeqNo(1))
    assert Mid(ProcessId(0), SeqNo(1)).predecessor is None


def test_seq_must_be_positive():
    with pytest.raises(CausalityViolationError):
        Mid(ProcessId(0), SeqNo(0))


def test_origin_must_be_nonnegative():
    with pytest.raises(CausalityViolationError):
        Mid(ProcessId(-1), SeqNo(1))


def test_no_message_sentinel_below_all_seqs():
    assert NO_MESSAGE == 0
    assert Mid(ProcessId(0), SeqNo(1)).seq > NO_MESSAGE


def test_str():
    assert str(Mid(ProcessId(2), SeqNo(5))) == "m(2,5)"
