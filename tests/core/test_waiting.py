"""Unit tests for the waiting list."""

import pytest

from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.core.waiting import WaitingList
from repro.errors import DuplicateMidError
from repro.types import ProcessId, SeqNo


def m(origin, seq):
    return Mid(ProcessId(origin), SeqNo(seq))


def msg(origin, seq, deps=()):
    return UserMessage(m(origin, seq), tuple(deps))


def test_add_and_release_single_blocker():
    waiting = WaitingList()
    blocked = msg(1, 2, [m(1, 1)])
    waiting.add(blocked, {m(1, 1)})
    assert m(1, 2) in waiting
    released = waiting.notify_processed(m(1, 1))
    assert released == [blocked]
    assert len(waiting) == 0


def test_release_requires_all_blockers():
    waiting = WaitingList()
    blocked = msg(2, 1, [m(0, 1), m(1, 1)])
    waiting.add(blocked, {m(0, 1), m(1, 1)})
    assert waiting.notify_processed(m(0, 1)) == []
    assert waiting.notify_processed(m(1, 1)) == [blocked]


def test_one_blocker_releases_many():
    waiting = WaitingList()
    a = msg(1, 1, [m(0, 1)])
    b = msg(2, 1, [m(0, 1)])
    waiting.add(a, {m(0, 1)})
    waiting.add(b, {m(0, 1)})
    released = waiting.notify_processed(m(0, 1))
    assert released == [a, b]  # mid order


def test_add_without_missing_rejected():
    waiting = WaitingList()
    with pytest.raises(ValueError):
        waiting.add(msg(0, 1), set())


def test_duplicate_add_rejected():
    waiting = WaitingList()
    waiting.add(msg(1, 2), {m(1, 1)})
    with pytest.raises(DuplicateMidError):
        waiting.add(msg(1, 2), {m(1, 1)})


def test_notify_unknown_mid_is_noop():
    waiting = WaitingList()
    assert waiting.notify_processed(m(9, 9)) == []


def test_oldest_waiting_per_origin():
    waiting = WaitingList()
    waiting.add(msg(0, 3), {m(0, 2)})
    waiting.add(msg(0, 5), {m(0, 4)})
    waiting.add(msg(1, 2), {m(1, 1)})
    assert waiting.oldest_waiting() == {ProcessId(0): 3, ProcessId(1): 2}


def test_missing_for():
    waiting = WaitingList()
    waiting.add(msg(0, 2), {m(0, 1), m(1, 1)})
    assert waiting.missing_for(m(0, 2)) == {m(0, 1), m(1, 1)}
    assert waiting.missing_for(m(9, 9)) == set()


def test_all_missing():
    waiting = WaitingList()
    waiting.add(msg(0, 2), {m(0, 1)})
    waiting.add(msg(1, 3), {m(1, 2), m(0, 1)})
    assert waiting.all_missing() == {m(0, 1), m(1, 2)}


def test_discard_dependent_direct():
    waiting = WaitingList()
    victim = msg(0, 2, [m(0, 1)])
    survivor = msg(1, 2, [m(1, 1)])
    waiting.add(victim, {m(0, 1)})
    waiting.add(survivor, {m(1, 1)})
    discarded = waiting.discard_dependent(m(0, 1))
    assert discarded == [m(0, 2)]
    assert m(1, 2) in waiting


def test_discard_dependent_transitive():
    """Discarding a lost message removes the whole dependent chain."""
    waiting = WaitingList()
    # Chain: lost m(0,1) <- m(0,2) <- m(0,3); plus m(1,2) depending on m(0,2).
    waiting.add(msg(0, 2, [m(0, 1)]), {m(0, 1)})
    waiting.add(msg(0, 3, [m(0, 2)]), {m(0, 2)})
    dependent = msg(1, 2, [m(1, 1), m(0, 2)])
    waiting.add(dependent, {m(1, 1), m(0, 2)})
    discarded = waiting.discard_dependent(m(0, 1))
    assert set(discarded) == {m(0, 2), m(0, 3), m(1, 2)}
    assert len(waiting) == 0


def test_discard_same_origin_later_seq():
    """Sequence contiguity: later messages of the lost origin die too,
    even if their explicit missing-set does not name the lost mid."""
    waiting = WaitingList()
    waiting.add(msg(0, 5, [m(0, 4)]), {m(0, 4)})
    discarded = waiting.discard_dependent(m(0, 3))
    assert discarded == [m(0, 5)]


def test_discard_cleans_blocker_index():
    waiting = WaitingList()
    waiting.add(msg(0, 2, [m(0, 1)]), {m(0, 1)})
    waiting.discard_dependent(m(0, 1))
    # The blocker index must not keep a dangling reference.
    assert waiting.notify_processed(m(0, 1)) == []


def test_messages_listing():
    waiting = WaitingList()
    b = msg(1, 2, [m(1, 1)])
    a = msg(0, 2, [m(0, 1)])
    waiting.add(b, {m(1, 1)})
    waiting.add(a, {m(0, 1)})
    assert waiting.messages() == [a, b]
