"""Unit tests for the waiting list."""

import pytest

from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.core.waiting import WaitingList
from repro.errors import DuplicateMidError
from repro.types import ProcessId, SeqNo


def m(origin, seq):
    return Mid(ProcessId(origin), SeqNo(seq))


def msg(origin, seq, deps=()):
    return UserMessage(m(origin, seq), tuple(deps))


def test_add_and_release_single_blocker():
    waiting = WaitingList()
    blocked = msg(1, 2, [m(1, 1)])
    waiting.add(blocked, {m(1, 1)})
    assert m(1, 2) in waiting
    released = waiting.notify_processed(m(1, 1))
    assert released == [blocked]
    assert len(waiting) == 0


def test_release_requires_all_blockers():
    waiting = WaitingList()
    blocked = msg(2, 1, [m(0, 1), m(1, 1)])
    waiting.add(blocked, {m(0, 1), m(1, 1)})
    assert waiting.notify_processed(m(0, 1)) == []
    assert waiting.notify_processed(m(1, 1)) == [blocked]


def test_one_blocker_releases_many():
    waiting = WaitingList()
    a = msg(1, 1, [m(0, 1)])
    b = msg(2, 1, [m(0, 1)])
    waiting.add(a, {m(0, 1)})
    waiting.add(b, {m(0, 1)})
    released = waiting.notify_processed(m(0, 1))
    assert released == [a, b]  # mid order


def test_add_without_missing_rejected():
    waiting = WaitingList()
    with pytest.raises(ValueError):
        waiting.add(msg(0, 1), set())


def test_duplicate_add_rejected():
    waiting = WaitingList()
    waiting.add(msg(1, 2), {m(1, 1)})
    with pytest.raises(DuplicateMidError):
        waiting.add(msg(1, 2), {m(1, 1)})


def test_notify_unknown_mid_is_noop():
    waiting = WaitingList()
    assert waiting.notify_processed(m(9, 9)) == []


def test_oldest_waiting_per_origin():
    waiting = WaitingList()
    waiting.add(msg(0, 3), {m(0, 2)})
    waiting.add(msg(0, 5), {m(0, 4)})
    waiting.add(msg(1, 2), {m(1, 1)})
    assert waiting.oldest_waiting() == {ProcessId(0): 3, ProcessId(1): 2}


def test_missing_for():
    waiting = WaitingList()
    waiting.add(msg(0, 2), {m(0, 1), m(1, 1)})
    assert waiting.missing_for(m(0, 2)) == {m(0, 1), m(1, 1)}
    assert waiting.missing_for(m(9, 9)) == set()


def test_all_missing():
    waiting = WaitingList()
    waiting.add(msg(0, 2), {m(0, 1)})
    waiting.add(msg(1, 3), {m(1, 2), m(0, 1)})
    assert waiting.all_missing() == {m(0, 1), m(1, 2)}


def test_discard_dependent_direct():
    waiting = WaitingList()
    victim = msg(0, 2, [m(0, 1)])
    survivor = msg(1, 2, [m(1, 1)])
    waiting.add(victim, {m(0, 1)})
    waiting.add(survivor, {m(1, 1)})
    discarded = waiting.discard_dependent(m(0, 1))
    assert discarded == [m(0, 2)]
    assert m(1, 2) in waiting


def test_discard_dependent_transitive():
    """Discarding a lost message removes the whole dependent chain."""
    waiting = WaitingList()
    # Chain: lost m(0,1) <- m(0,2) <- m(0,3); plus m(1,2) depending on m(0,2).
    waiting.add(msg(0, 2, [m(0, 1)]), {m(0, 1)})
    waiting.add(msg(0, 3, [m(0, 2)]), {m(0, 2)})
    dependent = msg(1, 2, [m(1, 1), m(0, 2)])
    waiting.add(dependent, {m(1, 1), m(0, 2)})
    discarded = waiting.discard_dependent(m(0, 1))
    assert set(discarded) == {m(0, 2), m(0, 3), m(1, 2)}
    assert len(waiting) == 0


def test_discard_same_origin_later_seq():
    """Sequence contiguity: later messages of the lost origin die too,
    even if their explicit missing-set does not name the lost mid."""
    waiting = WaitingList()
    waiting.add(msg(0, 5, [m(0, 4)]), {m(0, 4)})
    discarded = waiting.discard_dependent(m(0, 3))
    assert discarded == [m(0, 5)]


def test_discard_cleans_blocker_index():
    waiting = WaitingList()
    waiting.add(msg(0, 2, [m(0, 1)]), {m(0, 1)})
    waiting.discard_dependent(m(0, 1))
    # The blocker index must not keep a dangling reference.
    assert waiting.notify_processed(m(0, 1)) == []


def test_messages_listing():
    waiting = WaitingList()
    b = msg(1, 2, [m(1, 1)])
    a = msg(0, 2, [m(0, 1)])
    waiting.add(b, {m(1, 1)})
    waiting.add(a, {m(0, 1)})
    assert waiting.messages() == [a, b]


def test_discard_after_partial_release_keeps_dep_arm():
    # A dependency that was *satisfied* (processed) and later declared
    # lost must still discard the dependents that named it in deps:
    # the discard rule reads declared dependencies, not just missing.
    waiting = WaitingList()
    waiting.add(msg(1, 1, [m(0, 1), m(2, 1)]), {m(0, 1), m(2, 1)})
    waiting.notify_processed(m(0, 1))  # still blocked on (2,1)
    discarded = waiting.discard_dependent(m(0, 1))
    assert discarded == [m(1, 1)]
    assert len(waiting) == 0


def test_oldest_waiting_tracks_removals():
    waiting = WaitingList()
    waiting.add(msg(1, 3, [m(0, 9)]), {m(0, 9)})
    waiting.add(msg(1, 5, [m(0, 9)]), {m(0, 9)})
    waiting.add(msg(2, 4, [m(0, 9)]), {m(0, 9)})
    assert waiting.oldest_waiting() == {ProcessId(1): SeqNo(3), ProcessId(2): SeqNo(4)}
    # Declaring (1,2) lost discards both origin-1 entries (later seqs
    # of the lost origin); the per-origin index must follow.
    assert waiting.discard_dependent(m(1, 2)) == [m(1, 3), m(1, 5)]
    assert waiting.oldest_waiting() == {ProcessId(2): SeqNo(4)}
    waiting.notify_processed(m(0, 9))
    assert waiting.oldest_waiting() == {}


class _ReferenceWaitingList:
    """The pre-index semantics: full scans (kept as the oracle)."""

    def __init__(self):
        self.waiting = {}

    def add(self, message, missing):
        self.waiting[message.mid] = (message, set(missing))

    def notify_processed(self, mid):
        released = []
        for wmid in sorted(self.waiting):
            message, missing = self.waiting[wmid]
            missing.discard(mid)
            if not missing:
                released.append(message)
        for message in released:
            del self.waiting[message.mid]
        return released

    def discard_dependent(self, lost):
        discarded = []
        frontier = {lost}
        while frontier:
            target = frontier.pop()
            victims = set()
            for wmid, (message, missing) in self.waiting.items():
                if target in missing or target in message.deps:
                    victims.add(wmid)
                elif wmid.origin == target.origin and wmid.seq > target.seq:
                    victims.add(wmid)
            for victim in victims:
                del self.waiting[victim]
                discarded.append(victim)
                frontier.add(victim)
        return sorted(discarded)


def test_indexed_discard_matches_reference_scan():
    # Drive the indexed implementation and the O(n*m) reference through
    # the same randomized op sequence; every observable must agree.
    import random

    rng = random.Random(42)
    for trial in range(30):
        indexed, reference = WaitingList(), _ReferenceWaitingList()
        live = []
        for step in range(40):
            op = rng.random()
            if op < 0.55 or not live:
                origin, seq = rng.randrange(4), rng.randrange(1, 30)
                mid = m(origin, seq)
                if mid in indexed._waiting:
                    continue
                # Respect Definition 3.1's structural rules: one dep
                # per origin, own-origin deps strictly earlier.
                by_origin = {}
                for _ in range(rng.randrange(1, 4)):
                    dep_origin = rng.randrange(4)
                    dep_seq = (
                        rng.randrange(1, seq) if dep_origin == origin else rng.randrange(1, 30)
                    ) if (dep_origin != origin or seq > 1) else None
                    if dep_seq is None:
                        continue
                    by_origin[dep_origin] = m(dep_origin, dep_seq)
                deps = set(by_origin.values()) - {mid}
                if not deps:
                    continue
                missing = set(rng.sample(sorted(deps), rng.randrange(1, len(deps) + 1)))
                message = msg(origin, seq, sorted(deps))
                indexed.add(message, missing)
                reference.add(message, missing)
                live.append(mid)
            elif op < 0.8:
                target = m(rng.randrange(4), rng.randrange(1, 30))
                got = [x.mid for x in indexed.notify_processed(target)]
                want = [x.mid for x in reference.notify_processed(target)]
                assert got == want
            else:
                target = m(rng.randrange(4), rng.randrange(1, 30))
                assert indexed.discard_dependent(target) == reference.discard_dependent(
                    target
                )
            assert sorted(indexed._waiting) == sorted(reference.waiting)
            assert indexed.oldest_waiting() == {
                mid.origin: min(
                    x.seq for x in reference.waiting if x.origin == mid.origin
                )
                for mid in reference.waiting
            }
