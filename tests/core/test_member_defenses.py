"""Engine-level defenses against adversarial PDUs (PROTOCOL §13):
equivocation detection on the decision log and incarnation fencing of
replayed join requests."""

from dataclasses import replace

from repro.core.config import UrcgcConfig
from repro.core.member import Member
from repro.core.message import DecisionMessage
from repro.core.rejoin import IncarnationFence, JoinRequest
from repro.harness.cluster import SimCluster
from repro.types import ProcessId, SeqNo, SubrunNo
from repro.workloads.generators import ScriptedWorkload


def _decided_member() -> tuple[Member, DecisionMessage]:
    """Run a tiny cluster for a bit and lift a real applied decision."""
    n = 3
    cluster = SimCluster(
        UrcgcConfig(n=n, K=2),
        workload=ScriptedWorkload(
            {0: [(ProcessId(0), b"a")], 2: [(ProcessId(1), b"b")]}
        ),
        max_rounds=40,
    )
    cluster.run_until_quiescent()
    member = cluster.members[2]
    return member, DecisionMessage(member.latest_decision)


# ----------------------------------------------------------------------
# equivocation detection
# ----------------------------------------------------------------------


def test_equivocating_decision_is_detected_and_rejected():
    member, honest = _decided_member()
    decision = honest.decision
    before = member.latest_decision
    # Same number, same coordinator, different content: the second
    # story must be rejected and counted, not applied.
    stable = list(decision.stable)
    stable[int(decision.coordinator)] = SeqNo(int(stable[int(decision.coordinator)]) + 1)
    forged = replace(decision, stable=tuple(stable))
    member.on_message(DecisionMessage(forged))
    assert member.equivocations_detected == 1
    assert member.latest_decision == before


def test_identical_redelivery_is_not_equivocation():
    member, honest = _decided_member()
    member.on_message(honest)
    assert member.equivocations_detected == 0


def test_same_number_different_coordinator_is_benign():
    member, honest = _decided_member()
    decision = honest.decision
    other = ProcessId((int(decision.coordinator) + 1) % member.config.n)
    variant = replace(decision, coordinator=other)
    member.on_message(DecisionMessage(variant))
    # The dual-coordinator race under view divergence: not equivocation
    # (the chain discipline arbitrates it).
    assert member.equivocations_detected == 0


def test_decision_log_is_bounded():
    member, honest = _decided_member()
    decision = honest.decision
    for k in range(100):
        member._is_equivocation(replace(decision, number=SubrunNo(1000 + k)))
    assert len(member._decision_log) <= 64


# ----------------------------------------------------------------------
# incarnation fencing
# ----------------------------------------------------------------------


def test_incarnation_fence_unit():
    fence = IncarnationFence()
    pid = ProcessId(1)
    assert not fence.is_stale(pid, 1)  # nothing admitted yet
    fence.admit(pid, 3)
    assert fence.is_stale(pid, 3)  # replay of the admitted incarnation
    assert fence.is_stale(pid, 2)
    assert not fence.is_stale(pid, 4)
    fence.admit(pid, None)  # admission with unknown incarnation
    assert fence.is_stale(pid, 4)
    fence.admit(pid, 2)  # floors never move backwards
    assert fence.is_stale(pid, 4)


def test_member_fences_stale_join_replay():
    config = UrcgcConfig(n=3, K=2, enable_rejoin=True)
    member = Member(ProcessId(0), config)
    zombie = ProcessId(1)
    member._fence.admit(zombie, 5)
    stale = JoinRequest(zombie, 5, tuple(SeqNo(0) for _ in range(3)))
    member.on_message(stale)
    assert member.stale_joins_fenced == 1
    assert zombie not in member._pending_joins
    fresh = JoinRequest(zombie, 6, tuple(SeqNo(0) for _ in range(3)))
    member.on_message(fresh)
    assert member.stale_joins_fenced == 1
    assert zombie in member._pending_joins
