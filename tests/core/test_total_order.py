"""Tests for the total-order (urgc-style) layer."""

import random

from repro.core.config import UrcgcConfig
from repro.core.total_order import attach_total_order
from repro.harness.cluster import SimCluster
from repro.types import ProcessId
from repro.workloads.generators import BernoulliWorkload, FixedBudgetWorkload
from repro.workloads.scenarios import crashes, omission, reliable


def pids(n):
    return [ProcessId(i) for i in range(n)]


def run_cluster(n=4, total=16, faults=None, seed=0, max_rounds=300, **cfg):
    cluster = SimCluster(
        UrcgcConfig(n=n, **cfg),
        workload=FixedBudgetWorkload(pids(n), total=total),
        faults=faults or reliable(),
        max_rounds=max_rounds,
        seed=seed,
    )
    views = attach_total_order(cluster)
    cluster.run_until_quiescent(drain_subruns=4)
    return cluster, views


def test_identical_total_order_everywhere():
    cluster, views = run_cluster(n=4, total=20)
    orders = {tuple(m.mid for m in v.ordered) for v in views}
    assert len(orders) == 1
    assert len(views[0].ordered) == 20


def test_total_order_extends_causal_order():
    cluster, views = run_cluster(n=4, total=20)
    for view in views:
        seen = set()
        for message in view.ordered:
            for dep in message.deps:
                assert dep in seen, f"{message.mid} ordered before dep {dep}"
            seen.add(message.mid)


def test_total_order_lags_causal_delivery():
    """Release waits for stability: the total order trails the causal
    stream but contains the same messages at quiescence."""
    cluster, views = run_cluster(n=3, total=9)
    for i, view in enumerate(views):
        causal = [m.mid for m in cluster.services[i].delivered]
        assert {m.mid for m in view.ordered} == set(causal)


def test_total_order_survives_crash():
    cluster, views = run_cluster(
        n=5, total=30, faults=crashes({ProcessId(4): 2.0}), K=2
    )
    survivors = [views[p] for p in cluster.active_pids()]
    orders = {tuple(m.mid for m in v.ordered) for v in survivors}
    assert len(orders) == 1
    assert not any(v.desynchronized for v in survivors)


def test_total_order_under_omission_or_flagged():
    """Under loss, every member either releases the same order or
    honestly flags desynchronization (never a silent divergence)."""
    cluster = SimCluster(
        UrcgcConfig(n=5, K=3),
        workload=BernoulliWorkload(
            pids(5), 0.6, rng=random.Random(5), stop_after_round=20
        ),
        faults=omission(pids(5), 40, rng=random.Random(5)),
        max_rounds=600,
        seed=5,
    )
    views = attach_total_order(cluster)
    cluster.run_until_quiescent(drain_subruns=6)
    healthy = [
        v for p, v in enumerate(views)
        if cluster.is_active(ProcessId(p)) and not v.desynchronized
    ]
    orders = {tuple(m.mid for m in v.ordered) for v in healthy}
    assert len(orders) <= 1  # all synchronized members agree exactly


def test_order_rank_lookup():
    cluster, views = run_cluster(n=3, total=6)
    view = views[0]
    first = view.ordered[0]
    assert view.order_rank(first.mid) == 0
    from repro.core.mid import Mid
    from repro.types import SeqNo

    assert view.order_rank(Mid(ProcessId(0), SeqNo(999))) is None


def test_desynchronization_detection():
    """Force a member to miss one full-group decision: it must flag
    itself rather than release a divergent order."""
    from repro.net.faults import FaultPlan

    n = 4
    faults = FaultPlan()
    # p3 misses exactly the decision broadcast of subrun 1.
    faults.custom_receive_filter = lambda packet, dst, now: (
        dst == 3 and packet.kind == "ctrl-decision" and 1.4 < now < 2.1
    )
    cluster = SimCluster(
        UrcgcConfig(n=n, K=3),
        workload=FixedBudgetWorkload(pids(n), total=16),
        faults=faults,
        max_rounds=200,
    )
    views = attach_total_order(cluster)
    cluster.run_until_quiescent(drain_subruns=4)
    assert views[3].desynchronized
    # The others still agree on one order.
    orders = {tuple(m.mid for m in views[p].ordered) for p in range(3)}
    assert len(orders) == 1
