"""Unit tests for the urcgc service access point."""

from repro.core.config import UrcgcConfig
from repro.core.member import Member
from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.core.service import UrcgcService
from repro.types import ProcessId, SeqNo


def m(origin, seq):
    return Mid(ProcessId(origin), SeqNo(seq))


def make_service(pid=0, n=3, **kwargs):
    member = Member(ProcessId(pid), UrcgcConfig(n=n))
    return UrcgcService(member, **kwargs), member


def test_data_rq_confirms_after_round():
    service, member = make_service()
    handle = service.data_rq(b"payload")
    assert not handle.confirmed
    service.dispatch(member.on_round(0))
    assert handle.confirmed
    assert handle.mid == m(0, 1)


def test_confirm_callback_invoked():
    confirmed = []
    service, member = make_service(on_confirm=confirmed.append)
    handle = service.data_rq(b"x")
    service.dispatch(member.on_round(0))
    assert confirmed == [handle]


def test_confirms_are_fifo():
    service, member = make_service()
    first = service.data_rq(b"a")
    second = service.data_rq(b"b")
    service.dispatch(member.on_round(0))
    assert first.confirmed and not second.confirmed
    service.dispatch(member.on_round(2))
    assert second.confirmed
    assert first.mid.seq < second.mid.seq


def test_indication_callback():
    indications = []
    service, member = make_service(on_indication=indications.append)
    message = UserMessage(m(1, 1), (), b"from peer")
    service.dispatch(member.on_message(message))
    assert indications == [message]
    assert service.delivered == [message]


def test_own_messages_also_indicated():
    """The sender processes (and is Ind-notified of) its own message."""
    indications = []
    service, member = make_service(on_indication=indications.append)
    service.data_rq(b"mine")
    service.dispatch(member.on_round(0))
    assert [i.mid for i in indications] == [m(0, 1)]


def test_dispatch_returns_sends_only():
    from repro.core.effects import Send

    service, member = make_service()
    service.data_rq(b"x")
    sends = service.dispatch(member.on_round(0))
    assert sends
    assert all(isinstance(s, Send) for s in sends)


def test_leave_callback():
    from dataclasses import replace

    from repro.core.decision import initial_decision
    from repro.core.message import DecisionMessage
    from repro.types import SubrunNo

    reasons = []
    service, member = make_service(pid=2, on_leave=reasons.append)
    decision = replace(
        initial_decision(3), number=SubrunNo(0), chain=1, alive=(True, True, False)
    )
    service.dispatch(member.on_message(DecisionMessage(decision)))
    assert len(reasons) == 1
    assert "suicide" in reasons[0]


def test_discarded_mids_recorded():
    from dataclasses import replace

    from repro.core.decision import initial_decision
    from repro.core.message import DecisionMessage
    from repro.types import SubrunNo

    service, member = make_service(pid=0)
    service.dispatch(member.on_message(UserMessage(m(1, 2), (m(1, 1),))))
    decision = replace(
        initial_decision(3),
        number=SubrunNo(3),
        chain=1,
        alive=(True, False, True),
        full_group=True,
        min_waiting=(SeqNo(0), SeqNo(2), SeqNo(0)),
    )
    service.dispatch(member.on_message(DecisionMessage(decision)))
    assert service.discarded_mids == [m(1, 2)]


def test_try_data_rq_refuses_instead_of_queueing():
    from repro.errors import FlowControlBlocked

    service, member = make_service()
    first = service.try_data_rq(b"a")
    # A second immediate request would queue: refused instead.
    import pytest as _pytest

    with _pytest.raises(FlowControlBlocked, match="queued"):
        service.try_data_rq(b"b")
    service.dispatch(member.on_round(0))
    assert first.confirmed
    # Queue drained: accepted again.
    service.try_data_rq(b"c")


def test_try_data_rq_refuses_under_flow_control():
    from repro.core.config import UrcgcConfig
    from repro.core.member import Member
    from repro.errors import FlowControlBlocked

    member = Member(ProcessId(0), UrcgcConfig(n=2, flow_threshold=1))
    service = UrcgcService(member)
    service.dispatch(member.on_message(UserMessage(m(1, 1), ())))
    import pytest as _pytest

    with _pytest.raises(FlowControlBlocked, match="flow control"):
        service.try_data_rq(b"x")


def test_extra_indication_handlers_compose():
    service, member = make_service()
    primary, extra = [], []
    service.set_indication_handler(lambda msg: primary.append(msg.payload))
    service.add_indication_handler(lambda msg: extra.append(msg.payload))
    service.dispatch(member.on_message(UserMessage(m(1, 1), (), b"both")))
    assert primary == [b"both"]
    assert extra == [b"both"]


def test_remove_indication_handler():
    service, member = make_service()
    seen = []
    handler = lambda msg: seen.append(msg.payload)  # noqa: E731
    service.add_indication_handler(handler)
    service.dispatch(member.on_message(UserMessage(m(1, 1), (), b"a")))
    service.remove_indication_handler(handler)
    service.dispatch(member.on_message(UserMessage(m(1, 2), (m(1, 1),), b"b")))
    assert seen == [b"a"]


def test_data_rq_many_queues_in_order():
    service, member = make_service()
    handles = service.data_rq_many([b"x", b"y", b"z"])
    assert len(handles) == 3
    for _ in range(6):
        service.dispatch(member.on_round(_))
    assert all(h.confirmed for h in handles)
