"""Edge-case tests for the Member engine: stale traffic, view
divergence, fork rejection, and recovery corner cases."""

from dataclasses import replace

from repro.core.config import LeaveRule, UrcgcConfig
from repro.core.decision import RequestInfo, compute_decision, initial_decision
from repro.core.effects import Deliver, Send
from repro.core.member import Member
from repro.core.message import (
    KIND_DECISION,
    KIND_RECOVERY_RQ,
    DecisionMessage,
    RecoveryRequest,
    RequestMessage,
    UserMessage,
)
from repro.core.mid import Mid
from repro.net.addressing import UnicastAddress
from repro.types import ProcessId, SeqNo, SubrunNo


def m(origin, seq):
    return Mid(ProcessId(origin), SeqNo(seq))


def sends_of(effects, kind=None):
    return [e for e in effects if isinstance(e, Send) and (kind is None or e.kind == kind)]


def zero_info(n):
    return RequestInfo((SeqNo(0),) * n, (SeqNo(0),) * n)


def make_decision(n, *, number, chain, **overrides):
    return replace(
        initial_decision(n), number=SubrunNo(number), chain=chain, **overrides
    )


class TestStaleTraffic:
    def test_stale_request_ignored_by_coordinator(self):
        member = Member(ProcessId(0), UrcgcConfig(n=3))
        member.on_round(0)
        member.on_round(1)
        member.on_round(6)  # subrun 3 — p0 is coordinator again
        stale = RequestMessage(
            ProcessId(1), SubrunNo(0), zero_info(3), initial_decision(3)
        )
        member.on_message(stale)
        effects = member.on_round(7)
        decision = sends_of(effects, KIND_DECISION)[0].message.decision
        # Only the coordinator's own state contributed.
        assert decision.contributors == (True, False, False)

    def test_request_for_wrong_coordinator_ignored(self):
        """A request addressed by a diverged view to a non-coordinator
        is dropped (but its circulated decision is still adopted)."""
        member = Member(ProcessId(2), UrcgcConfig(n=3))
        member.on_round(0)
        newer = make_decision(3, number=0, chain=1)
        request = RequestMessage(ProcessId(1), SubrunNo(0), zero_info(3), newer)
        member.on_message(request)
        assert member.latest_decision == newer  # circulation worked
        # p2 is not subrun 0's coordinator: no decision is produced.
        assert sends_of(member.on_round(1), KIND_DECISION) == []

    def test_duplicate_decision_idempotent(self):
        member = Member(ProcessId(1), UrcgcConfig(n=3))
        decision = make_decision(3, number=0, chain=1)
        member.on_message(DecisionMessage(decision))
        effects = member.on_message(DecisionMessage(decision))
        assert effects == []


class TestForkRejection:
    # K is large so the synthetic chain jump from the initial decision
    # does not trigger the confirmed leave rule.
    def _member(self):
        return Member(ProcessId(1), UrcgcConfig(n=3, K=10))

    def test_same_chain_longer_number_rejected(self):
        member = self._member()
        good = make_decision(3, number=3, chain=4)
        member.on_message(DecisionMessage(good))
        fork = make_decision(3, number=7, chain=4, alive=(True, False, False))
        member.on_message(DecisionMessage(fork))
        assert member.latest_decision == good
        assert member.forked_decisions_rejected == 1
        assert member.view.is_alive(ProcessId(1))

    def test_fork_with_shorter_chain_rejected(self):
        member = self._member()
        member.on_message(DecisionMessage(make_decision(3, number=3, chain=4)))
        fork = make_decision(3, number=9, chain=2, alive=(False, False, True))
        member.on_message(DecisionMessage(fork))
        assert not member.has_left

    def test_proper_extension_accepted(self):
        member = self._member()
        member.on_message(DecisionMessage(make_decision(3, number=3, chain=4)))
        extension = make_decision(3, number=4, chain=5)
        member.on_message(DecisionMessage(extension))
        assert member.latest_decision == extension


class TestRecoveryCorners:
    def test_recovery_not_sent_to_dead_holder(self):
        member = Member(ProcessId(0), UrcgcConfig(n=3))
        decision = make_decision(
            3,
            number=0,
            chain=1,
            alive=(True, True, False),
            max_processed=(SeqNo(0), SeqNo(0), SeqNo(4)),
            most_updated=(ProcessId(0), ProcessId(1), ProcessId(2)),
        )
        effects = member.on_message(DecisionMessage(decision))
        # The only claimed holder (p2) is dead: no recovery request.
        assert sends_of(effects, KIND_RECOVERY_RQ) == []

    def test_recovery_attempts_reset_on_progress(self):
        member = Member(ProcessId(0), UrcgcConfig(n=3, K=1, R=3))
        for s in range(2):
            decision = make_decision(
                3,
                number=s,
                chain=s + 1,
                max_processed=(SeqNo(0), SeqNo(2), SeqNo(0)),
                most_updated=(ProcessId(0), ProcessId(1), ProcessId(1)),
            )
            member.on_message(DecisionMessage(decision))
        # Progress arrives: m(1,1) and m(1,2) recovered.
        member.on_message(UserMessage(m(1, 1), ()))
        member.on_message(UserMessage(m(1, 2), (m(1, 1),)))
        # Subsequent decisions pointing at a new gap start fresh.
        for s in range(2, 5):
            decision = make_decision(
                3,
                number=s,
                chain=s + 1,
                max_processed=(SeqNo(0), SeqNo(3), SeqNo(0)),
                most_updated=(ProcessId(0), ProcessId(1), ProcessId(1)),
            )
            member.on_message(DecisionMessage(decision))
        assert not member.has_left

    def test_recovery_range_respects_discard_mark(self):
        member = Member(ProcessId(0), UrcgcConfig(n=3))
        # Orphan-discard origin 2 beyond seq 0.
        discard = make_decision(
            3,
            number=0,
            chain=1,
            alive=(True, True, False),
            full_group=True,
            min_waiting=(SeqNo(0), SeqNo(0), SeqNo(2)),
        )
        member.on_message(DecisionMessage(discard))
        # A later (stale-information) decision claims p1 holds m(2,4).
        stale_claim = make_decision(
            3,
            number=1,
            chain=2,
            alive=(True, True, False),
            max_processed=(SeqNo(0), SeqNo(0), SeqNo(4)),
            most_updated=(ProcessId(0), ProcessId(1), ProcessId(1)),
        )
        effects = member.on_message(DecisionMessage(stale_claim))
        # Everything >= the discard mark is excluded from recovery.
        assert sends_of(effects, KIND_RECOVERY_RQ) == []

    def test_empty_recovery_response_sent_for_unknown_range(self):
        member = Member(ProcessId(0), UrcgcConfig(n=3))
        effects = member.on_message(
            RecoveryRequest(ProcessId(1), ((ProcessId(2), SeqNo(1), SeqNo(5)),))
        )
        responses = sends_of(effects)
        assert len(responses) == 1
        assert responses[0].message.messages == ()
        assert responses[0].dst == UnicastAddress(ProcessId(1))


class TestCoordinatorRotationWithFailures:
    def test_member_takes_over_when_predecessors_removed(self):
        """With p0 and p1 removed, p2 coordinates subruns 0 and 1."""
        member = Member(ProcessId(2), UrcgcConfig(n=3))
        decision = make_decision(
            3, number=0, chain=1, alive=(False, False, True)
        )
        member.on_message(DecisionMessage(decision))
        effects = member.on_round(2)  # subrun 1 (rotation position p1)
        assert sends_of(effects, "ctrl-request") == []  # self-coordinated
        effects = member.on_round(3)
        assert len(sends_of(effects, KIND_DECISION)) == 1

    def test_strict_rule_excuses_known_crashed_coordinator(self):
        member = Member(
            ProcessId(2), UrcgcConfig(n=4, K=2, leave_rule=LeaveRule.STRICT)
        )
        # p2 learns p1 (subrun 1's coordinator) already crashed.
        decision = make_decision(
            4, number=0, chain=1, alive=(True, False, True, True)
        )
        member.on_message(DecisionMessage(decision))
        member.on_round(2)
        member.on_round(3)
        member.on_round(4)  # missed subrun 1... but wait:
        # with p1 removed, subrun 1's coordinator is p2 itself, so no
        # miss is counted and the member stays.
        assert not member.has_left


class TestFullGroupBookkeeping:
    def test_full_group_counter(self):
        member = Member(ProcessId(1), UrcgcConfig(n=2))
        member.on_message(
            DecisionMessage(
                compute_decision(
                    SubrunNo(0),
                    ProcessId(0),
                    initial_decision(2),
                    {ProcessId(0): zero_info(2), ProcessId(1): zero_info(2)},
                    K=3,
                )
            )
        )
        assert member.full_group_decisions_seen == 1

    def test_deliver_effects_only_once_per_message(self):
        member = Member(ProcessId(0), UrcgcConfig(n=2))
        first = member.on_message(UserMessage(m(1, 1), ()))
        again = member.on_message(UserMessage(m(1, 1), ()))
        assert sum(isinstance(e, Deliver) for e in first) == 1
        assert sum(isinstance(e, Deliver) for e in again) == 0
