"""Unit tests for the local group view and coordinator rotation."""

import pytest

from repro.core.group_view import GroupView
from repro.errors import ConfigError, NotInGroupError
from repro.types import ProcessId, SubrunNo


def test_all_alive_initially():
    view = GroupView(4)
    assert view.alive_count() == 4
    assert view.alive_set() == {0, 1, 2, 3}


def test_remove_is_idempotent():
    view = GroupView(3)
    view.remove(ProcessId(1))
    view.remove(ProcessId(1))
    assert view.alive_count() == 2
    assert not view.is_alive(ProcessId(1))


def test_rotation_without_failures():
    view = GroupView(3)
    assert [view.coordinator_of(SubrunNo(s)) for s in range(6)] == [0, 1, 2, 0, 1, 2]


def test_rotation_skips_crashed():
    view = GroupView(4)
    view.remove(ProcessId(1))
    assert view.coordinator_of(SubrunNo(1)) == 2
    assert view.coordinator_of(SubrunNo(5)) == 2  # 5 % 4 == 1 -> skip to 2


def test_rotation_wraps_around():
    view = GroupView(3)
    view.remove(ProcessId(2))
    assert view.coordinator_of(SubrunNo(2)) == 0


def test_rotation_with_single_survivor():
    view = GroupView(3)
    view.remove(ProcessId(0))
    view.remove(ProcessId(2))
    for s in range(5):
        assert view.coordinator_of(SubrunNo(s)) == 1


def test_empty_group_raises():
    view = GroupView(2)
    view.remove(ProcessId(0))
    view.remove(ProcessId(1))
    with pytest.raises(NotInGroupError):
        view.coordinator_of(SubrunNo(0))


def test_apply_vector_reports_new_removals():
    view = GroupView(4)
    removed = view.apply_vector([True, False, True, False])
    assert removed == [1, 3]
    # Applying again reports nothing new.
    assert view.apply_vector([True, False, True, False]) == []


def test_apply_vector_cannot_resurrect():
    view = GroupView(2)
    view.remove(ProcessId(0))
    view.apply_vector([True, True])
    assert not view.is_alive(ProcessId(0))


def test_apply_vector_length_checked():
    view = GroupView(2)
    with pytest.raises(ConfigError):
        view.apply_vector([True])


def test_pid_bounds_checked():
    view = GroupView(2)
    with pytest.raises(NotInGroupError):
        view.is_alive(ProcessId(2))
    with pytest.raises(NotInGroupError):
        view.remove(ProcessId(-1))


def test_invalid_size_rejected():
    with pytest.raises(ConfigError):
        GroupView(0)
