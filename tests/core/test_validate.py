"""Semantic bounds validation of decoded PDUs (PROTOCOL §13)."""

from dataclasses import replace

from repro.core.decision import initial_decision
from repro.core.message import (
    DecisionMessage,
    GenerateBatch,
    HeartbeatMessage,
    RecoveryRequest,
    RecoveryResponse,
    UserMessage,
)
from repro.core.mid import Mid
from repro.core.rejoin import JoinRequest
from repro.core.validate import validate_message
from repro.types import ProcessId, SeqNo

N = 4


def _mid(origin: int, seq: int = 1) -> Mid:
    return Mid(ProcessId(origin), SeqNo(seq))


def test_valid_messages_pass():
    assert validate_message(UserMessage(_mid(1), (_mid(0, 2),)), N) is None
    assert validate_message(DecisionMessage(initial_decision(N)), N) is None
    assert (
        validate_message(HeartbeatMessage(ProcessId(3), 0, 2), N) is None
    )
    assert (
        validate_message(
            JoinRequest(ProcessId(2), 1, tuple(SeqNo(0) for _ in range(N))), N
        )
        is None
    )


def test_out_of_range_mid_origin_rejected():
    assert validate_message(UserMessage(_mid(N), ()), N) is not None
    assert validate_message(UserMessage(_mid(0xFFFF), ()), N) is not None


def test_forged_dependency_origin_rejected():
    message = UserMessage(_mid(1), (_mid(0xFFFF),))
    problem = validate_message(message, N)
    assert problem is not None and "dep" in problem


def test_decision_vector_length_mismatch_rejected():
    shorter = initial_decision(N - 1)  # wrong group size on the wire
    assert validate_message(DecisionMessage(shorter), N) is not None


def test_decision_out_of_range_coordinator_rejected():
    forged = replace(initial_decision(N), coordinator=ProcessId(N))
    assert validate_message(DecisionMessage(forged), N) is not None


def test_decision_out_of_range_joiner_rejected():
    forged = replace(initial_decision(N), joiners=(ProcessId(N + 3),))
    assert validate_message(DecisionMessage(forged), N) is not None


def test_batch_and_recovery_bounds():
    batch = GenerateBatch(
        origin=ProcessId(N), first_seq=SeqNo(1), shared_deps=(),
        ext_flags=(False,), payloads=(b"x",),
    )
    assert validate_message(batch, N) is not None
    assert (
        validate_message(RecoveryRequest(ProcessId(N), ()), N) is not None
    )
    bad_range = RecoveryRequest(
        ProcessId(0), ((ProcessId(N), SeqNo(1), SeqNo(2)),)
    )
    assert validate_message(bad_range, N) is not None
    nested = RecoveryResponse(ProcessId(0), (UserMessage(_mid(N), ()),))
    assert validate_message(nested, N) is not None


def test_join_request_vector_length_rejected():
    join = JoinRequest(ProcessId(1), 1, (SeqNo(0),))
    assert validate_message(join, N) is not None


def test_heartbeat_out_of_range_sender_rejected():
    assert validate_message(HeartbeatMessage(ProcessId(N), 0, 0), N) is not None


def test_unknown_message_type_rejected():
    problem = validate_message(object(), N)
    assert problem is not None and "unexpected" in problem
