"""Tests for the client-server and diffusion group structures."""

import pytest

from repro.core.config import UrcgcConfig
from repro.core.groups import (
    ClientServerGroup,
    DiffusionGroup,
    Role,
    first_reply,
    majority_vote,
)
from repro.errors import ConfigError, ProtocolError
from repro.harness.cluster import SimCluster
from repro.types import ProcessId


def build_cs_cluster(n=4, servers=(0, 1), handler=None):
    """A SimCluster with ClientServerGroup adapters on every member."""
    cluster = SimCluster(UrcgcConfig(n=n), max_rounds=80)
    server_set = {ProcessId(s) for s in servers}
    handler = handler or (lambda client, body: b"ack:" + body)
    adapters = []
    for i in range(n):
        pid = ProcessId(i)
        role = Role.SERVER if pid in server_set else Role.CLIENT
        adapters.append(
            ClientServerGroup(
                cluster.services[i],
                role,
                server_set,
                handler=handler if role is Role.SERVER else None,
            )
        )
    return cluster, adapters


class TestVotingFunctions:
    def test_majority(self):
        assert majority_vote([b"a", b"b", b"a"]) == b"a"

    def test_majority_tie_deterministic(self):
        assert majority_vote([b"b", b"a"]) == majority_vote([b"a", b"b"])

    def test_first(self):
        assert first_reply([b"x", b"y"]) == b"x"

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            majority_vote([])
        with pytest.raises(ProtocolError):
            first_reply([])


class TestClientServer:
    def test_call_resolves_with_h_replies(self):
        cluster, adapters = build_cs_cluster()
        client = adapters[2]
        handle = client.call(b"read x", h=2, v=majority_vote)
        cluster.run_until_quiescent(drain_subruns=2)
        assert handle.resolved
        assert handle.result == b"ack:read x"
        assert len(handle.replies) >= 2
        assert set(handle.responders) <= {ProcessId(0), ProcessId(1)}

    def test_every_server_serves_each_call_once(self):
        cluster, adapters = build_cs_cluster()
        adapters[2].call(b"op")
        cluster.run_until_quiescent(drain_subruns=2)
        assert adapters[0].served_count == 1
        assert adapters[1].served_count == 1
        assert adapters[3].served_count == 0  # clients never serve

    def test_servers_process_calls_in_same_order(self):
        """Uniform ordering carries over: both servers see the two
        calls in the same causal order."""
        orders = {0: [], 1: []}

        def handler_for(sid):
            def handler(client, body):
                orders[sid].append(bytes(body))
                return b"ok"
            return handler

        cluster = SimCluster(UrcgcConfig(n=4), max_rounds=80)
        servers = {ProcessId(0), ProcessId(1)}
        adapters = []
        for i in range(4):
            pid = ProcessId(i)
            role = Role.SERVER if pid in servers else Role.CLIENT
            adapters.append(
                ClientServerGroup(
                    cluster.services[i],
                    role,
                    servers,
                    handler=handler_for(i) if role is Role.SERVER else None,
                )
            )
        adapters[2].call(b"first")
        adapters[3].call(b"second")
        cluster.run_until_quiescent(drain_subruns=2)
        assert sorted(orders[0]) == [b"first", b"second"]
        assert orders[0] == orders[1]

    def test_server_cannot_call(self):
        _, adapters = build_cs_cluster()
        with pytest.raises(ProtocolError):
            adapters[0].call(b"nope")

    def test_h_bounds_checked(self):
        _, adapters = build_cs_cluster()
        with pytest.raises(ConfigError):
            adapters[2].call(b"x", h=3)  # only 2 servers
        with pytest.raises(ConfigError):
            adapters[2].call(b"x", h=0)

    def test_config_validation(self):
        cluster = SimCluster(UrcgcConfig(n=3), max_rounds=10)
        with pytest.raises(ConfigError):
            ClientServerGroup(cluster.services[0], Role.SERVER, set())
        with pytest.raises(ConfigError):
            ClientServerGroup(
                cluster.services[0], Role.SERVER, {ProcessId(1)},
                handler=lambda c, b: b"",
            )
        with pytest.raises(ConfigError):
            ClientServerGroup(cluster.services[0], Role.SERVER, {ProcessId(0)})


class TestDiffusion:
    def test_publications_reach_everyone(self):
        cluster = SimCluster(UrcgcConfig(n=3), max_rounds=40)
        adapters = [
            DiffusionGroup(
                cluster.services[i],
                Role.SERVER if i == 0 else Role.CLIENT,
            )
            for i in range(3)
        ]
        adapters[0].publish(b"tick-1")
        adapters[0].publish(b"tick-2")
        cluster.run_until_quiescent(drain_subruns=2)
        for adapter in adapters:
            assert [body for _, body in adapter.received] == [b"tick-1", b"tick-2"]
            assert all(sender == ProcessId(0) for sender, _ in adapter.received)

    def test_clients_are_read_only(self):
        cluster = SimCluster(UrcgcConfig(n=2), max_rounds=10)
        client = DiffusionGroup(cluster.services[1], Role.CLIENT)
        with pytest.raises(ProtocolError):
            client.publish(b"nope")

    def test_publication_callback(self):
        seen = []
        cluster = SimCluster(UrcgcConfig(n=2), max_rounds=40)
        DiffusionGroup(
            cluster.services[0], Role.SERVER,
        )
        publisher = DiffusionGroup(cluster.services[0], Role.SERVER)
        DiffusionGroup(
            cluster.services[1],
            Role.CLIENT,
            on_publication=lambda pid, body: seen.append((int(pid), body)),
        )
        publisher.publish(b"news")
        cluster.run_until_quiescent(drain_subruns=2)
        assert seen == [(0, b"news")]
