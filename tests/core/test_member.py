"""Unit tests for the Member engine (sans-IO, no network)."""

from dataclasses import replace

import pytest

from repro.core.config import LeaveRule, UrcgcConfig
from repro.core.decision import RequestInfo, compute_decision, initial_decision
from repro.core.effects import Confirm, Deliver, Discarded, Left, Send
from repro.core.member import Member
from repro.core.message import (
    KIND_DATA,
    KIND_DECISION,
    KIND_RECOVERY_RQ,
    KIND_REQUEST,
    DecisionMessage,
    RecoveryRequest,
    RecoveryResponse,
    RequestMessage,
    UserMessage,
)
from repro.core.mid import Mid
from repro.errors import MemberLeftError
from repro.net.addressing import GroupAddress, UnicastAddress
from repro.types import ProcessId, SeqNo, SubrunNo


def m(origin, seq):
    return Mid(ProcessId(origin), SeqNo(seq))


def sends_of(effects, kind=None):
    return [e for e in effects if isinstance(e, Send) and (kind is None or e.kind == kind)]


def delivers_of(effects):
    return [e.message for e in effects if isinstance(e, Deliver)]


def make_member(pid=0, n=3, **kwargs):
    return Member(ProcessId(pid), UrcgcConfig(n=n, **kwargs))


class TestFirstRound:
    def test_generation_broadcast_and_local_processing(self):
        member = make_member(pid=1)
        member.submit(b"hello")
        effects = member.on_round(0)
        data_sends = sends_of(effects, KIND_DATA)
        assert len(data_sends) == 1
        message = data_sends[0].message
        assert isinstance(message, UserMessage)
        assert message.mid == m(1, 1)
        assert message.payload == b"hello"
        assert isinstance(data_sends[0].dst, GroupAddress)
        assert delivers_of(effects) == [message]
        assert any(isinstance(e, Confirm) and e.mid == m(1, 1) for e in effects)

    def test_request_sent_to_coordinator(self):
        member = make_member(pid=1)
        effects = member.on_round(0)  # subrun 0, coordinator p0
        requests = sends_of(effects, KIND_REQUEST)
        assert len(requests) == 1
        assert requests[0].dst == UnicastAddress(ProcessId(0))
        request = requests[0].message
        assert isinstance(request, RequestMessage)
        assert request.sender == 1
        assert request.subrun == 0
        assert request.decision == initial_decision(3)

    def test_coordinator_does_not_send_request_to_itself(self):
        member = make_member(pid=0)
        effects = member.on_round(0)
        assert sends_of(effects, KIND_REQUEST) == []

    def test_one_generation_per_round(self):
        member = make_member(pid=0)
        member.submit(b"a")
        member.submit(b"b")
        effects = member.on_round(0)
        assert len(sends_of(effects, KIND_DATA)) == 1
        assert member.pending_submissions == 1

    def test_request_reports_last_processed_and_waiting(self):
        member = make_member(pid=1)
        member.on_message(UserMessage(m(0, 1), ()))
        member.on_message(UserMessage(m(2, 2), (m(2, 1),)))  # waits for m(2,1)
        effects = member.on_round(0)
        request = sends_of(effects, KIND_REQUEST)[0].message
        assert request.info.last_processed == (1, 0, 0)
        assert request.info.waiting == (0, 0, 2)


class TestSecondRound:
    def test_coordinator_broadcasts_decision(self):
        member = make_member(pid=0)
        member.on_round(0)
        # Peer requests arrive before the decision round.
        for peer in (1, 2):
            request = RequestMessage(
                ProcessId(peer),
                SubrunNo(0),
                RequestInfo((SeqNo(0),) * 3, (SeqNo(0),) * 3),
                initial_decision(3),
            )
            member.on_message(request)
        effects = member.on_round(1)
        decisions = sends_of(effects, KIND_DECISION)
        assert len(decisions) == 1
        decision = decisions[0].message.decision
        assert decision.full_group
        assert decision.number == 0
        assert member.latest_decision == decision

    def test_non_coordinator_silent_in_second_round(self):
        member = make_member(pid=1)
        member.on_round(0)
        assert member.on_round(1) == []

    def test_partial_decision_without_all_requests(self):
        member = make_member(pid=0)
        member.on_round(0)
        effects = member.on_round(1)  # only own state
        decision = sends_of(effects, KIND_DECISION)[0].message.decision
        assert not decision.full_group
        assert decision.attempts == (0, 1, 1)


class TestCausalDelivery:
    def test_in_order_message_processed(self):
        member = make_member(pid=0)
        effects = member.on_message(UserMessage(m(1, 1), (), b"x"))
        assert delivers_of(effects) == [UserMessage(m(1, 1), (), b"x")]

    def test_out_of_order_waits(self):
        member = make_member(pid=0)
        effects = member.on_message(UserMessage(m(1, 2), (m(1, 1),)))
        assert delivers_of(effects) == []
        assert member.waiting_length == 1

    def test_gap_release_in_causal_order(self):
        member = make_member(pid=0)
        member.on_message(UserMessage(m(1, 2), (m(1, 1),)))
        effects = member.on_message(UserMessage(m(1, 1), ()))
        assert [d.mid for d in delivers_of(effects)] == [m(1, 1), m(1, 2)]

    def test_implicit_predecessor_dependency(self):
        """Even without an explicit dep list, (o, s) waits for (o, s-1)."""
        member = make_member(pid=0)
        effects = member.on_message(UserMessage(m(1, 2), ()))
        assert delivers_of(effects) == []
        assert member.waiting_length == 1

    def test_cross_origin_dependency(self):
        member = make_member(pid=0)
        member.on_message(UserMessage(m(2, 1), (m(1, 1),)))
        assert member.waiting_length == 1
        effects = member.on_message(UserMessage(m(1, 1), ()))
        assert [d.mid for d in delivers_of(effects)] == [m(1, 1), m(2, 1)]

    def test_duplicates_ignored(self):
        member = make_member(pid=0)
        member.on_message(UserMessage(m(1, 1), ()))
        effects = member.on_message(UserMessage(m(1, 1), ()))
        assert delivers_of(effects) == []
        assert member.duplicate_count == 1

    def test_duplicate_waiting_ignored(self):
        member = make_member(pid=0)
        member.on_message(UserMessage(m(1, 2), (m(1, 1),)))
        member.on_message(UserMessage(m(1, 2), (m(1, 1),)))
        assert member.waiting_length == 1
        assert member.duplicate_count == 1

    def test_processed_messages_enter_history(self):
        member = make_member(pid=0)
        member.on_message(UserMessage(m(1, 1), ()))
        assert member.history.contains(m(1, 1))

    def test_deliveries_feed_causal_context(self):
        """Deps of the next generated message include processed peers."""
        member = make_member(pid=0)
        member.on_message(UserMessage(m(1, 1), ()))
        member.submit(b"reply")
        effects = member.on_round(0)
        message = sends_of(effects, KIND_DATA)[0].message
        assert m(1, 1) in message.deps


class TestDecisionHandling:
    def _decision(self, member, **overrides):
        base = compute_decision(
            SubrunNo(0),
            ProcessId(0),
            initial_decision(member.config.n),
            {
                ProcessId(i): RequestInfo(
                    (SeqNo(0),) * member.config.n, (SeqNo(0),) * member.config.n
                )
                for i in range(member.config.n)
            },
            K=member.config.K,
        )
        return replace(base, **overrides)

    def test_adopts_newer_decision(self):
        member = make_member(pid=1)
        decision = self._decision(member)
        member.on_message(DecisionMessage(decision))
        assert member.latest_decision == decision

    def test_ignores_stale_decision(self):
        member = make_member(pid=1)
        newer = self._decision(member, number=SubrunNo(5), chain=2)
        member.on_message(DecisionMessage(newer))
        older = self._decision(member, number=SubrunNo(1), chain=1)
        member.on_message(DecisionMessage(older))
        assert member.latest_decision == newer

    def test_suicide_when_presumed_dead(self):
        member = make_member(pid=2)
        decision = self._decision(
            member, alive=(True, True, False), attempts=(0, 0, 3)
        )
        effects = member.on_message(DecisionMessage(decision))
        left = [e for e in effects if isinstance(e, Left)]
        assert len(left) == 1
        assert "suicide" in left[0].reason
        assert member.has_left

    def test_membership_update(self):
        member = make_member(pid=0)
        decision = self._decision(member, alive=(True, False, True))
        member.on_message(DecisionMessage(decision))
        assert not member.view.is_alive(ProcessId(1))

    def test_full_group_decision_cleans_history(self):
        member = make_member(pid=0)
        member.on_message(UserMessage(m(1, 1), ()))
        decision = self._decision(
            member, stable=(SeqNo(0), SeqNo(1), SeqNo(0)), full_group=True
        )
        member.on_message(DecisionMessage(decision))
        assert not member.history.contains(m(1, 1))

    def test_partial_decision_does_not_clean(self):
        member = make_member(pid=0)
        member.on_message(UserMessage(m(1, 1), ()))
        decision = self._decision(
            member, stable=(SeqNo(0), SeqNo(1), SeqNo(0)), full_group=False
        )
        member.on_message(DecisionMessage(decision))
        assert member.history.contains(m(1, 1))

    def test_recovery_requested_from_most_updated(self):
        member = make_member(pid=0)
        decision = self._decision(
            member,
            max_processed=(SeqNo(0), SeqNo(3), SeqNo(0)),
            most_updated=(ProcessId(0), ProcessId(2), ProcessId(2)),
        )
        effects = member.on_message(DecisionMessage(decision))
        recoveries = sends_of(effects, KIND_RECOVERY_RQ)
        assert len(recoveries) == 1
        assert recoveries[0].dst == UnicastAddress(ProcessId(2))
        assert recoveries[0].message.ranges == ((ProcessId(1), SeqNo(1), SeqNo(3)),)

    def test_no_recovery_when_up_to_date(self):
        member = make_member(pid=0)
        member.on_message(UserMessage(m(1, 1), ()))
        decision = self._decision(
            member,
            max_processed=(SeqNo(0), SeqNo(1), SeqNo(0)),
            most_updated=(ProcessId(0), ProcessId(1), ProcessId(2)),
        )
        effects = member.on_message(DecisionMessage(decision))
        assert sends_of(effects, KIND_RECOVERY_RQ) == []

    def test_recovery_budget_exhaustion_leaves(self):
        member = make_member(pid=0, n=3, K=1, R=3)
        for s in range(5):
            decision = self._decision(
                member,
                number=SubrunNo(s),
                chain=s + 1,
                max_processed=(SeqNo(0), SeqNo(3), SeqNo(0)),
                most_updated=(ProcessId(0), ProcessId(2), ProcessId(2)),
            )
            effects = member.on_message(DecisionMessage(decision))
            if member.has_left:
                break
        assert member.has_left
        assert "recovery" in member.left_reason


class TestRecoveryServer:
    def test_answers_from_history(self):
        member = make_member(pid=0)
        member.on_message(UserMessage(m(1, 1), (), b"a"))
        member.on_message(UserMessage(m(1, 2), (m(1, 1),), b"b"))
        effects = member.on_message(
            RecoveryRequest(ProcessId(2), ((ProcessId(1), SeqNo(1), SeqNo(2)),))
        )
        responses = sends_of(effects)
        assert len(responses) == 1
        response = responses[0].message
        assert isinstance(response, RecoveryResponse)
        assert [u.mid for u in response.messages] == [m(1, 1), m(1, 2)]
        assert responses[0].dst == UnicastAddress(ProcessId(2))

    def test_partial_answer_for_missing_range(self):
        member = make_member(pid=0)
        member.on_message(UserMessage(m(1, 1), ()))
        effects = member.on_message(
            RecoveryRequest(ProcessId(2), ((ProcessId(1), SeqNo(1), SeqNo(5)),))
        )
        response = sends_of(effects)[0].message
        assert [u.mid for u in response.messages] == [m(1, 1)]

    def test_recovered_messages_processed_by_requester(self):
        member = make_member(pid=0)
        member.on_message(UserMessage(m(1, 3), (m(1, 2),)))
        response = RecoveryResponse(
            ProcessId(2),
            (UserMessage(m(1, 1), ()), UserMessage(m(1, 2), (m(1, 1),))),
        )
        effects = member.on_message(response)
        assert [d.mid for d in delivers_of(effects)] == [m(1, 1), m(1, 2), m(1, 3)]
        assert member.waiting_length == 0


class TestFlowControl:
    def test_generation_blocked_at_threshold(self):
        member = Member(ProcessId(0), UrcgcConfig(n=2, flow_threshold=2))
        member.on_message(UserMessage(m(1, 1), ()))
        member.on_message(UserMessage(m(1, 2), (m(1, 1),)))
        member.submit(b"blocked")
        effects = member.on_round(2)
        assert sends_of(effects, KIND_DATA) == []
        assert member.pending_submissions == 1
        assert member.flow_blocked_rounds == 1

    def test_generation_resumes_after_cleaning(self):
        member = Member(ProcessId(0), UrcgcConfig(n=2, flow_threshold=2))
        member.on_message(UserMessage(m(1, 1), ()))
        member.on_message(UserMessage(m(1, 2), (m(1, 1),)))
        member.submit(b"x")
        member.on_round(2)
        member.history.clean(ProcessId(1), SeqNo(2))
        effects = member.on_round(4)
        assert len(sends_of(effects, KIND_DATA)) == 1

    def test_flow_control_disabled(self):
        member = Member(ProcessId(0), UrcgcConfig(n=2, flow_threshold=0))
        member.on_message(UserMessage(m(1, 1), ()))
        member.submit(b"x")
        effects = member.on_round(2)
        assert len(sends_of(effects, KIND_DATA)) == 1


class TestLeaveRules:
    def test_confirmed_rule_on_chain_gap(self):
        member = make_member(pid=1, n=3, K=2)
        base = initial_decision(3)
        late = replace(base, number=SubrunNo(5), chain=3, full_group=False)
        effects = member.on_message(DecisionMessage(late))
        assert member.has_left
        assert any(isinstance(e, Left) for e in effects)

    def test_confirmed_rule_tolerates_gap_below_k(self):
        member = make_member(pid=1, n=3, K=3)
        base = initial_decision(3)
        late = replace(base, number=SubrunNo(5), chain=3, full_group=False)
        member.on_message(DecisionMessage(late))
        assert not member.has_left

    def test_strict_rule_counts_missed_subruns(self):
        # pid 2 is not the coordinator of subruns 0 or 1, so it can
        # genuinely miss both decisions.
        member = Member(ProcessId(2), UrcgcConfig(n=3, K=2, leave_rule=LeaveRule.STRICT))
        member.on_round(0)
        member.on_round(1)
        member.on_round(2)  # subrun 1 begins: no decision for subrun 0 -> miss 1
        member.on_round(3)
        effects = member.on_round(4)  # miss 2 == K -> leave
        assert member.has_left
        assert any(isinstance(e, Left) for e in effects)

    def test_strict_rule_reset_by_decision(self):
        member = Member(ProcessId(1), UrcgcConfig(n=3, K=2, leave_rule=LeaveRule.STRICT))
        member.on_round(0)
        member.on_round(1)
        member.on_round(2)  # miss 1
        decision = compute_decision(
            SubrunNo(1),
            ProcessId(1),
            initial_decision(3),
            {ProcessId(1): RequestInfo((SeqNo(0),) * 3, (SeqNo(0),) * 3)},
            K=2,
        )
        member.on_message(DecisionMessage(decision))
        member.on_round(4)
        member.on_round(6)
        assert not member.has_left or member.left_reason is None

    def test_none_rule_never_leaves(self):
        member = Member(ProcessId(1), UrcgcConfig(n=3, K=1, leave_rule=LeaveRule.NONE))
        base = initial_decision(3)
        late = replace(base, number=SubrunNo(9), chain=9, full_group=False)
        member.on_message(DecisionMessage(late))
        assert not member.has_left


class TestLifecycle:
    def test_submit_after_leave_raises(self):
        member = make_member(pid=2)
        decision = replace(
            initial_decision(3), number=SubrunNo(0), chain=1, alive=(True, True, False)
        )
        member.on_message(DecisionMessage(decision))
        assert member.has_left
        with pytest.raises(MemberLeftError):
            member.submit(b"too late")

    def test_left_member_ignores_rounds_and_messages(self):
        member = make_member(pid=2)
        decision = replace(
            initial_decision(3), number=SubrunNo(0), chain=1, alive=(True, True, False)
        )
        member.on_message(DecisionMessage(decision))
        assert member.on_round(2) == []
        assert member.on_message(UserMessage(m(0, 1), ())) == []

    def test_unknown_message_type_rejected(self):
        member = make_member()
        with pytest.raises(TypeError):
            member.on_message("not a pdu")

    def test_pid_bounds_checked(self):
        from repro.errors import NotInGroupError

        with pytest.raises(NotInGroupError):
            Member(ProcessId(5), UrcgcConfig(n=3))


class TestOrphanDiscard:
    def test_waiting_tail_discarded(self):
        member = make_member(pid=0)
        # m(1,1) never arrives; m(1,2) and m(1,3) wait.
        member.on_message(UserMessage(m(1, 2), (m(1, 1),)))
        member.on_message(UserMessage(m(1, 3), (m(1, 2),)))
        assert member.waiting_length == 2
        decision = replace(
            initial_decision(3),
            number=SubrunNo(3),
            chain=1,
            alive=(True, False, True),
            full_group=True,
            max_processed=(SeqNo(0), SeqNo(0), SeqNo(0)),
            min_waiting=(SeqNo(0), SeqNo(2), SeqNo(0)),
        )
        effects = member.on_message(DecisionMessage(decision))
        discards = [e for e in effects if isinstance(e, Discarded)]
        assert len(discards) == 1
        assert discards[0].lost == m(1, 1)
        assert set(discards[0].discarded) == {m(1, 2), m(1, 3)}
        assert member.waiting_length == 0

    def test_discarded_sequence_rejected_on_arrival(self):
        member = make_member(pid=0)
        decision = replace(
            initial_decision(3),
            number=SubrunNo(3),
            chain=1,
            alive=(True, False, True),
            full_group=True,
            min_waiting=(SeqNo(0), SeqNo(2), SeqNo(0)),
        )
        member.on_message(DecisionMessage(decision))
        effects = member.on_message(UserMessage(m(1, 2), (m(1, 1),)))
        assert delivers_of(effects) == []
        assert member.waiting_length == 0

    def test_no_discard_when_gap_recoverable(self):
        """min_waiting == max_processed + 1 means no gap: the waiting
        message is the next one and is recoverable."""
        member = make_member(pid=0)
        member.on_message(UserMessage(m(1, 2), (m(1, 1),)))
        decision = replace(
            initial_decision(3),
            number=SubrunNo(3),
            chain=1,
            alive=(True, False, True),
            full_group=True,
            max_processed=(SeqNo(0), SeqNo(1), SeqNo(0)),
            most_updated=(ProcessId(0), ProcessId(2), ProcessId(2)),
            min_waiting=(SeqNo(0), SeqNo(2), SeqNo(0)),
        )
        member.on_message(DecisionMessage(decision))
        assert member.waiting_length == 1  # still waiting, not discarded

    def test_no_discard_for_alive_origin(self):
        member = make_member(pid=0)
        member.on_message(UserMessage(m(1, 2), (m(1, 1),)))
        decision = replace(
            initial_decision(3),
            number=SubrunNo(3),
            chain=1,
            full_group=True,
            min_waiting=(SeqNo(0), SeqNo(2), SeqNo(0)),
        )
        member.on_message(DecisionMessage(decision))
        assert member.waiting_length == 1
