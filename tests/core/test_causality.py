"""Unit tests for the causal-relation bookkeeping (Definition 3.1)."""

import pytest

from repro.core.causality import (
    CausalContext,
    ContiguousDependencyTracker,
    FullCausalContext,
    SetDependencyTracker,
    validate_deps,
)
from repro.core.mid import Mid
from repro.errors import CausalityViolationError
from repro.types import ProcessId, SeqNo


def m(origin, seq):
    return Mid(ProcessId(origin), SeqNo(seq))


class TestValidateDeps:
    def test_self_dependency_rejected(self):
        with pytest.raises(CausalityViolationError):
            validate_deps(m(0, 2), [m(0, 2)])

    def test_forward_own_dependency_rejected(self):
        with pytest.raises(CausalityViolationError):
            validate_deps(m(0, 2), [m(0, 3)])

    def test_duplicate_origin_rejected(self):
        with pytest.raises(CausalityViolationError):
            validate_deps(m(0, 3), [m(1, 1), m(1, 2)])

    def test_valid_deps_pass(self):
        deps = validate_deps(m(0, 3), [m(0, 2), m(1, 5)])
        assert deps == (m(0, 2), m(1, 5))

    def test_empty_deps_pass(self):
        assert validate_deps(m(0, 1), []) == ()


class TestCausalContext:
    def test_first_message_has_no_deps(self):
        context = CausalContext(ProcessId(0))
        mid, deps = context.next_message()
        assert mid == m(0, 1)
        assert deps == ()

    def test_own_sequence_chains(self):
        context = CausalContext(ProcessId(0))
        context.next_message()
        mid, deps = context.next_message()
        assert mid == m(0, 2)
        assert m(0, 1) in deps

    def test_auto_significant_includes_received(self):
        context = CausalContext(ProcessId(0))
        context.note_processed(m(1, 4))
        mid, deps = context.next_message()
        assert deps == (m(1, 4),)

    def test_latest_processed_wins(self):
        context = CausalContext(ProcessId(0))
        context.note_processed(m(1, 2))
        context.note_processed(m(1, 5))
        _, deps = context.next_message()
        assert m(1, 5) in deps
        assert m(1, 2) not in deps

    def test_stale_note_ignored(self):
        context = CausalContext(ProcessId(0))
        context.note_processed(m(1, 5))
        context.note_processed(m(1, 2))
        _, deps = context.next_message()
        assert m(1, 5) in deps

    def test_own_messages_not_noted(self):
        context = CausalContext(ProcessId(0))
        context.note_processed(m(0, 9))  # no-op: own sequence is implicit
        mid, deps = context.next_message()
        assert deps == ()

    def test_manual_significance(self):
        context = CausalContext(ProcessId(0), auto_significant=False)
        context.note_processed(m(1, 1))
        context.note_processed(m(2, 1))
        context.mark_significant(ProcessId(2))
        _, deps = context.next_message()
        assert deps == (m(2, 1),)
        # Significance is consumed: next message depends only on own chain.
        _, deps2 = context.next_message()
        assert deps2 == (m(0, 1),)

    def test_mark_significant_own_rejected(self):
        context = CausalContext(ProcessId(0))
        with pytest.raises(CausalityViolationError):
            context.mark_significant(ProcessId(0))

    def test_deps_bounded_by_n(self):
        """Intermediate interpretation: at most n dependencies."""
        context = CausalContext(ProcessId(0))
        for origin in range(1, 10):
            context.note_processed(m(origin, 1))
        context.next_message()
        _, deps = context.next_message()
        assert len(deps) <= 10


class TestFullCausalContext:
    def test_multiple_roots(self):
        context = FullCausalContext(ProcessId(0))
        mid_a, deps_a = context.next_message(sequence="a")
        mid_b, deps_b = context.next_message(sequence="b")
        assert deps_a == ()
        assert deps_b == ()  # independent root: no chain between a and b
        assert mid_a != mid_b

    def test_sequences_chain_independently(self):
        context = FullCausalContext(ProcessId(0))
        a1, _ = context.next_message(sequence="a")
        b1, _ = context.next_message(sequence="b")
        a2, deps = context.next_message(sequence="a")
        assert deps == (a1,)

    def test_new_root_restarts_chain(self):
        context = FullCausalContext(ProcessId(0))
        context.next_message(sequence="a")
        _, deps = context.next_message(sequence="a", new_root=True)
        assert deps == ()

    def test_significant_external_deps(self):
        context = FullCausalContext(ProcessId(0))
        context.note_processed(m(1, 7))
        _, deps = context.next_message(significant=[ProcessId(1)])
        assert m(1, 7) in deps


class TestContiguousTracker:
    def test_in_order_processing(self):
        tracker = ContiguousDependencyTracker()
        tracker.mark_processed(m(0, 1))
        tracker.mark_processed(m(0, 2))
        assert tracker.is_processed(m(0, 1))
        assert tracker.is_processed(m(0, 2))
        assert not tracker.is_processed(m(0, 3))
        assert tracker.last_processed(ProcessId(0)) == 2

    def test_out_of_order_rejected(self):
        tracker = ContiguousDependencyTracker()
        with pytest.raises(CausalityViolationError):
            tracker.mark_processed(m(0, 2))

    def test_double_processing_rejected(self):
        tracker = ContiguousDependencyTracker()
        tracker.mark_processed(m(0, 1))
        with pytest.raises(CausalityViolationError):
            tracker.mark_processed(m(0, 1))

    def test_snapshot(self):
        tracker = ContiguousDependencyTracker()
        tracker.mark_processed(m(0, 1))
        tracker.mark_processed(m(2, 1))
        assert tracker.snapshot() == {ProcessId(0): 1, ProcessId(2): 1}


class TestSetTracker:
    def test_arbitrary_order(self):
        tracker = SetDependencyTracker()
        tracker.mark_processed(m(0, 5))
        assert tracker.is_processed(m(0, 5))
        assert not tracker.is_processed(m(0, 1))
        tracker.mark_processed(m(0, 1))
        assert len(tracker) == 2

    def test_double_processing_rejected(self):
        tracker = SetDependencyTracker()
        tracker.mark_processed(m(0, 1))
        with pytest.raises(CausalityViolationError):
            tracker.mark_processed(m(0, 1))
