"""Unit tests for the coordinator decision computation (Figure 2)."""

import pytest

from repro.core.decision import (
    Decision,
    RequestInfo,
    compute_decision,
    initial_decision,
)
from repro.errors import ConfigError
from repro.types import ProcessId, SeqNo, SubrunNo


def info(last, waiting=None):
    last = tuple(SeqNo(v) for v in last)
    if waiting is None:
        waiting = tuple(SeqNo(0) for _ in last)
    else:
        waiting = tuple(SeqNo(v) for v in waiting)
    return RequestInfo(last, waiting)


def full_requests(n, last_vectors):
    return {ProcessId(i): info(last_vectors[i]) for i in range(n)}


class TestInitialDecision:
    def test_shape(self):
        decision = initial_decision(3)
        assert decision.n == 3
        assert decision.number == -1
        assert decision.chain == 0
        assert decision.full_group  # forces a fresh accumulation window
        assert all(decision.alive)

    def test_invalid_size(self):
        with pytest.raises(ConfigError):
            initial_decision(0)


class TestFullGroupDecision:
    def test_stable_is_min_over_contacted(self):
        prev = initial_decision(3)
        requests = full_requests(
            3, [[3, 1, 0], [2, 2, 0], [3, 2, 1]]
        )
        decision = compute_decision(SubrunNo(0), ProcessId(0), prev, requests, K=3)
        assert decision.full_group
        assert decision.stable == (2, 1, 0)

    def test_max_processed_and_most_updated(self):
        prev = initial_decision(3)
        requests = full_requests(3, [[3, 1, 0], [2, 2, 0], [3, 2, 1]])
        decision = compute_decision(SubrunNo(0), ProcessId(0), prev, requests, K=3)
        assert decision.max_processed == (3, 2, 1)
        # Origin itself preferred on ties: p0 reported 3 of its own.
        assert decision.most_updated[0] == 0
        assert decision.most_updated[2] == 2

    def test_chain_increments(self):
        prev = initial_decision(2)
        decision = compute_decision(
            SubrunNo(0), ProcessId(0), prev, full_requests(2, [[1, 0], [1, 0]]), K=3
        )
        assert decision.chain == 1
        assert decision.number == 0

    def test_attempts_reset_on_contact(self):
        prev = initial_decision(2)
        decision = compute_decision(
            SubrunNo(0), ProcessId(0), prev, full_requests(2, [[0, 0], [0, 0]]), K=3
        )
        assert decision.attempts == (0, 0)


class TestPartialDecision:
    def test_not_full_group_when_someone_silent(self):
        prev = initial_decision(3)
        requests = {ProcessId(0): info([1, 0, 0]), ProcessId(1): info([1, 0, 0])}
        decision = compute_decision(SubrunNo(0), ProcessId(0), prev, requests, K=3)
        assert not decision.full_group
        assert decision.attempts == (0, 0, 1)

    def test_accumulation_across_subruns_reaches_full_group(self):
        """p2 silent in subrun 0, p1 silent in subrun 1: the union of
        contributors covers everyone, so subrun 1 is full_group."""
        prev = initial_decision(3)
        d0 = compute_decision(
            SubrunNo(0),
            ProcessId(0),
            prev,
            {ProcessId(0): info([5, 0, 0]), ProcessId(1): info([4, 0, 0])},
            K=3,
        )
        assert not d0.full_group
        d1 = compute_decision(
            SubrunNo(1),
            ProcessId(1),
            d0,
            {ProcessId(1): info([6, 0, 0]), ProcessId(2): info([3, 0, 0])},
            K=3,
        )
        assert d1.full_group
        # stable folds the *older* minimum from the accumulation window.
        assert d1.stable[0] == 3

    def test_fresh_window_after_full_group(self):
        prev = initial_decision(2)
        d0 = compute_decision(
            SubrunNo(0), ProcessId(0), prev, full_requests(2, [[2, 0], [2, 0]]), K=3
        )
        assert d0.full_group
        # Next subrun starts fresh: only p0 contacts, so not full group.
        d1 = compute_decision(
            SubrunNo(1), ProcessId(1), d0, {ProcessId(0): info([9, 0])}, K=3
        )
        assert not d1.full_group
        assert d1.contributors == (True, False)


class TestCrashDetection:
    def test_removed_after_k_silent_decisions(self):
        n = 3
        decision = initial_decision(n)
        for s in range(3):
            requests = {ProcessId(0): info([0, 0, 0]), ProcessId(1): info([0, 0, 0])}
            decision = compute_decision(SubrunNo(s), ProcessId(0), decision, requests, K=3)
        assert decision.attempts[2] == 3
        assert not decision.alive[2]
        assert decision.alive[0] and decision.alive[1]

    def test_contact_resets_attempts(self):
        decision = initial_decision(2)
        decision = compute_decision(
            SubrunNo(0), ProcessId(0), decision, {ProcessId(0): info([0, 0])}, K=3
        )
        assert decision.attempts[1] == 1
        decision = compute_decision(
            SubrunNo(1),
            ProcessId(1),
            decision,
            {ProcessId(0): info([0, 0]), ProcessId(1): info([0, 0])},
            K=3,
        )
        assert decision.attempts[1] == 0
        assert decision.alive[1]

    def test_removed_process_request_ignored(self):
        """No rejoin: a request from a removed process is not counted."""
        base = initial_decision(2)
        dead = Decision(
            number=SubrunNo(0),
            chain=1,
            coordinator=ProcessId(0),
            alive=(True, False),
            attempts=(0, 3),
            stable=base.stable,
            contributors=(True, False),
            full_group=True,
            max_processed=base.max_processed,
            most_updated=base.most_updated,
            min_waiting=base.min_waiting,
        )
        decision = compute_decision(
            SubrunNo(1),
            ProcessId(0),
            dead,
            {ProcessId(0): info([0, 0]), ProcessId(1): info([5, 5])},
            K=3,
        )
        assert not decision.alive[1]
        assert decision.full_group  # only p0 is required
        assert decision.max_processed[1] == 0  # dead process's report ignored

    def test_full_group_over_surviving_members_only(self):
        decision = initial_decision(3)
        for s in range(3):
            decision = compute_decision(
                SubrunNo(s),
                ProcessId(s % 3),
                decision,
                {ProcessId(0): info([1, 1, 0]), ProcessId(1): info([1, 1, 0])},
                K=3,
            )
        # p2 removed at the third decision; the other two contacted, so
        # the decision is full-group over the new membership.
        assert not decision.alive[2]
        assert decision.full_group


class TestMostUpdatedCirculation:
    def test_prev_max_kept_while_holder_alive(self):
        prev = initial_decision(3)
        d0 = compute_decision(
            SubrunNo(0),
            ProcessId(0),
            prev,
            {ProcessId(1): info([0, 9, 0]), ProcessId(0): info([0, 2, 0])},
            K=5,
        )
        assert d0.max_processed[1] == 9
        assert d0.most_updated[1] == 1
        # Next subrun p1 is silent; its claim survives via circulation.
        d1 = compute_decision(
            SubrunNo(1), ProcessId(0), d0, {ProcessId(0): info([0, 2, 0])}, K=5
        )
        assert d1.max_processed[1] == 9
        assert d1.most_updated[1] == 1

    def test_prev_max_dropped_when_holder_removed(self):
        prev = initial_decision(3)
        decision = compute_decision(
            SubrunNo(0),
            ProcessId(0),
            prev,
            {ProcessId(1): info([0, 9, 0]), ProcessId(0): info([0, 2, 0])},
            K=1,  # immediate removal of silent processes
        )
        # p2 removed at subrun 0 already (K=1); p1 contacted, fine.
        decision = compute_decision(
            SubrunNo(1), ProcessId(0), decision, {ProcessId(0): info([0, 2, 0])}, K=1
        )
        # Now p1 is removed; its stale max_processed claim must vanish.
        assert not decision.alive[1]
        assert decision.max_processed[1] == 2
        assert decision.most_updated[1] == 0


class TestMinWaiting:
    def test_min_over_reports_ignoring_none(self):
        prev = initial_decision(3)
        requests = {
            ProcessId(0): info([0, 0, 0], waiting=[0, 4, 0]),
            ProcessId(1): info([0, 0, 0], waiting=[0, 2, 0]),
            ProcessId(2): info([0, 0, 0], waiting=[0, 0, 0]),
        }
        decision = compute_decision(SubrunNo(0), ProcessId(0), prev, requests, K=3)
        assert decision.min_waiting == (0, 2, 0)


def test_request_from_unknown_pid_rejected():
    prev = initial_decision(2)
    with pytest.raises(ConfigError):
        compute_decision(
            SubrunNo(0), ProcessId(0), prev, {ProcessId(7): info([0, 0])}, K=3
        )


def test_invalid_k_rejected():
    prev = initial_decision(2)
    with pytest.raises(ConfigError):
        compute_decision(SubrunNo(0), ProcessId(0), prev, {}, K=0)


def test_is_newer_than():
    a = initial_decision(2)
    b = compute_decision(SubrunNo(0), ProcessId(0), a, {ProcessId(0): info([0, 0])}, K=3)
    assert b.is_newer_than(a)
    assert not a.is_newer_than(b)
    assert a.is_newer_than(None)
