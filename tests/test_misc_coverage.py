"""Coverage for small helpers not exercised elsewhere."""

from repro.core.config import UrcgcConfig
from repro.core.member import Member
from repro.core.service import RequestHandle
from repro.net.addressing import UnicastAddress
from repro.net.packet import Packet
from repro.net.stats import NetworkStats
from repro.sim.rng import RngRegistry
from repro.types import ProcessId


class TestRngRegistry:
    def test_same_name_same_stream(self):
        registry = RngRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_fork_is_disjoint(self):
        parent = RngRegistry(1)
        child = parent.fork("worker")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_fork_deterministic(self):
        a = RngRegistry(1).fork("w")
        b = RngRegistry(1).fork("w")
        assert a.stream("x").random() == b.stream("x").random()

    def test_seed_property(self):
        assert RngRegistry(7).seed == 7


class TestNetworkStatsTotals:
    def _packet(self, kind, size=10):
        return Packet(ProcessId(0), UnicastAddress(ProcessId(1)), b"x" * size, kind=kind)

    def test_total_aggregates(self):
        stats = NetworkStats()
        stats.on_sent(self._packet("data", 10))
        stats.on_sent(self._packet("ctrl-request", 20))
        stats.on_delivered(self._packet("ctrl-request", 20))
        stats.on_dropped(self._packet("data"))
        total = stats.total()
        assert total.sent == 2
        assert total.delivered == 1
        assert total.dropped == 1

    def test_control_only_excludes_data(self):
        stats = NetworkStats()
        stats.on_sent(self._packet("data", 50))
        stats.on_sent(self._packet("ctrl-decision", 5))
        control = stats.total(control_only=True)
        assert control.sent == 1

    def test_min_max_sizes(self):
        stats = NetworkStats()
        stats.on_sent(self._packet("data", 4))
        stats.on_sent(self._packet("data", 40))
        kind = stats.kind("data")
        assert kind.min_size == 4 + 8  # + header
        assert kind.max_size == 48

    def test_as_rows_sorted(self):
        stats = NetworkStats()
        stats.on_sent(self._packet("z"))
        stats.on_sent(self._packet("a"))
        rows = stats.as_rows()
        assert [r[0] for r in rows] == ["a", "z"]

    def test_unknown_kind_is_zeros(self):
        assert NetworkStats().kind("nope").sent == 0


class TestSmallReprs:
    def test_request_handle_repr(self):
        handle = RequestHandle(b"x")
        assert "pending" in repr(handle)
        from repro.core.mid import Mid
        from repro.types import SeqNo

        handle.mid = Mid(ProcessId(0), SeqNo(1))
        assert "confirmed" in repr(handle)

    def test_trace_record_getitem(self):
        from repro.sim.trace import TraceRecord

        record = TraceRecord(0.0, "k", 1, {"x": 5})
        assert record["x"] == 5

    def test_packet_repr(self):
        packet = Packet(ProcessId(0), UnicastAddress(ProcessId(1)), b"abc", kind="data")
        text = repr(packet)
        assert "p0" in text and "3B" in text

    def test_mark_significant_via_member(self):
        member = Member(ProcessId(0), UrcgcConfig(n=3, auto_significant=False))
        from repro.core.message import UserMessage
        from repro.core.mid import Mid
        from repro.types import SeqNo

        member.on_message(UserMessage(Mid(ProcessId(1), SeqNo(1)), ()))
        member.mark_significant(ProcessId(1))
        member.submit(b"reply")
        effects = member.on_round(0)
        from repro.core.effects import Send

        data = [
            e.message for e in effects
            if isinstance(e, Send) and e.kind == "data"
        ]
        assert Mid(ProcessId(1), SeqNo(1)) in data[0].deps
