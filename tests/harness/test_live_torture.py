"""Tests for the live chaos harness and its auditing path."""

from repro.core.message import UserMessage
from repro.core.mid import Mid
from repro.harness.live_torture import (
    LiveTortureResult,
    audit_streams,
    live_torture_once,
    results_as_json,
)
from repro.types import ProcessId

P0, P1 = ProcessId(0), ProcessId(1)


def _result(seed, violations=()):
    return LiveTortureResult(
        seed=seed,
        n=3,
        K=2,
        crashed=None,
        partitioned=False,
        omission_rate=0.0,
        duplication=0.0,
        jitter=0.0,
        messages=3,
        quiesced=True,
        wall_time=0.5,
        drop_reasons={},
        violations=tuple(violations),
    )


def test_clean_live_run():
    result = live_torture_once(0, budget=20.0, round_interval=0.004)
    assert result.seed == 0
    assert result.quiesced
    assert result.ok, result.violations[:3]


def test_audit_catches_permuted_log():
    """Feed the checkers a deliberately-broken log: a message delivered
    before its declared dependency.  The audit must fire — proof the
    harness would catch a real ordering bug, not vacuously pass."""
    m1 = UserMessage(Mid(P0, 1), deps=())
    m2 = UserMessage(Mid(P0, 2), deps=(m1.mid,))
    good = [m1, m2]
    permuted = [m2, m1]
    processed_by = {m1.mid: {P0, P1}, m2.mid: {P0, P1}}
    generated = [m1.mid, m2.mid]

    assert (
        audit_streams(
            {P0: good, P1: good},
            generated,
            processed_by,
            {P0, P1},
            set(),
            converged=True,
        )
        == []
    )
    violations = audit_streams(
        {P0: good, P1: permuted},
        generated,
        processed_by,
        {P0, P1},
        set(),
        converged=True,
    )
    assert violations  # causal order and/or uniform ordering broken


def test_audit_catches_atomicity_hole():
    """A message one active member processed and another did not (and
    that nobody discarded) violates Uniform Atomicity when converged."""
    m1 = UserMessage(Mid(P0, 1), deps=())
    violations = audit_streams(
        {P0: [m1], P1: []},
        [m1.mid],
        {m1.mid: {P0}},
        {P0, P1},
        set(),
        converged=True,
    )
    assert violations


def test_violating_result_reports_seed():
    result = _result(412, ["uniform ordering broken at p1"])
    assert not result.ok
    text = result.describe()
    assert "seed=412" in text
    assert "VIOLATIONS" in text


def test_results_as_json_shape():
    results = [_result(5), _result(6, ["boom"])]
    payload = results_as_json(results)
    assert payload["experiment"] == "chaos"
    assert payload["iterations"] == 2
    assert payload["clean"] == 1
    assert payload["quiesced"] == 2
    assert payload["failing_seeds"] == [6]
    assert payload["results"][1]["violations"] == ["boom"]
    assert payload["results"][0]["seed"] == 5


def test_cli_chaos(capsys):
    from repro.harness.runner import main

    assert main(["chaos", "-n", "2", "--seed", "0", "--budget", "20"]) == 0
    out = capsys.readouterr().out
    assert "2/2 scenarios clean" in out


def test_cli_chaos_reports_reproducing_seed(capsys, monkeypatch):
    """When a scenario fails, the CLI prints the exact command that
    replays it — the seed is the whole reproduction recipe."""
    import sys

    lt = sys.modules["repro.harness.live_torture"]
    broken = _result(777, ["injected violation"])
    monkeypatch.setattr(lt, "live_torture", lambda *a, **k: [broken])
    from repro.harness.runner import main

    assert main(["chaos", "-n", "1", "--seed", "777"]) == 1
    out = capsys.readouterr().out
    assert "reproduce: python -m repro chaos --iterations 1 --seed 777" in out
