"""Tests for the crash-and-recover torture harness."""

from repro.harness.recover_torture import (
    RecoverTortureResult,
    recover_torture,
    recover_torture_once,
    results_as_json,
)


def _result(seed, violations=(), recovered=True):
    return RecoverTortureResult(
        seed=seed,
        n=3,
        K=2,
        snapshot_interval=8,
        victim=1,
        coordinator_crash=False,
        pre_crash_deliveries=4,
        post_recovery_deliveries=10,
        snapshots_taken=1,
        wal_replayed=3,
        recovered=recovered,
        quiesced=True,
        wall_time=0.5,
        violations=tuple(violations),
    )


def test_clean_recover_run():
    result = recover_torture_once(0, budget=25.0, round_interval=0.004)
    assert result.recovered, result.violations[:3]
    assert result.ok, result.violations[:3]
    assert result.post_recovery_deliveries > result.pre_crash_deliveries


def test_coordinator_crash_seed_recovers():
    # Seed 0 draws a coordinator crash (stable: rng is seed-derived).
    result = recover_torture_once(0, budget=25.0, round_interval=0.004)
    assert result.coordinator_crash
    assert result.recovered


def test_multiple_seeds_all_clean():
    results = recover_torture(3, start_seed=1, budget=25.0, round_interval=0.004)
    assert len(results) == 3
    for result in results:
        assert result.ok, (result.seed, result.violations[:3])


def test_describe_mentions_status():
    assert "ok" in _result(1).describe()
    assert "VIOLATIONS" in _result(2, violations=("x",)).describe()
    assert "STUCK" in _result(3, recovered=False).describe()


def test_results_as_json_rollup():
    payload = results_as_json([_result(1), _result(2, violations=("v",))])
    assert payload["experiment"] == "recover"
    assert payload["iterations"] == 2
    assert payload["clean"] == 1
    assert payload["recovered"] == 2
    assert payload["failing_seeds"] == [2]
    assert payload["results"][0]["seed"] == 1
