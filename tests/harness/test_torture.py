"""Tests for the torture fuzzer."""

from repro.harness.torture import torture, torture_once


def test_single_run_is_deterministic():
    a = torture_once(7)
    b = torture_once(7)
    assert a == b


def test_batch_runs_clean():
    results = torture(8, start_seed=100)
    assert len(results) == 8
    for result in results:
        assert result.ok, result.violations[:3]


def test_describe_mentions_seed():
    result = torture_once(3)
    assert "seed=3" in result.describe()
    assert "ok" in result.describe() or "VIOLATIONS" in result.describe()


def test_cli_torture(capsys):
    from repro.harness.runner import main

    assert main(["torture", "-n", "3", "--seed", "50"]) == 0
    out = capsys.readouterr().out
    assert "3/3 scenarios clean" in out
