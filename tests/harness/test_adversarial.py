"""Adversarial scenario harness: verdict model + fast live smokes."""

import pytest

from repro.core.config import FailureDetectorConfig, UrcgcConfig
from repro.harness.adversarial import (
    SCENARIOS,
    GuaranteeReport,
    run_scenario,
    scenarios_as_json,
)
from repro.net.faults import FaultPlan
from repro.harness.cluster import SimCluster
from repro.types import ProcessId
from repro.workloads.generators import ScriptedWorkload


# ----------------------------------------------------------------------
# verdict model
# ----------------------------------------------------------------------


def test_guarantee_report_ranks_verdicts():
    assert GuaranteeReport("total-order", "survived", "survived").ok
    assert GuaranteeReport("total-order", "survived", "degraded").ok
    assert GuaranteeReport("total-order", "degraded", "degraded").ok
    assert not GuaranteeReport("total-order", "degraded", "survived").ok
    assert not GuaranteeReport("total-order", "violated", "degraded").ok
    assert GuaranteeReport("total-order", "violated", "violated").ok


def test_guarantee_report_renders_violated_by_design():
    report = GuaranteeReport("view-agreement", "violated", "violated")
    assert "violated-by-design" in report.describe()
    assert report.as_dict()["by_design"] is True
    benign = GuaranteeReport("view-agreement", "survived", "survived")
    assert benign.as_dict()["by_design"] is False


def test_guarantee_report_rejects_unknown_verdicts():
    with pytest.raises(ValueError):
        GuaranteeReport("total-order", "shrugged", "survived")
    with pytest.raises(ValueError):
        GuaranteeReport("total-order", "survived", "shrugged")


def test_unknown_scenario_name_raises():
    with pytest.raises(KeyError):
        run_scenario("black-swan")


# ----------------------------------------------------------------------
# live smokes (the full sweep runs in CI's adversarial-chaos job)
# ----------------------------------------------------------------------


def test_forged_deps_scenario_survives_and_sheds_forgeries():
    result = run_scenario("forged-deps", seed=1, budget=15.0)
    assert result.ok, result.describe()
    assert result.evidence["decode_errors"] > 0
    assert {r.guarantee for r in result.guarantees} == {
        "causal-delivery",
        "total-order",
        "view-agreement",
    }


def test_equivocation_scenario_detects_the_fork():
    result = run_scenario("equivocation", seed=1, budget=15.0)
    assert result.ok, result.describe()
    assert result.evidence["equivocations_detected"] > 0


def test_scenarios_as_json_rollup():
    result = run_scenario("coordinator-crash", seed=1, budget=15.0)
    payload = scenarios_as_json([result])
    assert payload["scenarios"] == 1
    assert payload["clean"] in (0, 1)
    record = payload["results"][0]
    assert record["scenario"] == "coordinator-crash"
    assert len(record["guarantees"]) == 3


def test_registry_names_are_the_documented_fault_family():
    assert set(SCENARIOS) == {
        # §13.2 adversarial faults
        "coordinator-crash",
        "zombie-rejoin",
        "forged-deps",
        "equivocation",
        "heartbeat-suppression",
        # §14.7-14.8 service-tier failover/rebalance
        "frontend-failover",
        "shard-rebalance",
        "failover-storm",
    }


# ----------------------------------------------------------------------
# the sim driver speaks the same detector protocol
# ----------------------------------------------------------------------


def test_sim_cluster_runs_with_heartbeat_detector_and_crash():
    plan = FaultPlan()
    cluster = SimCluster(
        UrcgcConfig(
            n=4,
            K=2,
            failure_detector=FailureDetectorConfig(kind="heartbeat"),
        ),
        workload=ScriptedWorkload(
            {r: [(ProcessId(r % 3), f"m{r}".encode())] for r in range(0, 60, 6)}
        ),
        faults=plan,
        max_rounds=200,
    )
    plan.crashes.crash(ProcessId(3), 6.0)
    cluster.run_until_quiescent()
    assert cluster.quiescent()
    # The survivors eventually suspected the silent crashed member.
    suspected = {
        event.pid for _, event in cluster.suspicion_events if event.suspected
    }
    assert 3 in suspected
