"""Unit tests for the parameter-sweep helper."""

import pytest

from repro.harness.sweep import sweep


def test_cartesian_product_rows():
    result = sweep(
        {"a": [1, 2], "b": [10, 20]},
        lambda a, b: {"sum": a + b},
    )
    assert result.axes == ("a", "b")
    assert result.metrics == ("sum",)
    assert result.rows == [(1, 10, 11), (1, 20, 21), (2, 10, 12), (2, 20, 22)]


def test_column_access():
    result = sweep({"a": [1, 2]}, lambda a: {"double": 2 * a})
    assert result.column("a") == [1, 2]
    assert result.column("double") == [2, 4]
    with pytest.raises(KeyError):
        result.column("nope")


def test_where_filters_rows():
    result = sweep({"a": [1, 2], "b": [3, 4]}, lambda a, b: {"v": a * b})
    assert result.where(a=2) == [(2, 3, 6), (2, 4, 8)]


def test_inconsistent_metrics_rejected():
    def run(a):
        return {"x": a} if a == 1 else {"y": a}

    with pytest.raises(ValueError):
        sweep({"a": [1, 2]}, run)


def test_render_produces_table():
    result = sweep({"a": [1]}, lambda a: {"v": 1.5})
    out = result.render(title="T")
    assert "T" in out and "1.500" in out


def test_runner_registry():
    from repro.harness.runner import EXPERIMENTS, run_experiment

    assert {"figure4", "figure5", "table1", "figure6a", "figure6b"} <= set(EXPERIMENTS)
    with pytest.raises(KeyError):
        run_experiment("nonexistent")
