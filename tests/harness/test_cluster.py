"""Integration-grade unit tests for the urcgc simulation driver."""


from repro.core.config import UrcgcConfig
from repro.harness.cluster import SimCluster
from repro.types import ProcessId
from repro.workloads.generators import FixedBudgetWorkload, ScriptedWorkload
from repro.workloads.scenarios import crashes, omission, reliable


def pids(n):
    return [ProcessId(i) for i in range(n)]


class TestReliableRun:
    def test_all_messages_processed_everywhere(self):
        n = 5
        cluster = SimCluster(
            UrcgcConfig(n=n),
            workload=FixedBudgetWorkload(pids(n), total=20),
            max_rounds=80,
        )
        done = cluster.run_until_quiescent(drain_subruns=2)
        assert done is not None
        assert all(m.processed_count == 20 for m in cluster.members)

    def test_reliable_delay_is_half_rtd(self):
        n = 5
        cluster = SimCluster(
            UrcgcConfig(n=n),
            workload=FixedBudgetWorkload(pids(n), total=10),
            max_rounds=60,
        )
        cluster.run_until_quiescent(drain_subruns=2)
        report = cluster.delay_report()
        assert report.mean_delay == 0.5
        assert report.incomplete_messages == 0

    def test_histories_drain_to_zero(self):
        n = 4
        cluster = SimCluster(
            UrcgcConfig(n=n),
            workload=FixedBudgetWorkload(pids(n), total=12),
            max_rounds=80,
        )
        cluster.run_until_quiescent(drain_subruns=3)
        assert all(m.history_length == 0 for m in cluster.members)

    def test_control_traffic_is_2n_minus_2_per_subrun(self):
        """Table 1: 2(n-1) control messages per subrun, reliable."""
        n = 6
        subruns = 10
        cluster = SimCluster(
            UrcgcConfig(n=n), max_rounds=subruns * 2, trace=False
        )
        cluster.run()
        stats = cluster.network.stats
        requests = stats.kind("ctrl-request").delivered
        decisions = stats.kind("ctrl-decision").delivered
        assert requests == subruns * (n - 1)
        assert decisions == subruns * (n - 1)

    def test_quiescent_time_recorded(self):
        n = 3
        cluster = SimCluster(
            UrcgcConfig(n=n),
            workload=FixedBudgetWorkload(pids(n), total=3),
            max_rounds=40,
        )
        done = cluster.run_until_quiescent()
        assert done == cluster.quiescent_at
        assert done is not None and done > 0


class TestCrashRun:
    def test_crash_detected_and_removed_consistently(self):
        n = 5
        cluster = SimCluster(
            UrcgcConfig(n=n, K=2),
            workload=FixedBudgetWorkload(pids(n), total=30),
            faults=crashes({ProcessId(3): 2.0}),
            max_rounds=120,
        )
        cluster.run_until_quiescent(drain_subruns=4)
        survivors = [m for m in cluster.members if cluster.is_active(m.pid)]
        assert survivors
        for member in survivors:
            assert not member.view.is_alive(ProcessId(3))

    def test_delay_unaffected_by_crash(self):
        """The paper's headline Figure 4 claim."""
        n = 5
        results = {}
        for label, faults in (
            ("reliable", reliable()),
            ("crash", crashes({ProcessId(4): 3.0})),
        ):
            cluster = SimCluster(
                UrcgcConfig(n=n, K=2),
                workload=FixedBudgetWorkload(pids(n), total=25),
                faults=faults,
                max_rounds=150,
            )
            cluster.run_until_quiescent(drain_subruns=3)
            results[label] = cluster.delay_report().mean_delay
        assert results["crash"] == results["reliable"] == 0.5

    def test_survivors_agree_on_processed_messages(self):
        n = 5
        cluster = SimCluster(
            UrcgcConfig(n=n, K=2),
            workload=FixedBudgetWorkload(pids(n), total=30),
            faults=crashes({ProcessId(1): 1.5, ProcessId(2): 2.5}),
            max_rounds=160,
        )
        cluster.run_until_quiescent(drain_subruns=4)
        vectors = {
            cluster.members[p].last_processed_vector()
            for p in cluster.active_pids()
        }
        assert len(vectors) == 1


class TestOmissionRun:
    def test_recovery_completes_all_messages(self):
        n = 6
        cluster = SimCluster(
            UrcgcConfig(n=n),
            workload=FixedBudgetWorkload(pids(n), total=60),
            faults=omission(pids(n), 50, rng=__import__("random").Random(3)),
            max_rounds=400,
            seed=3,
        )
        done = cluster.run_until_quiescent(drain_subruns=3)
        assert done is not None
        report = cluster.delay_report()
        assert report.incomplete_messages == 0
        assert report.complete_messages == 60

    def test_omission_raises_delay_above_reliable_floor(self):
        n = 6
        cluster = SimCluster(
            UrcgcConfig(n=n),
            workload=FixedBudgetWorkload(pids(n), total=60),
            faults=omission(pids(n), 30, rng=__import__("random").Random(5)),
            max_rounds=500,
            seed=5,
        )
        cluster.run_until_quiescent(drain_subruns=3)
        assert cluster.delay_report().mean_delay > 0.5

    def test_recovery_traffic_present_under_omission(self):
        n = 6
        cluster = SimCluster(
            UrcgcConfig(n=n),
            workload=FixedBudgetWorkload(pids(n), total=60),
            faults=omission(pids(n), 30, rng=__import__("random").Random(5)),
            max_rounds=500,
            seed=5,
        )
        cluster.run_until_quiescent(drain_subruns=3)
        assert cluster.network.stats.kind("ctrl-recovery-rq").sent > 0


class TestMetricsSampling:
    def test_history_series_sampled_every_round(self):
        n = 3
        cluster = SimCluster(UrcgcConfig(n=n), max_rounds=10, trace=False)
        cluster.run()
        series = cluster.max_history_series()
        assert len(series) == 10

    def test_per_member_history_series(self):
        n = 3
        cluster = SimCluster(
            UrcgcConfig(n=n),
            workload=FixedBudgetWorkload(pids(n), total=6),
            max_rounds=20,
        )
        cluster.run()
        assert cluster.history_series(ProcessId(0)).max() > 0


class TestWorkloadInjection:
    def test_scripted_submission_reaches_only_target(self):
        n = 3
        cluster = SimCluster(
            UrcgcConfig(n=n),
            workload=ScriptedWorkload({0: [(ProcessId(1), b"only")]}),
            max_rounds=20,
        )
        cluster.run()
        assert cluster.members[1].generated_count == 1
        assert cluster.members[0].generated_count == 0
        # Everyone processed it.
        assert all(m.processed_count == 1 for m in cluster.members)

    def test_submissions_to_crashed_process_dropped(self):
        n = 3
        cluster = SimCluster(
            UrcgcConfig(n=n),
            workload=ScriptedWorkload({4: [(ProcessId(2), b"late")]}),
            faults=crashes({ProcessId(2): 1.0}),
            max_rounds=20,
        )
        cluster.run()
        assert cluster.members[2].generated_count == 0


class TestTransportH:
    def test_h2_generates_acks_and_reduces_recovery(self):
        n = 4
        lossy = omission(pids(n), 20, rng=__import__("random").Random(7))
        cluster = SimCluster(
            UrcgcConfig(n=n),
            workload=FixedBudgetWorkload(pids(n), total=20),
            faults=lossy,
            h=3,
            max_rounds=300,
            seed=7,
        )
        cluster.run_until_quiescent(drain_subruns=3)
        assert cluster.network.stats.kind("t-ack").sent > 0


class TestStableQuiescence:
    def test_momentary_quiet_does_not_end_the_run(self):
        """Regression (torture seed 1112): a workload with quiet gaps
        must not let run_until_quiescent stop while later submissions
        are still coming — the group must be *stably* quiescent."""
        from repro.workloads.generators import ScriptedWorkload

        n = 4
        # Submissions at round 0 and again at round 8, with a long gap
        # the old implementation mistook for the end of the run.
        schedule = {
            0: [(ProcessId(0), b"early")],
            8: [(ProcessId(1), b"late-1")],
            9: [(ProcessId(2), b"late-2")],
        }
        cluster = SimCluster(
            UrcgcConfig(n=n),
            workload=ScriptedWorkload(schedule),
            max_rounds=60,
        )
        done = cluster.run_until_quiescent(drain_subruns=1)
        assert done is not None
        assert all(m.processed_count == 3 for m in cluster.members)
        vectors = {m.last_processed_vector() for m in cluster.members}
        assert len(vectors) == 1

    def test_torture_seed_1112_regression(self):
        from repro.harness.torture import torture_once

        result = torture_once(1112)
        assert result.ok, result.violations
