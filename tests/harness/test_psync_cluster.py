"""Tests for the Psync simulation driver."""

from repro.harness.psync_cluster import PsyncCluster
from repro.types import ProcessId
from repro.workloads.generators import FixedBudgetWorkload


def pids(n):
    return [ProcessId(i) for i in range(n)]


def test_reliable_conversation_delivers_everything():
    n = 4
    cluster = PsyncCluster(
        n, workload=FixedBudgetWorkload(pids(n), total=12), max_rounds=40
    )
    cluster.run()
    for pid in pids(n):
        assert len(cluster.delivered[pid]) == 12


def test_context_order_respected_everywhere():
    n = 3
    cluster = PsyncCluster(
        n, workload=FixedBudgetWorkload(pids(n), total=9), max_rounds=40
    )
    cluster.run()
    for pid in pids(n):
        seen = set()
        for message in cluster.delivered[pid]:
            for pred in message.preds:
                assert pred in seen or pred[0] == pid
            seen.add(message.mid)


def test_mask_out_unblocks_after_crash():
    """A crashed sender's lost message blocks dependents until the
    detector masks it out."""
    n = 4
    from repro.net.faults import CrashSchedule, FaultPlan

    schedule = CrashSchedule()
    schedule.crash(ProcessId(3), 1.2)
    faults = FaultPlan(crashes=schedule)
    # p3's first broadcast is received by p0 only; p0's follow-up then
    # references it in its context, blocking p1 and p2 until mask_out.
    faults.custom_send_filter = (
        lambda packet, now: packet.src == 3 and now < 0.2
    )
    cluster = PsyncCluster(
        n,
        K=2,
        workload=FixedBudgetWorkload(pids(n), total=16),
        faults=faults,
        max_rounds=100,
    )
    cluster.run()
    # Everyone alive ends with an empty pending buffer: masking
    # released (or dropped) whatever waited on p3.
    for pid in cluster.active_pids():
        assert cluster.engines[pid].graph.pending_count == 0


def test_bounded_pending_buffer_drops():
    """Psync's flow control destroys overflow, inducing omissions."""
    n = 3
    from repro.net.faults import FaultPlan

    faults = FaultPlan()
    # p1 never receives p0's traffic: p0's messages pend at p1 forever
    # via p2's contexts... simpler: drop p0's data toward p1 only.
    faults.custom_receive_filter = (
        lambda packet, dst, now: packet.src == 0 and dst == 1
    )
    cluster = PsyncCluster(
        n,
        pending_bound=2,
        workload=FixedBudgetWorkload(pids(n), total=30),
        faults=faults,
        max_rounds=60,
    )
    cluster.run()
    assert cluster.induced_omissions() > 0
    assert cluster.engines[1].graph.pending_count <= 2
