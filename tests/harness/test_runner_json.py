"""Tests for the experiment runner's JSON export path."""

import json

import pytest

from repro.harness.runner import EXPERIMENTS, main, run_experiment
from repro.harness.sweep import sweep


def test_sweep_as_dict():
    result = sweep({"a": [1, 2]}, lambda a: {"v": a * 10})
    payload = result.as_dict()
    assert payload["axes"] == ["a"]
    assert payload["rows"] == [{"a": 1, "v": 10}, {"a": 2, "v": 20}]
    json.dumps(payload)  # serializable


def test_every_experiment_registered_with_description():
    for name, (description, runner) in EXPERIMENTS.items():
        assert description
        assert callable(runner)


def test_main_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figure4" in out and "ablation-bus" in out


@pytest.mark.parametrize("name", ["figure5"])
def test_run_experiment_json_is_valid(name):
    payload = json.loads(run_experiment(name, as_json=True))
    assert payload["experiment"] == name
    assert payload["rows"]


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_experiment("figure99")


def test_module_cli_entrypoint():
    """python -m repro works as a console command."""
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro", "list"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert "figure4" in result.stdout
