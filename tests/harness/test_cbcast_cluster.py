"""Tests for the CBCAST simulation driver."""

from repro.harness.cbcast_cluster import CbcastCluster
from repro.types import ProcessId
from repro.workloads.generators import FixedBudgetWorkload
from repro.workloads.scenarios import crashes


def pids(n):
    return [ProcessId(i) for i in range(n)]


def test_reliable_run_delivers_everything():
    n = 4
    cluster = CbcastCluster(
        n, workload=FixedBudgetWorkload(pids(n), total=12), max_rounds=40
    )
    cluster.run()
    report = cluster.delay_report()
    assert report.complete_messages == 12
    assert report.incomplete_messages == 0
    assert report.mean_delay == 0.5


def test_crash_triggers_view_change_and_blocks():
    n = 4
    cluster = CbcastCluster(
        n,
        K=2,
        workload=FixedBudgetWorkload(pids(n), total=20),
        faults=crashes({ProcessId(3): 2.0}),
        max_rounds=100,
    )
    cluster.run()
    survivors = [cluster.engines[p] for p in cluster.active_pids()]
    assert all(e.view_id >= 1 for e in survivors)
    assert all(not e.alive[3] for e in survivors)
    assert all(not e.blocked for e in survivors)
    # The application was blocked for at least one round somewhere.
    assert any(e.blocked_rounds > 0 for e in survivors)


def test_blocked_metric_sampled():
    n = 4
    cluster = CbcastCluster(
        n,
        K=2,
        faults=crashes({ProcessId(3): 2.0}),
        max_rounds=60,
    )
    cluster.run()
    series = cluster.kernel.metrics.series_for("cbcast.blocked")
    assert series.max() > 0


def test_detection_latency_is_k_subruns():
    n = 4
    cluster = CbcastCluster(
        n,
        K=3,
        faults=crashes({ProcessId(3): 2.0}),
        max_rounds=60,
    )
    cluster.run()
    suspicions = cluster.kernel.trace.select("cbcast.suspect")
    assert len(suspicions) == 1
    assert suspicions[0].time >= 2.0 + 3


def test_unstable_buffers_drain_after_view_change():
    n = 4
    cluster = CbcastCluster(
        n,
        K=2,
        workload=FixedBudgetWorkload(pids(n), total=16),
        faults=crashes({ProcessId(3): 2.0}),
        max_rounds=120,
    )
    cluster.run()
    assert all(
        cluster.engines[p].unstable_count == 0 for p in cluster.active_pids()
    )
