"""Tests for the urcgc-vs-CBCAST comparison harness."""

import json

import pytest

from repro.harness.compare import compare_protocols


def test_reliable_comparison():
    report = compare_protocols(scenario="reliable", n=6, total_messages=24)
    assert report.urcgc.mean_delay == 0.5
    assert report.cbcast.mean_delay == 0.5
    assert report.urcgc.incomplete == 0
    assert report.cbcast.incomplete == 0
    # Table 1's reliable row: CBCAST's control traffic is lighter.
    assert report.cbcast.control_bytes < report.urcgc.control_bytes
    # And neither protocol ever blocked.
    assert report.urcgc.blocked_rounds == 0
    assert report.cbcast.blocked_rounds == 0


def test_crash_comparison():
    report = compare_protocols(scenario="crash", n=6, total_messages=36)
    # urcgc's headline: recovery without suspending the service.
    assert report.urcgc.blocked_rounds == 0
    assert report.cbcast.blocked_rounds > 0
    assert report.urcgc.mean_delay == 0.5
    assert report.urcgc.incomplete == 0


def test_omission_comparison():
    """The Section 3 claim: CBCAST 'needs an underlying reliable
    transport protocol'; urcgc recovers losses itself."""
    report = compare_protocols(scenario="omission-1/50", n=6, total_messages=36)
    assert report.urcgc.incomplete == 0
    assert report.cbcast.incomplete > 0


def test_render_and_json():
    report = compare_protocols(scenario="reliable", n=4, total_messages=8)
    text = report.render()
    assert "urcgc" in text and "cbcast" in text
    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["experiment"] == "compare"
    assert payload["urcgc"]["incomplete"] == 0


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        compare_protocols(scenario="meteor-strike")
