"""Unit tests for the simulation kernel."""

import pytest

from repro.errors import KernelStoppedError
from repro.sim.kernel import Kernel


def test_run_executes_in_order():
    kernel = Kernel()
    fired = []
    kernel.schedule(2.0, lambda: fired.append("late"))
    kernel.schedule(1.0, lambda: fired.append("early"))
    executed = kernel.run()
    assert executed == 2
    assert fired == ["early", "late"]
    assert kernel.now == 2.0


def test_schedule_relative_to_now():
    kernel = Kernel()
    times = []
    kernel.schedule(1.0, lambda: kernel.schedule(1.0, lambda: times.append(kernel.now)))
    kernel.run()
    assert times == [2.0]


def test_run_until_horizon():
    kernel = Kernel()
    fired = []
    kernel.schedule(1.0, lambda: fired.append(1))
    kernel.schedule(5.0, lambda: fired.append(5))
    kernel.run(until=2.0)
    assert fired == [1]
    assert kernel.stop_reason == "horizon"
    kernel.run()
    assert fired == [1, 5]


def test_run_max_events():
    kernel = Kernel()
    for i in range(10):
        kernel.schedule(float(i), lambda: None)
    executed = kernel.run(max_events=3)
    assert executed == 3
    assert kernel.stop_reason == "max_events"


def test_stop_when_condition():
    kernel = Kernel()
    fired = []
    for i in range(10):
        kernel.schedule(float(i), lambda i=i: fired.append(i))
    kernel.run(stop_when=lambda: len(fired) >= 4)
    assert fired == [0, 1, 2, 3]
    assert kernel.stop_reason == "condition"


def test_stop_inside_event():
    kernel = Kernel()
    fired = []
    kernel.schedule(1.0, lambda: (fired.append(1), kernel.stop("manual")))
    kernel.schedule(2.0, lambda: fired.append(2))
    kernel.run()
    assert fired == [1]
    assert kernel.stop_reason == "manual"


def test_run_not_reentrant():
    kernel = Kernel()

    def reenter():
        with pytest.raises(KernelStoppedError):
            kernel.run()

    kernel.schedule(1.0, reenter)
    kernel.run()


def test_deterministic_rng_streams():
    a = Kernel(seed=42)
    b = Kernel(seed=42)
    assert [a.rng.stream("x").random() for _ in range(5)] == [
        b.rng.stream("x").random() for _ in range(5)
    ]


def test_rng_streams_independent_by_name():
    kernel = Kernel(seed=42)
    xs = [kernel.rng.stream("x").random() for _ in range(5)]
    ys = [kernel.rng.stream("y").random() for _ in range(5)]
    assert xs != ys


def test_trace_can_be_disabled():
    kernel = Kernel(trace=False)
    kernel.trace.emit(0.0, "kind", 1)
    assert len(kernel.trace) == 0
