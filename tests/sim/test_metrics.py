"""Unit tests for counters, series, and summary statistics."""

import math

import pytest

from repro.sim.metrics import Counter, MetricSet, Series, summarize


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().value == 0

    def test_add(self):
        counter = Counter()
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().add(-1)

    def test_int_conversion(self):
        counter = Counter()
        counter.add(7)
        assert int(counter) == 7


class TestSeries:
    def test_record_and_iterate(self):
        series = Series()
        series.record(0.0, 1.0)
        series.record(1.0, 3.0)
        assert list(series) == [(0.0, 1.0), (1.0, 3.0)]
        assert series.times == [0.0, 1.0]
        assert series.values == [1.0, 3.0]

    def test_max_and_last(self):
        series = Series()
        assert series.max() == 0.0
        assert series.last() is None
        series.record(0.0, 5.0)
        series.record(1.0, 2.0)
        assert series.max() == 5.0
        assert series.last() == 2.0

    def test_at_or_before(self):
        series = Series()
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert series.at_or_before(0.5) is None
        assert series.at_or_before(1.0) == 10.0
        assert series.at_or_before(1.5) == 10.0
        assert series.at_or_before(5.0) == 20.0

    def test_at_or_before_out_of_order_samples(self):
        # Regression: the scan used to break at the first timestamp
        # above the query, returning the pre-gap value even when an
        # out-of-order sample further down the list was the answer.
        series = Series()
        series.record(1.0, 10.0)
        series.record(5.0, 50.0)
        series.record(2.0, 20.0)  # recorded late, belongs at t=2
        assert series.at_or_before(2.5) == 20.0
        assert series.at_or_before(4.9) == 20.0
        assert series.at_or_before(5.0) == 50.0

    def test_out_of_order_reads_are_chronological(self):
        series = Series()
        series.record(3.0, 30.0)
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert series.times == [1.0, 2.0, 3.0]
        assert series.values == [10.0, 20.0, 30.0]
        assert series.last() == 30.0

    def test_at_or_before_tie_keeps_latest_recorded(self):
        series = Series()
        series.record(1.0, 10.0)
        series.record(1.0, 11.0)
        assert series.at_or_before(1.0) == 11.0


class TestSummarize:
    def test_empty_is_explicit(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.is_empty
        assert math.isnan(summary.mean)
        assert math.isnan(summary.p50)
        assert math.isnan(summary.p95)
        assert math.isnan(summary.minimum)
        assert math.isnan(summary.maximum)
        assert "no samples" in str(summary)
        assert summary.as_dict() == {"count": 0}

    def test_empty_is_not_all_zero_samples(self):
        # Regression: summarize([]) used to fabricate min=max=p50=0.0,
        # indistinguishable from a genuine all-zero sample set.
        assert summarize([]) != summarize([0.0, 0.0])
        assert summarize([]) == summarize([])

    def test_single(self):
        summary = summarize([3.0])
        assert summary.count == 1
        assert summary.mean == 3.0
        assert summary.p50 == 3.0
        assert summary.stdev == 0.0

    def test_known_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == 2.5
        assert math.isclose(summary.stdev, math.sqrt(1.25))

    def test_percentiles_interpolate(self):
        summary = summarize(range(101))
        assert summary.p50 == 50.0
        assert summary.p95 == 95.0

    def test_order_insensitive(self):
        assert summarize([3, 1, 2]) == summarize([1, 2, 3])


class TestMetricSet:
    def test_counter_created_on_demand(self):
        metrics = MetricSet()
        metrics.count("x", 2)
        metrics.count("x")
        assert metrics.counter("x").value == 3

    def test_series_created_on_demand(self):
        metrics = MetricSet()
        metrics.sample("s", 0.0, 1.0)
        assert metrics.series_for("s").values == [1.0]

    def test_distinct_names_distinct_objects(self):
        metrics = MetricSet()
        assert metrics.counter("a") is not metrics.counter("b")
        assert metrics.counter("a") is metrics.counter("a")
