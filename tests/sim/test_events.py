"""Unit tests for the event queue."""

import pytest

from repro.errors import ScheduleInPastError
from repro.sim.events import PRIORITY_NETWORK, PRIORITY_ROUND, EventQueue


def test_pop_orders_by_time():
    queue = EventQueue()
    fired = []
    queue.push(2.0, lambda: fired.append("b"))
    queue.push(1.0, lambda: fired.append("a"))
    queue.push(3.0, lambda: fired.append("c"))
    while (event := queue.pop()) is not None:
        event.action()
    assert fired == ["a", "b", "c"]


def test_same_time_orders_by_priority():
    queue = EventQueue()
    fired = []
    queue.push(1.0, lambda: fired.append("round"), priority=PRIORITY_ROUND)
    queue.push(1.0, lambda: fired.append("net"), priority=PRIORITY_NETWORK)
    while (event := queue.pop()) is not None:
        event.action()
    assert fired == ["net", "round"]


def test_same_time_same_priority_fifo():
    queue = EventQueue()
    fired = []
    for i in range(5):
        queue.push(1.0, lambda i=i: fired.append(i))
    while (event := queue.pop()) is not None:
        event.action()
    assert fired == [0, 1, 2, 3, 4]


def test_now_advances_with_pop():
    queue = EventQueue()
    queue.push(1.5, lambda: None)
    assert queue.now == 0.0
    queue.pop()
    assert queue.now == 1.5


def test_schedule_in_past_rejected():
    queue = EventQueue()
    queue.push(2.0, lambda: None)
    queue.pop()
    with pytest.raises(ScheduleInPastError):
        queue.push(1.0, lambda: None)


def test_schedule_at_now_allowed():
    queue = EventQueue()
    queue.push(2.0, lambda: None)
    queue.pop()
    queue.push(2.0, lambda: None)  # same instant is fine
    assert queue.peek_time() == 2.0


def test_cancelled_events_skipped():
    queue = EventQueue()
    fired = []
    handle = queue.push(1.0, lambda: fired.append("cancelled"))
    queue.push(2.0, lambda: fired.append("kept"))
    handle.cancel()
    while (event := queue.pop()) is not None:
        event.action()
    assert fired == ["kept"]


def test_len_ignores_cancelled():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    handle.cancel()
    assert len(queue) == 1


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    handle.cancel()
    assert queue.peek_time() == 2.0


def test_pop_empty_returns_none():
    assert EventQueue().pop() is None


def test_clear_drops_pending():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.clear()
    assert queue.pop() is None
