"""Unit tests for the round scheduler."""

import pytest

from repro.sim.kernel import Kernel
from repro.sim.rounds import RoundScheduler


def test_rounds_fire_every_half_rtd():
    kernel = Kernel()
    scheduler = RoundScheduler(kernel, max_rounds=4)
    times = []
    scheduler.subscribe(lambda r: times.append((r, kernel.now)))
    scheduler.start()
    kernel.run()
    assert times == [(0, 0.0), (1, 0.5), (2, 1.0), (3, 1.5)]


def test_handlers_called_in_subscription_order():
    kernel = Kernel()
    scheduler = RoundScheduler(kernel, max_rounds=1)
    order = []
    scheduler.subscribe(lambda r: order.append("first"))
    scheduler.subscribe(lambda r: order.append("second"))
    scheduler.start()
    kernel.run()
    assert order == ["first", "second"]


def test_stop_prevents_future_rounds():
    kernel = Kernel()
    scheduler = RoundScheduler(kernel)
    seen = []

    def handler(round_no):
        seen.append(round_no)
        if round_no == 2:
            scheduler.stop()

    scheduler.subscribe(handler)
    scheduler.start()
    kernel.run()
    assert seen == [0, 1, 2]


def test_network_events_precede_round_tick():
    """A packet delivery scheduled for a round boundary is handled
    before that round's handler (PRIORITY_NETWORK < PRIORITY_ROUND)."""
    from repro.sim.events import PRIORITY_NETWORK

    kernel = Kernel()
    scheduler = RoundScheduler(kernel, max_rounds=2)
    order = []
    scheduler.subscribe(lambda r: order.append(f"round{r}"))
    kernel.schedule_at(0.5, lambda: order.append("packet"), priority=PRIORITY_NETWORK)
    scheduler.start()
    kernel.run()
    assert order == ["round0", "packet", "round1"]


def test_double_start_rejected():
    kernel = Kernel()
    scheduler = RoundScheduler(kernel, max_rounds=1)
    scheduler.start()
    with pytest.raises(RuntimeError):
        scheduler.start()


def test_current_round_tracks_progress():
    kernel = Kernel()
    scheduler = RoundScheduler(kernel, max_rounds=3)
    scheduler.subscribe(lambda r: None)
    scheduler.start()
    kernel.run()
    assert scheduler.current_round == 3
