"""Unit tests for the structured trace."""

from repro.sim.trace import Trace


def test_emit_and_select_by_kind():
    trace = Trace()
    trace.emit(0.0, "a", 1, x=1)
    trace.emit(1.0, "b", 2)
    trace.emit(2.0, "a", 3, x=2)
    assert [r["x"] for r in trace.select(kind="a")] == [1, 2]


def test_select_by_actor():
    trace = Trace()
    trace.emit(0.0, "a", 1)
    trace.emit(1.0, "a", 2)
    assert len(trace.select(actor=2)) == 1


def test_select_with_predicate():
    trace = Trace()
    trace.emit(0.0, "a", 1, n=1)
    trace.emit(1.0, "a", 1, n=5)
    matches = trace.select(kind="a", predicate=lambda r: r["n"] > 2)
    assert len(matches) == 1
    assert matches[0].time == 1.0


def test_last():
    trace = Trace()
    assert trace.last("a") is None
    trace.emit(0.0, "a", 1, n=1)
    trace.emit(1.0, "a", 1, n=2)
    assert trace.last("a")["n"] == 2


def test_disabled_trace_records_nothing():
    trace = Trace(enabled=False)
    trace.emit(0.0, "a", 1)
    assert len(trace) == 0


def test_clear():
    trace = Trace()
    trace.emit(0.0, "a", 1)
    trace.clear()
    assert len(trace) == 0
