"""CLI + reporters + the tree-wide cleanliness smoke test."""

import json
from pathlib import Path

from repro.lint.cli import default_target, main

REPO = Path(__file__).parents[2]
SRC = REPO / "src" / "repro"
FIXTURES = Path(__file__).parent / "fixtures"


def test_shipped_tree_is_violation_free(capsys):
    # The acceptance gate: `python -m repro lint` exits 0 on src/.
    assert main([str(SRC)]) == 0
    out = capsys.readouterr().out
    assert out.startswith("clean:")


def test_default_target_is_the_repro_package():
    assert default_target().name == "repro"
    assert (default_target() / "__main__.py").exists()


def test_violation_fixtures_exit_nonzero(capsys):
    assert main([str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "H401" in out and "W302" in out


def test_json_report_schema(capsys):
    assert main(["--json", str(FIXTURES / "bad_hygiene.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 2
    assert payload["ok"] is False
    assert payload["files_checked"] == 1
    assert set(payload["counts"]) == {"H401", "H402", "H403"}
    first = payload["violations"][0]
    assert set(first) == {"rule", "path", "line", "col", "message"}
    # v2 baseline-accounting keys are present even without --baseline.
    assert payload["baselined"] == 0
    assert payload["stale_baseline"] == []


def test_json_report_clean_tree(capsys):
    assert main(["--json", str(SRC)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["counts"] == {}
    assert payload["files_checked"] > 80


def test_rules_filter(capsys):
    assert main(["--rules", "H402", str(FIXTURES / "bad_hygiene.py")]) == 1
    out = capsys.readouterr().out
    assert "H402" in out and "H401" not in out


def test_unknown_rule_is_usage_error(capsys):
    assert main(["--rules", "Z999", str(FIXTURES)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    assert main([str(FIXTURES / "does_not_exist.py")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("D101", "A201", "W301", "H401"):
        assert rule_id in out


def test_module_entry_point_dispatches(capsys):
    # python -m repro lint → harness.runner.main → lint.cli.main
    from repro.harness.runner import main as runner_main

    assert runner_main(["lint", str(SRC), "--rules", "H401"]) == 0
    assert capsys.readouterr().out.startswith("clean:")
