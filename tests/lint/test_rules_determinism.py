"""D-rules: determinism inside repro.core / repro.sim / repro.storage."""

from repro.lint import check_source

CORE = "repro.core.fixture"
SIM = "repro.sim.fixture"
STORAGE = "repro.storage.fixture"


def rules_of(source, module):
    return [v.rule for v in check_source(source, module)]


# -- D101: unseeded randomness ----------------------------------------------


def test_d101_flags_global_draw_functions():
    source = "import random\nx = random.random()\ny = random.randint(0, 9)\n"
    assert rules_of(source, CORE) == ["D101", "D101"]


def test_d101_flags_unseeded_random_constructor():
    assert rules_of("import random\nr = random.Random()\n", SIM) == ["D101"]


def test_d101_allows_seeded_constructor_and_injected_streams():
    source = (
        "import random\n"
        "r = random.Random(42)\n"
        "def draw(rng: random.Random) -> float:\n"
        "    return rng.random()\n"
    )
    assert rules_of(source, STORAGE) == []


def test_d101_flags_aliased_import():
    source = "import random as rnd\nx = rnd.choice([1, 2])\n"
    assert rules_of(source, CORE) == ["D101"]


def test_d101_respects_pragma():
    source = "import random\nx = random.random()  # lint: disable=D101\n"
    assert rules_of(source, CORE) == []


# -- D102: wall-clock reads -------------------------------------------------


def test_d102_flags_time_module_clocks():
    source = "import time\nt = time.time()\nm = time.monotonic()\n"
    assert rules_of(source, CORE) == ["D102", "D102"]


def test_d102_flags_from_import_and_datetime():
    source = (
        "from time import perf_counter\n"
        "from datetime import datetime\n"
        "a = perf_counter()\n"
        "b = datetime.now()\n"
    )
    assert rules_of(source, SIM) == ["D102", "D102"]


def test_d102_allows_simulated_time():
    source = (
        "def schedule(kernel, delay: float) -> float:\n"
        "    return kernel.now() + delay\n"
    )
    assert rules_of(source, SIM) == []


def test_d102_allows_time_sleep_name_collisions():
    # time.sleep is an A-rule concern, not a clock read.
    assert rules_of("import time\ntime.sleep(1)\n", CORE) == []


# -- D103: ambient entropy --------------------------------------------------


def test_d103_flags_environment_and_urandom():
    source = (
        "import os\n"
        "key = os.environ['SEED']\n"
        "alt = os.getenv('SEED')\n"
        "blob = os.urandom(8)\n"
    )
    assert rules_of(source, STORAGE) == ["D103", "D103", "D103"]


def test_d103_flags_uuid_and_secrets():
    source = (
        "import uuid\nimport secrets\n"
        "a = uuid.uuid4()\n"
        "b = secrets.token_bytes(8)\n"
    )
    assert rules_of(source, CORE) == ["D103", "D103"]


def test_d103_allows_plain_os_file_operations():
    source = "import os\nos.replace('a.tmp', 'a')\nos.fsync(3)\n"
    assert rules_of(source, STORAGE) == []
