"""Linearized flow events and the wire-taint walker."""

import ast

from repro.lint.dataflow import TaintWalker, iter_flow, iter_own_nodes


def func_of(source, name=None):
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if name is None or node.name == name:
                return node
    raise AssertionError("no function in source")


def events(source):
    return [(e.kind, e.attr) for e in iter_flow(func_of(source))]


def taints(source, wire_classes=("ClientNote",), name=None):
    walker = TaintWalker(func_of(source, name), frozenset(wire_classes))
    return [(f.sink, f.source) for f in walker.run()]


# -- iter_flow --------------------------------------------------------------


def test_flow_read_suspend_write_order():
    source = (
        "async def f(self):\n"
        "    x = self._n\n"
        "    await self.flush()\n"
        "    self._n = x + 1\n"
    )
    assert events(source) == [
        ("read", "_n"),
        ("read", "flush"),
        ("suspend", None),
        ("write", "_n"),
    ]


def test_flow_augassign_is_write_only():
    # x += 1 is atomic within its statement: only an *earlier* read can
    # be stale, so no read event is emitted for the target itself.
    source = "async def f(self):\n    self._n += 1\n"
    assert events(source) == [("write", "_n")]


def test_flow_async_for_suspends_at_header():
    source = (
        "async def f(self):\n"
        "    async for item in self._queue:\n"
        "        self._last = item\n"
    )
    assert events(source) == [
        ("read", "_queue"),
        ("suspend", None),
        ("write", "_last"),
    ]


def test_flow_subscript_store_writes_container():
    source = "async def f(self, k):\n    self._table[k] = 1\n"
    assert events(source) == [("write", "_table")]


def test_iter_own_nodes_skips_nested_defs():
    func = func_of(
        "async def outer(self):\n"
        "    def inner():\n"
        "        return self._hidden\n"
        "    return inner\n",
        "outer",
    )
    reads = [
        node.attr
        for node in iter_own_nodes(func)
        if isinstance(node, ast.Attribute)
    ]
    assert "_hidden" not in reads


# -- TaintWalker ------------------------------------------------------------


def test_param_annotation_seeds_taint():
    source = (
        "def on_note(self, note: ClientNote):\n"
        "    self.window = note.credit\n"
    )
    assert taints(source) == [
        ("self.window", "parameter 'note' (ClientNote)")
    ]


def test_decode_call_is_a_source():
    source = (
        "def handle(self, data):\n"
        "    msg = decode_message(data)\n"
        "    self.last = msg\n"
    )
    assert taints(source) == [("self.last", "decode_message(...)")]


def test_reassignment_clears_taint():
    source = (
        "def handle(self, data):\n"
        "    msg = decode_message(data)\n"
        "    msg = 0\n"
        "    self.last = msg\n"
    )
    assert taints(source) == []


def test_guard_vouches_for_maximal_dotted_expression_only():
    # `if note.credit > cap` sanitizes note.credit, NOT the bare note:
    # the walker must not let a field guard bless the whole object.
    source = (
        "def handle(self, note: ClientNote, cap):\n"
        "    if note.credit > cap:\n"
        "        return\n"
        "    self.window = note.credit\n"
        "    self.raw = note.payload\n"
    )
    assert taints(source) == [
        ("self.raw", "parameter 'note' (ClientNote)")
    ]


def test_bare_identity_guard_vouches_for_the_object():
    source = (
        "def handle(self, note: ClientNote):\n"
        "    if note is None:\n"
        "        return\n"
        "    self.last = note\n"
    )
    assert taints(source) == []


def test_object_sanitizer_blesses_root_but_clamp_does_not():
    blessed = (
        "def handle(self, note: ClientNote):\n"
        "    problem = validate_message(note, 4)\n"
        "    if problem is not None:\n"
        "        return\n"
        "    self.last = note\n"
    )
    assert taints(blessed) == []
    clamped = (
        "def handle(self, note: ClientNote, cap):\n"
        "    self.window = min(note.credit, cap)\n"
        "    self.raw = note\n"
    )
    # min() clamps one value; the object itself stays tainted.
    assert taints(clamped) == [
        ("self.raw", "parameter 'note' (ClientNote)")
    ]


def test_storage_sink_call_flagged():
    source = (
        "def handle(self, data):\n"
        "    msg = decode_message(data)\n"
        "    self.storage.log_generated(msg)\n"
    )
    assert taints(source) == [
        ("log_generated(...)", "decode_message(...)")
    ]


def test_transparent_call_passes_taint():
    source = (
        "def handle(self, data):\n"
        "    msgs = list(expand_message(decode_message(data)))\n"
        "    self.batch = msgs\n"
    )
    assert taints(source) == [("self.batch", "decode_message(...)")]
