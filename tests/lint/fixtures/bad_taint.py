"""Wire-taint fixtures for the T6xx rules.

The ``register()`` calls give T602 a tag space even under this file's
own stem name: ``Ping`` has exactly one handler (this file's family),
``Orphan`` has none (true positive), and ``Beacon`` carries the
documented-false-positive pragma.  The T601 cases only fire when
tests/lint/test_rules_taint re-lints the source under a ``repro.svc``
module name (the rule's scope).
"""

from .wire import ClientNote

TAG_PING = 90
TAG_ORPHAN = 91
TAG_BEACON = 92


class Ping:
    pass


class Orphan:
    pass


class Beacon:
    pass


def install(registry):
    registry.register(TAG_PING, Ping, None)
    registry.register(TAG_ORPHAN, Orphan, None)
    # Documented false positive: Beacon frames are dispatched through
    # a reflective tooling path the analyzer cannot see.
    registry.register(TAG_BEACON, Beacon, None)  # lint: disable=T602


def on_frame(frame):
    if isinstance(frame, Ping):
        return b"pong"
    return None


class Session:
    def on_note(self, note: ClientNote):
        # T601 true positive: a wire field stored unvalidated.
        self.window = note.credit

    def on_note_guarded(self, note: ClientNote):
        if note.credit > self.requested:
            raise ValueError("forged credit")
        self.window = note.credit

    def on_note_documented(self, note: ClientNote):
        # Documented false positive: the frontend re-clamps credit on
        # the next ack, so the transient store cannot over-publish.
        self.window = note.credit  # lint: disable=T601
