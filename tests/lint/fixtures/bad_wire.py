"""Violation fixture: every W-rule fires here.  Never imported."""

# The fake registrations below have no handlers on purpose — that is
# bad_taint.py's subject, not this file's.
# lint: disable-file=T602

from dataclasses import dataclass

_TAG_A = 200
_TAG_B = 200  # same value: W302 on the second register call


class FakeRegistry:
    def register(self, tag, cls, decoder):
        pass


registry = FakeRegistry()


@dataclass(frozen=True)
class EncodeOnly:  # W301: no decode_fields
    value: int

    def encode_fields(self, writer):
        writer.u32(self.value)


@dataclass(frozen=True)
class DeadField:
    kept: int
    dropped: int  # W303: never serialized

    def encode_fields(self, writer):
        writer.u32(self.kept)

    @classmethod
    def decode_fields(cls, reader):
        return cls(reader.u32(), 0)


@dataclass(frozen=True)
class NeverRegistered:  # W304
    value: int

    def encode_fields(self, writer):
        writer.u32(self.value)

    @classmethod
    def decode_fields(cls, reader):
        return cls(reader.u32())


registry.register(_TAG_A, EncodeOnly, None)
registry.register(_TAG_B, DeadField, DeadField.decode_fields)
