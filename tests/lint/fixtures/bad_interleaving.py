"""Interleaving-hazard fixtures for the I5xx rules.

Inert when linted under its own stem name (the I-rules are scoped to
``repro.runtime`` / ``repro.svc``); tests/lint/test_rules_interleaving
re-lints this source under an in-scope module name, expecting exactly
one finding per rule: each true positive has a pragma'd twin standing
in for a documented false positive.
"""

import time


class Window:
    async def widen(self):
        # I501 true positive: the read goes stale across the await.
        credit = self._credit
        await self.flush()
        self._credit = credit + 1

    async def widen_guarded(self):
        # Documented false positive: _credit has a single writer (this
        # coroutine), so nothing can interleave an update.
        credit = self._credit
        await self.flush()
        self._credit = credit + 1  # lint: disable=I501

    async def flush(self):
        pass


def settle():
    # I502 true positive: blocks, and runner() below reaches it.
    time.sleep(0.01)


def settle_documented():
    # Documented false positive: bounded shutdown spin, accepted.
    time.sleep(0.01)  # lint: disable=I502


async def runner():
    settle()
    settle_documented()


class Fleet:
    async def drain(self):
        # I503 true positive: _nodes can shrink while we are suspended.
        for node in self._nodes:
            await node.halt()

    async def drain_snapshot(self):
        for node in list(self._nodes):  # private copy: clean
            await node.halt()

    async def drain_exclusive(self):
        # Documented false positive: every mutator holds self._lock,
        # so the container cannot change mid-iteration.
        for node in self._nodes:  # lint: disable=I503
            await node.halt()
