"""Violation fixture: every H-rule fires here.

Used by tests/lint/test_cli.py to prove ``python -m repro lint``
exits non-zero on a dirty tree.  Never imported.
"""


def float_sentinel(rate: float) -> bool:
    return rate == 0.0  # H401


def accumulate(item: int, bucket: list = []) -> list:  # H402
    bucket.append(item)
    return bucket


def swallow() -> int:
    try:
        return 1 // 0
    except Exception:  # H403
        return 0
