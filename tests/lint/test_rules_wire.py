"""W-rules: wire-schema cross-checks for the frame codecs."""

from pathlib import Path

from repro.lint import check_source, run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def rules_of(source, module="repro.net.fixture"):
    # W-family only: a lone registered codec with no dispatch arm is a
    # legitimate T602 elsewhere, but noise for these schema checks.
    return [v.rule for v in check_source(source, module, rules=["W"])]


CLEAN_CODEC = """
from dataclasses import dataclass

_TAG_PING = 77


@dataclass(frozen=True)
class Ping:
    nonce: int

    def encode_fields(self, writer):
        writer.u32(self.nonce)

    @classmethod
    def decode_fields(cls, reader):
        return cls(reader.u32())


registry.register(_TAG_PING, Ping, Ping.decode_fields)
"""


def test_clean_codec_is_quiet():
    assert rules_of(CLEAN_CODEC) == []


# -- W301: both directions --------------------------------------------------


def test_w301_flags_encode_only_and_decode_only():
    source = (
        "class EncodeOnly:\n"
        "    def encode_fields(self, writer):\n"
        "        writer.u8(1)\n"
        "registry.register(1, EncodeOnly, None)\n"
    )
    assert "W301" in rules_of(source)
    source = (
        "class DecodeOnly:\n"
        "    @classmethod\n"
        "    def decode_fields(cls, reader):\n"
        "        return cls()\n"
        "registry.register(1, DecodeOnly, DecodeOnly.decode_fields)\n"
    )
    assert "W301" in rules_of(source)


def test_w301_ignores_protocol_stubs():
    source = (
        "from typing import Protocol\n"
        "class WireMessage(Protocol):\n"
        "    def encode_fields(self, writer) -> None: ...\n"
    )
    assert rules_of(source) == []


# -- W302: unique tags ------------------------------------------------------


def test_w302_flags_literal_tag_collision():
    source = (
        CLEAN_CODEC
        + "registry.register(77, Ping, Ping.decode_fields)\n"
    )
    assert rules_of(source).count("W302") == 1


def test_w302_resolves_named_constants():
    source = CLEAN_CODEC + (
        "_TAG_OTHER = 77\n"
        "registry.register(_TAG_OTHER, Ping, Ping.decode_fields)\n"
    )
    assert "W302" in rules_of(source)


def test_w302_distinct_tags_quiet_across_real_tree():
    # The real tree (urcgc 10..18, client tier 19..22, CBCAST 30..33,
    # Psync 40) must keep its tag space collision-free.
    src = Path(__file__).parents[2] / "src" / "repro"
    result = run_lint([src], rules=["W302"])
    assert result.violations == []


#: The committed wire-tag census.  A new registration must extend this
#: literal (and ship a golden vector) in the same change.
TAG_CENSUS = {
    10: "UserMessage",
    11: "RequestMessage",
    12: "DecisionMessage",
    13: "RecoveryRequest",
    14: "RecoveryResponse",
    15: "JoinRequest",
    16: "BatchFrame",
    17: "GenerateBatch",
    18: "HeartbeatMessage",
    19: "ClientHello",
    20: "ClientPublish",
    21: "ClientDeliver",
    22: "ClientAck",
    30: "CbcastData",
    31: "StabilityGossip",
    32: "ViewChange",
    33: "Flush",
    40: "PsyncData",
}


def test_static_tag_census_matches_live_registry():
    # The analyzer's static view of register() calls must agree with
    # both the committed census above and the imported registry — this
    # is what keeps rules_wire/T602 honest as the tag space grows
    # (the client tier added 19..22 after the original audit).
    import repro.baselines.cbcast.messages  # noqa: F401
    import repro.baselines.psync.protocol  # noqa: F401
    import repro.core.message  # noqa: F401
    import repro.core.rejoin  # noqa: F401
    import repro.svc.wire  # noqa: F401
    from repro.lint.engine import Violation, load_module
    from repro.lint.rules_wire import _register_calls
    from repro.net.wire import global_registry

    src = Path(__file__).parents[2] / "src" / "repro"
    static: dict[int, str] = {}
    for path in sorted(src.rglob("*.py")):
        module = load_module(path)
        if isinstance(module, Violation):
            continue
        for _call, tag, cls_name in _register_calls(module):
            assert tag is not None and cls_name is not None, (
                f"{path}: register() call the analyzer cannot resolve "
                "statically; use a literal/module-constant tag and a "
                "plain class name"
            )
            assert tag not in static
            static[tag] = cls_name
    assert static == TAG_CENSUS
    live = {t: cls.__name__ for t, cls in global_registry.registered().items()}
    assert live == TAG_CENSUS


# -- W303: every field serialized ------------------------------------------


def test_w303_flags_dead_field():
    source = CLEAN_CODEC.replace(
        "    nonce: int\n",
        "    nonce: int\n    forgotten: int = 0\n",
    )
    assert rules_of(source) == ["W303"]


def test_w303_allows_private_and_classvar_fields():
    source = CLEAN_CODEC.replace(
        "    nonce: int\n",
        "    nonce: int\n"
        "    _cache: int = 0\n"
        "    LIMIT: ClassVar[int] = 4\n",
    )
    assert rules_of(source) == []


def test_w303_sees_fields_read_through_nested_attributes():
    # RequestMessage serializes self.info.last_processed — the field
    # read is `self.info`, which counts.
    source = (
        "class Wrapper:\n"
        "    info: object\n"
        "    def encode_fields(self, writer):\n"
        "        writer.u32(self.info.value)\n"
        "    @classmethod\n"
        "    def decode_fields(cls, reader):\n"
        "        return cls(reader.u32())\n"
        "registry.register(9, Wrapper, Wrapper.decode_fields)\n"
    )
    assert rules_of(source) == []


# -- W304: everything registered -------------------------------------------


def test_w304_flags_unregistered_codec():
    source = CLEAN_CODEC.replace(
        "registry.register(_TAG_PING, Ping, Ping.decode_fields)\n", ""
    )
    assert rules_of(source) == ["W304"]


# -- the shipped fixture exercises all four at once -------------------------


def test_bad_wire_fixture_trips_every_w_rule():
    result = run_lint([FIXTURES / "bad_wire.py"])
    found = {v.rule for v in result.violations}
    assert {"W301", "W302", "W303", "W304"} <= found


# -- W305: JSON-encodable event/record fields -------------------------------

GOOD_EVENT = """
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SpanEvent:
    time: float
    kind: str
    node: int | None = None
    extra: dict[str, str | int | float | bool | None | list[str]] = field(
        default_factory=dict
    )


@dataclass(frozen=True)
class MetricRecord:
    name: str
    labels: dict[str, str]
    value: float | None = None
"""


def test_w305_json_fields_are_quiet():
    assert rules_of(GOOD_EVENT, module="repro.obs.fixture") == []


def test_w305_flags_non_json_field():
    source = GOOD_EVENT.replace("time: float", "time: bytes")
    assert rules_of(source, module="repro.obs.fixture") == ["W305"]


def test_w305_flags_arbitrary_class_annotation():
    source = GOOD_EVENT.replace("kind: str", "kind: Mid")
    assert rules_of(source, module="repro.obs.fixture") == ["W305"]


def test_w305_string_annotations_resolve():
    source = GOOD_EVENT.replace("node: int | None = None", 'node: "int | None" = None')
    assert rules_of(source, module="repro.obs.fixture") == []


def test_w305_scoped_to_obs():
    source = GOOD_EVENT.replace("time: float", "time: bytes")
    assert rules_of(source, module="repro.core.fixture") == []


def test_w305_ignores_non_dataclass_and_other_names():
    source = """
class PlainEvent:
    time: bytes

from dataclasses import dataclass

@dataclass
class Helper:
    blob: bytes
"""
    assert rules_of(source, module="repro.obs.fixture") == []


def test_w305_real_obs_records_are_clean():
    events = Path(__file__).parents[2] / "src" / "repro" / "obs" / "events.py"
    result = run_lint([events])
    assert not [v for v in result.violations if v.rule == "W305"]
