"""H-rules: float equality, mutable defaults, swallowed exceptions."""

from repro.lint import check_source


def rules_of(source, module="repro.any.fixture"):
    return [v.rule for v in check_source(source, module)]


# -- H401: float equality ---------------------------------------------------


def test_h401_flags_eq_and_ne_against_float_literals():
    assert rules_of("a = x == 0.0\n") == ["H401"]
    assert rules_of("b = 1.5 != y\n") == ["H401"]


def test_h401_flags_chained_comparison():
    assert rules_of("ok = a < b == 0.5\n") == ["H401"]


def test_h401_allows_orderings_and_integer_equality():
    source = "a = x <= 0.0\nb = y >= 1.0\nc = n == 0\nd = s == 'x'\n"
    assert rules_of(source) == []


def test_h401_pragma_with_justification():
    source = (
        "# 0.5 is exactly representable and set, never computed.\n"
        "exact = x == 0.5  # lint: disable=H401\n"
    )
    assert rules_of(source) == []


# -- H402: mutable defaults -------------------------------------------------


def test_h402_flags_list_dict_set_defaults():
    assert rules_of("def f(a=[]):\n    pass\n") == ["H402"]
    assert rules_of("def f(a={}):\n    pass\n") == ["H402"]
    assert rules_of("def f(*, a=set()):\n    pass\n") == ["H402"]


def test_h402_flags_async_def_and_constructor_calls():
    assert rules_of("async def f(a=dict()):\n    pass\n") == ["H402"]


def test_h402_allows_immutable_defaults():
    source = "def f(a=(), b=None, c=0, d='x', e=frozenset()):\n    pass\n"
    assert rules_of(source) == []


# -- H403: swallowed exceptions ---------------------------------------------


def test_h403_flags_silent_broad_except():
    source = (
        "try:\n    risky()\n"
        "except Exception:\n    pass\n"
    )
    assert rules_of(source) == ["H403"]


def test_h403_flags_bare_except_returning_constant():
    source = (
        "def f():\n"
        "    try:\n        return risky()\n"
        "    except:\n        return 1\n"
    )
    assert rules_of(source) == ["H403"]


def test_h403_allows_reraise_and_recording():
    reraise = (
        "try:\n    risky()\n"
        "except Exception as exc:\n    raise RuntimeError('x') from exc\n"
    )
    assert rules_of(reraise) == []
    recording = (
        "try:\n    risky()\n"
        "except Exception as exc:\n    violations.append(str(exc))\n"
    )
    assert rules_of(recording) == []


def test_h403_allows_narrow_exceptions():
    source = (
        "try:\n    risky()\n"
        "except (KeyError, ValueError):\n    pass\n"
    )
    assert rules_of(source) == []
