"""A-rules: async-safety inside repro.runtime."""

from repro.lint import check_source

RUNTIME = "repro.runtime.fixture"


def rules_of(source, module=RUNTIME):
    return [v.rule for v in check_source(source, module)]


# -- A201: blocking sleep ---------------------------------------------------


def test_a201_flags_time_sleep_in_coroutine():
    source = (
        "import time\n"
        "async def ticker():\n"
        "    time.sleep(0.1)\n"
    )
    assert rules_of(source) == ["A201"]


def test_a201_allows_asyncio_sleep_and_sync_defs():
    source = (
        "import asyncio\nimport time\n"
        "async def ticker():\n"
        "    await asyncio.sleep(0.1)\n"
        "def sync_helper():\n"
        "    time.sleep(0.1)\n"
    )
    assert rules_of(source) == []


def test_a201_skips_nested_sync_closure():
    # The closure only blocks when called; flagging the definition
    # would force pragmas onto executor-targeted helpers.
    source = (
        "import time\n"
        "async def ticker(loop):\n"
        "    def blocking():\n"
        "        time.sleep(0.1)\n"
        "    await loop.run_in_executor(None, blocking)\n"
    )
    assert rules_of(source) == []


def test_a201_out_of_scope_package_is_quiet():
    source = "import time\nasync def f():\n    time.sleep(1)\n"
    assert rules_of(source, "repro.harness.fixture") == []


# -- A202: sync I/O ---------------------------------------------------------


def test_a202_flags_open_in_coroutine():
    source = (
        "async def dump(path, data):\n"
        "    with open(path, 'wb') as fh:\n"
        "        fh.write(data)\n"
    )
    assert rules_of(source) == ["A202"]


def test_a202_flags_blocking_os_and_socket_calls():
    source = (
        "import os\nimport socket\n"
        "async def f(path):\n"
        "    os.fsync(3)\n"
        "    socket.create_connection(('h', 1))\n"
    )
    assert rules_of(source) == ["A202", "A202"]


def test_a202_allows_sync_methods_and_sync_defs():
    source = (
        "import os\n"
        "def snapshot(path, data):\n"
        "    with open(path, 'wb') as fh:\n"
        "        fh.write(data)\n"
        "    os.fsync(fh.fileno())\n"
    )
    assert rules_of(source) == []


# -- A203: durable-state I/O ------------------------------------------------


def test_a203_flags_wal_and_snapshot_calls_in_coroutine():
    source = (
        "async def receiver(self, message):\n"
        "    self.storage.log_processed(message)\n"
        "    self.storage.save_snapshot(snap)\n"
    )
    assert rules_of(source) == ["A203", "A203"]


def test_a203_allows_sync_effect_execution_path():
    source = (
        "def _execute(self, message):\n"
        "    self.storage.log_processed(message)\n"
    )
    assert rules_of(source) == []


def test_a203_respects_pragma():
    source = (
        "async def receiver(self, m):\n"
        "    self.storage.log_decision(m)  # lint: disable=A203\n"
    )
    assert rules_of(source) == []
