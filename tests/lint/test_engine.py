"""Engine mechanics: pragmas, scoping, selection, parse errors."""

import pytest

from repro.lint import check_source, run_lint
from repro.lint.engine import (
    PARSE_ERROR_RULE,
    RULES,
    imported_names,
    module_name_for,
    qualified_name,
)

FLOAT_EQ = "ok = value == 0.5\n"


def test_rule_registry_has_all_four_families():
    run_lint([])  # force rule registration
    families = {rule_id[0] for rule_id in RULES}
    assert {"D", "A", "W", "H"} <= families
    # Each family ships at least two distinct rules.
    for family in "DAWH":
        assert sum(1 for rule_id in RULES if rule_id[0] == family) >= 2


def test_same_line_pragma_suppresses():
    dirty = check_source(FLOAT_EQ, "fixture")
    assert [v.rule for v in dirty] == ["H401"]
    clean = check_source("ok = value == 0.5  # lint: disable=H401\n", "fixture")
    assert clean == []


def test_pragma_only_suppresses_named_rules():
    source = "ok = value == 0.5  # lint: disable=H402\n"
    assert [v.rule for v in check_source(source, "fixture")] == ["H401"]


def test_pragma_disable_all():
    source = "ok = value == 0.5  # lint: disable=all\n"
    assert check_source(source, "fixture") == []


def test_file_level_pragma():
    source = "# lint: disable-file=H401\na = x == 1.0\nb = y != 2.0\n"
    assert check_source(source, "fixture") == []


def test_pragma_on_other_line_does_not_suppress():
    source = "# lint: disable=H401\nok = value == 0.5\n"
    assert [v.rule for v in check_source(source, "fixture")] == ["H401"]


def test_scoped_rules_skip_other_packages():
    source = "import random\nx = random.random()\n"
    assert any(
        v.rule == "D101" for v in check_source(source, "repro.core.fixture")
    )
    # Harness code may use the module RNG (it seeds its own streams).
    assert check_source(source, "repro.harness.fixture") == []


def test_rule_selection_and_unknown_rule():
    source = "ok = value == 0.5\n"
    assert check_source(source, "fixture", rules=["H402"]) == []
    with pytest.raises(KeyError):
        check_source(source, "fixture", rules=["NOPE"])


def test_parse_error_becomes_violation(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    result = run_lint([bad])
    assert not result.ok
    assert [v.rule for v in result.violations] == [PARSE_ERROR_RULE]


def test_module_name_for_src_layout(tmp_path):
    path = tmp_path / "src" / "repro" / "core" / "member.py"
    path.parent.mkdir(parents=True)
    path.write_text("")
    assert module_name_for(path) == "repro.core.member"
    init = tmp_path / "src" / "repro" / "core" / "__init__.py"
    init.write_text("")
    assert module_name_for(init) == "repro.core"


def test_qualified_name_resolution():
    import ast

    tree = ast.parse(
        "import random\n"
        "from time import monotonic\n"
        "from datetime import datetime as dt\n"
        "random.random()\n"
        "monotonic()\n"
        "dt.now()\n"
        "self.rng.random()\n"
    )
    imports = imported_names(tree)
    calls = [n for n in ast.walk(tree) if isinstance(n, ast.Call)]
    resolved = [qualified_name(c.func, imports) for c in calls]
    assert resolved == [
        "random.random",
        "time.monotonic",
        "datetime.datetime.now",
        None,  # rooted in self, not an import
    ]


def test_violations_sorted_and_counted(tmp_path):
    f = tmp_path / "two.py"
    f.write_text("b = y == 2.0\na = x == 1.0\n")
    result = run_lint([f])
    assert [v.line for v in result.violations] == [1, 2]
    assert result.files_checked == 1
