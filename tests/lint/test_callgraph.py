"""Call-graph construction and conservative call resolution."""

from repro.lint.callgraph import COMMON_METHOD_NAMES, build_call_graph
from repro.lint.engine import Violation, _build_module


def mod(source, name):
    built = _build_module(source, f"{name}.py", name)
    assert not isinstance(built, Violation)
    return built


def graph_of(*named_sources):
    return build_call_graph([mod(src, name) for name, src in named_sources])


def test_local_function_and_self_method_resolution():
    graph = graph_of(
        (
            "m",
            "def helper():\n"
            "    pass\n"
            "class Node:\n"
            "    def tick(self):\n"
            "        helper()\n"
            "        self.flush_state()\n"
            "    def flush_state(self):\n"
            "        pass\n",
        )
    )
    tick = graph.function("m:Node.tick")
    assert tick is not None and not tick.is_async
    assert tick.callees == {"m:helper", "m:Node.flush_state"}


def test_cross_module_import_resolution():
    graph = graph_of(
        ("util", "def settle():\n    pass\n"),
        (
            "m",
            "from util import settle\n"
            "import util\n"
            "def direct():\n"
            "    settle()\n"
            "def dotted():\n"
            "    util.settle()\n",
        ),
    )
    assert graph.function("m:direct").callees == {"util:settle"}
    assert graph.function("m:dotted").callees == {"util:settle"}


def test_unique_method_heuristic_and_common_name_blocklist():
    graph = graph_of(
        (
            "store",
            "class Storage:\n"
            "    def log_generated(self, m):\n"
            "        pass\n",
        ),
        (
            "m",
            "def run(storage, buf):\n"
            "    storage.log_generated(1)\n"
            "    buf.append(1)\n",
        ),
    )
    assert "append" in COMMON_METHOD_NAMES
    # log_generated is defined by exactly one class tree-wide -> edge;
    # append is a container verb -> never an edge.
    assert graph.function("m:run").callees == {"store:Storage.log_generated"}


def test_ambiguous_method_name_produces_no_edge():
    graph = graph_of(
        ("a", "class A:\n    def settle_down(self):\n        pass\n"),
        ("b", "class B:\n    def settle_down(self):\n        pass\n"),
        ("m", "def run(x):\n    x.settle_down()\n"),
    )
    assert graph.function("m:run").callees == set()


def test_callers_of_and_coroutines():
    graph = graph_of(
        (
            "m",
            "def leaf():\n"
            "    pass\n"
            "def middle():\n"
            "    leaf()\n"
            "async def root():\n"
            "    middle()\n",
        )
    )
    assert graph.callers_of("m:leaf") == {"m:middle"}
    assert graph.callers_of("m:middle") == {"m:root"}
    assert [f.qualname for f in graph.coroutines()] == ["m:root"]


def test_nested_defs_are_not_indexed():
    graph = graph_of(
        (
            "m",
            "def outer():\n"
            "    def inner():\n"
            "        pass\n"
            "    return inner\n",
        )
    )
    assert graph.function("m:outer") is not None
    assert graph.function("m:inner") is None
