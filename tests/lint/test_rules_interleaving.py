"""I-rules: interleaving hazards across suspension points."""

from pathlib import Path

from repro.lint import check_source

FIXTURE = (Path(__file__).parent / "fixtures" / "bad_interleaving.py").read_text()
RUNTIME = "repro.runtime.fixture"


def findings(source, module=RUNTIME, rules=None):
    return check_source(source, module, rules=rules)


# -- I501 -------------------------------------------------------------------


def test_i501_fixture_true_positive_and_pragmad_twin():
    # The fixture pairs every hazard with a pragma'd duplicate: exactly
    # one finding per rule survives.
    found = findings(FIXTURE, rules=["I501"])
    assert [v.rule for v in found] == ["I501"]
    assert "self._credit" in found[0].message
    assert "widen" in found[0].message


def test_i501_fresh_reread_after_suspension_is_clean():
    source = (
        "async def f(self):\n"
        "    x = self._n\n"
        "    await self.flush()\n"
        "    x = self._n\n"
        "    self._n = x + 1\n"
    )
    assert findings(source, rules=["I501"]) == []


def test_i501_write_before_suspension_is_clean():
    source = (
        "async def f(self):\n"
        "    self._n = self._n + 1\n"
        "    await self.flush()\n"
    )
    assert findings(source, rules=["I501"]) == []


def test_i501_augassign_after_await_without_prior_read_is_clean():
    source = (
        "async def f(self):\n"
        "    await self.flush()\n"
        "    self._n += 1\n"
    )
    assert findings(source, rules=["I501"]) == []


def test_i501_only_private_attributes():
    source = (
        "async def f(self):\n"
        "    x = self.count\n"
        "    await self.flush()\n"
        "    self.count = x + 1\n"
    )
    assert findings(source, rules=["I501"]) == []


def test_i501_scoped_to_runtime_and_svc():
    hazard = (
        "async def f(self):\n"
        "    x = self._n\n"
        "    await self.flush()\n"
        "    self._n = x + 1\n"
    )
    assert findings(hazard, module="repro.svc.fixture", rules=["I501"]) != []
    assert findings(hazard, module="repro.core.fixture", rules=["I501"]) == []


# -- I502 -------------------------------------------------------------------


def test_i502_fixture_true_positive_and_pragmad_twin():
    found = findings(FIXTURE, rules=["I502"])
    assert [v.rule for v in found] == ["I502"]
    assert "time.sleep()" in found[0].message
    assert "runner" in found[0].message


def test_i502_chains_through_intermediate_sync_helpers():
    source = (
        "import time\n"
        "def leaf():\n"
        "    time.sleep(1)\n"
        "def middle():\n"
        "    leaf()\n"
        "async def ticker():\n"
        "    middle()\n"
    )
    found = findings(source, rules=["I502"])
    assert [v.rule for v in found] == ["I502"]
    assert "ticker" in found[0].message


def test_i502_silent_without_an_async_root():
    source = (
        "import time\n"
        "def leaf():\n"
        "    time.sleep(1)\n"
        "def middle():\n"
        "    leaf()\n"
    )
    assert findings(source, rules=["I502"]) == []


def test_i502_out_of_scope_coroutine_does_not_root():
    source = (
        "import time\n"
        "def leaf():\n"
        "    time.sleep(1)\n"
        "async def ticker():\n"
        "    leaf()\n"
    )
    assert findings(source, module="repro.harness.fixture", rules=["I502"]) == []


def test_i502_storage_ops_are_blocking_leaves():
    source = (
        "def persist(self):\n"
        "    self.storage.save_snapshot(None)\n"
        "async def ticker(self):\n"
        "    self.persist()\n"
    )
    # Needs the class context for self-resolution.
    wrapped = (
        "class Node:\n"
        + "".join(f"    {line}\n" for line in source.splitlines())
    )
    found = findings(wrapped, rules=["I502"])
    assert [v.rule for v in found] == ["I502"]
    assert ".save_snapshot()" in found[0].message


# -- I503 -------------------------------------------------------------------


def test_i503_fixture_true_positive_and_pragmad_twin():
    # drain() fires; drain_snapshot (list copy) and drain_exclusive
    # (pragma) stay quiet.
    found = findings(FIXTURE, rules=["I503"])
    assert [v.rule for v in found] == ["I503"]
    assert "self._nodes" in found[0].message
    assert "drain" in found[0].message


def test_i503_dict_view_iteration_flagged():
    source = (
        "async def f(self):\n"
        "    for k, v in self._table.items():\n"
        "        await self.push(k, v)\n"
    )
    found = findings(source, rules=["I503"])
    assert [v.rule for v in found] == ["I503"]


def test_i503_async_for_over_shared_attr_flagged():
    source = (
        "async def f(self):\n"
        "    async for item in self._queue:\n"
        "        pass\n"
    )
    assert [v.rule for v in findings(source, rules=["I503"])] == ["I503"]


def test_i503_loop_without_suspension_is_clean():
    source = (
        "async def f(self):\n"
        "    for node in self._nodes:\n"
        "        node.halt()\n"
    )
    assert findings(source, rules=["I503"]) == []


def test_i503_local_iterable_is_clean():
    source = (
        "async def f(self, nodes):\n"
        "    for node in nodes:\n"
        "        await node.halt()\n"
    )
    assert findings(source, rules=["I503"]) == []
