"""Baseline suppression: fingerprints, staleness, CLI round-trip."""

import json
from pathlib import Path

import pytest

from repro.lint import apply_baseline, load_baseline, run_lint, write_baseline
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.cli import main

HAZARD = (
    "async def f(self):\n"
    "    x = self._n\n"
    "    await self.flush()\n"
    "    self._n = x + 1\n"
)


def runtime_file(tmp_path, source=HAZARD, name="node.py"):
    # A path containing a `repro` component puts the file in scope for
    # the package-scoped rules (module_name_for keys off it).
    pkg = tmp_path / "repro" / "runtime"
    pkg.mkdir(parents=True, exist_ok=True)
    file = pkg / name
    file.write_text(source)
    return file


# -- library level ----------------------------------------------------------


def test_baseline_suppresses_fingerprinted_findings(tmp_path):
    file = runtime_file(tmp_path)
    result = run_lint([file], rules=["I501"])
    assert len(result.violations) == 1
    baseline_path = tmp_path / "lint-baseline.json"
    write_baseline(result, baseline_path)
    outcome = apply_baseline(
        run_lint([file], rules=["I501"]), load_baseline(baseline_path)
    )
    assert outcome.remaining == []
    assert outcome.suppressed == 1
    assert outcome.stale == []


def test_baseline_is_line_number_insensitive(tmp_path):
    file = runtime_file(tmp_path)
    baseline_path = tmp_path / "lint-baseline.json"
    write_baseline(run_lint([file], rules=["I501"]), baseline_path)
    # Shift the finding down two lines: same fingerprint, still covered.
    file.write_text("import asyncio\nPAD = 1\n" + HAZARD)
    outcome = apply_baseline(
        run_lint([file], rules=["I501"]), load_baseline(baseline_path)
    )
    assert outcome.remaining == [] and outcome.suppressed == 1


def test_unmatched_entries_are_reported_stale(tmp_path):
    file = runtime_file(tmp_path)
    baseline_path = tmp_path / "lint-baseline.json"
    write_baseline(run_lint([file], rules=["I501"]), baseline_path)
    file.write_text("async def f(self):\n    pass\n")  # hazard fixed
    outcome = apply_baseline(
        run_lint([file], rules=["I501"]), load_baseline(baseline_path)
    )
    assert outcome.remaining == [] and outcome.suppressed == 0
    assert len(outcome.stale) == 1
    assert outcome.stale[0].rule == "I501"


def test_count_capacity_caps_suppression(tmp_path):
    file = runtime_file(tmp_path, source=HAZARD)
    result = run_lint([file], rules=["I501"])
    entry = BaselineEntry(
        rule="I501",
        path=Baseline(tmp_path / "b.json", []).normalize(str(file)),
        message=result.violations[0].message,
        count=1,
    )
    baseline = Baseline(tmp_path / "b.json", [entry])
    # Duplicate the finding artificially: capacity 1 suppresses one.
    doubled = run_lint([file], rules=["I501"])
    doubled.violations.append(doubled.violations[0])
    outcome = apply_baseline(doubled, baseline)
    assert outcome.suppressed == 1
    assert len(outcome.remaining) == 1


def test_malformed_baseline_rejected(tmp_path):
    bad = tmp_path / "b.json"
    bad.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError, match="version"):
        load_baseline(bad)
    bad.write_text(json.dumps({"version": 1, "entries": [{"rule": "X"}]}))
    with pytest.raises(ValueError, match="missing"):
        load_baseline(bad)


# -- CLI --------------------------------------------------------------------


def test_cli_baseline_round_trip(tmp_path, capsys):
    file = runtime_file(tmp_path)
    baseline_path = tmp_path / "lint-baseline.json"
    # Findings fail the run before a baseline exists.
    assert main([str(file), "--rules", "I501"]) == 1
    capsys.readouterr()
    # --update-baseline records them and exits 0.
    assert (
        main(
            [str(file), "--rules", "I501", "--baseline", str(baseline_path),
             "--update-baseline"]
        )
        == 0
    )
    assert "baseline updated" in capsys.readouterr().out
    # With the baseline applied the run is green and accounted for.
    assert (
        main([str(file), "--rules", "I501", "--baseline", str(baseline_path)])
        == 0
    )
    assert "1 finding(s) baselined" in capsys.readouterr().out


def test_cli_stale_entries_are_visible(tmp_path, capsys):
    file = runtime_file(tmp_path)
    baseline_path = tmp_path / "lint-baseline.json"
    main(
        [str(file), "--rules", "I501", "--baseline", str(baseline_path),
         "--update-baseline"]
    )
    capsys.readouterr()
    file.write_text("async def f(self):\n    pass\n")
    assert (
        main([str(file), "--rules", "I501", "--baseline", str(baseline_path)])
        == 0
    )
    out = capsys.readouterr().out
    assert "stale baseline entry" in out


def test_cli_stale_entries_in_json_artifact(tmp_path, capsys):
    file = runtime_file(tmp_path)
    baseline_path = tmp_path / "lint-baseline.json"
    main(
        [str(file), "--rules", "I501", "--baseline", str(baseline_path),
         "--update-baseline"]
    )
    capsys.readouterr()
    file.write_text("async def f(self):\n    pass\n")
    main(
        ["--json", str(file), "--rules", "I501", "--baseline",
         str(baseline_path)]
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 2
    assert payload["baselined"] == 0
    assert len(payload["stale_baseline"]) == 1
    assert payload["stale_baseline"][0]["rule"] == "I501"


def test_cli_update_baseline_requires_baseline(tmp_path, capsys):
    file = runtime_file(tmp_path)
    assert main([str(file), "--update-baseline"]) == 2
    assert "--baseline" in capsys.readouterr().err


def test_cli_missing_baseline_file_is_usage_error(tmp_path, capsys):
    file = runtime_file(tmp_path)
    assert main([str(file), "--baseline", str(tmp_path / "nope.json")]) == 2
    assert "no such baseline" in capsys.readouterr().err


def test_cli_family_prefix_expands(tmp_path, capsys):
    file = runtime_file(tmp_path)
    assert main([str(file), "--rules", "I,T"]) == 1
    out = capsys.readouterr().out
    assert "I501" in out


def test_cli_unknown_prefix_is_usage_error(capsys):
    assert main(["--rules", "Q", "."]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_shipped_baseline_is_empty():
    # The acceptance bar: all real findings were fixed or pragma'd with
    # documentation, so the committed baseline carries no entries.
    repo = Path(__file__).parents[2]
    payload = json.loads((repo / "lint-baseline.json").read_text())
    assert payload == {"version": 1, "entries": []}
