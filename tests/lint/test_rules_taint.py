"""T-rules: wire-taint typestate and handler completeness."""

from pathlib import Path

from repro.lint import check_source, run_lint

FIXTURES = Path(__file__).parent / "fixtures"
FIXTURE = (FIXTURES / "bad_taint.py").read_text()
SVC = "repro.svc.fixture"


def findings(source, module=SVC, rules=None):
    return check_source(source, module, rules=rules)


# -- T601 -------------------------------------------------------------------


def test_t601_fixture_true_positive_and_pragmad_twin():
    # on_note fires; on_note_guarded (range guard) and
    # on_note_documented (pragma) stay quiet.
    found = findings(FIXTURE, rules=["T601"])
    assert [v.rule for v in found] == ["T601"]
    assert "self.window" in found[0].message
    assert "on_note" in found[0].message


def test_t601_validate_message_blesses_the_object():
    source = (
        "def handle(self, data, n):\n"
        "    msg = decode_message(data)\n"
        "    problem = validate_message(msg, n)\n"
        "    if problem is not None:\n"
        "        return\n"
        "    self.last = msg\n"
    )
    assert findings(source, rules=["T601"]) == []


def test_t601_unvalidated_decode_to_storage_flagged():
    source = (
        "def handle(self, data):\n"
        "    msg = decode_message(data)\n"
        "    self.storage.log_processed(msg)\n"
    )
    found = findings(source, rules=["T601"])
    assert [v.rule for v in found] == ["T601"]
    assert "log_processed" in found[0].message


def test_t601_out_of_scope_module_is_skipped():
    source = (
        "def handle(self, data):\n"
        "    self.last = decode_message(data)\n"
    )
    assert findings(source, module="repro.core.fixture", rules=["T601"]) == []


def test_t601_wire_import_marks_parameter_classes():
    # `from .wire import X` makes X a taint-seeding annotation even
    # when no register() call names it.
    source = (
        "from .wire import ClientNudge\n"
        "def on_nudge(self, nudge: ClientNudge):\n"
        "    self.level = nudge.level\n"
    )
    found = findings(source, rules=["T601"])
    assert [v.rule for v in found] == ["T601"]
    assert "ClientNudge" in found[0].message


# -- T602 -------------------------------------------------------------------


def test_t602_fixture_unhandled_tag_and_pragmad_twin():
    # Orphan (no handler) fires; Ping (handled here) and Beacon
    # (pragma'd) stay quiet — even under the fixture's own stem name.
    result = run_lint([FIXTURES / "bad_taint.py"], rules=["T602"])
    assert [v.rule for v in result.violations] == ["T602"]
    assert "Orphan" in result.violations[0].message
    assert "tag 91" in result.violations[0].message


def test_t602_handler_in_on_method_annotation_counts(tmp_path):
    (tmp_path / "proto.py").write_text(
        "TAG = 70\n"
        "class Frame:\n"
        "    pass\n"
        "registry.register(TAG, Frame, None)\n"
        "class Engine:\n"
        "    def on_frame(self, frame: Frame):\n"
        "        pass\n"
    )
    assert run_lint([tmp_path], rules=["T602"]).violations == []


def test_t602_two_families_dispatching_one_tag(tmp_path):
    (tmp_path / "alpha.py").write_text(
        "TAG = 71\n"
        "class Frame:\n"
        "    pass\n"
        "registry.register(TAG, Frame, None)\n"
        "def on_frame(frame):\n"
        "    if isinstance(frame, Frame):\n"
        "        pass\n"
    )
    (tmp_path / "beta.py").write_text(
        "def on_frame(frame):\n"
        "    if isinstance(frame, Frame):\n"
        "        pass\n"
    )
    result = run_lint([tmp_path], rules=["T602"])
    assert [v.rule for v in result.violations] == ["T602"]
    message = result.violations[0].message
    assert "more than one" in message
    assert "alpha" in message and "beta" in message


def test_t602_shipped_tree_is_complete():
    # The real tag space: every registered PDU has exactly one family.
    src = Path(__file__).parents[2] / "src" / "repro"
    assert run_lint([src], rules=["T602"]).violations == []
