#!/usr/bin/env python3
"""Failure drill: watch urcgc's embedded fault handling work.

Walks through the paper's failure repertoire on one small group and
narrates what the protocol does about each:

1. omission failures  -> history recovery (point-to-point)
2. a server crash     -> K silent subruns, removal by decision
3. coordinator crash  -> the rotation absorbs it, no election
4. lost-forever msg   -> orphan discard of the dependent tail

Run:  python examples/failure_drill.py
"""

import random

from repro import SimCluster, UrcgcConfig
from repro.net.faults import CrashSchedule, FaultPlan
from repro.types import ProcessId
from repro.workloads import (
    FixedBudgetWorkload,
    consecutive_coordinator_crashes,
    crashes,
    omission,
)


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def drill_omission() -> None:
    banner("1. omission failures: history recovery heals silently")
    n = 5
    pids = [ProcessId(i) for i in range(n)]
    cluster = SimCluster(
        UrcgcConfig(n=n),
        workload=FixedBudgetWorkload(pids, total=40),
        faults=omission(pids, 25, rng=random.Random(3)),
        max_rounds=400,
        seed=3,
    )
    cluster.run_until_quiescent(drain_subruns=3)
    stats = cluster.network.stats
    report = cluster.delay_report()
    print(f"packets dropped by omission: {stats.total().dropped}")
    print(f"recovery round-trips: {stats.kind('ctrl-recovery-rq').sent}")
    print(f"every message still reached everyone: "
          f"{report.incomplete_messages == 0} (D={report.mean_delay:.2f} rtd)")


def drill_server_crash() -> None:
    banner("2. server crash: detected after K silent subruns, removed")
    n = 5
    K = 2
    pids = [ProcessId(i) for i in range(n)]
    cluster = SimCluster(
        UrcgcConfig(n=n, K=K),
        workload=FixedBudgetWorkload(pids, total=30),
        faults=crashes({ProcessId(4): 2.0}),
        max_rounds=200,
    )
    cluster.run_until_quiescent(drain_subruns=4)
    removal = cluster.kernel.trace.last("cluster.quiescent")
    views = {tuple(cluster.members[p].view.alive_vector())
             for p in cluster.active_pids()}
    print(f"p4 crashed at t=2.0; group quiesced at t={cluster.quiescent_at}")
    print(f"survivor views agree: {len(views) == 1} -> {views.pop()}")
    print(f"processing never stopped: D={cluster.delay_report().mean_delay:.2f} rtd")
    del removal


def drill_coordinator_crashes() -> None:
    banner("3. three consecutive coordinator crashes: rotation absorbs them")
    n = 7
    cluster = SimCluster(
        UrcgcConfig(n=n, K=2, R=8),
        workload=FixedBudgetWorkload([ProcessId(i) for i in range(n)], total=35),
        faults=consecutive_coordinator_crashes(n, f=3, first_subrun=1),
        max_rounds=300,
    )
    cluster.run_until_quiescent(drain_subruns=6)
    print(f"coordinators of subruns 1..3 all crashed at their decision round")
    print(f"no election protocol ran; survivors: "
          f"{[int(p) for p in cluster.active_pids()]}")
    print(f"workload still completed by t={cluster.quiescent_at} rtd with "
          f"D={cluster.delay_report().mean_delay:.2f} rtd")
    print("\nprotocol timeline (note the decisionless subruns 1-3):")
    from repro.analysis.timeline import build_timeline

    for line in build_timeline(cluster.kernel.trace).render().splitlines()[:8]:
        print(f"  {line}")


def drill_orphan_discard() -> None:
    banner("4. unrecoverable message: orphan discard (atomicity's 'none')")
    n = 5
    schedule = CrashSchedule()
    schedule.crash(ProcessId(4), 3.2)
    faults = FaultPlan(crashes=schedule)

    def drop(packet, now):
        if packet.src != 4:
            return False
        if packet.kind == "data" and now < 1.0:
            return True  # p4's first edit reaches nobody
        return packet.kind == "ctrl-recovery-rsp"  # and can't be fetched

    faults.custom_send_filter = drop
    cluster = SimCluster(
        UrcgcConfig(n=n, K=2),
        workload=FixedBudgetWorkload([ProcessId(i) for i in range(n)], total=40),
        faults=faults,
        max_rounds=300,
        seed=4,
    )
    cluster.run_until_quiescent(drain_subruns=6)
    discarded = sorted(cluster.delivery_log.discarded)
    print(f"p4's first message was processed only by p4, which crashed")
    print(f"survivors destroyed the dependent tail: "
          f"{[str(m) for m in discarded]}")
    print(f"waiting lists empty everywhere: "
          f"{all(cluster.members[p].waiting_length == 0 for p in cluster.active_pids())}")


def main() -> None:
    drill_omission()
    drill_server_crash()
    drill_coordinator_crashes()
    drill_orphan_discard()
    print("\nall drills completed.")


if __name__ == "__main__":
    main()
