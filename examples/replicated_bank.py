#!/usr/bin/env python3
"""Total order on top of urcgc: a replicated bank account.

The paper's Section 2 divides reliable multicast into *totally
ordered* services (ABCAST-style, "applications operating on replicated
data objects") and *causally ordered* ones (urcgc).  Non-commutative
updates need the former: "+10% interest" and "+100 deposit" give
different balances in different orders.

Causal delivery alone lets two replicas apply *concurrent* updates in
different orders.  The :class:`~repro.core.total_order.TotalOrderView`
layer (the paper's sibling *urgc* service) derives one group-wide
order from urcgc's stability decisions, so every replica computes the
same balance — at the price of delivery lagging until stability.

Run:  python examples/replicated_bank.py
"""

from repro import SimCluster, UrcgcConfig
from repro.core.total_order import attach_total_order
from repro.types import ProcessId
from repro.workloads import ScriptedWorkload


class Account:
    """One replica of the account, applying updates as ordered."""

    def __init__(self) -> None:
        self.balance = 1000.0
        self.journal: list[str] = []

    def apply(self, message) -> None:
        op = message.payload.decode()
        if op.startswith("deposit "):
            amount = float(op.split()[1])
            self.balance += amount
        elif op.startswith("interest "):
            rate = float(op.split()[1])
            self.balance *= 1 + rate
        self.journal.append(f"{op:15s} -> balance {self.balance:,.2f}")


def main() -> None:
    n = 4
    # Two *concurrent* non-commutative updates from different branches:
    # p0 credits interest while p1 deposits, in the same round.
    schedule = {
        0: [
            (ProcessId(0), b"interest 0.10"),
            (ProcessId(1), b"deposit 100"),
        ],
        2: [(ProcessId(2), b"deposit 50")],
    }
    cluster = SimCluster(
        UrcgcConfig(n=n),
        workload=ScriptedWorkload(schedule),
        max_rounds=60,
    )
    accounts = [Account() for _ in range(n)]
    views = attach_total_order(
        cluster, handlers=[account.apply for account in accounts]
    )
    cluster.run_until_quiescent(drain_subruns=3)

    print("every replica applied the SAME totally ordered journal:\n")
    for line in accounts[0].journal:
        print(f"  {line}")
    balances = {round(account.balance, 2) for account in accounts}
    orders = {tuple(m.mid for m in view.ordered) for view in views}
    print(f"\nreplica balances agree: {len(balances) == 1} "
          f"-> {balances.pop():,.2f}")
    print(f"identical total order at all {n} replicas: {len(orders) == 1}")
    print(f"desynchronized replicas: "
          f"{sum(1 for v in views if v.desynchronized)}")

    # Contrast: the raw causal streams may interleave the concurrent
    # updates differently per replica (both interleavings are causal).
    causal_orders = {
        tuple(m.mid for m in cluster.services[i].delivered) for i in range(n)
    }
    print(f"distinct *causal* delivery orders observed: {len(causal_orders)} "
          f"(causality allows several; total order collapses them to one)")


if __name__ == "__main__":
    main()
