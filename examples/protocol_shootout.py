#!/usr/bin/env python3
"""Protocol shootout: urcgc vs CBCAST under identical conditions.

Reruns the paper's Section 6 argument as one script: both protocols get
the same group, workload, seeds, and fault plan; the tables show where
each wins.

* reliable   — CBCAST's piggybacked stability is cheaper (Table 1);
* crash      — CBCAST blocks the application during its flush, urcgc
               never does (Figure 5's point);
* omission   — CBCAST assumes a reliable transport and silently loses
               messages on a lossy subnet; urcgc's history recovery
               delivers everything (the Section 3 contrast).

Run:  python examples/protocol_shootout.py
"""

from repro.harness.compare import compare_protocols


def main() -> None:
    for scenario in ("reliable", "crash", "omission-1/50"):
        report = compare_protocols(scenario=scenario, n=8, total_messages=64)
        print(report.render())
        print()

    print("reading guide:")
    print("  blocked rounds  — rounds the application could not send")
    print("                    (urcgc agrees on membership while processing)")
    print("  lost            — offered messages that never reached every")
    print("                    surviving member (urcgc: always 0)")
    print("  ctrl bytes      — urcgc pays a steady 2(n-1) msgs/subrun;")
    print("                    CBCAST is cheap until failures hit")


if __name__ == "__main__":
    main()
