#!/usr/bin/env python3
"""Replicated whiteboard surviving a crash and message loss.

Cooperative-work scenario from the paper's introduction: every
participant holds a replica of a shared whiteboard and multicasts its
edits with urcgc.  Causal delivery keeps each participant's edit
stream consistent everywhere; the embedded fault handling keeps the
group going when one replica crashes mid-session and the network drops
packets — *without suspending the whiteboard* (the paper's headline
advantage over CBCAST's blocking flush).

Run:  python examples/replicated_whiteboard.py
"""

import random

from repro import SimCluster, UrcgcConfig
from repro.core.message import UserMessage
from repro.types import ProcessId
from repro.workloads import ScriptedWorkload, general_omission


def edit(shape: str, x: int, y: int) -> bytes:
    return f"draw {shape} at ({x},{y})".encode()


class Whiteboard:
    """One replica: applies edits in the order urcgc delivers them."""

    def __init__(self) -> None:
        self.shapes: list[str] = []

    def apply(self, message: UserMessage) -> None:
        self.shapes.append(message.payload.decode())


def main() -> None:
    n = 4
    pids = [ProcessId(i) for i in range(n)]
    rng = random.Random(42)

    # Each participant draws a few shapes over the first rounds.
    schedule: dict[int, list[tuple[ProcessId, bytes]]] = {}
    shapes = ["circle", "square", "arrow", "star", "line"]
    for round_no in range(6):
        schedule[round_no] = [
            (pid, edit(shapes[(round_no + pid) % len(shapes)],
                       rng.randint(0, 100), rng.randint(0, 100)))
            for pid in pids
        ]

    # p3's workstation dies at t=2 rtd; the network also drops ~1/50
    # packets (general omission).
    faults = general_omission(
        pids,
        crash_schedule={ProcessId(3): 2.0},
        one_in=50,
        rng=random.Random(7),
    )

    cluster = SimCluster(
        UrcgcConfig(n=n, K=2),
        workload=ScriptedWorkload(schedule),
        faults=faults,
        max_rounds=200,
        seed=42,
    )

    boards = [Whiteboard() for _ in range(n)]
    for pid in pids:
        cluster.services[pid].set_indication_handler(boards[pid].apply)

    done = cluster.run_until_quiescent(drain_subruns=4)
    report = cluster.delay_report()

    print(f"session finished at t={done} rtd")
    print(f"mean edit propagation delay: {report.mean_delay:.3f} rtd "
          f"(reliable floor is 0.5)")
    survivors = cluster.active_pids()
    print(f"survivors after p3's crash: {[int(p) for p in survivors]}")

    reference = boards[survivors[0]].shapes
    for pid in survivors:
        replica = boards[pid].shapes
        assert len(replica) == len(reference)
        # Per-author subsequences are identical at every replica.
        print(f"replica p{pid}: {len(replica)} edits applied")
    agreement = {
        tuple(cluster.members[p].last_processed_vector()) for p in survivors
    }
    print(f"replicas agree on the applied edit set: {len(agreement) == 1}")
    print("\nfirst edits on p0's board:")
    for line in boards[0].shapes[:6]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
