#!/usr/bin/env python3
"""A urcgc group across real OS processes over UDP.

The paper's closing promise — "a group of processes being run on a set
of Unix workstations" — as close as one machine allows: the parent
spawns one OS process per group member; each member binds its own UDP
socket on the loopback and runs the full protocol against its peers at
the agreed ports.  At the end each member prints the vector of
messages it processed; the parent checks all members agreed.

Run:  python examples/multiprocess_udp.py
"""

import argparse
import asyncio
import random
import subprocess
import sys

N = 4
MESSAGES_PER_NODE = 3
#: Generous pauses: interpreter start-up of the sibling processes can
#: be slow on a loaded machine, and recovery needs live peers.
SETTLE_SECONDS = 1.2
RUN_SECONDS = 4.0


async def run_member(pid: int, n: int, base_port: int) -> None:
    from repro.core.config import UrcgcConfig
    from repro.runtime.node import AsyncNode
    from repro.runtime.udp import UdpFabric
    from repro.types import ProcessId

    fabric = await UdpFabric.create_node(
        ProcessId(pid), n, base_port=base_port
    )
    from repro.net.addressing import BROADCAST_GROUP

    for i in range(n):
        fabric.join(BROADCAST_GROUP, ProcessId(i))
    node = AsyncNode(ProcessId(pid), UrcgcConfig(n=n), fabric, round_interval=0.05)
    node.start()
    try:
        await asyncio.sleep(SETTLE_SECONDS)  # let every process come up
        for i in range(MESSAGES_PER_NODE):
            node.submit(f"from-p{pid}-msg{i}".encode())
        # Wait until this member saw everything (or the window closes).
        deadline = asyncio.get_running_loop().time() + RUN_SECONDS
        expected = tuple([MESSAGES_PER_NODE] * n)
        while asyncio.get_running_loop().time() < deadline:
            if node.member.last_processed_vector() == expected:
                break
            await asyncio.sleep(0.05)
        # Linger so slower peers can still recover from our history.
        await asyncio.sleep(1.0)
    finally:
        await node.stop()
        fabric.close()
    vector = node.member.last_processed_vector()
    print(f"member {pid}: processed vector {tuple(int(v) for v in vector)}")


def run_parent() -> int:
    base_port = random.Random().randint(20000, 55000)
    children = [
        subprocess.Popen(
            [
                sys.executable,
                __file__,
                "--member",
                str(pid),
                "--base-port",
                str(base_port),
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        for pid in range(N)
    ]
    vectors = set()
    for child in children:
        out, _ = child.communicate(timeout=60)
        print(out.strip())
        if child.returncode != 0:
            print(f"child exited with {child.returncode}", file=sys.stderr)
            return 1
        vectors.add(out.strip().split("vector ")[-1])
    expected = MESSAGES_PER_NODE
    print(
        f"\n{N} OS processes agreed on one processed vector: "
        f"{len(vectors) == 1} ({vectors.pop()}; "
        f"{expected} messages per member offered)"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--member", type=int, default=None)
    parser.add_argument("--base-port", type=int, default=0)
    args = parser.parse_args()
    if args.member is None:
        return run_parent()
    asyncio.run(run_member(args.member, N, args.base_port))
    return 0


if __name__ == "__main__":
    sys.exit(main())
