#!/usr/bin/env python3
"""Conferencing: application-declared causality in a multimedia space.

The paper motivates urcgc with "multimedia spaces for collaborative
work and conferencing": participants speak in threads, and only a
*reply* is causally bound to what it answers — two independent
discussion threads must not serialize each other.

This example drives the engines directly (no workload generator) so it
can use the explicit significance API: each speaker marks only the
messages it actually replies to (``auto_significant=False``).  It then
shows that every participant sees each *thread* in order, while the
threads themselves interleave freely — the concurrency Definition 3.1
permits and vector-clock causality (CBCAST) would forbid.

Run:  python examples/conferencing.py
"""

from repro import UrcgcConfig
from repro.core.effects import Deliver, Send
from repro.core.member import Member
from repro.core.message import UserMessage
from repro.types import ProcessId

ALICE, BOB, CAROL, DAVE = (ProcessId(i) for i in range(4))
NAMES = {ALICE: "alice", BOB: "bob", CAROL: "carol", DAVE: "dave"}


class Room:
    """A tiny lossless driver wiring four Member engines together."""

    def __init__(self) -> None:
        config = UrcgcConfig(n=4, auto_significant=False)
        self.members = {pid: Member(pid, config) for pid in NAMES}
        self.transcripts: dict[ProcessId, list[str]] = {pid: [] for pid in NAMES}
        self.payloads: dict = {}
        self._round = 0

    def say(self, speaker: ProcessId, text: str, reply_to: ProcessId | None = None):
        member = self.members[speaker]
        if reply_to is not None:
            member.mark_significant(reply_to)
        member.submit(text.encode())
        self._run_round()

    def _run_round(self) -> None:
        # First round of a subrun: generation + requests; second:
        # decision.  Effects are delivered instantly (lossless demo).
        for _ in range(2):
            pending = []
            for pid, member in self.members.items():
                pending.append((pid, member.on_round(self._round)))
            for pid, effects in pending:
                self._execute(pid, effects)
            self._round += 1

    def _execute(self, pid: ProcessId, effects) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                message = effect.message
                if isinstance(message, UserMessage):
                    self.payloads[message.mid] = message.payload.decode()
                targets = (
                    [p for p in self.members if p != pid]
                    if effect.dst.is_multicast()
                    else [effect.dst.pid]
                )
                for target in targets:
                    self._execute(target, self.members[target].on_message(message))
            elif isinstance(effect, Deliver):
                text = effect.message.payload.decode()
                self.transcripts[pid].append(f"{NAMES[effect.message.mid.origin]}: {text}")


def main() -> None:
    room = Room()

    # Thread 1: alice asks, bob answers, alice follows up.
    room.say(ALICE, "Does anyone have the Q3 numbers?")
    room.say(BOB, "Yes - revenue is up 12%.", reply_to=ALICE)
    room.say(ALICE, "Great, send the sheet please.", reply_to=BOB)

    # Thread 2 (independent): carol and dave plan lunch concurrently.
    room.say(CAROL, "Lunch at noon?")
    room.say(DAVE, "Make it 12:30.", reply_to=CAROL)

    print("transcripts (identical causal constraints, free interleaving):\n")
    for pid, lines in room.transcripts.items():
        print(f"--- as seen by {NAMES[pid]} ---")
        for line in lines:
            print(f"  {line}")
        print()

    # The reply chains are ordered at every participant.
    for pid, lines in room.transcripts.items():
        q3 = [l for l in lines if "Q3" in l or "12%" in l or "sheet" in l]
        assert q3 == [
            "alice: Does anyone have the Q3 numbers?",
            "bob: Yes - revenue is up 12%.",
            "alice: Great, send the sheet please.",
        ], f"thread 1 broken at {NAMES[pid]}"
        lunch = [l for l in lines if "unch" in l or "12:30" in l]
        assert lunch == ["carol: Lunch at noon?", "dave: Make it 12:30."]
    print("every participant saw both threads in causal order ✓")

    # And the dependency lists prove the threads are unrelated: dave's
    # reply depends on carol's message, never on the Q3 thread.
    dave_member = room.members[DAVE]
    dave_msg = next(iter(dave_member.history.fetch_range(DAVE, 1, 1)))
    assert all(dep.origin == CAROL for dep in dave_msg.deps)
    print(f"dave's reply {dave_msg.mid} depends only on carol's thread: "
          f"{[str(d) for d in dave_msg.deps]} ✓")


if __name__ == "__main__":
    main()
