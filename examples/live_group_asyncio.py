#!/usr/bin/env python3
"""Live asyncio group: the same engines outside the simulator.

Runs a four-node urcgc group on real asyncio tasks over an in-memory
lossy datagram fabric — the stand-in for the paper's "prototype over
an Ethernet LAN".  Each node ticks protocol rounds on the wall clock;
5% of datagram copies are dropped and healed by history recovery.

Run:  python examples/live_group_asyncio.py
"""

import asyncio
import time

from repro import UrcgcConfig
from repro.runtime import AsyncGroup, AsyncLan
from repro.types import ProcessId


async def main() -> None:
    n = 4
    lan = AsyncLan(loss=0.05, seed=11)
    indications: list[tuple[int, str]] = []
    group = AsyncGroup(
        UrcgcConfig(n=n),
        lan=lan,
        round_interval=0.01,  # 10 ms per round -> 20 ms per subrun
        on_indication=lambda pid, m: indications.append(
            (int(pid), m.payload.decode())
        ),
    )
    group.start()
    started = time.perf_counter()
    try:
        submissions = [
            (ProcessId(i % n), f"event-{i:02d} from p{i % n}".encode())
            for i in range(24)
        ]
        await group.run_workload(submissions, timeout=30)
    finally:
        elapsed = time.perf_counter() - started
        await group.stop()

    print(f"24 messages agreed across {n} live nodes in {elapsed:.2f}s "
          f"(rounds ticked: {[node.current_round for node in group.nodes]})")
    print(f"datagram copies dropped by the lossy fabric: {lan.dropped_count}")
    per_node = {pid: 0 for pid in range(n)}
    for pid, _ in indications:
        per_node[pid] += 1
    print(f"indications per node: {per_node}")
    vectors = {node.member.last_processed_vector() for node in group.nodes}
    print(f"all nodes converged on the same processed set: {len(vectors) == 1}")


if __name__ == "__main__":
    asyncio.run(main())
