#!/usr/bin/env python3
"""Client-server group: a replicated key-value store with voting.

Section 3 of the paper: "the algorithm we present may apply to client
server groups, through a proper management of the reply messages".
Here two server processes replicate a key-value store; two client
processes issue writes and quorum reads.  Because every request is a
urcgc message, both replicas apply every write in the same causal
order — so a read quorum always returns a single, consistent value,
which the (h, v) reply machinery of Section 5 (h replies folded by a
voting function) verifies at the client.

Run:  python examples/replicated_kv_store.py
"""

from repro import SimCluster, UrcgcConfig
from repro.svc import ClientServerGroup, Role, majority_vote
from repro.types import ProcessId


class KvServer:
    """One replica: applies writes, answers reads."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.data: dict[str, str] = {}
        self.log: list[str] = []

    def handle(self, client: ProcessId, body: bytes) -> bytes:
        op, _, rest = body.decode().partition(" ")
        if op == "put":
            key, _, value = rest.partition("=")
            self.data[key] = value
            self.log.append(f"put {key}={value} (from p{client})")
            return f"ok {key}".encode()
        if op == "get":
            self.log.append(f"get {rest} (from p{client})")
            return self.data.get(rest, "<missing>").encode()
        return b"error: unknown op"


def main() -> None:
    n = 4
    servers = {ProcessId(0), ProcessId(1)}
    cluster = SimCluster(UrcgcConfig(n=n), max_rounds=200)

    replicas = {pid: KvServer(f"replica-{pid}") for pid in servers}
    adapters = []
    for i in range(n):
        pid = ProcessId(i)
        if pid in servers:
            adapters.append(
                ClientServerGroup(
                    cluster.services[i], Role.SERVER, servers,
                    handler=replicas[pid].handle,
                )
            )
        else:
            adapters.append(
                ClientServerGroup(cluster.services[i], Role.CLIENT, servers)
            )

    alice, bob = adapters[2], adapters[3]

    # Two clients race writes to the same key, then quorum-read it.
    w1 = alice.call(b"put color=red")
    w2 = bob.call(b"put color=blue")
    read = alice.call(b"get color", h=2, v=majority_vote)
    cluster.run_until_quiescent(drain_subruns=2)

    print("write acks:", w1.result, "/", w2.result)
    print(f"quorum read resolved={read.resolved} with {len(read.replies)} replies")
    print(f"read result: color = {read.result.decode()!r}")
    # Both replicas answered the read with the SAME value: causal
    # (here: identical) write ordering at every replica.
    assert len(set(read.replies)) == 1

    print("\nreplica logs (identical apply order):")
    for pid in sorted(servers):
        print(f"--- {replicas[pid].name} ---")
        for line in replicas[pid].log:
            print(f"  {line}")
    states = {tuple(sorted(replicas[pid].data.items())) for pid in servers}
    print(f"\nreplica states agree: {len(states) == 1} -> {states.pop()}")


if __name__ == "__main__":
    main()
