#!/usr/bin/env python3
"""Quickstart: a five-process urcgc group on the simulator.

Builds a group, pushes a small workload through it, and prints what
the paper's evaluation measures: the mean end-to-end delay D (in rtd
units — ½ rtd is the reliable-case floor), the per-kind network
traffic, and proof that every process delivered the same causally
ordered stream.

Run:  python examples/quickstart.py
"""

from repro import SimCluster, UrcgcConfig
from repro.types import ProcessId
from repro.workloads import FixedBudgetWorkload


def main() -> None:
    n = 5
    config = UrcgcConfig(n=n, K=3)
    pids = [ProcessId(i) for i in range(n)]

    # Every process submits one message per round until 20 are offered.
    cluster = SimCluster(
        config,
        workload=FixedBudgetWorkload(pids, total=20),
        max_rounds=100,
    )
    quiesced_at = cluster.run_until_quiescent(drain_subruns=2)

    report = cluster.delay_report()
    print(f"group of {n}, K={config.K}, resilience t={config.t}")
    print(f"quiescent at t={quiesced_at} rtd")
    print(
        f"mean end-to-end delay D = {report.mean_delay:.3f} rtd "
        f"({report.complete_messages} messages, "
        f"{report.incomplete_messages} incomplete)"
    )

    print("\nnetwork traffic by kind (sent / delivered / mean bytes):")
    for kind, sent, delivered, dropped, mean_size, _ in cluster.network.stats.as_rows():
        print(f"  {kind:18s} {sent:4d} / {delivered:4d} / {mean_size:7.1f}B")

    # Every member processed the same messages, in an order that
    # respects every declared causal dependency.
    streams = {
        tuple(m.mid for m in service.delivered) for service in cluster.services
    }
    vectors = {m.last_processed_vector() for m in cluster.members}
    print(f"\nall {n} members agree on the processed set: {len(vectors) == 1}")
    print(f"delivery streams observed: {len(streams)} (causal order allows >1)")
    first = cluster.services[0].delivered
    print("p0's causally ordered stream:")
    for message in first[:8]:
        deps = ", ".join(str(d) for d in message.deps) or "-"
        print(f"  {message.mid}  deps: {deps}")
    if len(first) > 8:
        print(f"  ... {len(first) - 8} more")


if __name__ == "__main__":
    main()
