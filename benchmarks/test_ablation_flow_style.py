"""Ablation — buffer-bounding styles: urcgc throttling vs Psync drops.

Section 6's closing comparison: urcgc's distributed flow control
pauses *generation* when histories grow (no message is ever lost),
while "Psync also uses some flow control ... It consists in the
deletion of the messages exceeding a given upper bound, thus
increasing the rate of omission failures".
"""

from conftest import run_once

from repro.harness.ablations import ablate_flow_control_style


def test_ablation_flow_control_style(benchmark):
    result = run_once(benchmark, ablate_flow_control_style)
    print()
    print(result.render(title="Ablation: flow-control style (bounded buffers)"))

    rows = {row[0]: row for row in result.rows}
    columns = ["style", *result.metrics]
    lost = columns.index("lost deliveries")
    peak = columns.index("peak buffer")

    # urcgc never loses a delivery; Psync's drops become omissions.
    assert rows["urcgc-throttle"][lost] == 0
    assert rows["psync-drop"][lost] > 0
    # Both styles do bound their buffers.
    assert rows["urcgc-throttle"][peak] <= 2 * 6 + 2 * 6  # threshold + slack
    assert rows["psync-drop"][peak] <= 2 * 6
