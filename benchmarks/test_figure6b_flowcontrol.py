"""Figure 6b — the distributed flow control bounds the history.

Paper's claim: when the local history reaches a threshold, a process
"refrains from generating new messages until the history length
decreases"; this bounds the history (and waiting list) at the cost of
"a longer time to terminate the processing of the supplied messages".

The paper ran threshold = 8n; our history cleaning is tighter than the
authors' (reliable peak is exactly 2n), so the benchmark uses a
threshold that actually binds under the faulty run (1.5n) and checks
the same qualitative trade-off.  See EXPERIMENTS.md.
"""

from conftest import run_once

from repro.harness.experiments import figure6_history


def _run(threshold: int):
    return figure6_history(
        n=40, total_messages=480, K_values=(3,), flow_threshold=threshold
    )


def test_figure6b_flowcontrol(benchmark):
    def both():
        return _run(0), _run(60)

    unbounded, bounded = run_once(benchmark, both)
    print()
    print(unbounded.render())
    print(bounded.render())

    label = "K=3, general-omission"
    peak_off = unbounded.runs[label][2]
    done_off = unbounded.runs[label][1]
    peak_on = bounded.runs[label][2]
    done_on = bounded.runs[label][1]

    # Flow control lowers the faulty-run history peak...
    assert peak_on < peak_off
    # ...bounded by threshold + in-flight slack (one round of arrivals
    # plus the cleaning lag), the paper's "sufficient to bound the
    # local history spaces".
    assert peak_on <= 60 + 2 * 40
    # ...at the price of a longer completion time.
    assert done_on is not None and done_off is not None
    assert done_on > done_off

    # The reliable run is untouched (threshold never reached at
    # generation time).
    label_rel = "K=3, reliable"
    assert bounded.runs[label_rel][1] == unbounded.runs[label_rel][1]
