"""Head-to-head benchmark: urcgc vs CBCAST on identical scenarios.

Condenses the cross-protocol claims of Section 6 into one table per
scenario and asserts the qualitative winners.
"""

from conftest import run_once

from repro.harness.compare import compare_protocols


def test_compare_protocols(benchmark):
    def run_all():
        return {
            scenario: compare_protocols(scenario=scenario, n=8, total_messages=64)
            for scenario in ("reliable", "crash", "omission-1/50")
        }

    reports = run_once(benchmark, run_all)
    print()
    for report in reports.values():
        print(report.render())
        print()

    reliable = reports["reliable"]
    crash = reports["crash"]
    lossy = reports["omission-1/50"]

    # Reliable: both deliver everything at the floor delay; CBCAST's
    # control traffic is lighter (Table 1).
    assert reliable.urcgc.mean_delay == reliable.cbcast.mean_delay == 0.5
    assert reliable.urcgc.incomplete == reliable.cbcast.incomplete == 0
    assert reliable.cbcast.control_bytes < reliable.urcgc.control_bytes

    # Crash: urcgc never blocks; CBCAST's flush does (Figure 5).
    assert crash.urcgc.blocked_rounds == 0
    assert crash.cbcast.blocked_rounds > 0
    assert crash.urcgc.mean_delay == 0.5  # recovery concurrent with service
    assert crash.urcgc.incomplete == 0

    # Lossy subnet: urcgc heals everything from history; CBCAST (which
    # the paper says "needs an underlying reliable transport") loses.
    assert lossy.urcgc.incomplete == 0
    assert lossy.cbcast.incomplete > 0
