"""Figure 6a — history length over time, no flow control.

Paper's setup: n=40, 480 messages, K in {2,3,4}, failures (1 crash +
1/500 omissions) during the first 5 rtd; reliable runs terminate in
~15 rtd and keep at most 2n messages in the history; faulty history
growth depends on K and stays under the ``2(2K+f)n`` bound.
"""

from conftest import run_once

from repro.analysis.cost_models import urcgc_history_bound
from repro.analysis.report import render_series
from repro.harness.experiments import figure6_history


def test_figure6a_history(benchmark):
    result = run_once(
        benchmark,
        lambda: figure6_history(
            n=40, total_messages=480, K_values=(2, 3, 4), flow_threshold=0
        ),
    )
    print()
    print(result.render())
    for label, (series, _, _) in result.runs.items():
        print(render_series(label, series, max_points=20))

    n = result.n
    peaks = {label: peak for label, (_, _, peak) in result.runs.items()}
    done = {label: t for label, (_, t, _) in result.runs.items()}

    for K in (2, 3, 4):
        reliable = f"K={K}, reliable"
        faulty = f"K={K}, general-omission"
        # "Without failures, no more than 2n messages are stored."
        assert peaks[reliable] <= 2 * n
        # Failures grow the history beyond the reliable plateau but
        # within the paper's bound (f <= 1 in this scenario).
        assert peaks[faulty] > peaks[reliable]
        assert peaks[faulty] <= urcgc_history_bound(n, K=K, f=1)
        # Everything terminates (the paper's ~15 rtd ballpark).
        assert done[reliable] is not None and done[reliable] <= 20
        assert done[faulty] is not None

    # "Under general omission failure conditions the history length
    # depends on K": larger K, larger faulty peak.
    assert peaks["K=4, general-omission"] >= peaks["K=2, general-omission"]
