"""Figure 4 — mean end-to-end delay D vs offered load.

Paper's claims checked here:

* ``D >= 1/2 rtd`` always; exactly ½ rtd under reliable conditions.
* The reliable and crash curves coincide ("the observed values of D
  are the same under both reliable and crash conditions") — urcgc does
  not suspend processing while handling crashes.
* Omission failures raise D (waiting for history recovery), and the
  1/100 curve dominates the 1/500 curve on average.
"""

from conftest import run_once

from repro.harness.experiments import figure4_delay


def test_figure4_delay(benchmark):
    result = run_once(
        benchmark,
        lambda: figure4_delay(
            n=10,
            K=3,
            send_probabilities=(0.05, 0.1, 0.2, 0.4, 0.7, 1.0),
            duration_rounds=60,
        ),
    )
    print()
    print(result.render())

    reliable = [d for _, d in result.curves["reliable"]]
    crash = [d for _, d in result.curves["crash"]]
    om500 = [d for _, d in result.curves["omission-1/500"]]
    om100 = [d for _, d in result.curves["omission-1/100"]]

    # D >= 1/2 rtd everywhere; the reliable floor is exactly 1/2.
    for curve in (reliable, crash, om500, om100):
        assert all(d >= 0.5 for d in curve)
    assert all(d == 0.5 for d in reliable)

    # Crashes do not move the delay curve.
    assert crash == reliable

    # Omissions raise the mean delay; the heavier rate hurts more.
    assert sum(om500) / len(om500) >= 0.5
    assert sum(om100) / len(om100) > sum(om500) / len(om500)
