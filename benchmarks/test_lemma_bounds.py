"""Empirical check of the paper's Lemma 4.1 / 4.2 bounds.

Lemma 4.1: if some process holds messages of p_k that p_j misses, then
within ``2K + f`` subruns p_j learns the omission (or a crash, or
leaves).  Lemma 4.2: within ``2K + f + R`` subruns p_j additionally
*recovers* the messages.

The benchmark constructs the adversarial situation from the proofs:
p_k's broadcast reaches only one holder, and that holder then fails to
reach the coordinators for ``K - 1`` consecutive subruns before its
knowledge finally lands.  Measured learning/recovery latencies must
respect the bounds (for ``f = 0``).
"""

from conftest import run_once

from repro.core.config import UrcgcConfig
from repro.harness.cluster import SimCluster
from repro.net.faults import FaultPlan
from repro.types import ProcessId
from repro.workloads.generators import ScriptedWorkload


def lemma_scenario(K: int):
    """Returns (learning latency, recovery latency) in subruns for the
    adversarial single-holder scenario."""
    n = 5
    # The holder is p3 so it does not take the coordinator role during
    # the blocking window (a coordinator's own state needs no request).
    holder, source, victim = ProcessId(3), ProcessId(4), ProcessId(0)
    faults = FaultPlan()

    # The source's broadcast at round 0 reaches only the holder, and
    # the source itself crashes right after (so only the holder can
    # ever serve it).
    def receive_filter(packet, dst, now):
        if packet.src == source and packet.kind == "data" and dst != holder:
            return True
        return False

    # The source's request never leaves (its knowledge dies with it),
    # and the holder cannot reach the coordinators for exactly K-1
    # subruns (one more and it would be declared crashed) — so the
    # holder's report is the group's only path to the message.
    def send_filter(packet, now):
        if packet.src == source and packet.kind == "ctrl-request":
            return True
        if packet.src != holder:
            return False
        if packet.kind == "ctrl-request" and now < (K - 1) - 0.1:
            return True
        return False

    faults.custom_receive_filter = receive_filter
    faults.custom_send_filter = send_filter
    faults.crashes.crash(source, 0.6)

    cluster = SimCluster(
        UrcgcConfig(n=n, K=K, R=2 * K + 2),
        workload=ScriptedWorkload({0: [(source, b"orphan-candidate")]}),
        faults=faults,
        max_rounds=200,
    )

    learned_at = [None]
    recovered_at = [None]

    def probe(round_no):
        member = cluster.members[victim]
        if (
            learned_at[0] is None
            and member.latest_decision.max_processed[source] >= 1
        ):
            learned_at[0] = cluster.kernel.now
        if recovered_at[0] is None and member.tracker.last_processed(source) >= 1:
            recovered_at[0] = cluster.kernel.now

    cluster.scheduler.subscribe(probe)
    cluster.kernel.run(stop_when=lambda: recovered_at[0] is not None)
    return learned_at[0], recovered_at[0]


def test_lemma_41_and_42_bounds(benchmark):
    def run_all():
        return {K: lemma_scenario(K) for K in (1, 2, 3)}

    results = run_once(benchmark, run_all)
    print()
    print("Lemma bounds (f=0): learning <= 2K, recovery <= 2K + R")
    for K, (learned, recovered) in sorted(results.items()):
        bound_learn = 2 * K
        bound_recover = 2 * K + (2 * K + 2)
        print(
            f"  K={K}: learned at {learned} rtd (bound {bound_learn}), "
            f"recovered at {recovered} rtd (bound {bound_recover})"
        )
        assert learned is not None, f"K={K}: victim never learned"
        assert recovered is not None, f"K={K}: victim never recovered"
        # +1 subrun of slack: the bounds count from the subrun of the
        # send; our clock counts from t=0.
        assert learned <= bound_learn + 1
        assert recovered <= bound_recover + 1
        assert recovered >= learned
