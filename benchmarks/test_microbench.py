"""Micro-benchmarks of the hot paths.

Not figures from the paper — these guard the implementation's own
performance: wire codec throughput, causal-delivery processing rate,
decision computation, and end-to-end simulated rounds per second.
"""

import random

from repro.core.config import UrcgcConfig
from repro.core.decision import RequestInfo, compute_decision, initial_decision
from repro.core.member import Member
from repro.core.message import DecisionMessage, UserMessage
from repro.core.mid import Mid
from repro.harness.cluster import SimCluster
from repro.net.wire import decode_message, encode_message
from repro.types import ProcessId, SeqNo, SubrunNo
from repro.workloads.generators import BernoulliWorkload


def test_bench_wire_roundtrip(benchmark):
    message = DecisionMessage(initial_decision(40))

    def roundtrip():
        return decode_message(encode_message(message))

    result = benchmark(roundtrip)
    assert result == message


def test_bench_member_processing_rate(benchmark):
    """Messages processed per engine invocation, in-order stream."""
    n = 8

    def process_stream():
        member = Member(ProcessId(0), UrcgcConfig(n=n, flow_threshold=0))
        for seq in range(1, 201):
            for origin in range(1, 4):
                deps = (
                    (Mid(ProcessId(origin), SeqNo(seq - 1)),) if seq > 1 else ()
                )
                member.on_message(
                    UserMessage(Mid(ProcessId(origin), SeqNo(seq)), deps)
                )
        return member.processed_count

    assert benchmark(process_stream) == 600


def test_bench_decision_computation(benchmark):
    n = 40
    prev = initial_decision(n)
    rng = random.Random(0)
    requests = {
        ProcessId(i): RequestInfo(
            tuple(SeqNo(rng.randint(0, 100)) for _ in range(n)),
            tuple(SeqNo(0) for _ in range(n)),
        )
        for i in range(n)
    }

    def compute():
        return compute_decision(SubrunNo(1), ProcessId(0), prev, requests, K=3)

    decision = benchmark(compute)
    assert decision.full_group


def test_bench_simulated_rounds_per_second(benchmark):
    """Full-stack simulation throughput: n=10 group, live workload."""

    def simulate():
        pids = [ProcessId(i) for i in range(10)]
        cluster = SimCluster(
            UrcgcConfig(n=10),
            workload=BernoulliWorkload(pids, 0.5, rng=random.Random(1)),
            max_rounds=100,
            trace=False,
        )
        cluster.run()
        return cluster.scheduler.current_round

    assert benchmark(simulate) == 100
