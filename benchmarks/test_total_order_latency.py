"""The price of total order: release latency vs causal delivery.

The paper's Section 2 contrast between the causal service (urcgc) and
its totally ordered sibling (urgc/ABCAST-style), measured: the total
order derived from stability decisions releases messages about one
agreement behind causal processing.
"""

from conftest import run_once

from repro.analysis.report import render_table
from repro.core.config import UrcgcConfig
from repro.core.total_order import attach_total_order
from repro.harness.cluster import SimCluster
from repro.types import ProcessId
from repro.workloads.generators import FixedBudgetWorkload


def measure(n: int, total: int):
    pids = [ProcessId(i) for i in range(n)]
    cluster = SimCluster(
        UrcgcConfig(n=n),
        workload=FixedBudgetWorkload(pids, total=total),
        max_rounds=200,
    )
    release_times: dict = {}

    views = attach_total_order(cluster)
    # Record release instants by sampling after each round.
    released_counts = [0] * n

    def probe(round_no):
        now = cluster.kernel.now
        for i, view in enumerate(views):
            while released_counts[i] < len(view.ordered):
                message = view.ordered[released_counts[i]]
                release_times.setdefault(message.mid, {})[i] = now
                released_counts[i] += 1

    cluster.scheduler.subscribe(probe)
    cluster.run_until_quiescent(drain_subruns=4)

    causal = cluster.delay_report().mean_delay
    log = cluster.delivery_log
    total_delays = []
    for mid, start in log.generated_at.items():
        per_member = release_times.get(mid, {})
        if len(per_member) == n:
            total_delays.append(max(per_member.values()) - start)
    ordered_delay = sum(total_delays) / len(total_delays)
    return causal, ordered_delay, len(total_delays)


def test_total_order_latency(benchmark):
    def run_all():
        return {n: measure(n, total=4 * n) for n in (4, 8, 16)}

    results = run_once(benchmark, run_all)
    rows = []
    for n, (causal, ordered, count) in sorted(results.items()):
        rows.append([n, causal, ordered, ordered - causal, count])
    print()
    print(
        render_table(
            ["n", "causal D (rtd)", "total-order D (rtd)", "lag (rtd)", "msgs"],
            rows,
            title="Total order vs causal delivery latency (reliable)",
        )
    )

    for n, (causal, ordered, count) in results.items():
        assert count == 4 * n  # every message was released everywhere
        assert causal == 0.5
        # Release waits for the stabilizing full-group decision:
        # roughly one to two subruns behind causal processing.
        assert ordered > causal
        assert ordered <= causal + 3.0
