"""Ablation 3 — flow-control threshold sweep (DESIGN.md §5.3).

The paper fixes the threshold at 8n; sweeping it shows the trade-off:
a binding threshold caps the history peak but stretches the completion
time (blocked generation rounds).
"""

from conftest import run_once

from repro.harness.ablations import ablate_flow_threshold


def test_ablation_flow_threshold(benchmark):
    n = 20
    result = run_once(benchmark, lambda: ablate_flow_threshold(n=n, total=400))
    print()
    print(result.render(title=f"Ablation: flow-control threshold (n={n})"))

    columns = ["threshold", *result.metrics]
    peak = columns.index("peak history")
    done = columns.index("complete (rtd)")
    blocked = columns.index("blocked rounds")

    off = result.where(threshold=0)[0]
    tight = result.where(threshold=2 * n)[0]

    # A binding threshold lowers the peak and blocks generation...
    assert tight[peak] <= off[peak]
    assert tight[blocked] > 0
    assert off[blocked] == 0
    # ...and never loses messages: every run completes.
    for row in result.rows:
        assert row[done] == row[done]  # not NaN
