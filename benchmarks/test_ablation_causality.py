"""Ablation 4 — causality interpretation (DESIGN.md §5.4).

Application-declared dependencies (Definition 3.1, the urcgc way) vs
the conservative every-reception policy vs CBCAST's temporal (vector
clock) causality.  A lossy observer misses some of sender p1's
messages; sender p2's traffic is causally unrelated.  Temporal
causality makes p2's messages wait on p1's losses — and with CBCAST's
lack of history recovery the blocking is permanent.
"""

from conftest import run_once

from repro.harness.ablations import ablate_causality


def test_ablation_causality(benchmark):
    result = run_once(benchmark, lambda: ablate_causality(slow_sender_drop=0.3))
    print()
    print(result.render(title="Ablation: causality interpretation"))

    rows = {row[0]: row for row in result.rows}
    columns = ["flavour", *result.metrics]
    never = columns.index("never completed")
    waiting = columns.index("peak waiting")

    # urcgc (either dependency policy) completes every message thanks
    # to history recovery; CBCAST permanently blocks unrelated traffic.
    assert rows["urcgc-declared"][never] == 0
    assert rows["urcgc-conservative"][never] == 0
    assert rows["cbcast-temporal"][never] > 0

    # Temporal causality parks far more messages than declared deps.
    assert rows["cbcast-temporal"][waiting] > rows["urcgc-declared"][waiting]
