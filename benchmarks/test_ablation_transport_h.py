"""Ablation 5 — the transport h parameter (DESIGN.md §5.5).

The paper simulates h=1 (raw datagram: losses handled by urcgc's
history recovery).  With h = n-1 the transport itself acknowledges and
retransmits, which the paper predicts gives "a different location of
the retransmission function and ... a reduced use of the recovery from
history".
"""

from conftest import run_once

from repro.harness.ablations import ablate_transport_h


def test_ablation_transport_h(benchmark):
    n = 6
    result = run_once(benchmark, lambda: ablate_transport_h(n=n))
    print()
    print(result.render(title=f"Ablation: transport h (n={n}, omission 1/25)"))

    columns = ["h", *result.metrics]
    recoveries = columns.index("recovery rqs")
    acks = columns.index("transport acks")

    h1 = result.where(h=1)[0]
    full = result.where(h=n - 1)[0]

    # h=1: zero transport overhead, recovery does all repair.
    assert h1[acks] == 0
    assert h1[recoveries] > 0
    # h=n-1: the transport pays acks and shrinks history recoveries.
    assert full[acks] > 0
    assert full[recoveries] < h1[recoveries] * 1.5
