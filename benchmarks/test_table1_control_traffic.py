"""Table 1 — amount and size of control messages, urcgc vs CBCAST.

Paper's claims checked here:

* urcgc always pays ``2(n-1)`` control messages per subrun — the
  agreement runs even when nothing fails — while CBCAST's steady-state
  control traffic is smaller (piggyback + occasional stability gossip).
* urcgc's control-message *size* is O(n) and unchanged by crashes; a
  group of 15 fits a 576-byte IP datagram and a group of 40 fits an
  Ethernet frame.
* Under crashes the relation flips: urcgc keeps the same per-subrun
  cost, while CBCAST adds view-change/flush traffic.
"""

from conftest import run_once

from repro.core.decision import RequestInfo, initial_decision
from repro.core.message import RequestMessage
from repro.harness.experiments import table1_traffic
from repro.net.wire import encode_message
from repro.types import ProcessId, SeqNo, SubrunNo


def _request_size(n: int) -> int:
    info = RequestInfo(
        tuple(SeqNo(0) for _ in range(n)), tuple(SeqNo(0) for _ in range(n))
    )
    return len(
        encode_message(RequestMessage(ProcessId(0), SubrunNo(0), info, initial_decision(n)))
    )


def test_table1_control_traffic(benchmark):
    result = run_once(benchmark, lambda: table1_traffic(ns=(5, 10, 15, 40), K=3))
    print()
    print(result.render())

    by_key = {
        (n, condition, protocol): (msgs, paper_msgs, size, paper_size)
        for n, condition, protocol, msgs, paper_msgs, size, paper_size in result.rows
    }

    for n in (5, 10, 15, 40):
        urcgc_rel = by_key[(n, "reliable", "urcgc")]
        cbcast_rel = by_key[(n, "reliable", "cbcast")]
        # urcgc: exactly 2(n-1) control messages per subrun, reliable.
        assert urcgc_rel[0] == 2 * (n - 1)
        # Reliable CBCAST control traffic is lighter than urcgc's.
        assert cbcast_rel[0] < urcgc_rel[0]
        # CBCAST control messages are shorter (4-byte vector entries).
        assert cbcast_rel[2] < urcgc_rel[2]

        # Crash condition: urcgc message size unchanged; CBCAST now
        # pays more control messages than in its reliable steady state.
        urcgc_crash = by_key[(n, "crash", "urcgc")]
        cbcast_crash = by_key[(n, "crash", "cbcast")]
        assert abs(urcgc_crash[2] - urcgc_rel[2]) / urcgc_rel[2] < 0.1
        assert cbcast_crash[0] > cbcast_rel[0]

    # Size boundaries the paper quotes.
    assert _request_size(15) <= 576
    assert _request_size(40) <= 1500

    # urcgc control size grows linearly in n.
    sizes = {n: by_key[(n, "reliable", "urcgc")][2] for n in (5, 10, 40)}
    assert sizes[10] > sizes[5]
    assert sizes[40] > 3 * sizes[10] / 2
