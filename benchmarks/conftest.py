"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or one
ablation from DESIGN.md), prints the same rows/series the paper
reports, and asserts the qualitative *shape* — who wins, growth
trends, crossovers — rather than absolute numbers (our substrate is a
simulator, not the authors' testbed).

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
rendered tables; EXPERIMENTS.md quotes them).

Every run also exports one ``BENCH_<module>.json`` per benchmark
module through :func:`repro.obs.write_bench_json` (timing stats plus
each test's ``extra_info``), into ``$REPRO_BENCH_DIR`` (default: the
working directory).  CI uploads these as the perf trajectory.
"""

from __future__ import annotations

import os


def run_once(benchmark, fn):
    """Benchmark a long-running experiment exactly once and return its
    result object."""
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    as_dict = getattr(result, "as_dict", None)
    if as_dict is not None:
        try:
            benchmark.extra_info["result"] = as_dict()
        except Exception:
            pass  # a result that can't serialize shouldn't fail the bench
    return result


def _bench_rows(session_benchmarks) -> dict[str, list[dict]]:
    """Group pytest-benchmark Metadata by module stem."""
    by_module: dict[str, list[dict]] = {}
    for bench in session_benchmarks:
        module_path = bench.fullname.split("::", 1)[0]
        stem = os.path.splitext(os.path.basename(module_path))[0]
        row = bench.as_dict(include_data=False)
        by_module.setdefault(stem, []).append(row)
    return by_module


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<module>.json`` per benchmark module run."""
    benchmarksession = getattr(session.config, "_benchmarksession", None)
    if benchmarksession is None or not benchmarksession.benchmarks:
        return
    from repro.obs import write_bench_json

    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    for stem, rows in _bench_rows(benchmarksession.benchmarks).items():
        path = os.path.join(out_dir, f"BENCH_{stem}.json")
        write_bench_json(path, stem, rows)
