"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or one
ablation from DESIGN.md), prints the same rows/series the paper
reports, and asserts the qualitative *shape* — who wins, growth
trends, crossovers — rather than absolute numbers (our substrate is a
simulator, not the authors' testbed).

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
rendered tables; EXPERIMENTS.md quotes them).
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Benchmark a long-running experiment exactly once and return its
    result object."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
