"""Figure 5 — group agreement time T vs consecutive coordinator
crashes f.

Paper's claims checked here:

* urcgc's T grows linearly in f with slope ~1 subrun per extra crash
  (analytic bound ``2K + f``); the measured values respect the bound.
* CBCAST's T grows much faster (its flush restarts from scratch under
  each manager crash; analytic ``K(5f+6)``) and dominates urcgc for
  every f >= 1.
* urcgc never blocks the application while agreeing; CBCAST blocks for
  the whole flush (checked via the blocked-rounds counter in the
  CBCAST cluster tests).
"""

import math

from conftest import run_once

from repro.harness.experiments import figure5_agreement


def test_figure5_agreement(benchmark):
    result = run_once(
        benchmark,
        lambda: figure5_agreement(n=10, K=2, f_values=(0, 1, 2, 3, 4, 5)),
    )
    print()
    print(result.render())

    rows = result.rows
    K = result.K
    for f, urcgc_sim, urcgc_paper, cbcast_sim, cbcast_paper in rows:
        assert not math.isnan(urcgc_sim), f"urcgc never agreed at f={f}"
        assert not math.isnan(cbcast_sim), f"cbcast never agreed at f={f}"
        # Measured urcgc agreement respects the paper's 2K+f bound.
        assert urcgc_sim <= urcgc_paper + 1.0
        assert urcgc_paper == 2 * K + f
        assert cbcast_paper == K * (5 * f + 6)

    # urcgc slope in f is ~1 rtd per extra coordinator crash.
    urcgc_vals = [row[1] for row in rows]
    deltas = [b - a for a, b in zip(urcgc_vals[1:], urcgc_vals[2:])]
    assert all(0.5 <= d <= 2.0 for d in deltas), deltas

    # CBCAST grows much faster (each manager crash costs ~2K rtd:
    # re-detection + protocol restart) and loses for every f >= 1.
    cbcast_vals = [row[3] for row in rows]
    cbcast_deltas = [b - a for a, b in zip(cbcast_vals[1:], cbcast_vals[2:])]
    assert all(cd >= 2 * K for cd in cbcast_deltas), cbcast_deltas
    for f, urcgc_sim, _, cbcast_sim, _ in rows:
        if f >= 1:
            assert cbcast_sim > urcgc_sim
