#!/usr/bin/env python
"""Compare fresh ``BENCH_*.json`` exports against committed baselines.

Stdlib-only (CI runs it without installing the package)::

    python benchmarks/compare_bench.py \
        --baseline-dir benchmarks/baselines --current-dir perf-artifacts

For every baseline file, every test in it must exist in the current
export, and two families of metrics are gated:

* **Ratio metrics** — numeric ``extra_info`` keys containing
  ``speedup``.  These are host-independent (both sides of the ratio ran
  on the same machine), so the gate is tight: the current ratio may
  fall at most ``--ratio-tolerance`` (default 35%) below the baseline.
* **Timings** — ``stats.mean``.  Absolute times track the runner, so
  the gate is deliberately loose: the current mean may be at most
  ``--time-factor`` (default 6x) the baseline mean, catching
  order-of-magnitude regressions without flaking on runner noise.

After an intentional performance change, regenerate the baselines (see
docs/PERFORMANCE.md) and commit them with the change.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _load(path: pathlib.Path) -> dict:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != 1 or "results" not in payload:
        raise SystemExit(f"{path}: not a schema-1 BENCH export")
    return payload


def compare(
    baseline_dir: pathlib.Path,
    current_dir: pathlib.Path,
    *,
    ratio_tolerance: float,
    time_factor: float,
) -> list[str]:
    failures: list[str] = []
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        return [f"no BENCH_*.json baselines under {baseline_dir}"]
    for baseline_path in baselines:
        current_path = current_dir / baseline_path.name
        if not current_path.is_file():
            failures.append(f"{baseline_path.name}: no current export")
            continue
        baseline = _load(baseline_path)["results"]
        current = _load(current_path)["results"]
        for test, base_row in sorted(baseline.items()):
            cur_row = current.get(test)
            if cur_row is None:
                failures.append(f"{test}: missing from current export")
                continue
            for key, base_val in sorted(base_row.get("extra_info", {}).items()):
                if "speedup" not in key or not isinstance(base_val, (int, float)):
                    continue
                cur_val = cur_row.get("extra_info", {}).get(key)
                floor = base_val * (1.0 - ratio_tolerance)
                if not isinstance(cur_val, (int, float)):
                    failures.append(f"{test}: ratio metric {key} missing")
                    continue
                verdict = "ok" if cur_val >= floor else "REGRESSED"
                print(
                    f"{test} :: {key}: baseline {base_val:.2f}, "
                    f"current {cur_val:.2f}, floor {floor:.2f} [{verdict}]"
                )
                if cur_val < floor:
                    failures.append(
                        f"{test}: {key} {cur_val:.2f} below floor {floor:.2f} "
                        f"(baseline {base_val:.2f})"
                    )
            base_mean = base_row.get("stats", {}).get("mean")
            cur_mean = cur_row.get("stats", {}).get("mean")
            if isinstance(base_mean, (int, float)) and isinstance(
                cur_mean, (int, float)
            ):
                ceiling = base_mean * time_factor
                verdict = "ok" if cur_mean <= ceiling else "REGRESSED"
                print(
                    f"{test} :: mean: baseline {base_mean:.6f}s, "
                    f"current {cur_mean:.6f}s, ceiling {ceiling:.6f}s [{verdict}]"
                )
                if cur_mean > ceiling:
                    failures.append(
                        f"{test}: mean {cur_mean:.6f}s over ceiling "
                        f"{ceiling:.6f}s (baseline {base_mean:.6f}s)"
                    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", type=pathlib.Path, required=True)
    parser.add_argument("--current-dir", type=pathlib.Path, required=True)
    parser.add_argument("--ratio-tolerance", type=float, default=0.35)
    parser.add_argument("--time-factor", type=float, default=6.0)
    args = parser.parse_args(argv)
    failures = compare(
        args.baseline_dir,
        args.current_dir,
        ratio_tolerance=args.ratio_tolerance,
        time_factor=args.time_factor,
    )
    for failure in failures:
        print(f"::error::perf regression: {failure}")
    if failures:
        return 1
    print("perf comparison passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
