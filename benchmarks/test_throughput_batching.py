"""Throughput gate for the batching fast path (ISSUE 5).

Same offered load — a 64-message burst per member at n=8 — driven
through the full simulated stack twice: once with the plain wire
(one GENERATE per round per member, every PDU its own datagram) and
once with the throughput layer on (``generate_burst`` + wire batching).
The gate is the ratio of messages processed per wall-clock second:
batched must be at least 2x the unbatched stack.

The ratio, not the absolute rate, is asserted and exported — absolute
numbers track the host, the ratio tracks the code.
"""

import time

from conftest import run_once

from repro.core.config import BatchingConfig, UrcgcConfig
from repro.harness.cluster import SimCluster
from repro.net.wire import BatchFrame, decode_message, encode_message
from repro.types import ProcessId
from repro.workloads.generators import ScriptedWorkload

N = 8
BURST = 64  # messages submitted per member, all at round 0


def _run(*, batched: bool) -> dict:
    """Drive one burst to quiescence; returns the throughput observed."""
    config = UrcgcConfig(
        n=N,
        K=3,
        flow_threshold=0,
        generate_burst=16 if batched else 1,
        batching=BatchingConfig() if batched else None,
    )
    schedule = {
        0: [
            (ProcessId(pid), f"p{pid}-m{i:03d}".encode())
            for pid in range(N)
            for i in range(BURST)
        ]
    }
    cluster = SimCluster(
        config,
        workload=ScriptedWorkload(schedule),
        max_rounds=4000,
        trace=False,
    )
    start = time.perf_counter()
    quiescent_at = cluster.run_until_quiescent(drain_subruns=2)
    elapsed = time.perf_counter() - start
    assert quiescent_at is not None, "burst did not reach quiescence"
    processed = sum(member.processed_count for member in cluster.members)
    # Every member processes every member's full burst.
    assert processed == N * N * BURST
    return {
        "elapsed_seconds": elapsed,
        "rounds": cluster.scheduler.current_round,
        "processed": processed,
        "msgs_per_sec": processed / elapsed,
    }


def test_bench_throughput_batching(benchmark):
    unbatched = _run(batched=False)
    batched = run_once(benchmark, lambda: _run(batched=True))
    speedup = batched["msgs_per_sec"] / unbatched["msgs_per_sec"]
    benchmark.extra_info["n"] = N
    benchmark.extra_info["burst"] = BURST
    benchmark.extra_info["unbatched_msgs_per_sec"] = unbatched["msgs_per_sec"]
    benchmark.extra_info["batched_msgs_per_sec"] = batched["msgs_per_sec"]
    benchmark.extra_info["unbatched_rounds"] = unbatched["rounds"]
    benchmark.extra_info["batched_rounds"] = batched["rounds"]
    benchmark.extra_info["speedup"] = speedup
    print(
        f"\nthroughput n={N} burst={BURST}: "
        f"unbatched {unbatched['msgs_per_sec']:,.0f} msg/s "
        f"({unbatched['rounds']} rounds), "
        f"batched {batched['msgs_per_sec']:,.0f} msg/s "
        f"({batched['rounds']} rounds), speedup {speedup:.1f}x"
    )
    assert speedup >= 2.0, f"batching speedup {speedup:.2f}x below the 2x gate"


def test_bench_batch_frame_codec(benchmark):
    """Encode+decode cost of one 16-message BatchFrame envelope."""
    from repro.core.message import UserMessage
    from repro.core.mid import Mid
    from repro.types import SeqNo

    sub_frames = tuple(
        encode_message(UserMessage(Mid(ProcessId(1), SeqNo(seq)), (), b"x" * 64))
        for seq in range(1, 17)
    )
    frame = BatchFrame(sub_frames)

    def roundtrip():
        return decode_message(encode_message(frame))

    result = benchmark(roundtrip)
    assert result == frame
