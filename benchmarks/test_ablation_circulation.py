"""Ablation 1 — decision circulation (DESIGN.md §5.1).

Requests forward the most recent decision so every coordinator starts
from the chain's head.  With circulation disabled, coordinators that
missed the previous decision broadcast compute from stale state and
fork the chain; the forked decisions are rejected by the group (the
consistency guard), wasting subruns.
"""

from conftest import run_once

from repro.harness.ablations import ablate_circulation


def test_ablation_circulation(benchmark):
    result = run_once(benchmark, lambda: ablate_circulation(n=8, K=3, one_in=10))
    print()
    print(result.render(title="Ablation: decision circulation under omission 1/10"))

    with_circulation = result.where(circulate=True)[0]
    without = result.where(circulate=False)[0]
    columns = ["circulate", *result.metrics]
    forked = columns.index("forked decisions")

    # Circulation keeps the chain intact: no decision is ever rejected
    # as a fork.  Without it, forks appear.
    assert with_circulation[forked] == 0
    assert without[forked] > 0
