"""Ablation — offered load vs delay on a saturable Ethernet bus.

Extends Figure 4's x-axis with a shared-medium model: on the default
fixed-delay network D is load-independent; on a finite-bandwidth bus D
climbs as the group's aggregate traffic (control + data) approaches
capacity.
"""

from conftest import run_once

from repro.harness.ablations import ablate_bus_saturation


def test_ablation_bus_saturation(benchmark):
    result = run_once(benchmark, ablate_bus_saturation)
    print()
    print(result.render(title="Ablation: Ethernet bus saturation (n=8)"))

    columns = ["p_send", *result.metrics]
    delay = columns.index("D (rtd)")
    util = columns.index("bus utilization")

    delays = [row[delay] for row in result.rows]
    utils = [row[util] for row in result.rows]

    # Delay grows with offered load on the shared bus.
    assert delays[-1] > delays[0]
    assert all(b >= a - 0.02 for a, b in zip(delays, delays[1:]))
    # And the bus is genuinely loaded at the top of the sweep.
    assert utils[-1] > 0.5
