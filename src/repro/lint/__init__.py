"""Protocol-aware static analysis for the urcgc reproduction.

Four rule families, each tied to an invariant the protocol stack
depends on but Python never enforces (docs/ANALYSIS.md catalogues
them):

* **D-rules** — determinism: ``repro.core`` / ``repro.sim`` /
  ``repro.storage`` may draw randomness and time only from injected
  sources, so ``--seed`` replays are exact.
* **A-rules** — async-safety: no blocking calls inside ``async def``
  bodies in ``repro.runtime``.
* **W-rules** — wire-schema: every frame codec round-trips, tags are
  unique tree-wide, every declared field is serialized.
* **H-rules** — hygiene: float equality, mutable defaults, silently
  swallowed exceptions.

Run it with ``python -m repro lint [--json] [--rules D101,...]``; use
``# lint: disable=RULE`` pragmas for documented false positives.
"""

from .engine import (
    RULES,
    LintResult,
    Module,
    Rule,
    Violation,
    check_source,
    run_lint,
)
from .report import render_json, render_text, result_as_dict

__all__ = [
    "RULES",
    "LintResult",
    "Module",
    "Rule",
    "Violation",
    "check_source",
    "run_lint",
    "render_json",
    "render_text",
    "result_as_dict",
]
