"""Protocol-aware static analysis for the urcgc reproduction.

Six rule families, each tied to an invariant the protocol stack
depends on but Python never enforces (docs/ANALYSIS.md catalogues
them):

* **D-rules** — determinism: ``repro.core`` / ``repro.sim`` /
  ``repro.storage`` may draw randomness and time only from injected
  sources, so ``--seed`` replays are exact.
* **A-rules** — async-safety: no blocking calls inside ``async def``
  bodies in ``repro.runtime``.
* **W-rules** — wire-schema: every frame codec round-trips, tags are
  unique tree-wide, every declared field is serialized.
* **H-rules** — hygiene: float equality, mutable defaults, silently
  swallowed exceptions.
* **I-rules** — interleaving: read-modify-write across ``await``
  suspension points, blocking helpers reached transitively from
  coroutines (interprocedural A2xx), shared-container iteration
  across suspensions.
* **T-rules** — wire-taint typestate: decoded values must cross a
  validation boundary before reaching protocol state or storage, and
  every registered tag needs exactly one engine-side handler.

Run it with ``python -m repro lint [--json] [--rules I,T601,...]``;
use ``# lint: disable=RULE`` pragmas for documented false positives
and ``--baseline lint-baseline.json`` for triaged pre-existing
findings.
"""

from .baseline import (
    Baseline,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .engine import (
    RULES,
    LintResult,
    Module,
    Rule,
    Violation,
    check_source,
    run_lint,
)
from .report import render_json, render_text, result_as_dict

__all__ = [
    "RULES",
    "LintResult",
    "Module",
    "Rule",
    "Violation",
    "Baseline",
    "BaselineEntry",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "check_source",
    "run_lint",
    "render_json",
    "render_text",
    "result_as_dict",
]

# Rule registration is import-time: every rules_* module self-registers
# into RULES when imported, so ``--list-rules`` (and any API user) sees
# the full registry without running a lint pass first.
from . import (  # noqa: E402,F401  (registration side effect)
    rules_async,
    rules_determinism,
    rules_hygiene,
    rules_interleaving,
    rules_taint,
    rules_wire,
)
