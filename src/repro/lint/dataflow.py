"""Intra-function dataflow walks for the I5xx / T6xx rule families.

Two analyses over one linearization of a function body:

* :func:`iter_flow` — an execution-ordered event stream of shared-state
  reads/writes and coroutine suspension points, used by the
  interleaving rules to find read-modify-write windows that span an
  ``await``;
* :class:`TaintWalker` — a forward taint walk from wire-decode sources
  toward state-mutation sinks, used by the typestate rules.

The linearization is deliberately simple (and documented in
docs/ANALYSIS.md): statements are visited in source order, *all*
branches of an ``if``/``try`` are visited sequentially, and loop bodies
are visited exactly once — cross-iteration windows are out of scope.
That trades a little soundness for the precision a gating linter needs;
``# lint: disable=...`` pragmas cover the residue.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "FlowEvent",
    "iter_flow",
    "iter_own_nodes",
    "suspension_points",
    "self_attr",
    "TaintWalker",
    "TaintFinding",
]


def iter_own_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Every node executed by the function itself.

    Nested ``def``/``async def`` bodies are skipped: a closure runs only
    when called, typically on an executor thread or as its own task.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``"X"`` (any context), else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def suspension_points(func: ast.AsyncFunctionDef) -> list[ast.AST]:
    """Every node at which the coroutine may yield the event loop."""
    return [
        node
        for node in iter_own_nodes(func)
        if isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith))
    ]


# ----------------------------------------------------------------------
# Execution-ordered read/write/suspend stream.


@dataclass(frozen=True)
class FlowEvent:
    """One step of the linearized execution: kind is ``read``/``write``
    (of ``self.<attr>``) or ``suspend`` (attr is None)."""

    kind: str
    attr: str | None
    line: int


def _expr_events(node: ast.AST) -> Iterator[FlowEvent]:
    """Events of evaluating an expression, left to right."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return
    if isinstance(node, ast.Await):
        yield from _expr_events(node.value)
        yield FlowEvent("suspend", None, node.lineno)
        return
    attr = self_attr(node)
    if attr is not None and isinstance(node.ctx, ast.Load):
        yield FlowEvent("read", attr, node.lineno)
        return  # self.X.Y reads X; no deeper structure to visit
    for child in ast.iter_child_nodes(node):
        yield from _expr_events(child)


def _target_events(target: ast.expr) -> Iterator[FlowEvent]:
    """Write events of one assignment target."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_events(element)
        return
    attr = self_attr(target)
    if attr is not None:
        yield FlowEvent("write", attr, target.lineno)
        return
    if isinstance(target, ast.Subscript):
        # self.X[k] = v mutates the shared container X in place.
        attr = self_attr(target.value)
        if attr is not None:
            yield from _expr_events(target.slice)
            yield FlowEvent("write", attr, target.lineno)
            return
    yield from _expr_events(target)


def _stmt_events(stmt: ast.stmt) -> Iterator[FlowEvent]:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    if isinstance(stmt, ast.Assign):
        yield from _expr_events(stmt.value)
        for target in stmt.targets:
            yield from _target_events(target)
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            yield from _expr_events(stmt.value)
            yield from _target_events(stmt.target)
    elif isinstance(stmt, ast.AugAssign):
        # x += 1 reads and writes atomically within one statement: the
        # read cannot go stale across a suspension inside the same
        # statement, but an *earlier* read of the attribute can.
        yield from _expr_events(stmt.value)
        yield from _target_events(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield from _expr_events(stmt.iter)
        if isinstance(stmt, ast.AsyncFor):
            yield FlowEvent("suspend", None, stmt.lineno)
        yield from _target_events(stmt.target)
        yield from _body_events(stmt.body)
        yield from _body_events(stmt.orelse)
    elif isinstance(stmt, ast.While):
        yield from _expr_events(stmt.test)
        yield from _body_events(stmt.body)
        yield from _body_events(stmt.orelse)
    elif isinstance(stmt, ast.If):
        yield from _expr_events(stmt.test)
        yield from _body_events(stmt.body)
        yield from _body_events(stmt.orelse)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield from _expr_events(item.context_expr)
        if isinstance(stmt, ast.AsyncWith):
            yield FlowEvent("suspend", None, stmt.lineno)
        yield from _body_events(stmt.body)
    elif isinstance(stmt, ast.Try):
        yield from _body_events(stmt.body)
        for handler in stmt.handlers:
            yield from _body_events(handler.body)
        yield from _body_events(stmt.orelse)
        yield from _body_events(stmt.finalbody)
    elif isinstance(stmt, (ast.Return, ast.Expr)):
        if stmt.value is not None:
            yield from _expr_events(stmt.value)
    elif isinstance(stmt, ast.Raise):
        if stmt.exc is not None:
            yield from _expr_events(stmt.exc)
    elif isinstance(stmt, ast.Assert):
        yield from _expr_events(stmt.test)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            yield from _expr_events(target)
    # pass/break/continue/import/global contribute nothing


def _body_events(body: list[ast.stmt]) -> Iterator[FlowEvent]:
    for stmt in body:
        yield from _stmt_events(stmt)


def iter_flow(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[FlowEvent]:
    """Linearized read/write/suspend stream of the function body."""
    yield from _body_events(func.body)


# ----------------------------------------------------------------------
# Wire-taint walk.


@dataclass(frozen=True)
class TaintFinding:
    """A tainted value reaching a state-mutation sink."""

    line: int
    col: int
    sink: str  # rendered sink, e.g. "self.window"
    source: str  # rendered origin, e.g. "parameter 'ack' (ClientAck)"


#: Pure pass-through callables: taint flows through their result.
_TRANSPARENT_CALLS = frozenset(
    {"list", "tuple", "sorted", "reversed", "iter", "next", "bytes",
     "expand_message"}
)

#: Callables that *establish* a value: range-check / clamp / canonical
#: validation.  A tainted argument comes out clean.
_SANITIZING_CALLS = frozenset({"validate_message", "min", "max", "len", "abs"})

#: The subset that validates an entire PDU, vouching for every field —
#: ``min(x.credit, cap)`` clamps one value, it does not bless ``x``.
_OBJECT_SANITIZERS = frozenset({"validate_message"})

#: Storage mutations: a tainted argument here is a durable-state sink.
_STORAGE_SINKS = frozenset(
    {"log_generated", "log_processed", "log_decision", "save_snapshot",
     "append_generated", "append_processed", "append_decision"}
)


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` -> "a.b.c" for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class TaintWalker:
    """Forward taint walk over one function body.

    Sources: results of ``decode_message`` / ``*registry.decode`` /
    ``*.from_bytes`` calls, plus parameters annotated with a wire PDU
    class (``wire_classes``).  Guarding a tainted expression in an
    ``if``/``while``/``assert`` test, or passing it through a
    sanitizing call, marks that exact dotted expression clean.  Sinks:
    attribute stores (``self.x = tainted``, ``obj.x = tainted``,
    ``self.x[k] = tainted``) and storage-write calls.
    """

    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        wire_classes: frozenset[str],
    ) -> None:
        self.func = func
        self.wire_classes = wire_classes
        self.tainted: dict[str, str] = {}  # name -> source description
        self.sanitized: set[str] = set()  # dotted exprs proven in-range
        self.findings: list[TaintFinding] = []

    # -- taint queries -------------------------------------------------

    def _annotation_class(self, annotation: ast.expr | None) -> str | None:
        if isinstance(annotation, ast.Name):
            return annotation.id
        if isinstance(annotation, ast.Attribute):
            return annotation.attr
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            return annotation.value.rsplit(".", 1)[-1]
        return None

    def _is_source_call(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "decode_message":
            return "decode_message(...)"
        if isinstance(func, ast.Attribute):
            if func.attr == "from_bytes":
                base = _dotted(func.value) or "?"
                return f"{base}.from_bytes(...)"
            if func.attr == "decode":
                base = _dotted(func.value) or ""
                if "registry" in base:
                    return f"{base}.decode(...)"
        return None

    def _call_name(self, call: ast.Call) -> str | None:
        if isinstance(call.func, ast.Name):
            return call.func.id
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        return None

    def _expr_taint(self, node: ast.expr) -> str | None:
        """Source description if evaluating ``node`` yields taint."""
        if isinstance(node, ast.Call):
            source = self._is_source_call(node)
            if source is not None:
                return source
            name = self._call_name(node)
            if name in _SANITIZING_CALLS:
                return None
            if name in _TRANSPARENT_CALLS:
                for arg in node.args:
                    inner = self._expr_taint(arg)
                    if inner is not None:
                        return inner
            return None  # constructors/helpers absorb taint (documented)
        dotted = _dotted(node)
        if dotted is not None:
            if dotted in self.sanitized:
                return None
            root = dotted.split(".", 1)[0]
            if root in self.sanitized:
                return None
            if root in self.tainted:
                return self.tainted[root]
            return None
        if isinstance(node, (ast.BinOp, ast.BoolOp, ast.Compare)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    inner = self._expr_taint(child)
                    if inner is not None:
                        return inner
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                inner = self._expr_taint(element)
                if inner is not None:
                    return inner
            return None
        if isinstance(node, (ast.Subscript, ast.Starred, ast.IfExp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    inner = self._expr_taint(child)
                    if inner is not None:
                        return inner
        return None

    # -- sanitization --------------------------------------------------

    def _sanitize_test(self, test: ast.expr) -> None:
        """A guard mentioning a tainted expression vouches for it.

        Only *maximal* dotted expressions count: ``if ack.kind != X``
        vouches for ``ack.kind``, not for the whole ``ack`` object —
        a bare ``if ack is None`` does vouch for ``ack``.
        """

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.Attribute, ast.Name)):
                dotted = _dotted(node)
                if dotted is not None:
                    if dotted.split(".", 1)[0] in self.tainted:
                        self.sanitized.add(dotted)
                    return  # do not descend into the chain's base name
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(test)

    def _sanitize_call(self, call: ast.Call) -> None:
        name = self._call_name(call)
        if name not in _SANITIZING_CALLS:
            return
        for arg in call.args:
            dotted = _dotted(arg)
            if dotted is None or dotted.split(".", 1)[0] not in self.tainted:
                continue
            self.sanitized.add(dotted)
            if name in _OBJECT_SANITIZERS:
                # validate_message(pdu, n) vouches for the whole
                # object, so sanitize the root name too.
                self.sanitized.add(dotted.split(".", 1)[0])

    # -- sinks ---------------------------------------------------------

    def _check_store(self, target: ast.expr, value: ast.expr) -> None:
        source = self._expr_taint(value)
        if source is None:
            return
        sink: str | None = None
        if isinstance(target, ast.Attribute):
            sink = _dotted(target)
        elif isinstance(target, ast.Subscript):
            base = _dotted(target.value)
            if base is not None:
                sink = f"{base}[...]"
        if sink is None or "." not in sink:
            return  # plain locals are not shared state
        self.findings.append(
            TaintFinding(target.lineno, target.col_offset, sink, source)
        )

    def _check_call_sinks(self, call: ast.Call) -> None:
        name = self._call_name(call)
        if name not in _STORAGE_SINKS and name != "on_message":
            return
        for arg in call.args:
            source = self._expr_taint(arg)
            if source is not None:
                self.findings.append(
                    TaintFinding(
                        call.lineno,
                        call.col_offset,
                        f"{name}(...)",
                        source,
                    )
                )
                return

    # -- the walk ------------------------------------------------------

    def run(self) -> list[TaintFinding]:
        args = self.func.args
        for arg in [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        ]:
            cls = self._annotation_class(arg.annotation)
            if cls is not None and cls in self.wire_classes:
                self.tainted[arg.arg] = f"parameter {arg.arg!r} ({cls})"
        self._walk_body(self.func.body)
        return self.findings

    def _walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        # Every call anywhere in the statement can sanitize or sink.
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._sanitize_call(node)
                self._check_call_sinks(node)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._assign(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._check_store(stmt.target, stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._sanitize_test(stmt.test)
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, ast.Assert):
            self._sanitize_test(stmt.test)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            source = self._expr_taint(stmt.iter)
            if source is not None and isinstance(stmt.target, ast.Name):
                self.tainted[stmt.target.id] = source
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body)
            for handler in stmt.handlers:
                self._walk_body(handler.body)
            self._walk_body(stmt.orelse)
            self._walk_body(stmt.finalbody)

    def _assign(self, target: ast.expr, value: ast.expr) -> None:
        source = self._expr_taint(value)
        if isinstance(target, ast.Name):
            if source is not None:
                self.tainted[target.id] = source
            else:
                self.tainted.pop(target.id, None)
                self.sanitized.discard(target.id)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, value)
            return
        self._check_store(target, value)
