"""D-rules: determinism inside the simulated / durable core.

The simulator's whole value is that a seed reproduces a run bit-for-bit
(`python -m repro torture --seed N` must replay the exact violation it
reported), and recovery replays a WAL into the same state the crashed
process held.  Both guarantees die the moment ``repro.core``,
``repro.sim`` or ``repro.storage`` reads ambient state: the process
RNG, the wall clock, or the environment.  All randomness must flow
through an injected :class:`random.Random` (usually an
:class:`repro.sim.rng.RngRegistry` stream) and all time through the
event kernel's clock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import Module, Violation, imported_names, qualified_name, rule

__all__ = ["DETERMINISM_SCOPES"]

#: Packages whose behaviour must be a pure function of (inputs, seed).
DETERMINISM_SCOPES = ("repro.core", "repro.sim", "repro.storage")

#: ``random``-module functions that draw from the hidden global RNG.
_GLOBAL_DRAWS = frozenset(
    {
        "random", "randint", "randrange", "getrandbits", "randbytes",
        "choice", "choices", "shuffle", "sample", "uniform", "triangular",
        "betavariate", "binomialvariate", "expovariate", "gammavariate",
        "gauss", "lognormvariate", "normalvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate", "seed",
    }
)

#: Wall-clock reads; the simulator's clock is the only valid time source.
_WALL_CLOCKS = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

#: Ambient-entropy reads: process environment and OS randomness.
_ENTROPY_CALLS = frozenset(
    {
        "os.urandom", "os.getrandom", "os.getenv",
        "uuid.uuid1", "uuid.uuid4",
    }
)
_ENTROPY_ATTRS = frozenset({"os.environ"})
_ENTROPY_MODULES = frozenset({"secrets"})


def _calls(module: Module) -> Iterator[tuple[ast.Call, str]]:
    imports = imported_names(module.tree)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = qualified_name(node.func, imports)
            if name is not None:
                yield node, name


@rule(
    "D101",
    "unseeded-random",
    "module-level random.*() draws from the process-global RNG",
    scopes=DETERMINISM_SCOPES,
)
def check_unseeded_random(module: Module) -> Iterator[Violation]:
    for node, name in _calls(module):
        if name == "random.Random" and not node.args and not node.keywords:
            yield Violation(
                module.path, node.lineno, node.col_offset, "D101",
                "random.Random() without a seed is entropy-seeded; "
                "derive the seed from the experiment's root seed "
                "(e.g. an RngRegistry stream)",
            )
        elif name.startswith("random.") and name.split(".", 1)[1] in _GLOBAL_DRAWS:
            yield Violation(
                module.path, node.lineno, node.col_offset, "D101",
                f"{name}() uses the hidden process-global RNG; draw from an "
                "injected random.Random / sim.rng stream instead",
            )


@rule(
    "D102",
    "wall-clock-read",
    "reads the wall clock instead of the simulated clock",
    scopes=DETERMINISM_SCOPES,
)
def check_wall_clock(module: Module) -> Iterator[Violation]:
    for node, name in _calls(module):
        if name in _WALL_CLOCKS:
            yield Violation(
                module.path, node.lineno, node.col_offset, "D102",
                f"{name}() reads the wall clock; simulated/durable code must "
                "take time from the event kernel (types.Time) so replays "
                "are exact",
            )


@rule(
    "D103",
    "ambient-entropy",
    "reads environment variables or OS entropy",
    scopes=DETERMINISM_SCOPES,
)
def check_ambient_entropy(module: Module) -> Iterator[Violation]:
    imports = imported_names(module.tree)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = qualified_name(node.func, imports)
            if name is None:
                continue
            if name in _ENTROPY_CALLS or name.split(".")[0] in _ENTROPY_MODULES:
                yield Violation(
                    module.path, node.lineno, node.col_offset, "D103",
                    f"{name}() injects ambient entropy into deterministic "
                    "code; thread the value in through configuration",
                )
        elif isinstance(node, ast.Attribute):
            name = qualified_name(node, imports)
            if name in _ENTROPY_ATTRS:
                yield Violation(
                    module.path, node.lineno, node.col_offset, "D103",
                    f"{name} makes behaviour depend on the process "
                    "environment; thread the value in through configuration",
                )
