"""``python -m repro lint`` — run the protocol-aware static analysis.

Exit codes: 0 clean, 1 violations (or unparsable files), 2 usage
errors.  ``--json`` emits the artifact schema CI archives.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import RULES, run_lint
from .report import render_json, render_rule_list, render_text

__all__ = ["main", "default_target"]


def default_target() -> Path:
    """The installed ``repro`` package directory (lint ourselves)."""
    return Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Protocol-aware static analysis: determinism (D), "
        "async-safety (A), wire-schema (W), hygiene (H) rules.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        # Load registrations before rendering.
        run_lint([], rules=None)
        print(render_rule_list())
        return 0

    rules = None
    if args.rules:
        rules = [token.strip() for token in args.rules.split(",") if token.strip()]
    paths = args.paths or [str(default_target())]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        result = run_lint(paths, rules=rules)
    except KeyError as exc:
        known = ", ".join(sorted(RULES))
        print(f"repro lint: {exc.args[0]} (known: {known})", file=sys.stderr)
        return 2
    print(render_json(result) if args.json else render_text(result))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
