"""``python -m repro lint`` — run the protocol-aware static analysis.

Exit codes: 0 clean, 1 violations (or unparsable files), 2 usage
errors.  ``--json`` emits the artifact schema CI archives;
``--baseline FILE`` filters triaged findings (stale entries are
reported, never silently kept) and ``--update-baseline`` rewrites the
file to the current findings.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import RULES, run_lint
from .report import render_json, render_rule_list, render_text

__all__ = ["main", "default_target"]


def default_target() -> Path:
    """The installed ``repro`` package directory (lint ourselves)."""
    return Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Protocol-aware static analysis: determinism (D), "
        "async-safety (A), wire-schema (W), hygiene (H), interleaving "
        "(I), and wire-taint (T) rules.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids or family prefixes to run "
        "(e.g. I501 or I,T; default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings fingerprinted in FILE (lint-baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline FILE to the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        # Registration is import-time (repro.lint.__init__ imports the
        # rules modules), so the registry is already complete here.
        print(render_rule_list())
        return 0

    rules = None
    if args.rules:
        rules = [token.strip() for token in args.rules.split(",") if token.strip()]
    if args.update_baseline and not args.baseline:
        print(
            "repro lint: --update-baseline requires --baseline FILE",
            file=sys.stderr,
        )
        return 2
    paths = args.paths or [str(default_target())]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        result = run_lint(paths, rules=rules)
    except KeyError as exc:
        known = ", ".join(sorted(RULES))
        print(f"repro lint: {exc.args[0]} (known: {known})", file=sys.stderr)
        return 2

    if args.update_baseline:
        count = write_baseline(result, args.baseline)
        print(
            f"baseline updated: {count} entry(ies) covering "
            f"{len(result.violations)} finding(s) -> {args.baseline}"
        )
        return 0

    outcome = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except FileNotFoundError:
            print(
                f"repro lint: no such baseline: {args.baseline}",
                file=sys.stderr,
            )
            return 2
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        outcome = apply_baseline(result, baseline)

    print(
        render_json(result, outcome)
        if args.json
        else render_text(result, outcome)
    )
    effective = result.violations if outcome is None else outcome.remaining
    return 0 if not effective else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
