"""T-rules: wire-taint typestate for decoded PDUs.

The adversarial PR hardened the receive path by hand: decode, then
``validate_message`` range checks, and only then the engine.  These
rules turn that discipline into a checked invariant:

* **T601** — a value produced by a ``net/wire`` decode (or carried in
  by a wire-PDU-typed handler parameter) must pass a validation
  boundary — ``validate_message``, a guard comparing it, ``min``/
  ``max`` clamping — before it is stored into ``Member``/``Frontend``/
  session state or written to storage.  An unvalidated assignment is
  exactly how a forged CLIENT_ACK credit became a flow-control bypass.
* **T602** — every ``register()``-ed wire tag must have a dispatch
  path (an ``isinstance`` arm or a wire-typed ``on_*`` handler
  parameter) in exactly one engine family; a tag with no handler is
  decoded and then dropped (or crashes the dispatch ``else:`` arm),
  and a tag handled by two different protocol families aliases frames
  on the shared LAN.

T601 is intra-function (taint does not flow through constructors or
returns — a precision choice documented in docs/ANALYSIS.md); T602 is
meaningful on full-tree runs, like the other registry-level W rules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .dataflow import TaintWalker
from .engine import Module, Violation, tree_rule
from .rules_wire import _register_calls

__all__ = ["TAINT_SCOPES", "ENGINE_FAMILIES"]

#: The layers whose decode->state flows T601 polices.
TAINT_SCOPES = ("repro.runtime", "repro.svc")

#: Module-prefix -> protocol family for T602's exclusivity check.
#: Prefixes mapping to None (harness drivers, audits, tooling) are not
#: handler sites: an isinstance there is instrumentation, not dispatch.
ENGINE_FAMILIES: tuple[tuple[str, str | None], ...] = (
    ("repro.core", "urcgc"),
    ("repro.runtime", "urcgc"),
    ("repro.net", "urcgc"),
    ("repro.storage", "urcgc"),
    ("repro.detect", "urcgc"),
    ("repro.sim", "urcgc"),
    ("repro.svc", "svc"),
    ("repro.baselines.cbcast", "cbcast"),
    ("repro.baselines.psync", "psync"),
    ("repro.harness", None),
    ("repro.workloads", None),
    ("repro.analysis", None),
    ("repro.obs", None),
    ("repro.lint", None),
)


def _family(module_name: str) -> str | None:
    for prefix, family in ENGINE_FAMILIES:
        if module_name == prefix or module_name.startswith(prefix + "."):
            return family
    if module_name == "repro" or module_name.startswith("repro."):
        return None
    # Outside the repro tree (fixtures, scripts) every top-level package
    # is its own family, so the rule stays testable in isolation.
    return module_name.split(".", 1)[0]


def _in_scope(module_name: str) -> bool:
    return any(
        module_name == scope or module_name.startswith(scope + ".")
        for scope in TAINT_SCOPES
    )


def _wire_imported_classes(module: Module) -> set[str]:
    """Class names imported from a ``*wire*`` module (absolute or
    relative, so ``from .wire import ClientAck`` counts)."""
    out: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if "wire" in node.module.rsplit(".", 1)[-1]:
                out.update(alias.asname or alias.name for alias in node.names)
    return out


def _registered_classes(modules: list[Module]) -> dict[str, tuple[Module, ast.Call, int | None]]:
    regs: dict[str, tuple[Module, ast.Call, int | None]] = {}
    for module in modules:
        for call, tag, cls_name in _register_calls(module):
            if cls_name is not None:
                regs.setdefault(cls_name, (module, call, tag))
    return regs


# ----------------------------------------------------------------------
# T601: unvalidated wire input flowing into state.


@tree_rule(
    "T601",
    "unvalidated-wire-input",
    "decoded wire value stored into protocol state without validation",
)
def check_unvalidated_wire_input(modules: list[Module]) -> Iterator[Violation]:
    registered = frozenset(_registered_classes(modules))
    for module in modules:
        if not _in_scope(module.name):
            continue
        wire_classes = frozenset(registered | _wire_imported_classes(module))
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for finding in TaintWalker(func, wire_classes).run():
                yield Violation(
                    module.path, finding.line, finding.col, "T601",
                    f"{finding.sink} absorbs a wire-tainted value from "
                    f"{finding.source} in {func.name}() without a "
                    "validation boundary (validate_message, a range "
                    "guard, or min/max clamping) — forged bytes flow "
                    "straight into protocol state",
                )


# ----------------------------------------------------------------------
# T602: handler completeness over the registered tag space.


def _isinstance_classes(call: ast.Call) -> Iterator[str]:
    if not (isinstance(call.func, ast.Name) and call.func.id == "isinstance"):
        return
    if len(call.args) != 2:
        return
    spec = call.args[1]
    candidates = spec.elts if isinstance(spec, ast.Tuple) else [spec]
    for node in candidates:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


def _handler_sites(module: Module) -> Iterator[tuple[str, str]]:
    """Yield ``(class_name, handler_description)`` dispatch sites."""

    def visit(node: ast.AST, owner: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                label = f"{owner}.{child.name}" if owner else child.name
                for sub in ast.walk(child):
                    if isinstance(sub, ast.Call):
                        for cls in _isinstance_classes(sub):
                            sites.append((cls, label))
                if child.name.startswith("on_"):
                    for arg in (*child.args.args, *child.args.kwonlyargs):
                        if isinstance(arg.annotation, ast.Name):
                            sites.append((arg.annotation.id, label))
                        elif isinstance(arg.annotation, ast.Attribute):
                            sites.append((arg.annotation.attr, label))
            elif isinstance(child, ast.ClassDef) and owner is None:
                visit(child, child.name)

    sites: list[tuple[str, str]] = []
    visit(module.tree, None)
    yield from sites


@tree_rule(
    "T602",
    "unhandled-wire-tag",
    "registered wire tag without exactly one engine family handling it",
)
def check_handler_completeness(modules: list[Module]) -> Iterator[Violation]:
    registered = _registered_classes(modules)
    if not registered:
        return
    #: class name -> {family: [handler labels]}
    handlers: dict[str, dict[str, list[str]]] = {}
    for module in modules:
        family = _family(module.name)
        if family is None:
            continue
        for cls, label in _handler_sites(module):
            if cls in registered:
                handlers.setdefault(cls, {}).setdefault(family, []).append(
                    f"{module.name}:{label}"
                )
    for cls, (module, call, tag) in sorted(registered.items()):
        tag_text = f"tag {tag}" if tag is not None else "tag ?"
        by_family = handlers.get(cls, {})
        if not by_family:
            yield Violation(
                module.path, call.lineno, call.col_offset, "T602",
                f"{cls} ({tag_text}) is registered but no engine handler "
                "dispatches it (no isinstance arm, no wire-typed on_* "
                "parameter): received frames decode and then vanish",
            )
        elif len(by_family) > 1:
            where = "; ".join(
                f"{family}: {', '.join(sorted(set(labels)))}"
                for family, labels in sorted(by_family.items())
            )
            yield Violation(
                module.path, call.lineno, call.col_offset, "T602",
                f"{cls} ({tag_text}) is dispatched by more than one "
                f"protocol family ({where}); a shared-LAN frame must "
                "have exactly one engine-side owner",
            )
