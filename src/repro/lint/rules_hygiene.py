"""H-rules: hygiene patterns that have already bitten this codebase.

PR 1 shipped a real bug of exactly the H401 shape: the periodic
``OmissionModel`` validated its phase with float ``==`` and silently
accepted configurations it should have rejected.  H402 (mutable
default arguments) and H403 (silently swallowed exceptions) guard the
recovery paths, where "ignore and continue" can turn a torn WAL or a
malformed frame into undetected state divergence instead of an
auditable error.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import Module, Violation, rule


@rule(
    "H401",
    "float-equality",
    "exact == / != against a float literal",
)
def check_float_equality(module: Module) -> Iterator[Violation]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (operands[i], operands[i + 1]):
                if isinstance(side, ast.Constant) and isinstance(side.value, float):
                    yield Violation(
                        module.path, node.lineno, node.col_offset, "H401",
                        f"exact float comparison against {side.value!r}; "
                        "use an ordering/tolerance check, or pragma it "
                        "with a comment proving the value is exact",
                    )
                    break


_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.SetComp, ast.ListComp, ast.DictComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque"})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


@rule(
    "H402",
    "mutable-default",
    "mutable default argument shared across calls",
)
def check_mutable_defaults(module: Module) -> Iterator[Violation]:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is not None and _is_mutable_default(default):
                yield Violation(
                    module.path, default.lineno, default.col_offset, "H402",
                    f"mutable default in {node.name}() is evaluated once "
                    "and shared by every call; default to None and build "
                    "inside the body",
                )


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """True when the body neither re-raises nor records the failure.

    Any :class:`ast.Raise` or any call (logging, a counter bump, an
    error-channel append) counts as handling; a body of ``pass`` /
    bare ``return``/constants/``continue`` is a silent swallow.
    """
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Call)):
            return False
    return True


def _catches_broadly(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except:
        return True
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [getattr(e, "id", "") for e in handler.type.elts]
    elif isinstance(handler.type, ast.Name):
        names = [handler.type.id]
    return any(name in ("Exception", "BaseException") for name in names)


@rule(
    "H403",
    "swallowed-exception",
    "broad except that neither re-raises nor records the error",
)
def check_swallowed_exceptions(module: Module) -> Iterator[Violation]:
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.ExceptHandler)
            and _catches_broadly(node)
            and _handler_swallows(node)
        ):
            yield Violation(
                module.path, node.lineno, node.col_offset, "H403",
                "broad except swallows the error without re-raising or "
                "recording it; narrow the exception type, or pragma with "
                "a comment justifying the drop semantics",
            )
