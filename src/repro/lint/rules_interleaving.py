"""I-rules: cooperative-concurrency (interleaving) hazards.

The protocol engines are sans-IO state machines driven from asyncio
coroutines; every ``await`` is a point where *another* coroutine on the
same loop can run and observe or clobber half-updated state.  The
paper's ordering guarantees assume each protocol step is atomic, so
these rules police the three ways the runtime can break that
assumption:

* **I501** — a ``self._*`` attribute is read, the coroutine suspends,
  and the stale value is written back: the classic asyncio
  read-modify-write race.
* **I502** — the interprocedural upgrade of the A2xx family: a
  *synchronous* helper that blocks (sleep, file/socket I/O, WAL or
  snapshot writes) is reached transitively from a runtime/svc
  coroutine, stalling every node on the loop even though no blocking
  call is visible in any single ``async def``.
* **I503** — a shared ``self`` container is iterated with a suspension
  point inside the loop: a peer coroutine can mutate it mid-iteration
  ("dict changed size during iteration", skipped entries).

All three linearize control flow (branches sequential, loop bodies
once — see :mod:`repro.lint.dataflow`), so cross-iteration windows are
out of scope; documented false positives carry pragmas.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Iterator

from .callgraph import CallGraph, FunctionInfo, build_call_graph
from .dataflow import iter_flow, iter_own_nodes, self_attr
from .engine import Module, Violation, imported_names, qualified_name, rule, tree_rule
from .rules_async import _BLOCKING_SLEEPS, _STORAGE_OPS, _SYNC_IO_CALLS

__all__ = ["INTERLEAVING_SCOPES"]

#: The layers whose coroutines the I-rules police.
INTERLEAVING_SCOPES = ("repro.runtime", "repro.svc")


def _in_scope(module_name: str) -> bool:
    return any(
        module_name == scope or module_name.startswith(scope + ".")
        for scope in INTERLEAVING_SCOPES
    )


# ----------------------------------------------------------------------
# I501: read-modify-write across a suspension point.


@rule(
    "I501",
    "interleaved-read-modify-write",
    "self._* read before an await and written back after it",
    scopes=INTERLEAVING_SCOPES,
)
def check_interleaved_rmw(module: Module) -> Iterator[Violation]:
    for func in ast.walk(module.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        last_read: dict[str, int] = {}
        stale: dict[str, tuple[int, int]] = {}
        flagged: set[str] = set()
        for event in iter_flow(func):
            if event.kind == "suspend":
                for attr, line in last_read.items():
                    stale.setdefault(attr, (line, event.line))
                continue
            if event.attr is None or not event.attr.startswith("_"):
                continue
            if event.kind == "read":
                last_read[event.attr] = event.line
                # A fresh post-suspension read re-establishes the value.
                stale.pop(event.attr, None)
            elif event.kind == "write":
                if event.attr in stale and event.attr not in flagged:
                    flagged.add(event.attr)
                    # No line numbers in the message: the baseline
                    # fingerprint must survive edits above the finding.
                    yield Violation(
                        module.path, event.line, 0, "I501",
                        f"self.{event.attr} is read before a suspension "
                        f"point in async def {func.name} and the stale "
                        "value is written back after it; another "
                        "coroutine can observe or update the attribute "
                        "in between — update it before suspending (or "
                        "re-read it after)",
                    )
                stale.pop(event.attr, None)
                last_read.pop(event.attr, None)


# ----------------------------------------------------------------------
# I502: transitively-reached blocking call.


def _blocking_leaves(
    info: FunctionInfo, imports: dict[str, str]
) -> list[tuple[ast.Call, str]]:
    """Blocking calls made directly by a *sync* function."""
    leaves: list[tuple[ast.Call, str]] = []
    for node in iter_own_nodes(info.node):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "open":
            leaves.append((node, "open()"))
            continue
        dotted = qualified_name(node.func, imports)
        if dotted in _BLOCKING_SLEEPS or dotted in _SYNC_IO_CALLS:
            leaves.append((node, f"{dotted}()"))
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _STORAGE_OPS
        ):
            leaves.append((node, f".{node.func.attr}()"))
    return leaves


@tree_rule(
    "I502",
    "transitive-blocking-call",
    "sync helper that blocks, reached from a runtime/svc coroutine",
)
def check_transitive_blocking(modules: list[Module]) -> Iterator[Violation]:
    graph = build_call_graph(modules)
    imports_by_module = {m.name: imported_names(m.tree) for m in modules}
    leaves: dict[str, list[tuple[ast.Call, str]]] = {}
    for info in graph.functions.values():
        if info.is_async:
            continue  # direct blocking in coroutines is A201/A202/A203
        found = _blocking_leaves(info, imports_by_module[info.module])
        if found:
            leaves[info.qualname] = found
    # Reverse-reachability through sync callers: next_hop[f] is the
    # callee one step closer to a blocking leaf.
    next_hop: dict[str, str | None] = {name: None for name in leaves}
    worklist = deque(leaves)
    while worklist:
        target = worklist.popleft()
        for caller in graph.callers_of(target):
            info = graph.functions[caller]
            if info.is_async or caller in next_hop:
                continue
            next_hop[caller] = target
            worklist.append(caller)
    # Which in-scope coroutines reach which leaf?
    roots_by_site: dict[tuple[str, int], set[str]] = {}
    for coroutine in graph.coroutines():
        if not _in_scope(coroutine.module):
            continue
        for callee in coroutine.callees:
            if callee not in next_hop:
                continue
            chain = [callee]
            while next_hop[chain[-1]] is not None:
                chain.append(next_hop[chain[-1]])  # type: ignore[arg-type]
            leaf = chain[-1]
            for call, _desc in leaves[leaf]:
                roots_by_site.setdefault(
                    (leaf, call.lineno), set()
                ).add(coroutine.name)
    for (leaf, lineno), roots in sorted(roots_by_site.items()):
        info = graph.functions[leaf]
        for call, desc in leaves[leaf]:
            if call.lineno != lineno:
                continue
            yield Violation(
                info.path, call.lineno, call.col_offset, "I502",
                f"{desc} in {info.name}() blocks the event loop when "
                f"reached from async def {'/'.join(sorted(roots))}; move "
                "it behind run_in_executor or out of the coroutine path",
            )


# ----------------------------------------------------------------------
# I503: iterating shared state across a suspension point.


def _shared_iter_attr(node: ast.expr) -> str | None:
    """``self.X`` / ``self.X.values()|items()|keys()`` -> ``X``."""
    attr = self_attr(node)
    if attr is not None:
        return attr
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("values", "items", "keys")
    ):
        return self_attr(node.func.value)
    return None


def _suspends(body: list[ast.stmt]) -> bool:
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


@rule(
    "I503",
    "shared-iteration-across-await",
    "iterating a self container while suspending inside the loop",
    scopes=INTERLEAVING_SCOPES,
)
def check_shared_iteration(module: Module) -> Iterator[Violation]:
    for func in ast.walk(module.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        for node in iter_own_nodes(func):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            attr = _shared_iter_attr(node.iter)
            if attr is None:
                continue
            if isinstance(node, ast.AsyncFor) or _suspends(node.body):
                yield Violation(
                    module.path, node.lineno, node.col_offset, "I503",
                    f"async def {func.name} iterates self.{attr} with a "
                    "suspension point inside the loop; another coroutine "
                    "can mutate the container mid-iteration — iterate a "
                    f"snapshot (list(self.{attr})) instead",
                )
