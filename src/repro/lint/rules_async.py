"""A-rules: async-safety inside the live runtime.

Every node in :mod:`repro.runtime` multiplexes its round ticker and
receiver on one event loop; one blocking call in a coroutine stalls
*every* node on the loop, which skews the adaptive round timer's RTT
samples and can turn a healthy group into a spurious "crashed
coordinator" scenario.  Blocking work (WAL appends, snapshots, sync
sockets) belongs in sync helpers called via ``run_in_executor`` — or,
as the current design does, in sync effect-execution paths outside any
coroutine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import (
    Module,
    Violation,
    imported_names,
    iter_async_body,
    qualified_name,
    rule,
)

__all__ = ["ASYNC_SCOPES"]

#: The asyncio-based layer the A-rules police.
ASYNC_SCOPES = ("repro.runtime",)

#: Calls that block the event loop outright.
_BLOCKING_SLEEPS = frozenset({"time.sleep"})

#: Sync I/O entry points (file, fs-sync, blocking socket/dns, subprocess).
_SYNC_IO_CALLS = frozenset(
    {
        "os.fsync", "os.replace", "os.remove", "os.makedirs", "os.listdir",
        "socket.socket", "socket.create_connection", "socket.getaddrinfo",
        "subprocess.run", "subprocess.check_output", "subprocess.check_call",
        "subprocess.call",
    }
)

#: Durable-state operations (WAL appends, snapshot writes, recovery
#: loads).  Method names are distinctive to repro.storage's API, so a
#: bare attribute match is precise enough.
_STORAGE_OPS = frozenset(
    {
        "log_generated", "log_processed", "log_decision", "save_snapshot",
        "append_generated", "append_processed", "append_decision",
    }
)


def _async_scopes(module: Module) -> Iterator[ast.AsyncFunctionDef]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


@rule(
    "A201",
    "blocking-sleep-in-async",
    "time.sleep inside a coroutine stalls the whole event loop",
    scopes=ASYNC_SCOPES,
)
def check_blocking_sleep(module: Module) -> Iterator[Violation]:
    imports = imported_names(module.tree)
    for func in _async_scopes(module):
        for node in iter_async_body(func):
            if isinstance(node, ast.Call):
                name = qualified_name(node.func, imports)
                if name in _BLOCKING_SLEEPS:
                    yield Violation(
                        module.path, node.lineno, node.col_offset, "A201",
                        f"{name}() in async def {func.name} blocks every "
                        "node on the loop; use await asyncio.sleep()",
                    )


@rule(
    "A202",
    "sync-io-in-async",
    "synchronous file/socket I/O inside a coroutine",
    scopes=ASYNC_SCOPES,
)
def check_sync_io(module: Module) -> Iterator[Violation]:
    imports = imported_names(module.tree)
    for func in _async_scopes(module):
        for node in iter_async_body(func):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                yield Violation(
                    module.path, node.lineno, node.col_offset, "A202",
                    f"open() in async def {func.name} performs blocking "
                    "file I/O on the event loop; move it to a sync helper "
                    "or an executor",
                )
                continue
            name = qualified_name(node.func, imports)
            if name in _SYNC_IO_CALLS:
                yield Violation(
                    module.path, node.lineno, node.col_offset, "A202",
                    f"{name}() in async def {func.name} is blocking I/O "
                    "on the event loop; move it off the coroutine path",
                )


@rule(
    "A203",
    "storage-io-in-async",
    "direct WAL/snapshot I/O inside a coroutine",
    scopes=ASYNC_SCOPES,
)
def check_storage_io(module: Module) -> Iterator[Violation]:
    for func in _async_scopes(module):
        for node in iter_async_body(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _STORAGE_OPS
            ):
                yield Violation(
                    module.path, node.lineno, node.col_offset, "A203",
                    f".{node.func.attr}() in async def {func.name} writes "
                    "durable state on the event loop; WAL/snapshot I/O "
                    "belongs in the sync effect-execution path",
                )
