"""Module-graph + call-graph builder for the interprocedural rules.

The I5xx family needs to answer "which synchronous helpers does this
coroutine reach?" — so this module indexes every function and method in
the linted tree under a stable qualified name (``module:func`` or
``module:Class.method``) and resolves call expressions to those names.

Resolution is deliberately conservative.  An edge is added only when
the target is unambiguous:

* ``name(...)`` — a top-level function of the same module, or a
  ``from mod import name`` whose origin module is in the tree;
* ``mod.func(...)`` — via the import map (:func:`~repro.lint.engine.
  qualified_name`);
* ``self.method(...)`` — a method of the enclosing class;
* ``obj.method(...)`` — *only* when exactly one class in the whole
  tree defines ``method`` and the name is not a common container verb
  (``append``, ``get``, ...), so ``self.storage.log_generated(...)``
  resolves to ``NodeStorage.log_generated`` while ``buf.append(...)``
  resolves to nothing.

Unresolved calls simply produce no edge: the interprocedural rules
under-approximate reachability rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .engine import Module, imported_names, qualified_name

__all__ = ["FunctionInfo", "CallSite", "CallGraph", "build_call_graph"]

#: Method names too generic to resolve by the unique-method heuristic:
#: they collide with the stdlib container/IO vocabulary, so an
#: attribute call spelled with one of these never creates an edge.
COMMON_METHOD_NAMES = frozenset(
    {
        "append", "extend", "add", "remove", "discard", "pop", "popleft",
        "get", "set", "put", "update", "clear", "copy", "keys", "values",
        "items", "sort", "index", "count", "insert", "join", "split",
        "read", "write", "close", "open", "send", "recv", "encode",
        "decode", "flush", "start", "stop", "run", "cancel", "result",
        "done", "wait", "release", "acquire", "submit", "format",
    }
)


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    callee: str | None  # qualified name, or None when unresolved
    node: ast.Call


@dataclass
class FunctionInfo:
    """One function or method in the linted tree."""

    qualname: str  # "module:func" or "module:Class.method"
    module: str  # dotted module name
    path: str  # source file (for Violation reporting)
    cls: str | None
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    calls: list[CallSite] = field(default_factory=list)

    @property
    def callees(self) -> set[str]:
        return {site.callee for site in self.calls if site.callee is not None}


class CallGraph:
    """Function index + resolved call edges over a module list."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        #: method name -> qualnames of every class method with that name
        self._methods_by_name: dict[str, list[str]] = {}
        #: (module, top-level function name) -> qualname
        self._module_functions: dict[tuple[str, str], str] = {}

    # -- queries -------------------------------------------------------

    def function(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def coroutines(self) -> list[FunctionInfo]:
        return [f for f in self.functions.values() if f.is_async]

    def callers_of(self, qualname: str) -> set[str]:
        return {
            f.qualname for f in self.functions.values() if qualname in f.callees
        }

    # -- construction --------------------------------------------------

    def _index(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info
        if info.cls is not None:
            self._methods_by_name.setdefault(info.name, []).append(info.qualname)
        else:
            self._module_functions[(info.module, info.name)] = info.qualname

    def _resolve(
        self, call: ast.Call, info: FunctionInfo, imports: dict[str, str]
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            local = self._module_functions.get((info.module, func.id))
            if local is not None:
                return local
            origin = imports.get(func.id)
            if origin is not None and "." in origin:
                mod, _, name = origin.rpartition(".")
                return self._module_functions.get((mod, name))
            return None
        if not isinstance(func, ast.Attribute):
            return None
        # self.method(...) -> method of the enclosing class.
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and info.cls is not None
        ):
            own = f"{info.module}:{info.cls}.{func.attr}"
            if own in self.functions:
                return own
        # mod.func(...) via the import map.
        dotted = qualified_name(func, imports)
        if dotted is not None and "." in dotted:
            mod, _, name = dotted.rpartition(".")
            target = self._module_functions.get((mod, name))
            if target is not None:
                return target
        # obj.method(...) -> unique distinctive method name tree-wide.
        if func.attr not in COMMON_METHOD_NAMES:
            candidates = self._methods_by_name.get(func.attr, ())
            if len(candidates) == 1:
                return candidates[0]
        return None


def _functions_of(module: Module) -> list[FunctionInfo]:
    out: list[FunctionInfo] = []

    def visit(node: ast.AST, cls: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                prefix = f"{cls}." if cls is not None else ""
                out.append(
                    FunctionInfo(
                        qualname=f"{module.name}:{prefix}{child.name}",
                        module=module.name,
                        path=module.path,
                        cls=cls,
                        name=child.name,
                        node=child,
                        is_async=isinstance(child, ast.AsyncFunctionDef),
                    )
                )
                # Nested defs are not indexed: the interprocedural rules
                # treat a closure as part of its owner (see iter_async_body
                # for the same choice at the single-function level).
            elif isinstance(child, ast.ClassDef) and cls is None:
                visit(child, child.name)

    visit(module.tree, None)
    return out


def build_call_graph(modules: list[Module]) -> CallGraph:
    """Index every function, then resolve every call expression."""
    graph = CallGraph()
    infos: list[tuple[FunctionInfo, dict[str, str]]] = []
    for module in modules:
        imports = imported_names(module.tree)
        for info in _functions_of(module):
            graph._index(info)
            infos.append((info, imports))
    for info, imports in infos:
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                info.calls.append(
                    CallSite(graph._resolve(node, info, imports), node)
                )
    return graph
