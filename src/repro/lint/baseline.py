"""Finding baselines: triage pre-existing violations without hiding new ones.

A baseline file (``lint-baseline.json``) records accepted findings as
``(rule, path, message, count)`` fingerprints — deliberately *without*
line numbers, so ordinary edits above a finding don't invalidate the
entry.  Paths are stored relative to the baseline file's directory and
both sides are normalized at match time, so ``python -m repro lint``
(absolute default target) and CI (repo-relative paths) agree.

Semantics:

* a finding matching an entry is suppressed, up to ``count`` times;
* an entry with unmatched capacity is **stale** and is reported (text,
  JSON, and a non-zero count in the artifact) rather than silently
  kept — ``--update-baseline`` rewrites the file to reality;
* anything not in the baseline fails the run exactly as before.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from .engine import LintResult, Violation

__all__ = [
    "BaselineEntry",
    "Baseline",
    "load_baseline",
    "apply_baseline",
    "baseline_payload",
    "write_baseline",
]

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding fingerprint."""

    rule: str
    path: str  # normalized, relative to the baseline file's directory
    message: str
    count: int = 1

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)


@dataclass
class Baseline:
    """A loaded baseline file."""

    path: Path
    entries: list[BaselineEntry]

    def normalize(self, violation_path: str) -> str:
        """Express a finding's path relative to the baseline file."""
        root = self.path.resolve().parent
        try:
            rel = os.path.relpath(Path(violation_path).resolve(), root)
        except ValueError:  # different drive (windows)
            return violation_path.replace(os.sep, "/")
        return rel.replace(os.sep, "/")


def load_baseline(path: str | Path) -> Baseline:
    """Parse a baseline file; raises ValueError on a malformed one."""
    file = Path(path)
    payload = json.loads(file.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise ValueError(f"{file}: not a version-{_VERSION} lint baseline")
    entries = []
    for raw in payload.get("entries", []):
        if not isinstance(raw, dict):
            raise ValueError(f"{file}: malformed baseline entry {raw!r}")
        try:
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    message=str(raw["message"]),
                    count=int(raw.get("count", 1)),
                )
            )
        except KeyError as exc:
            raise ValueError(
                f"{file}: baseline entry missing {exc.args[0]!r}"
            ) from None
    return Baseline(file, entries)


@dataclass
class BaselineOutcome:
    """What applying a baseline did to one lint result."""

    remaining: list[Violation]
    suppressed: int
    stale: list[BaselineEntry]  # entries with leftover (unmatched) count


def apply_baseline(result: LintResult, baseline: Baseline) -> BaselineOutcome:
    capacity: dict[tuple[str, str, str], int] = {}
    for entry in baseline.entries:
        capacity[entry.key] = capacity.get(entry.key, 0) + entry.count
    remaining: list[Violation] = []
    suppressed = 0
    for violation in result.violations:
        key = (
            violation.rule,
            baseline.normalize(violation.path),
            violation.message,
        )
        if capacity.get(key, 0) > 0:
            capacity[key] -= 1
            suppressed += 1
        else:
            remaining.append(violation)
    stale = [
        BaselineEntry(rule, path, message, leftover)
        for (rule, path, message), leftover in sorted(capacity.items())
        if leftover > 0
    ]
    return BaselineOutcome(remaining, suppressed, stale)


def baseline_payload(result: LintResult, baseline_path: str | Path) -> dict:
    """The file content acknowledging every current finding."""
    marker = Baseline(Path(baseline_path), [])
    counts: dict[tuple[str, str, str], int] = {}
    for violation in result.violations:
        key = (
            violation.rule,
            marker.normalize(violation.path),
            violation.message,
        )
        counts[key] = counts.get(key, 0) + 1
    return {
        "version": _VERSION,
        "entries": [
            {"rule": rule, "path": path, "message": message, "count": count}
            for (rule, path, message), count in sorted(counts.items())
        ],
    }


def write_baseline(result: LintResult, baseline_path: str | Path) -> int:
    """Rewrite the baseline to the current findings; returns the entry
    count."""
    payload = baseline_payload(result, baseline_path)
    Path(baseline_path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(payload["entries"])
