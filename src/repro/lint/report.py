"""Reporters for lint results: human text and machine JSON.

The JSON shape is stable (``version`` guards it) because CI uploads it
as an artifact next to the torture reports and downstream tooling
diffs it across runs.  Version 2 added the baseline accounting keys
(``baselined``, ``stale_baseline``).
"""

from __future__ import annotations

import json
from collections import Counter

from .baseline import BaselineOutcome
from .engine import RULES, LintResult

__all__ = ["render_text", "render_json", "result_as_dict"]


def _effective_violations(result: LintResult, baseline: BaselineOutcome | None):
    return result.violations if baseline is None else baseline.remaining


def render_text(
    result: LintResult, baseline: BaselineOutcome | None = None
) -> str:
    """One ``path:line:col: RULE message`` line per finding + summary."""
    violations = _effective_violations(result, baseline)
    lines = [v.render() for v in violations]
    if violations:
        by_rule = Counter(v.rule for v in violations)
        breakdown = ", ".join(f"{rule} x{n}" for rule, n in sorted(by_rule.items()))
        lines.append(
            f"{len(violations)} violation(s) in "
            f"{result.files_checked} file(s): {breakdown}"
        )
    else:
        lines.append(
            f"clean: {result.files_checked} file(s), "
            f"{len(result.rules_run)} rule(s)"
        )
    if baseline is not None:
        if baseline.suppressed:
            lines.append(f"{baseline.suppressed} finding(s) baselined")
        for entry in baseline.stale:
            lines.append(
                f"stale baseline entry ({entry.count} unmatched): "
                f"{entry.path}: {entry.rule} {entry.message} "
                "— run --update-baseline to drop it"
            )
    return "\n".join(lines)


def result_as_dict(
    result: LintResult, baseline: BaselineOutcome | None = None
) -> dict:
    """The artifact schema CI archives (see docs/ANALYSIS.md)."""
    violations = _effective_violations(result, baseline)
    return {
        "version": 2,
        "ok": not violations,
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "counts": dict(Counter(v.rule for v in violations)),
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in violations
        ],
        "baselined": 0 if baseline is None else baseline.suppressed,
        "stale_baseline": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "message": entry.message,
                "count": entry.count,
            }
            for entry in ([] if baseline is None else baseline.stale)
        ],
    }


def render_json(
    result: LintResult, baseline: BaselineOutcome | None = None
) -> str:
    return json.dumps(
        result_as_dict(result, baseline), indent=2, sort_keys=True
    )


def render_rule_list() -> str:
    """``--list-rules`` output: id, name, scope, summary."""
    lines = []
    for rule in sorted(RULES.values(), key=lambda r: r.id):
        scope = ", ".join(rule.scopes) if rule.scopes else "tree-wide"
        lines.append(f"{rule.id}  {rule.name:24s} [{scope}] {rule.summary}")
    return "\n".join(lines)
