"""Reporters for lint results: human text and machine JSON.

The JSON shape is stable (``version`` guards it) because CI uploads it
as an artifact next to the torture reports and downstream tooling
diffs it across runs.
"""

from __future__ import annotations

import json
from collections import Counter

from .engine import RULES, LintResult

__all__ = ["render_text", "render_json", "result_as_dict"]


def render_text(result: LintResult) -> str:
    """One ``path:line:col: RULE message`` line per finding + summary."""
    lines = [v.render() for v in result.violations]
    if result.violations:
        by_rule = Counter(v.rule for v in result.violations)
        breakdown = ", ".join(f"{rule} x{n}" for rule, n in sorted(by_rule.items()))
        lines.append(
            f"{len(result.violations)} violation(s) in "
            f"{result.files_checked} file(s): {breakdown}"
        )
    else:
        lines.append(
            f"clean: {result.files_checked} file(s), "
            f"{len(result.rules_run)} rule(s)"
        )
    return "\n".join(lines)


def result_as_dict(result: LintResult) -> dict:
    """The artifact schema CI archives (see docs/ANALYSIS.md)."""
    return {
        "version": 1,
        "ok": result.ok,
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "counts": dict(Counter(v.rule for v in result.violations)),
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in result.violations
        ],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(result_as_dict(result), indent=2, sort_keys=True)


def render_rule_list() -> str:
    """``--list-rules`` output: id, name, scope, summary."""
    lines = []
    for rule in sorted(RULES.values(), key=lambda r: r.id):
        scope = ", ".join(rule.scopes) if rule.scopes else "tree-wide"
        lines.append(f"{rule.id}  {rule.name:24s} [{scope}] {rule.summary}")
    return "\n".join(lines)
