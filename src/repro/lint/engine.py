"""Rule engine for the protocol-aware static-analysis pass.

A *rule* is a named check over one parsed module (or, for cross-module
checks such as wire-tag collisions, over the whole tree at once).
Rules are registered with the :func:`rule` / :func:`tree_rule`
decorators and can be scoped to dotted-package prefixes, so e.g. the
determinism rules only fire inside ``repro.core``, ``repro.sim`` and
``repro.storage`` while the hygiene rules cover everything.

Suppression uses in-source pragmas:

* ``# lint: disable=D101,H401`` on the flagged line silences those
  rules for that line (``all`` silences every rule);
* ``# lint: disable-file=W304`` anywhere in a file silences a rule for
  the whole file.

Pragmas are the escape hatch for *documented false positives* — every
use should sit next to a comment explaining why the flagged pattern is
safe (see docs/ANALYSIS.md).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Violation",
    "Rule",
    "Module",
    "LintResult",
    "RULES",
    "rule",
    "tree_rule",
    "run_lint",
    "check_source",
    "load_module",
    "imported_names",
    "qualified_name",
    "iter_async_body",
    "PARSE_ERROR_RULE",
]

#: Pseudo-rule id attached to files that fail to parse.
PARSE_ERROR_RULE = "E001"

_PRAGMA = re.compile(
    r"#\s*lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_*,\s]+)"
)


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: ``path:line:col: rule message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Rule:
    """A registered check.

    ``check`` receives one :class:`Module` (per-module rules) or the
    full module list (tree rules) and yields :class:`Violation`.
    """

    id: str
    name: str
    summary: str
    scopes: tuple[str, ...]
    check: Callable[..., Iterable[Violation]]
    tree: bool = False

    def applies_to(self, module_name: str) -> bool:
        if not self.scopes:
            return True
        return any(
            module_name == scope or module_name.startswith(scope + ".")
            for scope in self.scopes
        )


@dataclass
class Module:
    """A parsed source file plus its pragma map."""

    path: str
    name: str
    source: str
    tree: ast.Module
    line_disables: dict[int, set[str]] = field(default_factory=dict)
    file_disables: set[str] = field(default_factory=set)

    def suppressed(self, violation: Violation) -> bool:
        if "all" in self.file_disables or violation.rule in self.file_disables:
            return True
        disabled = self.line_disables.get(violation.line, ())
        return "all" in disabled or violation.rule in disabled


@dataclass
class LintResult:
    """Everything one pass produced, for the reporters."""

    violations: list[Violation]
    files_checked: int
    rules_run: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


#: Global registry, populated by the ``rules_*`` modules at import.
RULES: dict[str, Rule] = {}


def rule(
    id: str, name: str, summary: str, *, scopes: Sequence[str] = ()
) -> Callable[[Callable[[Module], Iterable[Violation]]], Callable[..., Iterable[Violation]]]:
    """Register a per-module rule."""

    def register(fn: Callable[[Module], Iterable[Violation]]) -> Callable[..., Iterable[Violation]]:
        if id in RULES:
            raise ValueError(f"duplicate rule id {id}")
        RULES[id] = Rule(id, name, summary, tuple(scopes), fn)
        return fn

    return register


def tree_rule(
    id: str, name: str, summary: str
) -> Callable[[Callable[[list[Module]], Iterable[Violation]]], Callable[..., Iterable[Violation]]]:
    """Register a whole-tree rule (sees every module at once)."""

    def register(
        fn: Callable[[list[Module]], Iterable[Violation]]
    ) -> Callable[..., Iterable[Violation]]:
        if id in RULES:
            raise ValueError(f"duplicate rule id {id}")
        RULES[id] = Rule(id, name, summary, (), fn, tree=True)
        return fn

    return register


# ----------------------------------------------------------------------
# Shared AST helpers used by the rule modules.


def imported_names(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origin they were imported from.

    ``import random`` maps ``random -> random``; ``from time import
    monotonic`` maps ``monotonic -> time.monotonic``; aliases follow
    the ``asname``.  Relative imports are skipped (they are
    repro-internal and never name a banned module).
    """
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    out[root] = root
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def qualified_name(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Resolve ``random.random`` / ``datetime.now`` to a dotted origin.

    Walks an attribute chain down to its base :class:`ast.Name` and
    substitutes what that name was imported as; returns ``None`` for
    anything rooted in a local object (``self.rng.random`` resolves to
    nothing, which is exactly what the determinism rules want).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = imports.get(node.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


def iter_async_body(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Yield the nodes executed *by the coroutine itself*.

    Nested ``def``/``async def`` bodies are skipped: a sync closure
    defined inside a coroutine only blocks when something calls it, and
    a nested coroutine is scanned as its own scope.
    """
    stack: list[ast.AST] = [
        node
        for node in func.body
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


# ----------------------------------------------------------------------
# Module loading.


def _parse_pragmas(source: str) -> tuple[dict[int, set[str]], set[str]]:
    line_disables: dict[int, set[str]] = {}
    file_disables: set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        ids = {
            token.strip().replace("*", "all")
            for token in match.group("rules").split(",")
            if token.strip()
        }
        if match.group("kind") == "disable-file":
            file_disables |= ids
        else:
            line_disables.setdefault(lineno, set()).update(ids)
    return line_disables, file_disables


def module_name_for(path: Path) -> str:
    """Derive the dotted module name from a file path.

    Uses the last ``repro`` path component as the package root (the
    repo nests ``src/repro``); files outside any ``repro`` tree keep
    just their stem, which means package-scoped rules skip them.
    """
    parts = list(path.resolve().parts)
    name_parts = list(parts)
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            name_parts = parts[i:]
            break
    else:
        name_parts = [path.stem]
    dotted = ".".join(name_parts)
    if dotted.endswith(".py"):
        dotted = dotted[: -len(".py")]
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


def load_module(path: Path, name: str | None = None) -> Module | Violation:
    """Parse one file; a syntax error becomes an ``E001`` violation."""
    source = path.read_text(encoding="utf-8")
    return _build_module(source, str(path), name or module_name_for(path))


def _build_module(source: str, path: str, name: str) -> Module | Violation:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Violation(
            path, exc.lineno or 1, exc.offset or 0, PARSE_ERROR_RULE,
            f"file does not parse: {exc.msg}",
        )
    line_disables, file_disables = _parse_pragmas(source)
    return Module(path, name, source, tree, line_disables, file_disables)


def _collect_files(paths: Sequence[str | Path]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    seen: set[Path] = set()
    unique = []
    for f in files:
        resolved = f.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(f)
    return unique


def _select_rules(only: Sequence[str] | None) -> list[Rule]:
    # Rules register at import time: importing any repro.lint module
    # runs the package __init__, which imports every rules_* module.
    if only is None:
        return list(RULES.values())
    selected: dict[str, Rule] = {}
    unknown: list[str] = []
    for token in only:
        if token in RULES:
            selected[token] = RULES[token]
            continue
        # A family prefix selects every rule it matches: I -> I501...,
        # W3 -> W301..W305.
        matches = [r for rid, r in sorted(RULES.items()) if rid.startswith(token)]
        if matches:
            selected.update((r.id, r) for r in matches)
        else:
            unknown.append(token)
    if unknown:
        raise KeyError(f"unknown rule ids: {', '.join(sorted(unknown))}")
    return list(selected.values())


def _run_rules(modules: list[Module], rules: list[Rule]) -> list[Violation]:
    violations: list[Violation] = []
    by_path = {m.path: m for m in modules}
    for r in rules:
        if r.tree:
            found: Iterable[Violation] = r.check(modules)
        else:
            found = [
                v
                for m in modules
                if r.applies_to(m.name)
                for v in r.check(m)
            ]
        for v in found:
            module = by_path.get(v.path)
            if module is not None and module.suppressed(v):
                continue
            violations.append(v)
    return sorted(violations)


def run_lint(
    paths: Sequence[str | Path], *, rules: Sequence[str] | None = None
) -> LintResult:
    """Lint files/directories; directories are walked for ``*.py``."""
    selected = _select_rules(rules)
    modules: list[Module] = []
    violations: list[Violation] = []
    files = _collect_files(paths)
    for path in files:
        loaded = load_module(path)
        if isinstance(loaded, Violation):
            violations.append(loaded)
        else:
            modules.append(loaded)
    violations.extend(_run_rules(modules, selected))
    return LintResult(
        sorted(violations), len(files), tuple(sorted(r.id for r in selected))
    )


def check_source(
    source: str,
    module_name: str,
    *,
    path: str = "<string>",
    rules: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint a source string as if it were module ``module_name``.

    The test-fixture entry point: lets a test hand a snippet to one
    rule under any package name without touching the filesystem.
    """
    selected = _select_rules(rules)
    loaded = _build_module(source, path, module_name)
    if isinstance(loaded, Violation):
        return [loaded]
    return _run_rules([loaded], selected)
