"""W-rules: wire-schema consistency for the binary codecs.

Table 1 of the paper is a *byte* accounting, so every PDU in the tree
encodes to real bytes through :mod:`repro.net.wire`.  The codec
contract has three legs the runtime only checks at import or first
decode — these rules check them at review time instead:

* every codec class must have both directions (``encode_fields`` and a
  ``decode_fields`` classmethod) — W301;
* one-byte type tags must be unique across the whole tree, or two
  protocols' frames alias each other on the shared LAN — W302;
* every dataclass field of a codec must actually be serialized, or two
  peers silently disagree on state the sender thought it shipped —
  W303;
* a codec that is never ``register()``-ed can be encoded but never
  decoded by a receiver — W304;
* the observability event/metric records (``repro.obs`` dataclasses
  named ``*Event`` / ``*Record``) must keep every field JSON-encodable,
  or the JSONL trace writer dies at export time, long after the run
  that produced the data — W305.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import Module, Violation, rule, tree_rule

_CODEC_METHODS = {"encode_fields", "decode_fields"}


def _is_stub(fn: ast.FunctionDef) -> bool:
    """True for Protocol-style ``...`` / ``pass`` / docstring-only bodies."""
    for stmt in fn.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or Ellipsis
        return False
    return True


def _is_protocol(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if name == "Protocol":
            return True
    return False


def _codec_classes(module: Module) -> Iterator[tuple[ast.ClassDef, dict[str, ast.FunctionDef]]]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef) or _is_protocol(node):
            continue
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, ast.FunctionDef) and stmt.name in _CODEC_METHODS
        }
        if methods and not all(_is_stub(fn) for fn in methods.values()):
            yield node, methods


@rule(
    "W301",
    "one-way-codec",
    "codec class defines only one of encode_fields/decode_fields",
)
def check_codec_direction(module: Module) -> Iterator[Violation]:
    for cls, methods in _codec_classes(module):
        missing = _CODEC_METHODS - methods.keys()
        for name in sorted(missing):
            yield Violation(
                module.path, cls.lineno, cls.col_offset, "W301",
                f"{cls.name} defines {next(iter(methods))} but no {name}; "
                "every frame must round-trip (encode and decode)",
            )


def _int_constants(module: Module) -> dict[str, int]:
    """Module-level ``NAME = <int literal>`` bindings (the tag style)."""
    out: dict[str, int] = {}
    for stmt in module.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, int)
            and not isinstance(stmt.value.value, bool)
        ):
            out[stmt.targets[0].id] = stmt.value.value
    return out


def _register_calls(module: Module) -> Iterator[tuple[ast.Call, int | None, str | None]]:
    """``<registry>.register(tag, Cls, decoder)`` calls in a module.

    Yields ``(call, resolved_tag, class_name)``; the tag resolves
    through literal ints and module-level integer constants.
    """
    constants = _int_constants(module)
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "register"
            and len(node.args) >= 2
        ):
            tag_node = node.args[0]
            tag: int | None = None
            if isinstance(tag_node, ast.Constant) and isinstance(tag_node.value, int):
                tag = tag_node.value
            elif isinstance(tag_node, ast.Name):
                tag = constants.get(tag_node.id)
            cls_node = node.args[1]
            cls_name = cls_node.id if isinstance(cls_node, ast.Name) else None
            yield node, tag, cls_name


@tree_rule(
    "W302",
    "tag-collision",
    "two codecs registered under the same one-byte wire tag",
)
def check_tag_collisions(modules: list[Module]) -> Iterator[Violation]:
    seen: dict[int, tuple[str, int, str | None]] = {}
    for module in modules:
        for call, tag, cls_name in _register_calls(module):
            if tag is None:
                continue
            if tag in seen:
                first_path, first_line, first_cls = seen[tag]
                yield Violation(
                    module.path, call.lineno, call.col_offset, "W302",
                    f"wire tag {tag} for {cls_name or '<unknown>'} collides "
                    f"with {first_cls or '<unknown>'} "
                    f"({first_path}:{first_line}); tags must be unique "
                    "tree-wide",
                )
            else:
                seen[tag] = (module.path, call.lineno, cls_name)


def _self_attr_loads(fn: ast.FunctionDef) -> set[str]:
    """Names ``x`` for every ``self.x`` read anywhere in ``fn``."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            out.add(node.attr)
    return out


@rule(
    "W303",
    "unserialized-field",
    "dataclass field declared but never written by encode_fields",
)
def check_dead_fields(module: Module) -> Iterator[Violation]:
    for cls, methods in _codec_classes(module):
        encode = methods.get("encode_fields")
        if encode is None:
            continue
        serialized = _self_attr_loads(encode)
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name
            ):
                continue
            name = stmt.target.id
            annotation = ast.dump(stmt.annotation)
            if name.startswith("_") or "ClassVar" in annotation:
                continue
            if name not in serialized:
                yield Violation(
                    module.path, stmt.lineno, stmt.col_offset, "W303",
                    f"field {cls.name}.{name} is declared but never "
                    "serialized by encode_fields; receivers will "
                    "reconstruct it from defaults",
                )


#: Annotation atoms that json.dumps can always take (plus containers).
_JSON_ATOMS = {"str", "int", "float", "bool", "None", "dict", "list", "object"}
_JSON_CONTAINERS = {"dict", "list", "Mapping", "Sequence"}


def _json_encodable_annotation(node: ast.expr) -> bool:
    """Conservative check that an annotation only names JSON types.

    Accepts unions (``str | None``), string annotations, and
    ``dict[...]`` / ``list[...]`` with JSON-encodable parameters;
    anything it cannot positively recognize is rejected.
    """
    if isinstance(node, ast.Constant):
        if node.value is None:
            return True
        if isinstance(node.value, str):
            try:
                return _json_encodable_annotation(
                    ast.parse(node.value, mode="eval").body
                )
            except SyntaxError:
                return False
        return False
    if isinstance(node, ast.Name):
        return node.id in _JSON_ATOMS
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _json_encodable_annotation(node.left) and _json_encodable_annotation(
            node.right
        )
    if isinstance(node, ast.Subscript):
        if not (
            isinstance(node.value, ast.Name) and node.value.id in _JSON_CONTAINERS
        ):
            return False
        params = (
            node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
        )
        return all(_json_encodable_annotation(param) for param in params)
    return False


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = (
            target.attr
            if isinstance(target, ast.Attribute)
            else getattr(target, "id", "")
        )
        if name == "dataclass":
            return True
    return False


@rule(
    "W305",
    "non-json-event-field",
    "observability event/record dataclass field is not JSON-encodable",
    scopes=("repro.obs",),
)
def check_event_record_fields(module: Module) -> Iterator[Violation]:
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef) or _is_protocol(cls):
            continue
        if not (cls.name.endswith("Event") or cls.name.endswith("Record")):
            continue
        if not _is_dataclass(cls):
            continue
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name
            ):
                continue
            name = stmt.target.id
            if name.startswith("_") or "ClassVar" in ast.dump(stmt.annotation):
                continue
            if not _json_encodable_annotation(stmt.annotation):
                yield Violation(
                    module.path, stmt.lineno, stmt.col_offset, "W305",
                    f"field {cls.name}.{name} has a non-JSON-encodable "
                    "annotation; the JSONL trace writer would fail at "
                    "export time (allowed: str/int/float/bool/None and "
                    "dict/list of those)",
                )


@tree_rule(
    "W304",
    "unregistered-codec",
    "codec class never registered with a CodecRegistry",
)
def check_unregistered(modules: list[Module]) -> Iterator[Violation]:
    registered: set[str] = set()
    for module in modules:
        for _, _, cls_name in _register_calls(module):
            if cls_name is not None:
                registered.add(cls_name)
    for module in modules:
        for cls, methods in _codec_classes(module):
            if len(methods) == 2 and cls.name not in registered:
                yield Violation(
                    module.path, cls.lineno, cls.col_offset, "W304",
                    f"{cls.name} defines both codec directions but is never "
                    "register()-ed; receivers cannot dispatch its tag",
                )
