"""Shared-medium (Ethernet bus) timing model.

The paper's simulations sit on an Ethernet LAN.  The default network
model delivers every packet after a fixed half-rtd; this module adds
the shared-bus refinement: one transmission at a time, serialization
delay proportional to packet size, and queueing when the medium is
busy.  Under light load it degenerates to the fixed-delay model; as
offered load approaches the bus capacity, delivery (and hence the
paper's D) climbs — the saturation ablation exercises exactly that.

A broadcast is a *single* bus transmission heard by every station —
Ethernet's real multicast advantage over the n-unicast accounting.
"""

from __future__ import annotations

import random
from typing import Protocol

from ..errors import ConfigError
from ..types import Time
from .packet import Packet

__all__ = ["Medium", "EthernetBus", "FixedDelay", "JitteredDelay"]


class Medium(Protocol):
    """Timing model pluggable into :class:`~repro.net.network.DatagramNetwork`."""

    def schedule(self, packet: Packet, now: Time) -> Time:
        """Return the delivery time for ``packet`` sent at ``now``."""
        ...

    def utilization(self, now: Time) -> float:
        """Fraction of capacity in use at ``now`` (0.0 = idle)."""
        ...


class FixedDelay:
    """The default medium: constant one-way latency, infinite capacity."""

    def __init__(self, delay: Time = 0.5) -> None:
        if delay <= 0:
            raise ConfigError(f"delay must be positive, got {delay}")
        self.delay = delay

    def schedule(self, packet: Packet, now: Time) -> Time:
        """Return the delivery time for a packet sent at ``now``."""
        return now + self.delay

    def utilization(self, now: Time) -> float:
        return 0.0


class JitteredDelay:
    """Fixed base latency plus uniform jitter.

    The protocol's round schedule assumes the one-way delay fits in
    half a subrun; real LANs jitter.  This medium delivers at
    ``base + U(0, jitter)``: packets whose jitter pushes them past the
    round boundary arrive a round late and are absorbed by the normal
    recovery machinery — the asynchrony-tolerance experiment.
    """

    def __init__(
        self,
        base: Time = 0.35,
        jitter: Time = 0.1,
        *,
        rng: random.Random | None = None,
    ) -> None:
        if base <= 0:
            raise ConfigError(f"base delay must be positive, got {base}")
        if jitter < 0:
            raise ConfigError(f"jitter must be >= 0, got {jitter}")
        self.base = base
        self.jitter = jitter
        self._rng = rng or random.Random(0)
        self.late_count = 0

    def schedule(self, packet: Packet, now: Time) -> Time:
        delay = self.base + self._rng.uniform(0.0, self.jitter)
        if delay > 0.5:
            self.late_count += 1
        return now + delay

    def utilization(self, now: Time) -> float:
        return 0.0


class EthernetBus:
    """A half-duplex shared bus.

    Parameters
    ----------
    bandwidth:
        Capacity in bytes per rtd.  With the paper's framing (one
        subrun per rtd) a group of n processes offers roughly
        ``n * packet_size * 2`` data bytes plus control per rtd.
    propagation:
        Propagation + stack latency after serialization completes.
        The default (0.25 rtd) leaves headroom inside the half-rtd
        round so that, at light load, serialization + propagation still
        lands a packet before the next round boundary — the paper's
        round-synchronous schedule assumes the one-way delay fits in
        half a subrun.  Sustained overload pushes deliveries past the
        boundary and the protocol visibly degrades (rising D, late
        requests), which is exactly what the saturation ablation
        studies.

    The model is FIFO: transmissions serialize in send order, each
    occupying the bus for ``size / bandwidth`` rtd.
    """

    def __init__(self, bandwidth: float, *, propagation: Time = 0.25) -> None:
        if bandwidth <= 0:
            raise ConfigError(f"bandwidth must be positive, got {bandwidth}")
        if propagation < 0:
            raise ConfigError(f"propagation must be >= 0, got {propagation}")
        self.bandwidth = bandwidth
        self.propagation = propagation
        self._busy_until: Time = 0.0
        self._busy_accumulated: Time = 0.0

    def schedule(self, packet: Packet, now: Time) -> Time:
        """Claim the bus for ``packet``; return its delivery time.

        Queueing is implicit: if the bus is busy, serialization starts
        when it frees up.
        """
        start = max(now, self._busy_until)
        tx_time = packet.wire_size / self.bandwidth
        self._busy_until = start + tx_time
        self._busy_accumulated += tx_time
        return self._busy_until + self.propagation

    def utilization(self, now: Time) -> float:
        """Fraction of elapsed time the bus spent transmitting."""
        if now <= 0:
            return 0.0
        return min(self._busy_accumulated / now, 1.0)

    @property
    def backlog(self) -> Time:
        """How far ahead of 'now' the bus is already committed (set by
        the last schedule call)."""
        return self._busy_until
