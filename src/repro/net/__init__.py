"""Network substrate: datagram LAN, multicast transport, fault injection.

Implements the paper's Section 5 architecture from the transport
service down: binary wire codecs (so control-message sizes are measured
in real bytes, as Table 1 requires), an n-unicast multicast transport
with the ``(m, h, v, d)`` Request semantics, and a general-omission
fault plan covering crashes, send/receive omissions, and subnet loss.
"""

from .addressing import BROADCAST_GROUP, Address, GroupAddress, UnicastAddress
from .capture import CaptureRecord, Direction, PacketCapture
from .faults import CrashSchedule, DropDecision, FaultPlan, OmissionModel, PartitionMap
from .fragmentation import FRAGMENT_HEADER_BYTES, Fragmenter, Reassembler
from .network import DEFAULT_ONE_WAY_DELAY, ETHERNET_MTU, DatagramNetwork
from .packet import HEADER_OVERHEAD_BYTES, Packet
from .stats import KindStats, NetworkStats
from .topology import EthernetBus, FixedDelay, JitteredDelay
from .transport import MulticastTransport, Transfer, TransferStatus
from .wire import (
    CodecRegistry,
    Reader,
    Writer,
    decode_message,
    encode_message,
    global_registry,
)

__all__ = [
    "Address",
    "BROADCAST_GROUP",
    "GroupAddress",
    "UnicastAddress",
    "CrashSchedule",
    "DropDecision",
    "FaultPlan",
    "OmissionModel",
    "PartitionMap",
    "FRAGMENT_HEADER_BYTES",
    "Fragmenter",
    "Reassembler",
    "DEFAULT_ONE_WAY_DELAY",
    "DatagramNetwork",
    "ETHERNET_MTU",
    "HEADER_OVERHEAD_BYTES",
    "Packet",
    "KindStats",
    "NetworkStats",
    "CaptureRecord",
    "Direction",
    "PacketCapture",
    "EthernetBus",
    "FixedDelay",
    "JitteredDelay",
    "MulticastTransport",
    "Transfer",
    "TransferStatus",
    "CodecRegistry",
    "Reader",
    "Writer",
    "decode_message",
    "encode_message",
    "global_registry",
]
