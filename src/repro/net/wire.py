"""Binary wire codec primitives.

Table 1 of the paper compares *byte* sizes of control messages, so the
reproduction encodes every protocol message to a real byte string
rather than counting abstract fields.  This module provides the
low-level encode/decode helpers (fixed-width integers, varints, length-
prefixed collections) and a type-tag registry used by the message
classes in :mod:`repro.core.message` and the baselines.

The format is deliberately simple: network byte order, a one-byte type
tag, then type-specific fields.  It is a faithful stand-in for the
"fits into a single IP datagram" arithmetic in the paper.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Iterable, Protocol, Type, TypeVar

from ..errors import WireFormatError

__all__ = [
    "Reader",
    "Writer",
    "WireMessage",
    "BatchFrame",
    "CodecRegistry",
    "encode_message",
    "decode_message",
    "global_registry",
]

_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_F64 = struct.Struct("!d")

#: Memoized row codecs for the hot fixed-width vectors (the REQUEST /
#: DECISION ``last_processed`` / ``stable`` / … vectors are all u32
#: rows of length n, so one preallocated Struct per n covers them).
_VECTOR_STRUCTS: dict[int, struct.Struct] = {}


def _vector_struct(n: int) -> struct.Struct:
    codec = _VECTOR_STRUCTS.get(n)
    if codec is None:
        codec = _VECTOR_STRUCTS[n] = struct.Struct(f"!{n}I")
    return codec


class Writer:
    """Accumulates encoded fields into a byte string.

    Backed by a single growable :class:`bytearray` (not a part list),
    so hot-path encodes do one allocation per message; :meth:`reset`
    lets a codec reuse the buffer across messages.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def reset(self) -> None:
        """Drop accumulated bytes so the buffer can be reused."""
        del self._buf[:]

    def u8(self, value: int) -> "Writer":
        self._buf += _U8.pack(value)
        return self

    def u16(self, value: int) -> "Writer":
        self._buf += _U16.pack(value)
        return self

    def u32(self, value: int) -> "Writer":
        self._buf += _U32.pack(value)
        return self

    def u64(self, value: int) -> "Writer":
        self._buf += _U64.pack(value)
        return self

    def f64(self, value: float) -> "Writer":
        self._buf += _F64.pack(value)
        return self

    def boolean(self, value: bool) -> "Writer":
        return self.u8(1 if value else 0)

    def raw(self, data: bytes) -> "Writer":
        self._buf += data
        return self

    def pack(self, codec: struct.Struct, *values: object) -> "Writer":
        """Append several fixed-width fields in one preallocated-Struct
        pack call (the struct fast path; wire bytes are identical to
        the per-field encoding)."""
        self._buf += codec.pack(*values)
        return self

    def bytes_field(self, data: bytes) -> "Writer":
        """Length-prefixed (u16) byte string."""
        if len(data) > 0xFFFF:
            raise WireFormatError(f"bytes field too long: {len(data)}")
        self.u16(len(data))
        return self.raw(data)

    def u32_list(self, values: Iterable[int]) -> "Writer":
        """Length-prefixed (u16) list of u32.

        Encoded in one preallocated-Struct pack call — the wire bytes
        are identical to the per-element encoding.
        """
        vals = values if isinstance(values, (list, tuple)) else list(values)
        n = len(vals)
        if n > 0xFFFF:
            raise WireFormatError(f"list too long: {n}")
        self._buf += _U16.pack(n)
        if n:
            self._buf += _vector_struct(n).pack(*vals)
        return self

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class Reader:
    """Consumes fields from a byte string, raising on truncation."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise WireFormatError(
                f"truncated message: wanted {count} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos : end]
        self._pos = end
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self._take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack("!d", self._take(8))[0]

    def boolean(self) -> bool:
        return self.u8() != 0

    def bytes_field(self) -> bytes:
        return self._take(self.u16())

    def u32_list(self) -> list[int]:
        n = self.u16()
        if n == 0:
            return []
        return list(_vector_struct(n).unpack(self._take(4 * n)))

    def unpack(self, codec: struct.Struct) -> tuple:
        """Decode several fixed-width fields in one preallocated-Struct
        unpack call (the struct fast path mirroring :meth:`Writer.pack`)."""
        return codec.unpack(self._take(codec.size))

    def expect_end(self) -> None:
        """Raise unless the whole buffer has been consumed."""
        if self._pos != len(self._data):
            raise WireFormatError(
                f"{len(self._data) - self._pos} trailing bytes after message"
            )


class WireMessage(Protocol):
    """Anything encodable by a :class:`CodecRegistry`."""

    def encode_fields(self, writer: Writer) -> None: ...


M = TypeVar("M")


class CodecRegistry:
    """Maps one-byte type tags to message classes and decoders."""

    def __init__(self) -> None:
        self._by_tag: dict[int, tuple[type, Callable[[Reader], object]]] = {}
        self._by_type: dict[type, int] = {}
        # Encode-buffer reuse: one scratch Writer serves the non-nested
        # (hot) encode path; a nested encode falls back to a fresh one.
        self._scratch = Writer()
        self._scratch_busy = False

    def register(
        self, tag: int, cls: Type[M], decoder: Callable[[Reader], M]
    ) -> None:
        """Register ``cls`` under ``tag`` with its field decoder."""
        if tag in self._by_tag:
            raise WireFormatError(f"tag {tag} already registered for {self._by_tag[tag][0]}")
        if cls in self._by_type:
            raise WireFormatError(f"{cls} already registered")
        self._by_tag[tag] = (cls, decoder)
        self._by_type[cls] = tag

    def tag_of(self, cls: type) -> int:
        try:
            return self._by_type[cls]
        except KeyError:
            raise WireFormatError(f"{cls} is not a registered wire message") from None

    def registered(self) -> dict[int, type]:
        """Snapshot of tag -> message class (golden-vector tests)."""
        return {tag: entry[0] for tag, entry in self._by_tag.items()}

    def encode(self, message: WireMessage) -> bytes:
        if self._scratch_busy:
            writer = Writer()
        else:
            self._scratch_busy = True
            writer = self._scratch
            writer.reset()
        try:
            writer.u8(self.tag_of(type(message)))
            message.encode_fields(writer)
            return writer.getvalue()
        finally:
            if writer is self._scratch:
                self._scratch_busy = False

    def decode(self, data: bytes) -> object:
        """Decode untrusted bytes.

        Every failure — truncation, unknown tags, and any semantic
        validation a message constructor performs (e.g. a zero
        sequence number) — surfaces as :class:`WireFormatError`, so a
        receiver can treat "didn't parse" uniformly as a datagram loss.
        """
        reader = Reader(data)
        tag = reader.u8()
        entry = self._by_tag.get(tag)
        if entry is None:
            raise WireFormatError(f"unknown message tag {tag}")
        try:
            message = entry[1](reader)
        except WireFormatError:
            raise
        except Exception as exc:
            raise WireFormatError(
                f"malformed {entry[0].__name__}: {exc}"
            ) from exc
        reader.expect_end()
        return message


_TAG_BATCH_FRAME = 16


@dataclass(frozen=True)
class BatchFrame:
    """Wire envelope carrying several already-encoded messages.

    The throughput layer (:mod:`repro.core.batcher`) coalesces
    consecutive same-destination sends into one frame: a u16 count
    followed by length-prefixed sub-messages, each a complete
    tag-prefixed encoding.  The envelope is deliberately opaque — it
    lives at the wire layer and never interprets its payload, so the
    codec registry stays free of protocol dependencies.
    """

    frames: tuple[bytes, ...]

    def __post_init__(self) -> None:
        if not self.frames:
            raise WireFormatError("BatchFrame needs at least one sub-message")
        if len(self.frames) > 0xFFFF:
            raise WireFormatError(f"BatchFrame of {len(self.frames)} sub-messages")
        for frame in self.frames:
            if not frame:
                raise WireFormatError("BatchFrame sub-message is empty")
            if len(frame) > 0xFFFF:
                raise WireFormatError(
                    f"BatchFrame sub-message too long: {len(frame)}"
                )

    def encode_fields(self, writer: Writer) -> None:
        writer.u16(len(self.frames))
        for frame in self.frames:
            writer.bytes_field(frame)

    @classmethod
    def decode_fields(cls, reader: Reader) -> "BatchFrame":
        count = reader.u16()
        return cls(tuple(reader.bytes_field() for _ in range(count)))


#: Registry shared by the urcgc core and the baselines (distinct tags).
global_registry = CodecRegistry()
global_registry.register(_TAG_BATCH_FRAME, BatchFrame, BatchFrame.decode_fields)


def encode_message(message: WireMessage) -> bytes:
    """Encode ``message`` with the global registry."""
    return global_registry.encode(message)


def decode_message(data: bytes) -> object:
    """Decode a message encoded by :func:`encode_message`."""
    return global_registry.decode(data)
