"""General-omission fault injection.

The paper's failure model (Section 3) is *general omission*: a process
fails by crashing (fail-stop), or by omitting to send or to receive a
subset of the messages the protocol requires.  Subnetwork packet loss
and local buffer overflow are expressed as omissions too, so one model
covers everything the evaluation exercises.

Components:

* :class:`CrashSchedule` — fail-stop times per process, with optional
  *partial broadcast* on the crashing send (the paper assumes ``send``
  is not indivisible: "only a subset of the destination processes could
  receive the message").
* :class:`OmissionModel` — per-message send/receive omissions, either
  random (Bernoulli with rate ``1/n``) or periodic (every ``n``-th
  message, useful for exactly-reproducible failure patterns).
* :class:`PartitionMap` — directed reachability faults: symmetric or
  asymmetric network partitions, with heal.
* :class:`FaultPlan` — combines crashes, per-process omissions,
  partitions, and uniform link loss into the single predicate the
  network consults.

The same plan object drives both the simulator
(:class:`~repro.net.network.DatagramNetwork`) and the live asyncio
runtime (:class:`~repro.runtime.chaos.ChaosFabric`): the crash-agnostic
layers are exposed separately (:meth:`FaultPlan.check_send_faults` /
:meth:`FaultPlan.check_receive_faults`) because the runtime handles
fail-stop on a wall clock, where the simulator's "crash instant"
equality test cannot fire.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..errors import ConfigError
from ..types import ProcessId, Time
from .packet import Packet

__all__ = [
    "CrashSchedule",
    "OmissionModel",
    "PartitionMap",
    "FaultPlan",
    "DropDecision",
    "PacketMutator",
]


@dataclass(frozen=True)
class DropDecision:
    """Outcome of the fault check for one packet at one receiver."""

    dropped: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.dropped


_DELIVER = DropDecision(False)


class CrashSchedule:
    """Fail-stop schedule: each process crashes at most once."""

    def __init__(self) -> None:
        self._crash_time: dict[ProcessId, Time] = {}
        self._partial: dict[ProcessId, int] = {}

    def crash(self, pid: ProcessId, time: Time, *, partial_deliveries: int | None = None) -> None:
        """Schedule ``pid`` to crash at ``time``.

        ``partial_deliveries`` models an interrupted broadcast: of the
        multicast the process sends *at* its crash instant, only the
        first ``partial_deliveries`` destinations receive the packet.
        """
        if pid in self._crash_time:
            raise ConfigError(f"process {pid} already has a crash scheduled")
        if partial_deliveries is not None and partial_deliveries < 0:
            raise ConfigError("partial_deliveries must be >= 0")
        self._crash_time[pid] = time
        if partial_deliveries is not None:
            self._partial[pid] = partial_deliveries

    def crash_time(self, pid: ProcessId) -> Time | None:
        return self._crash_time.get(pid)

    def is_crashed(self, pid: ProcessId, now: Time) -> bool:
        time = self._crash_time.get(pid)
        return time is not None and now >= time

    def crashed_by(self, now: Time) -> set[ProcessId]:
        """All processes whose crash time has passed."""
        return {pid for pid, t in self._crash_time.items() if now >= t}

    def partial_budget(self, pid: ProcessId) -> int | None:
        """Remaining deliveries allowed for the crashing broadcast."""
        return self._partial.get(pid)

    def consume_partial(self, pid: ProcessId) -> bool:
        """Consume one delivery slot of the crashing broadcast.

        Returns True if the delivery is allowed (budget remained).
        """
        budget = self._partial.get(pid)
        if budget is None:
            return False
        if budget <= 0:
            return False
        self._partial[pid] = budget - 1
        return True

    def revive(self, pid: ProcessId) -> None:
        """Forget ``pid``'s crash: it recovered and rejoined as a new
        incarnation.  Idempotent; after revival ``pid`` may be crashed
        again (the once-per-process rule applies per incarnation)."""
        self._crash_time.pop(pid, None)
        self._partial.pop(pid, None)

    def __len__(self) -> int:
        return len(self._crash_time)


@dataclass
class OmissionModel:
    """Per-message omission process.

    ``rate`` is the paper's "one omission each N messages" expressed as
    a probability ``1/N``.  ``periodic=True`` drops exactly every Nth
    message instead of sampling, which some regression tests rely on.
    """

    rate: float = 0.0
    periodic: bool = False
    _counter: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ConfigError(f"omission rate must be in [0, 1), got {self.rate}")
        if self.periodic and self.rate > 0:
            # rate must be 1/N for integer N, but 1/N rarely round-trips
            # exactly in binary (1/49 reciprocates to 49.00000000000001),
            # so validate against the nearest integer with a tolerance.
            period = round(1.0 / self.rate)
            if period < 2 or abs(period * self.rate - 1.0) > 1e-9:
                raise ConfigError(
                    "periodic omission requires rate = 1/N for integer N >= 2, "
                    f"got {self.rate}"
                )

    def should_drop(self, rng: random.Random) -> bool:
        if self.rate <= 0.0:
            return False
        if self.periodic:
            period = round(1.0 / self.rate)
            self._counter += 1
            if self._counter >= period:
                self._counter = 0
                return True
            return False
        return rng.random() < self.rate


class PartitionMap:
    """Directed reachability faults: partitions that can heal.

    A *blocked* ``(src, dst)`` edge means datagrams from ``src`` never
    reach ``dst``.  Blocking single directed edges models the paper's
    asymmetric omissions at the subnetwork level (``src`` can hear
    ``dst`` but not vice versa); :meth:`partition` blocks both
    directions across whole islands at once.
    """

    def __init__(self) -> None:
        self._blocked: set[tuple[ProcessId, ProcessId]] = set()

    def block(self, src: ProcessId, dst: ProcessId) -> None:
        """Block the directed edge ``src -> dst`` (asymmetric)."""
        self._blocked.add((src, dst))

    def unblock(self, src: ProcessId, dst: ProcessId) -> None:
        self._blocked.discard((src, dst))

    def partition(self, *islands: Iterable[ProcessId]) -> None:
        """Split the group into ``islands``: traffic flows within an
        island but no datagram crosses between two islands (both
        directions blocked).  Composes with existing blocks."""
        groups = [list(island) for island in islands]
        for i, a in enumerate(groups):
            for b in groups[i + 1:]:
                for src in a:
                    for dst in b:
                        self._blocked.add((src, dst))
                        self._blocked.add((dst, src))

    def heal(self) -> None:
        """Remove every block: the network is whole again."""
        self._blocked.clear()

    def blocks(self, src: ProcessId, dst: ProcessId) -> bool:
        return (src, dst) in self._blocked

    def __len__(self) -> int:
        """Number of blocked directed edges."""
        return len(self._blocked)

    def __bool__(self) -> bool:
        return bool(self._blocked)


#: Send-side custom drop predicate: ``f(packet, now) -> bool`` (True drops).
SendFilter = Callable[[Packet, Time], bool]

#: Receive-side custom drop predicate: ``f(packet, dst, now) -> bool``
#: (True drops the copy bound for ``dst`` only).
ReceiveFilter = Callable[[Packet, ProcessId, Time], bool]

#: Adversarial per-destination payload rewrite: ``f(packet, dst, now)``
#: returns replacement payload bytes for the copy bound for ``dst``, or
#: None to leave it untouched.  Unlike :meth:`FaultPlan.maybe_corrupt`
#: (random bit flips, usually caught at decode) a mutator crafts
#: *structurally valid* adversarial bytes — forged dependency vectors,
#: equivocating decisions — that exercise the semantic defenses
#: (PROTOCOL §13).  Because the rewrite is per destination, the same
#: multicast can say different things to different members.
PacketMutator = Callable[[Packet, ProcessId, Time], Optional[bytes]]


class FaultPlan:
    """Everything that can go wrong, queried per packet.

    The network calls :meth:`check_send` once per transmission and
    :meth:`check_receive` once per (packet, destination) pair, so a
    send omission of a multicast drops the message for *all*
    destinations while a receive omission is per-destination —
    matching the general-omission model.

    Custom filters
    --------------
    ``custom_send_filter`` is called as ``f(packet, now)`` once per
    transmission; ``custom_receive_filter`` as ``f(packet, dst, now)``
    once per (packet, destination) pair.  Returning True drops the
    packet (send side) or that destination's copy (receive side).
    """

    def __init__(
        self,
        *,
        crashes: CrashSchedule | None = None,
        partitions: PartitionMap | None = None,
        link_loss: float = 0.0,
        corruption: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        if not 0.0 <= link_loss < 1.0:
            raise ConfigError(f"link loss must be in [0, 1), got {link_loss}")
        if not 0.0 <= corruption < 1.0:
            raise ConfigError(f"corruption must be in [0, 1), got {corruption}")
        self.corruption = corruption
        #: Optional (start, end) time window outside which the
        #: omission models are dormant — the paper's Figure 6 scenario
        #: confines failures to "the first 5 rtd".
        self.omission_window: tuple[Time, Time] | None = None
        self.crashes = crashes or CrashSchedule()
        self.partitions = partitions or PartitionMap()
        self.link_loss = link_loss
        self._rng = rng or random.Random(0)
        self._send_omission: dict[ProcessId, OmissionModel] = {}
        self._recv_omission: dict[ProcessId, OmissionModel] = {}
        #: Optional deterministic drop predicates for surgical failure
        #: injection in tests; see the class docstring for signatures.
        self.custom_send_filter: Optional[SendFilter] = None
        self.custom_receive_filter: Optional[ReceiveFilter] = None
        #: Adversarial per-destination payload rewriters, applied in
        #: registration order at delivery time (see :data:`PacketMutator`).
        self._mutators: list[PacketMutator] = []
        #: ``(src, kind)`` pairs whose sends are silently suppressed —
        #: the alive-but-suspected fault (e.g. heartbeat suppression).
        self._suppressed_kinds: set[tuple[ProcessId, str]] = set()

    def add_mutator(self, mutator: PacketMutator) -> None:
        """Register an adversarial payload rewriter (PROTOCOL §13)."""
        self._mutators.append(mutator)

    def suppress_kind(self, src: ProcessId, kind: str) -> None:
        """Silently drop every ``kind`` packet ``src`` sends, leaving
        all its other traffic intact — the surgical fault that makes a
        live process look dead to one detector channel."""
        self._suppressed_kinds.add((src, kind))

    def unsuppress_kind(self, src: ProcessId, kind: str) -> None:
        self._suppressed_kinds.discard((src, kind))

    def mutate(self, packet: Packet, dst: ProcessId, now: Time) -> bytes | None:
        """Run the mutator chain for ``dst``'s copy of ``packet``.

        Returns the rewritten payload, or None when every mutator left
        it alone.  Mutators compose: each sees the previous rewrite.
        """
        if not self._mutators:
            return None
        payload: bytes | None = None
        current = packet
        for mutator in self._mutators:
            replacement = mutator(current, dst, now)
            if replacement is not None:
                payload = replacement
                current = Packet(packet.src, packet.dst, payload, packet.kind)
        return payload

    def set_send_omission(self, pid: ProcessId, model: OmissionModel) -> None:
        self._send_omission[pid] = model

    def set_receive_omission(self, pid: ProcessId, model: OmissionModel) -> None:
        self._recv_omission[pid] = model

    def set_uniform_omission(
        self, pids: list[ProcessId], rate: float, *, periodic: bool = False
    ) -> None:
        """Give every listed process independent send+receive omission."""
        for pid in pids:
            self.set_send_omission(pid, OmissionModel(rate, periodic=periodic))
            self.set_receive_omission(pid, OmissionModel(rate, periodic=periodic))

    def set_omission_window(self, start: Time, end: Time) -> None:
        """Confine the omission models to ``start <= now < end``."""
        if end <= start:
            raise ConfigError(f"empty omission window [{start}, {end})")
        self.omission_window = (start, end)

    def _omission_active(self, now: Time) -> bool:
        if self.omission_window is None:
            return True
        start, end = self.omission_window
        return start <= now < end

    def is_crashed(self, pid: ProcessId, now: Time) -> bool:
        return self.crashes.is_crashed(pid, now)

    def check_send(self, packet: Packet, now: Time) -> DropDecision:
        """Fault check on the sender side (one per transmission)."""
        src = packet.src
        if self.crashes.is_crashed(src, now):
            # A crashing process may still complete part of the
            # broadcast issued at the crash instant.
            if self.crashes.crash_time(src) == now and self.crashes.partial_budget(src) is not None:
                return _DELIVER  # budget consumed per-destination in check_receive
            return DropDecision(True, "src-crashed")
        return self.check_send_faults(packet, now)

    def check_send_faults(self, packet: Packet, now: Time) -> DropDecision:
        """Send-side checks *below* the fail-stop layer (custom filter
        and send omission).  Drivers that manage crashes themselves —
        the live :class:`~repro.runtime.chaos.ChaosFabric` runs on a
        wall clock where the crash-instant equality above cannot fire —
        call this directly."""
        src = packet.src
        if (src, packet.kind) in self._suppressed_kinds:
            return DropDecision(True, "kind-suppressed")
        if self.custom_send_filter is not None and self.custom_send_filter(packet, now):
            return DropDecision(True, "custom-send")
        model = self._send_omission.get(src)
        if (
            model is not None
            and self._omission_active(now)
            and model.should_drop(self._rng)
        ):
            return DropDecision(True, "send-omission")
        return _DELIVER

    def check_receive(self, packet: Packet, dst: ProcessId, now: Time) -> DropDecision:
        """Fault check on the receiver side (one per destination)."""
        src = packet.src
        if self.crashes.is_crashed(src, now) and self.crashes.crash_time(src) == now:
            if not self.crashes.consume_partial(src):
                return DropDecision(True, "src-crashed-midsend")
        if self.crashes.is_crashed(dst, now):
            return DropDecision(True, "dst-crashed")
        return self.check_receive_faults(packet, dst, now)

    def check_receive_faults(self, packet: Packet, dst: ProcessId, now: Time) -> DropDecision:
        """Receive-side checks *below* the fail-stop layer (partition,
        custom filter, link loss, receive omission); see
        :meth:`check_send_faults` for who calls this directly."""
        src = packet.src
        if self.partitions.blocks(src, dst):
            return DropDecision(True, "partition")
        if self.custom_receive_filter is not None and self.custom_receive_filter(
            packet, dst, now
        ):
            return DropDecision(True, "custom-receive")
        if self.link_loss > 0.0 and self._rng.random() < self.link_loss:
            return DropDecision(True, "link-loss")
        model = self._recv_omission.get(dst)
        if (
            model is not None
            and self._omission_active(now)
            and model.should_drop(self._rng)
        ):
            return DropDecision(True, "receive-omission")
        return _DELIVER

    def maybe_corrupt(self, payload: bytes) -> bytes | None:
        """Return a bit-flipped copy of ``payload`` with probability
        ``corruption`` (None = deliver intact).

        A corrupted datagram reaches the receiver but fails to parse —
        the checksum-failure flavour of omission, handled by the
        network as a drop at delivery time.
        """
        if self.corruption <= 0.0 or not payload:
            return None
        if self._rng.random() >= self.corruption:
            return None
        index = self._rng.randrange(len(payload))
        flipped = payload[index] ^ (1 << self._rng.randrange(8))
        return payload[:index] + bytes([flipped]) + payload[index + 1:]
