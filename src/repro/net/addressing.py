"""Addresses and groups for the datagram network substrate.

The paper's transport primitive takes a destination ``m`` that is
"either a multicast or unicast address"; we model both with a small
frozen :class:`Address` type.  A :class:`GroupAddress` expands to the
member set registered with the network (n-unicast semantics, matching
the paper's Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..types import ProcessId

__all__ = ["Address", "UnicastAddress", "GroupAddress", "BROADCAST_GROUP"]


@dataclass(frozen=True)
class Address:
    """Base class for network destinations."""

    def is_multicast(self) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class UnicastAddress(Address):
    """A single endpoint, identified by its process id."""

    pid: ProcessId

    def is_multicast(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"p{self.pid}"


@dataclass(frozen=True)
class GroupAddress(Address):
    """A named multicast group resolved by the network at send time."""

    name: str

    def is_multicast(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"group:{self.name}"


#: The default group every simulated process joins.
BROADCAST_GROUP = GroupAddress("G")
