"""Traffic accounting for the datagram network.

Table 1 of the paper reports the *amount of control messages and their
size in bytes* for urcgc and CBCAST under reliable and crash
conditions.  :class:`NetworkStats` accumulates exactly that: per-kind
packet counts, byte volumes, and size extrema, measured at send time
(offered network load) and at delivery time (carried load).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from .packet import Packet

__all__ = ["MetricSink", "KindStats", "NetworkStats"]


class MetricSink(Protocol):
    """The slice of :class:`repro.obs.Registry` this layer records into.

    A structural protocol (not an import) so the net layer stays free
    of an obs dependency cycle; any registry-shaped object qualifies.
    """

    def count(self, name: str, amount: int = 1, **labels: object) -> None:
        """Increment counter ``name`` for the given label set."""
        ...


@dataclass
class KindStats:
    """Counts and sizes for one packet kind."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    sent_bytes: int = 0
    delivered_bytes: int = 0
    max_size: int = 0
    min_size: int | None = None

    def record_sent(self, size: int) -> None:
        self.sent += 1
        self.sent_bytes += size
        self.max_size = max(self.max_size, size)
        self.min_size = size if self.min_size is None else min(self.min_size, size)

    def record_delivered(self, size: int) -> None:
        self.delivered += 1
        self.delivered_bytes += size

    def record_dropped(self) -> None:
        self.dropped += 1

    @property
    def mean_size(self) -> float:
        return self.sent_bytes / self.sent if self.sent else 0.0


class NetworkStats:
    """Aggregated per-kind traffic statistics.

    Besides the per-kind counters, every drop is attributed to a cause
    (``"send-omission"``, ``"partition"``, ``"src-crashed"``, …) in
    :attr:`drop_reasons`, so a fault-injection run can be audited for
    *which* faults actually fired, not just how many packets died.
    """

    def __init__(self) -> None:
        self._kinds: dict[str, KindStats] = {}
        #: Drop cause -> count (empty string groups unattributed drops).
        self.drop_reasons: dict[str, int] = {}
        self._registry: MetricSink | None = None
        self._prefix = "net"

    def bind(self, registry: MetricSink, *, prefix: str = "net") -> None:
        """Mirror every count into a shared observability registry.

        Packet counts and byte volumes then appear as labelled
        ``<prefix>.sent`` / ``.delivered`` / ``.dropped`` (+ ``_bytes``)
        counter families next to the rest of the run's metrics, so one
        exporter covers the Table 1 accounting too.
        """
        self._registry = registry
        self._prefix = prefix

    def _kind(self, kind: str) -> KindStats:
        stats = self._kinds.get(kind)
        if stats is None:
            stats = self._kinds[kind] = KindStats()
        return stats

    def on_sent(self, packet: Packet) -> None:
        self._kind(packet.kind).record_sent(packet.wire_size)
        if self._registry is not None:
            self._registry.count(f"{self._prefix}.sent", kind=packet.kind)
            self._registry.count(
                f"{self._prefix}.sent_bytes", packet.wire_size, kind=packet.kind
            )

    def on_delivered(self, packet: Packet) -> None:
        self._kind(packet.kind).record_delivered(packet.wire_size)
        if self._registry is not None:
            self._registry.count(f"{self._prefix}.delivered", kind=packet.kind)
            self._registry.count(
                f"{self._prefix}.delivered_bytes", packet.wire_size, kind=packet.kind
            )

    def on_dropped(self, packet: Packet, reason: str = "") -> None:
        self._kind(packet.kind).record_dropped()
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1
        if self._registry is not None:
            self._registry.count(
                f"{self._prefix}.dropped", kind=packet.kind, reason=reason
            )

    def dropped_for(self, reason: str) -> int:
        """Drops attributed to ``reason`` (0 if never seen)."""
        return self.drop_reasons.get(reason, 0)

    def kind(self, kind: str) -> KindStats:
        """Stats for one kind (zeros if never seen)."""
        return self._kinds.get(kind, KindStats())

    def kinds(self) -> list[str]:
        return sorted(self._kinds)

    def total(self, *, control_only: bool = False) -> KindStats:
        """Aggregate over kinds; ``control_only`` excludes ``data``."""
        total = KindStats()
        for kind, stats in self._kinds.items():
            if control_only and kind == "data":
                continue
            total.sent += stats.sent
            total.delivered += stats.delivered
            total.dropped += stats.dropped
            total.sent_bytes += stats.sent_bytes
            total.delivered_bytes += stats.delivered_bytes
            total.max_size = max(total.max_size, stats.max_size)
            if stats.min_size is not None:
                total.min_size = (
                    stats.min_size
                    if total.min_size is None
                    else min(total.min_size, stats.min_size)
                )
        return total

    def as_rows(self) -> list[tuple[str, int, int, int, float, int]]:
        """Rows of (kind, sent, delivered, dropped, mean size, max size)."""
        return [
            (
                kind,
                s.sent,
                s.delivered,
                s.dropped,
                s.mean_size,
                s.max_size,
            )
            for kind, s in sorted(self._kinds.items())
        ]
