"""The simulated datagram network.

A LAN-style network: any endpoint can send a datagram to a unicast
address or to a multicast group; multicast uses *n*-unicast semantics
(the paper's Section 5: "the semantics of this service correspond to
the n-unicast semantics").  Delivery takes one half round-trip delay by
default — a packet sent at the start of round ``r`` is on the receiver
before round ``r + 1`` fires — and every transmission passes through
the :class:`~repro.net.faults.FaultPlan`.

The network never delivers to a crashed process, never carries packets
from a crashed process (except the partial final broadcast), and
accounts every packet in :class:`~repro.net.stats.NetworkStats`.
"""

from __future__ import annotations

from typing import Callable

from ..errors import (
    ConfigError,
    PacketTooLargeError,
    UnknownAddressError,
    WireFormatError,
)
from ..sim.events import PRIORITY_NETWORK
from ..sim.kernel import Kernel
from ..types import ProcessId, Time
from .addressing import Address, GroupAddress, UnicastAddress
from .faults import FaultPlan
from .packet import Packet
from .stats import NetworkStats
from .topology import Medium

__all__ = ["DatagramNetwork", "DEFAULT_ONE_WAY_DELAY", "ETHERNET_MTU"]

#: One-way latency in rtd units: half a round trip, by definition.
DEFAULT_ONE_WAY_DELAY: Time = 0.5

#: Classic Ethernet payload budget, the paper's framing for "processes
#: in the group become 40 if the maximum allowed data field of an
#: Ethernet packet is considered".
ETHERNET_MTU = 1500

PacketHandler = Callable[[Packet], None]


class DatagramNetwork:
    """An unreliable, unordered datagram service over a LAN.

    Parameters
    ----------
    kernel:
        The event kernel packets are scheduled on.
    faults:
        Fault plan; defaults to a fault-free network.
    one_way_delay:
        Latency from send to delivery, in rtd units.
    mtu:
        Maximum packet size on the wire (payload + header); ``None``
        disables the check.
    """

    def __init__(
        self,
        kernel: Kernel,
        *,
        faults: FaultPlan | None = None,
        one_way_delay: Time = DEFAULT_ONE_WAY_DELAY,
        mtu: int | None = None,
        medium: Medium | None = None,
    ) -> None:
        if one_way_delay <= 0:
            raise ConfigError(f"one_way_delay must be positive, got {one_way_delay}")
        self._kernel = kernel
        self.faults = faults or FaultPlan()
        self.one_way_delay = one_way_delay
        #: Timing model; anything with schedule(packet, now) -> time.
        #: Defaults to fixed delay; pass an EthernetBus for a shared,
        #: saturable medium.
        self.medium = medium
        self.mtu = mtu
        self.stats = NetworkStats()
        self._handlers: dict[ProcessId, PacketHandler] = {}
        self._groups: dict[str, list[ProcessId]] = {}

    # -- endpoint / group management -----------------------------------

    def attach(self, pid: ProcessId, handler: PacketHandler) -> None:
        """Register the receive handler for endpoint ``pid``."""
        self._handlers[pid] = handler

    def detach(self, pid: ProcessId) -> None:
        """Remove an endpoint (silently ignores unknown pids)."""
        self._handlers.pop(pid, None)
        for members in self._groups.values():
            if pid in members:
                members.remove(pid)

    def join(self, group: GroupAddress, pid: ProcessId) -> None:
        """Add ``pid`` to ``group`` (idempotent)."""
        members = self._groups.setdefault(group.name, [])
        if pid not in members:
            members.append(pid)

    def members(self, group: GroupAddress) -> list[ProcessId]:
        """Current members of ``group`` in join order."""
        return list(self._groups.get(group.name, []))

    def endpoints(self) -> list[ProcessId]:
        return sorted(self._handlers)

    # -- sending --------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Transmit ``packet``; delivery is scheduled asynchronously.

        A multicast destination fans out to every group member except
        the sender (protocols deliver their own messages locally).
        """
        if self.mtu is not None and packet.wire_size > self.mtu:
            raise PacketTooLargeError(
                f"{packet!r} is {packet.wire_size}B, exceeds MTU {self.mtu}"
            )
        self.stats.on_sent(packet)
        now = self._kernel.now
        decision = self.faults.check_send(packet, now)
        destinations = self._expand(packet.dst, packet.src)
        if decision.dropped:
            self.stats.on_dropped(packet, decision.reason)
            self._kernel.trace.emit(
                now, "net.drop", packet.src, reason=decision.reason, uid=packet.uid
            )
            return
        # One bus transmission serves every destination (broadcast
        # medium); the fixed-delay default behaves identically.
        if self.medium is not None:
            deliver_at = self.medium.schedule(packet, now)
        else:
            deliver_at = now + self.one_way_delay
        for dst in destinations:
            self._transmit(packet, dst, now, deliver_at)

    def _expand(self, dst: Address, src: ProcessId) -> list[ProcessId]:
        if isinstance(dst, UnicastAddress):
            return [dst.pid]
        if isinstance(dst, GroupAddress):
            members = self._groups.get(dst.name)
            if members is None:
                raise UnknownAddressError(dst.name)
            return [pid for pid in members if pid != src]
        raise UnknownAddressError(str(dst))

    def _transmit(
        self, packet: Packet, dst: ProcessId, now: Time, deliver_at: Time
    ) -> None:
        decision = self.faults.check_receive(packet, dst, now)
        if decision.dropped:
            self.stats.on_dropped(packet, decision.reason)
            self._kernel.trace.emit(
                now, "net.drop", dst, reason=decision.reason, uid=packet.uid
            )
            return
        self._kernel.schedule_at(
            deliver_at,
            lambda packet=packet, dst=dst: self._deliver(packet, dst),
            priority=PRIORITY_NETWORK,
            label=f"deliver#{packet.uid}->p{dst}",
        )

    def _deliver(self, packet: Packet, dst: ProcessId) -> None:
        now = self._kernel.now
        # A destination that crashed while the packet was in flight
        # never sees it.
        if self.faults.is_crashed(dst, now):
            self.stats.on_dropped(packet, "dst-crashed-inflight")
            self._kernel.trace.emit(
                now, "net.drop", dst, reason="dst-crashed-inflight", uid=packet.uid
            )
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.stats.on_dropped(packet, "no-endpoint")
            self._kernel.trace.emit(now, "net.drop", dst, reason="no-endpoint", uid=packet.uid)
            return
        if self.faults.maybe_corrupt(packet.payload) is not None:
            # The datagram checksum catches the flipped bit: the packet
            # is discarded at the receiver's network layer.
            self.stats.on_dropped(packet, "corrupt")
            self._kernel.trace.emit(
                now, "net.drop", dst, reason="corrupt", uid=packet.uid
            )
            return
        mutated = self.faults.mutate(packet, dst, now)
        if mutated is not None:
            # An adversarial rewrite of this destination's copy
            # (PROTOCOL §13): delivered as-is — surviving it is the
            # receiver's decode/validation layer's job.
            packet = Packet(packet.src, packet.dst, mutated, packet.kind)
        self.stats.on_delivered(packet)
        try:
            handler(packet)
        except WireFormatError:
            # Defense in depth: anything that still fails to parse is
            # treated as a loss, never as a crash of the simulation.
            self.stats.on_dropped(packet, "unparseable")
            self._kernel.trace.emit(
                now, "net.drop", dst, reason="unparseable", uid=packet.uid
            )
