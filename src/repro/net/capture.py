"""Packet capture: record and replay the traffic of a simulation.

A :class:`PacketCapture` taps the network and appends one record per
send/delivery/drop, with timestamps and wire bytes.  Captures can be
saved to a compact binary format (pcap-in-spirit, not libpcap) and
reloaded for offline analysis — decode any record back into its PDU
with the regular wire registry, filter by kind/direction/endpoint, and
summarize per-kind volumes.

Observability is half of running a group-communication service in
production; this is the repro's wire-level half (the protocol-level
half is :mod:`repro.analysis.timeline`).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from enum import IntEnum
from typing import BinaryIO, Callable

from ..errors import WireFormatError
from ..sim.kernel import Kernel
from ..types import ProcessId, Time
from .network import DatagramNetwork, PacketHandler
from .packet import Packet
from .wire import Reader, Writer, decode_message

__all__ = ["Direction", "CaptureRecord", "PacketCapture"]

_MAGIC = b"RPC1"  # Repro Packet Capture, format 1


class Direction(IntEnum):
    """What happened to the packet at this tap point."""

    SENT = 0
    DELIVERED = 1
    DROPPED = 2


@dataclass(frozen=True)
class CaptureRecord:
    """One captured event."""

    time: Time
    direction: Direction
    src: ProcessId
    dst: int  # destination pid for deliveries; -1 for multicast sends
    kind: str
    payload: bytes

    def decode(self) -> object:
        """Decode the payload back into its PDU (skipping the
        transport frame header if present)."""
        # Transport frames prefix: tag u8 + transfer id u32.
        try:
            return decode_message(self.payload[5:])
        except WireFormatError:
            return decode_message(self.payload)


class PacketCapture:
    """Tap a :class:`DatagramNetwork` and record its traffic."""

    def __init__(self) -> None:
        self.records: list[CaptureRecord] = []
        self._now: Callable[[], Time] | None = None

    # ------------------------------------------------------------------
    # live capture
    # ------------------------------------------------------------------

    def attach_to(self, network: DatagramNetwork, kernel: Kernel) -> None:
        """Start capturing ``network``'s traffic (send + deliver).

        Wraps the network's send path and every registered handler;
        attach *after* all endpoints registered.
        """
        self._now = lambda: kernel.now
        original_send = network.send

        def tapped_send(packet: Packet) -> None:
            self.records.append(
                CaptureRecord(
                    kernel.now,
                    Direction.SENT,
                    packet.src,
                    packet.dst.pid if not packet.dst.is_multicast() else -1,
                    packet.kind,
                    packet.payload,
                )
            )
            original_send(packet)

        network.send = tapped_send  # type: ignore[method-assign]
        for pid in list(network.endpoints()):
            original_handler = network._handlers[pid]

            def tapped_handler(
                packet: Packet,
                pid: ProcessId = pid,
                handler: PacketHandler = original_handler,
            ) -> None:
                self.records.append(
                    CaptureRecord(
                        kernel.now,
                        Direction.DELIVERED,
                        packet.src,
                        int(pid),
                        packet.kind,
                        packet.payload,
                    )
                )
                handler(packet)

            network.attach(pid, tapped_handler)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def filter(
        self,
        *,
        direction: Direction | None = None,
        kind: str | None = None,
        src: int | None = None,
        dst: int | None = None,
    ) -> list[CaptureRecord]:
        out = []
        for record in self.records:
            if direction is not None and record.direction != direction:
                continue
            if kind is not None and record.kind != kind:
                continue
            if src is not None and record.src != src:
                continue
            if dst is not None and record.dst != dst:
                continue
            out.append(record)
        return out

    def volume_by_kind(
        self, direction: Direction = Direction.SENT
    ) -> dict[str, tuple[int, int]]:
        """kind -> (packet count, payload bytes)."""
        out: dict[str, tuple[int, int]] = {}
        for record in self.records:
            if record.direction != direction:
                continue
            count, volume = out.get(record.kind, (0, 0))
            out[record.kind] = (count + 1, volume + len(record.payload))
        return out

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, stream: BinaryIO) -> None:
        """Write the capture in the RPC1 binary format."""
        stream.write(_MAGIC)
        for record in self.records:
            writer = Writer()
            writer.f64(record.time)
            writer.u8(int(record.direction))
            writer.u16(record.src)
            writer.u16(record.dst & 0xFFFF)
            writer.bytes_field(record.kind.encode())
            writer.bytes_field(record.payload)
            body = writer.getvalue()
            header = Writer()
            header.u32(len(body))
            stream.write(header.getvalue())
            stream.write(body)

    @classmethod
    def load(cls, stream: BinaryIO) -> "PacketCapture":
        """Read a capture written by :meth:`save`."""
        magic = stream.read(4)
        if magic != _MAGIC:
            raise WireFormatError(f"not a capture file (magic {magic!r})")
        capture = cls()
        while True:
            raw_len = stream.read(4)
            if not raw_len:
                break
            if len(raw_len) < 4:
                raise WireFormatError("truncated capture record header")
            body_len = Reader(raw_len).u32()
            body = stream.read(body_len)
            if len(body) < body_len:
                raise WireFormatError("truncated capture record body")
            reader = Reader(body)
            time = reader.f64()
            direction = Direction(reader.u8())
            src = ProcessId(reader.u16())
            dst = reader.u16()
            if dst == 0xFFFF:
                dst = -1
            kind = reader.bytes_field().decode()
            payload = reader.bytes_field()
            reader.expect_end()
            capture.records.append(
                CaptureRecord(time, direction, src, dst, kind, payload)
            )
        return capture

    def roundtrip_bytes(self) -> bytes:
        """Serialize to bytes (convenience for tests and tooling)."""
        buffer = io.BytesIO()
        self.save(buffer)
        return buffer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "PacketCapture":
        return cls.load(io.BytesIO(data))
