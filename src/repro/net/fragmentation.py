"""Fragmentation and reassembly of urcgc data units (Section 5).

"The urcgc protocol does not require any particular service from the
transport protocol that is useful when there is the need of
fragmenting and assembling the urcgc data units to fit the network
packet size."  When a PDU exceeds the payload budget of the underlying
datagram (IP's 576-byte minimum, Ethernet's 1500), this sublayer
splits it into numbered fragments and reassembles at the receiver.

Fragment layout: ``u32 message-id | u16 index | u16 total | payload``.
Loss of any fragment loses the whole PDU — exactly a datagram loss,
which urcgc's history recovery already handles; the reassembler
garbage-collects incomplete PDUs once newer ones complete.
"""

from __future__ import annotations

import struct
from itertools import count

from ..errors import ConfigError, WireFormatError

__all__ = ["FRAGMENT_HEADER_BYTES", "Fragmenter", "Reassembler"]

#: u32 message id + u16 index + u16 total.
FRAGMENT_HEADER_BYTES = 8

#: Preallocated header codec (hot when every batched frame fragments).
_FRAG_HDR = struct.Struct("!IHH")
assert _FRAG_HDR.size == FRAGMENT_HEADER_BYTES

_message_ids = count(1)


class Fragmenter:
    """Splits PDUs into MTU-sized fragments."""

    def __init__(self, mtu: int) -> None:
        if mtu <= FRAGMENT_HEADER_BYTES:
            raise ConfigError(
                f"mtu must exceed the {FRAGMENT_HEADER_BYTES}-byte fragment header"
            )
        self.mtu = mtu
        self.chunk_size = mtu - FRAGMENT_HEADER_BYTES

    def fragment(self, pdu: bytes) -> list[bytes]:
        """Split ``pdu``; a PDU that fits yields a single fragment."""
        message_id = next(_message_ids)
        chunks = [
            pdu[offset : offset + self.chunk_size]
            for offset in range(0, len(pdu), self.chunk_size)
        ] or [b""]
        if len(chunks) > 0xFFFF:
            raise WireFormatError(f"PDU of {len(pdu)} bytes needs too many fragments")
        total = len(chunks)
        return [
            _FRAG_HDR.pack(message_id, index, total) + chunk
            for index, chunk in enumerate(chunks)
        ]


class Reassembler:
    """Rebuilds PDUs from (possibly reordered) fragments.

    Keeps at most ``max_pending`` partially reassembled PDUs per
    source; the oldest incomplete one is evicted first (its loss is a
    plain datagram loss to the layer above).
    """

    def __init__(self, *, max_pending: int = 64) -> None:
        if max_pending < 1:
            raise ConfigError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        #: (source key, message id) -> {index: chunk}
        self._partial: dict[tuple[object, int], dict[int, bytes]] = {}
        self._totals: dict[tuple[object, int], int] = {}
        self.evicted_count = 0

    @property
    def pending_count(self) -> int:
        return len(self._partial)

    def accept(self, source: object, fragment: bytes) -> bytes | None:
        """Feed one fragment; returns the full PDU when complete."""
        if len(fragment) < FRAGMENT_HEADER_BYTES:
            raise WireFormatError(
                f"truncated fragment: {len(fragment)} bytes, "
                f"need {FRAGMENT_HEADER_BYTES}"
            )
        message_id, index, total = _FRAG_HDR.unpack_from(fragment)
        chunk = fragment[FRAGMENT_HEADER_BYTES:]
        if total == 0 or index >= total:
            raise WireFormatError(
                f"bad fragment header: index {index} of total {total}"
            )
        key = (source, message_id)
        known_total = self._totals.get(key)
        if known_total is not None and known_total != total:
            raise WireFormatError(
                f"fragment total changed for {key}: {known_total} -> {total}"
            )
        parts = self._partial.setdefault(key, {})
        self._totals[key] = total
        parts[index] = chunk
        if len(parts) == total:
            del self._partial[key]
            del self._totals[key]
            return b"".join(parts[i] for i in range(total))
        self._evict_if_needed()
        return None

    def _evict_if_needed(self) -> None:
        while len(self._partial) > self.max_pending:
            oldest = next(iter(self._partial))
            del self._partial[oldest]
            del self._totals[oldest]
            self.evicted_count += 1
