"""The multicast transport service of Section 5.

The paper describes an abstract transport whose Request is the tuple
``(m, h, v, d)``: destinations ``m`` (unicast or multicast), required
replies ``h``, a voting function ``v`` (unused by urcgc), and data
``d``.  Retransmission ensures at least ``h`` destinations receive the
data, yet "the primitive never fails, even if less than h replies are
received".

With ``h = 1`` (the paper's simulation setting) the service degenerates
to a raw datagram: no acknowledgements, no retransmission — packet loss
is pushed up to the urcgc layer's history recovery.  With ``h > 1`` the
transport acknowledges and retransmits, trading extra control traffic
for fewer recoveries upstairs.  Both modes share one PDU format, so
the byte accounting stays honest across the ``h`` ablation.

PDU layout (after the one-byte frame tag):

====  =======================================================
tag   meaning
====  =======================================================
0     DATA, no acknowledgement requested
1     DATA, acknowledgement requested (carries transfer id)
2     ACK (carries transfer id)
3     FRAGMENT of a larger frame (see repro.net.fragmentation)
====  =======================================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from itertools import count
from typing import Callable

from ..errors import ConfigError, WireFormatError
from ..sim.kernel import Kernel
from ..types import ProcessId, Time
from .addressing import Address, UnicastAddress
from .network import DatagramNetwork
from .packet import Packet

__all__ = ["TransferStatus", "Transfer", "MulticastTransport"]

_FRAME_DATA = 0
_FRAME_DATA_ACKED = 1
_FRAME_ACK = 2
_FRAME_FRAGMENT = 3

#: Preallocated codec for the frame header: u8 tag + u32 transfer id.
_FRAME_HDR = struct.Struct("!BI")
_FRAGMENT_PREFIX = bytes([_FRAME_FRAGMENT])

_transfer_ids = count(1)

DataIndication = Callable[[ProcessId, bytes], None]


@dataclass
class TransferStatus:
    """Progress of one (possibly retransmitted) transfer."""

    transfer_id: int
    required_replies: int
    acked_by: set[ProcessId] = field(default_factory=set)
    retries_used: int = 0
    complete: bool = False

    @property
    def reply_count(self) -> int:
        return len(self.acked_by)


@dataclass
class Transfer:
    """Internal bookkeeping for an in-flight acked transfer."""

    status: TransferStatus
    dst: Address
    payload: bytes
    kind: str


class MulticastTransport:
    """One transport entity attached to a t-SAP.

    Parameters
    ----------
    kernel, network:
        Substrate the entity runs on.
    pid:
        The endpoint this entity serves; the transport attaches itself
        to the network for this pid.
    on_data:
        Upcall ``(src, data)`` for every distinct received payload
        (retransmissions are deduplicated for acked transfers).
    h:
        Default required-reply count for :meth:`t_data_rq`.
    max_retries:
        Retransmissions attempted before giving up (the Request still
        "never fails" — completion is reported with however many
        replies arrived).
    ack_timeout:
        Time (rtd units) to wait for acks before retransmitting.
    mtu:
        Optional maximum frame size.  Frames above it are split by the
        Section 5 fragmentation sublayer and reassembled at the
        receiver ("fragmenting and assembling the urcgc data units to
        fit the network packet size"); losing any fragment loses the
        whole frame, like a plain datagram loss.
    """

    def __init__(
        self,
        kernel: Kernel,
        network: DatagramNetwork,
        pid: ProcessId,
        *,
        on_data: DataIndication,
        h: int = 1,
        max_retries: int = 3,
        ack_timeout: Time = 1.0,
        mtu: int | None = None,
    ) -> None:
        if h < 1:
            raise ConfigError(f"h must be >= 1, got {h}")
        if max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        self._kernel = kernel
        self._network = network
        self.pid = pid
        self._on_data = on_data
        self.default_h = h
        self.max_retries = max_retries
        self.ack_timeout = ack_timeout
        self._outgoing: dict[int, Transfer] = {}
        self._seen_transfers: set[tuple[ProcessId, int]] = set()
        if mtu is not None:
            from .fragmentation import Fragmenter, Reassembler

            # One byte of frame tag precedes the fragment header.
            self._fragmenter = Fragmenter(mtu - 1)
            self._reassembler = Reassembler()
        else:
            self._fragmenter = None
            self._reassembler = None
        self.mtu = mtu
        network.attach(pid, self._on_packet)

    # -- service interface ----------------------------------------------

    def t_data_rq(
        self,
        dst: Address,
        data: bytes,
        *,
        kind: str = "data",
        h: int | None = None,
    ) -> TransferStatus:
        """The t.data.Rq primitive: send ``data`` to ``dst``.

        Returns the transfer status, which completes asynchronously for
        acked transfers.  For ``h == 1`` no acknowledgement machinery is
        engaged and the status completes immediately.
        """
        replies = self.default_h if h is None else h
        if replies < 1:
            raise ConfigError(f"h must be >= 1, got {replies}")
        # The paper constrains 1 <= h <= |m|: never wait for more
        # replies than there are destinations (a unicast can yield at
        # most one ack).
        replies = min(replies, self._destination_count(dst))
        transfer_id = next(_transfer_ids)
        status = TransferStatus(transfer_id, replies)
        if replies == 1:
            # Raw datagram mode: mounting urcgc directly on the subnet.
            payload = self._frame(_FRAME_DATA, transfer_id, data)
            self._send_frame(dst, payload, kind)
            status.complete = True
            return status
        transfer = Transfer(status, dst, data, kind)
        self._outgoing[transfer_id] = transfer
        self._transmit(transfer)
        return status

    # -- internals --------------------------------------------------------

    def _destination_count(self, dst: Address) -> int:
        """How many endpoints a send to ``dst`` can reach (sender
        excluded for multicast, matching the network's fan-out)."""
        if isinstance(dst, UnicastAddress):
            return 1
        try:
            members = self._network.members(dst)  # type: ignore[arg-type]
        except Exception:  # lint: disable=H403
            # Deliberate fallback, not error handling: a fabric without
            # group bookkeeping (any members() failure) degrades to the
            # raw-datagram fan-out of 1, which only costs the sender a
            # conservative ack target.
            return 1
        count = len([pid for pid in members if pid != self.pid])
        return max(count, 1)

    @staticmethod
    def _frame(tag: int, transfer_id: int, data: bytes = b"") -> bytes:
        return _FRAME_HDR.pack(tag, transfer_id) + data

    def _send_frame(self, dst: Address, frame: bytes, kind: str) -> None:
        """Put one transport frame on the wire, fragmenting if needed."""
        if self._fragmenter is None or len(frame) <= self.mtu:
            self._network.send(Packet(self.pid, dst, frame, kind=kind))
            return
        for fragment in self._fragmenter.fragment(frame):
            self._network.send(
                Packet(self.pid, dst, _FRAGMENT_PREFIX + fragment, kind=kind)
            )

    def _transmit(self, transfer: Transfer) -> None:
        payload = self._frame(_FRAME_DATA_ACKED, transfer.status.transfer_id, transfer.payload)
        self._send_frame(transfer.dst, payload, transfer.kind)
        self._kernel.schedule(
            self.ack_timeout,
            lambda tid=transfer.status.transfer_id: self._on_ack_timeout(tid),
            label=f"t-retx#{transfer.status.transfer_id}",
        )

    def _on_ack_timeout(self, transfer_id: int) -> None:
        transfer = self._outgoing.get(transfer_id)
        if transfer is None or transfer.status.complete:
            return
        status = transfer.status
        if status.reply_count >= status.required_replies:
            self._finish(transfer)
            return
        if status.retries_used >= self.max_retries:
            # The primitive never fails: report completion regardless.
            self._finish(transfer)
            return
        status.retries_used += 1
        self._transmit(transfer)

    def _finish(self, transfer: Transfer) -> None:
        transfer.status.complete = True
        self._outgoing.pop(transfer.status.transfer_id, None)

    def _on_packet(self, packet: Packet) -> None:
        self._on_frame(packet.src, packet.payload)

    def _on_frame(self, src: ProcessId, frame: bytes) -> None:
        if not frame:
            raise WireFormatError("empty transport frame")
        tag = frame[0]
        if tag == _FRAME_FRAGMENT:
            if self._reassembler is None:
                raise WireFormatError("fragment received but no MTU configured")
            whole = self._reassembler.accept(src, frame[1:])
            if whole is not None:
                self._on_frame(src, whole)
            return
        if len(frame) < _FRAME_HDR.size:
            raise WireFormatError(
                f"truncated transport frame: {len(frame)} bytes"
            )
        transfer_id = _FRAME_HDR.unpack_from(frame)[1]
        packet_src = src
        if tag == _FRAME_DATA:
            self._on_data(packet_src, frame[5:])
        elif tag == _FRAME_DATA_ACKED:
            ack = self._frame(_FRAME_ACK, transfer_id)
            self._network.send(
                Packet(self.pid, UnicastAddress(packet_src), ack, kind="t-ack")
            )
            key = (packet_src, transfer_id)
            if key in self._seen_transfers:
                return  # duplicate retransmission
            self._seen_transfers.add(key)
            self._on_data(packet_src, frame[5:])
        elif tag == _FRAME_ACK:
            transfer = self._outgoing.get(transfer_id)
            if transfer is not None:
                transfer.status.acked_by.add(packet_src)
                if transfer.status.reply_count >= transfer.status.required_replies:
                    self._finish(transfer)
        else:
            raise WireFormatError(f"unknown transport frame tag {tag}")
