"""Packets carried by the simulated datagram network.

A packet is a source, a destination address, an opaque payload (the
encoded protocol message), and a ``kind`` label used only for traffic
accounting (Table 1 distinguishes data from control traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from ..types import ProcessId
from .addressing import Address

__all__ = ["Packet", "HEADER_OVERHEAD_BYTES"]

#: Fixed per-packet header cost added to the payload when accounting
#: bytes on the wire (src, dst, length, checksum — a UDP-like header).
HEADER_OVERHEAD_BYTES = 8

_packet_ids = count(1)


@dataclass(frozen=True)
class Packet:
    """One datagram in flight.

    ``uid`` is globally unique and lets fault models and traces refer
    to a specific transmission (a multicast expands to n unicast
    packets that share the payload but have distinct uids).
    """

    src: ProcessId
    dst: Address
    payload: bytes
    kind: str = "data"
    uid: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def wire_size(self) -> int:
        """Bytes on the wire, including the datagram header."""
        return len(self.payload) + HEADER_OVERHEAD_BYTES

    def __repr__(self) -> str:
        return (
            f"Packet(#{self.uid} {self.kind} p{self.src}->{self.dst} "
            f"{len(self.payload)}B)"
        )
