"""Metric primitives and the process-wide registry.

Counters, gauges, exact-percentile histograms and time series, plus
:class:`Summary` statistics.  :class:`Registry` is the labelled bag
every layer records into; it supersedes the seed-era
``sim.metrics.MetricSet`` (kept as an alias) so one registry serves
the simulator kernel, the asyncio runtime, the fault fabrics and the
storage layer alike.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable, Iterator

from ..types import Time

__all__ = [
    "Counter",
    "Gauge",
    "Series",
    "Histogram",
    "Summary",
    "summarize",
    "Registry",
    "MetricSet",
]

#: Canonical (sorted) label form: ``(("kind", "data"), ("node", "3"))``.
LabelKey = tuple[tuple[str, str], ...]


def label_key(labels: dict[str, object]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonic named counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; use a Gauge or Series")
        self.value += amount

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time value that may move in both directions."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Series:
    """A time series of ``(time, value)`` samples.

    Samples may be recorded out of timestamp order — chaos jitter and
    recovery replay both produce that — so the series keeps itself
    sorted by time (lazily, with a stable sort: ties keep arrival
    order).  All readers observe chronological order.
    """

    __slots__ = ("_samples", "_ordered")

    def __init__(self) -> None:
        self._samples: list[tuple[Time, float]] = []
        self._ordered = True

    def record(self, time: Time, value: float) -> None:
        if self._samples and time < self._samples[-1][0]:
            self._ordered = False
        self._samples.append((time, value))

    def _sorted_samples(self) -> list[tuple[Time, float]]:
        if not self._ordered:
            self._samples.sort(key=lambda sample: sample[0])
            self._ordered = True
        return self._samples

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[tuple[Time, float]]:
        return iter(self._sorted_samples())

    @property
    def times(self) -> list[Time]:
        return [t for t, _ in self._sorted_samples()]

    @property
    def values(self) -> list[float]:
        return [v for _, v in self._sorted_samples()]

    def max(self) -> float:
        """Largest sampled value (0.0 for an empty series)."""
        return max((v for _, v in self._samples), default=0.0)

    def last(self) -> float | None:
        """Value of the chronologically latest sample."""
        samples = self._sorted_samples()
        return samples[-1][1] if samples else None

    def at_or_before(self, time: Time) -> float | None:
        """Value of the latest sample with timestamp <= ``time``.

        Correct regardless of recording order: the scan is a bisect
        over the time-sorted samples, not a break-on-first-later walk.
        """
        samples = self._sorted_samples()
        idx = bisect_right(samples, time, key=lambda sample: sample[0])
        return samples[idx - 1][1] if idx else None

    def summary(self) -> "Summary":
        return summarize(self.values)


class Histogram:
    """A sample set with exact percentiles (all samples retained)."""

    __slots__ = ("_samples", "_ordered")

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._ordered = True

    def observe(self, value: float) -> None:
        if self._samples and value < self._samples[-1]:
            self._ordered = False
        self._samples.append(float(value))

    def _sorted_samples(self) -> list[float]:
        if not self._ordered:
            self._samples.sort()
            self._ordered = True
        return self._samples

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def sum(self) -> float:
        return math.fsum(self._samples)

    def percentile(self, q: float) -> float:
        """Exact linear-interpolation percentile (NaN if empty)."""
        samples = self._sorted_samples()
        if not samples:
            return float("nan")
        return _percentile(samples, q)

    def summary(self) -> "Summary":
        return summarize(self._sorted_samples())

    def __repr__(self) -> str:
        return f"Histogram(n={self.count})"


class Summary:
    """Summary statistics of a sample set.

    The empty case is explicit: :meth:`empty` returns the singleton
    with ``count == 0`` and NaN statistics, which renders as
    ``n=0 (no samples)`` — never confusable with a real all-zero
    sample set (the seed-era behaviour).
    """

    __slots__ = ("count", "mean", "stdev", "minimum", "maximum", "p50", "p95", "p99")

    def __init__(
        self,
        count: int,
        mean: float,
        stdev: float,
        minimum: float,
        maximum: float,
        p50: float,
        p95: float,
        p99: float,
    ) -> None:
        self.count = count
        self.mean = mean
        self.stdev = stdev
        self.minimum = minimum
        self.maximum = maximum
        self.p50 = p50
        self.p95 = p95
        self.p99 = p99

    _EMPTY: "Summary | None" = None

    @classmethod
    def empty(cls) -> "Summary":
        """The explicit no-samples summary (a singleton)."""
        if cls._EMPTY is None:
            nan = float("nan")
            cls._EMPTY = cls(0, nan, nan, nan, nan, nan, nan, nan)
        return cls._EMPTY

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def _astuple(self) -> tuple:
        return tuple(getattr(self, name) for name in self.__slots__)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Summary):
            return NotImplemented
        if self.is_empty or other.is_empty:
            return self.is_empty and other.is_empty
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return f"Summary({', '.join(f'{n}={getattr(self, n)!r}' for n in self.__slots__)})"

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly form (omits the NaN fields of the empty case)."""
        if self.is_empty:
            return {"count": 0}
        return {name: getattr(self, name) for name in self.__slots__}

    def __str__(self) -> str:  # human-readable one-liner for reports
        if self.is_empty:
            return "n=0 (no samples)"
        return (
            f"n={self.count} mean={self.mean:.3f} sd={self.stdev:.3f} "
            f"min={self.minimum:.3f} p50={self.p50:.3f} p95={self.p95:.3f} "
            f"p99={self.p99:.3f} max={self.maximum:.3f}"
        )


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolation percentile of a pre-sorted sample."""
    if not ordered:
        raise ValueError("empty sample")
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def summarize(samples: Iterable[float]) -> Summary:
    """Compute :class:`Summary` statistics over ``samples``.

    An empty sample set yields :meth:`Summary.empty` (``count == 0``),
    not a fabricated all-zero summary.
    """
    data = sorted(samples)
    if not data:
        return Summary.empty()
    n = len(data)
    mean = sum(data) / n
    var = sum((x - mean) ** 2 for x in data) / n
    return Summary(
        count=n,
        mean=mean,
        stdev=math.sqrt(var),
        minimum=data[0],
        maximum=data[-1],
        p50=_percentile(data, 0.50),
        p95=_percentile(data, 0.95),
        p99=_percentile(data, 0.99),
    )


class Registry:
    """A labelled bag of counters, gauges, histograms and series.

    The process-wide metric surface: one registry is shared by a whole
    simulation (``kernel.metrics``) or a whole live group
    (``recorder.registry``).  Metrics are keyed by name plus an
    optional label set (``registry.count("net.sent", kind="data")``),
    so one family covers every node / round / message-family split.

    The seed-era ``MetricSet`` API (``count`` / ``counter`` /
    ``sample`` / ``series_for``) is a strict subset; ``MetricSet`` is
    now an alias of this class.
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_series")

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        self._series: dict[tuple[str, LabelKey], Series] = {}

    # -- access / creation ---------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """Return (creating if needed) the counter ``name``."""
        key = (name, label_key(labels))
        ctr = self._counters.get(key)
        if ctr is None:
            ctr = self._counters[key] = Counter()
        return ctr

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = (name, label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram()
        return histogram

    def series_for(self, name: str, **labels: object) -> Series:
        """Return (creating if needed) the series ``name``."""
        key = (name, label_key(labels))
        ser = self._series.get(key)
        if ser is None:
            ser = self._series[key] = Series()
        return ser

    # -- recording shorthands ------------------------------------------

    def count(self, name: str, amount: int = 1, **labels: object) -> None:
        self.counter(name, **labels).add(amount)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        self.histogram(name, **labels).observe(value)

    def sample(self, name: str, time: Time, value: float, **labels: object) -> None:
        self.series_for(name, **labels).record(time, value)

    # -- introspection (exporters walk this) ---------------------------

    def walk(
        self,
    ) -> Iterator[tuple[str, str, LabelKey, Counter | Gauge | Histogram | Series]]:
        """Yield ``(family, name, labels, metric)`` in sorted order."""
        families: list[
            tuple[str, dict[tuple[str, LabelKey], Counter | Gauge | Histogram | Series]]
        ] = [
            ("counter", dict(self._counters)),
            ("gauge", dict(self._gauges)),
            ("histogram", dict(self._histograms)),
            ("series", dict(self._series)),
        ]
        for family, metrics in families:
            for (name, labels), metric in sorted(metrics.items()):
                yield family, name, labels, metric

    # -- MetricSet-era compatibility views -----------------------------

    @property
    def counters(self) -> dict[str, Counter]:
        """Unlabelled counters by name (the seed-era ``MetricSet`` view)."""
        return {name: c for (name, labels), c in self._counters.items() if not labels}

    @property
    def series(self) -> dict[str, Series]:
        """Unlabelled series by name (the seed-era ``MetricSet`` view)."""
        return {name: s for (name, labels), s in self._series.items() if not labels}


#: The seed-era name: one bag of counters and series per simulation.
MetricSet = Registry
