"""Structured span events and the recorder that collects them.

A *span event* marks one step of the protocol's causal pipeline —
``subrun(k)`` opening, a ``request`` to the coordinator, a
``decision`` broadcast or adoption, a message being ``generated`` with
its declared dependencies, and each ``processed`` (delivered)
indication — stamped with either the simulated clock or the wall
clock.  A run's event list is enough to reconstruct any message's full
generated → requested → decided → processed timeline (see
:func:`repro.obs.report.message_timeline`).

:class:`Recorder` is the live sink: an event log plus a
:class:`~repro.obs.metrics.Registry`.  :data:`NULL_RECORDER` is the
disabled instance — every emit is a no-op and its registry swallows
writes — so instrumented code paths cost one attribute check when
observability is off (``UrcgcConfig(observability=False)``, the
default).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable

from .metrics import Registry

__all__ = [
    "ObsEvent",
    "MetricRecord",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "mid_label",
    "SPAN_SUBRUN",
    "SPAN_REQUEST",
    "SPAN_DECISION",
    "SPAN_GENERATED",
    "SPAN_PROCESSED",
    "SPAN_DISCARDED",
    "SPAN_SUSPECT",
]

# The span taxonomy (docs/OBSERVABILITY.md documents the schema).
SPAN_SUBRUN = "subrun"
SPAN_REQUEST = "request"
SPAN_DECISION = "decision"
SPAN_GENERATED = "generated"
SPAN_PROCESSED = "processed"
SPAN_DISCARDED = "discarded"
SPAN_SUSPECT = "suspect"


def mid_label(mid: object) -> str:
    """Canonical JSON-friendly mid label, e.g. ``"p0:3"``."""
    origin = getattr(mid, "origin", None)
    seq = getattr(mid, "seq", None)
    if origin is None or seq is None:
        return str(mid)
    return f"p{int(origin)}:{int(seq)}"


@dataclass(frozen=True)
class ObsEvent:
    """One span event: what happened, when, and to whom.

    ``extra`` holds span-specific fields (subrun number, decision
    number, dependency list, …) and must stay JSON-encodable — the
    W305 lint rule enforces that on this dataclass.
    """

    time: float
    kind: str
    node: int | None = None
    mid: str | None = None
    extra: dict[str, str | int | float | bool | None | list[str]] = field(
        default_factory=dict
    )


@dataclass(frozen=True)
class MetricRecord:
    """One exported metric state (a registry row, flushed at dump time)."""

    name: str
    family: str
    labels: dict[str, str]
    value: float | None = None
    summary: dict[str, float] | None = None


class Recorder:
    """Span log + metrics registry behind one clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time.  The
        simulator passes its kernel clock; the runtime defaults to the
        monotonic wall clock.
    clock_kind:
        ``"sim"`` or ``"wall"`` — recorded in the trace metadata so a
        reader knows the unit (rtd vs seconds).
    registry:
        Share an existing :class:`Registry` (the simulator shares the
        kernel's); a fresh one is created otherwise.
    """

    enabled = True

    def __init__(
        self,
        *,
        clock: Callable[[], float] | None = None,
        clock_kind: str = "wall",
        registry: Registry | None = None,
    ) -> None:
        if clock_kind not in ("sim", "wall"):
            raise ValueError(f"clock_kind must be 'sim' or 'wall', got {clock_kind!r}")
        self._clock = clock if clock is not None else _time.monotonic
        self.clock_kind = clock_kind
        self.registry = registry if registry is not None else Registry()
        self.events: list[ObsEvent] = []

    def now(self) -> float:
        return float(self._clock())

    # -- generic emission ----------------------------------------------

    def emit(
        self,
        kind: str,
        *,
        node: int | None = None,
        mid: str | None = None,
        time: float | None = None,
        **extra: str | int | float | bool | None | list[str],
    ) -> None:
        """Append one span event (stamped now unless ``time`` given)."""
        self.events.append(
            ObsEvent(
                time=self.now() if time is None else float(time),
                kind=kind,
                node=node,
                mid=mid,
                extra=dict(extra),
            )
        )

    # -- span helpers (the taxonomy) -----------------------------------

    def subrun(self, k: int, *, node: int | None = None, time: float | None = None) -> None:
        """Subrun ``k`` opened (at ``node``, or group-wide if None)."""
        self.emit(SPAN_SUBRUN, node=node, time=time, k=int(k))

    def request(self, subrun: int, *, node: int, time: float | None = None) -> None:
        """``node`` sent its per-subrun REQUEST to the coordinator."""
        self.emit(SPAN_REQUEST, node=node, time=time, subrun=int(subrun))

    def decision(
        self,
        number: int,
        *,
        node: int,
        subrun: int | None = None,
        applied: bool = False,
        time: float | None = None,
    ) -> None:
        """Decision ``number`` broadcast by (or ``applied`` at) ``node``."""
        self.emit(
            SPAN_DECISION,
            node=node,
            time=time,
            number=int(number),
            subrun=None if subrun is None else int(subrun),
            applied=applied,
        )

    def generated(
        self,
        mid: object,
        deps: tuple[object, ...] = (),
        *,
        node: int,
        time: float | None = None,
    ) -> None:
        """``node`` generated message ``mid`` with declared ``deps``."""
        self.emit(
            SPAN_GENERATED,
            node=node,
            mid=mid_label(mid),
            time=time,
            deps=[mid_label(dep) for dep in deps],
        )

    def processed(self, mid: object, *, node: int, time: float | None = None) -> None:
        """``node`` processed (delivered) message ``mid``."""
        self.emit(SPAN_PROCESSED, node=node, mid=mid_label(mid), time=time)

    def discarded(
        self, mid: object, *, node: int, count: int = 1, time: float | None = None
    ) -> None:
        """The orphan rule destroyed ``mid`` (and ``count-1`` dependents)."""
        self.emit(
            SPAN_DISCARDED, node=node, mid=mid_label(mid), time=time, count=int(count)
        )

    def suspect(
        self,
        pid: object,
        *,
        suspected: bool,
        node: int,
        reason: str = "",
        time: float | None = None,
    ) -> None:
        """``node``'s failure detector changed its mind about ``pid``."""
        self.emit(
            SPAN_SUSPECT,
            node=node,
            time=time,
            pid=int(pid),  # type: ignore[call-overload]
            suspected=bool(suspected),
            reason=reason,
        )

    def clear(self) -> None:
        self.events.clear()


class _NullRegistry(Registry):
    """A registry that swallows writes (reads return inert metrics)."""

    __slots__ = ()

    def count(self, name: str, amount: int = 1, **labels: object) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(self, name: str, value: float, **labels: object) -> None:
        pass

    def sample(self, name: str, time: float, value: float, **labels: object) -> None:
        pass


class NullRecorder(Recorder):
    """The disabled recorder: every write is a no-op.

    Instrumented code can hold one unconditionally; hot paths should
    still guard span blocks with ``recorder.enabled`` so argument
    construction is skipped too.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0, clock_kind="wall", registry=_NullRegistry())

    def emit(
        self,
        kind: str,
        *,
        node: int | None = None,
        mid: str | None = None,
        time: float | None = None,
        **extra: str | int | float | bool | None | list[str],
    ) -> None:
        pass


#: Shared disabled instance (safe: it holds no state).
NULL_RECORDER = NullRecorder()
