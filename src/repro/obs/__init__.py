"""Unified observability: metrics registry, structured spans, exporters.

The paper's whole evaluation — Table 1's control-traffic accounting,
Figure 4's end-to-end delays, Figure 6's history occupancy — is an
observability exercise.  This package is the one instrumentation
surface shared by the simulator and the live asyncio runtime:

* :class:`Registry` — process-wide counters, gauges, exact-percentile
  histograms and time series, labellable by node / round / message
  family.  It absorbs the seed-era ``sim.metrics.MetricSet`` (which is
  now an alias) and the scattered ad-hoc counters of the net, runtime
  and storage layers.
* :class:`Recorder` — structured span events (``subrun`` / ``request``
  / ``decision`` / ``generated`` / ``processed``) with a pluggable
  clock (simulated time or wall time), from which a message's full
  causal timeline can be reconstructed.  :data:`NULL_RECORDER` is the
  zero-cost disabled instance behind ``UrcgcConfig(observability=...)``.
* Exporters — JSONL trace writer (:func:`write_jsonl`),
  Prometheus-style text dump (:func:`prometheus_text`), and the bench
  exporter (:func:`bench_payload`) that seeds ``BENCH_*.json``.
* ``python -m repro report`` renders a trace back into the paper-style
  tables (:func:`render_trace_report`).

See ``docs/OBSERVABILITY.md`` for the span taxonomy and file formats.
"""

from .events import (
    NULL_RECORDER,
    MetricRecord,
    NullRecorder,
    ObsEvent,
    Recorder,
    mid_label,
)
from .export import (
    bench_payload,
    events_as_dicts,
    prometheus_text,
    read_jsonl,
    registry_records,
    write_bench_json,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSet,
    Registry,
    Series,
    Summary,
    summarize,
)
from .report import message_timeline, render_trace_report

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSet",
    "Registry",
    "Series",
    "Summary",
    "summarize",
    "ObsEvent",
    "MetricRecord",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "mid_label",
    "write_jsonl",
    "read_jsonl",
    "events_as_dicts",
    "registry_records",
    "prometheus_text",
    "bench_payload",
    "write_bench_json",
    "message_timeline",
    "render_trace_report",
]
