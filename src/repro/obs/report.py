"""Render a JSONL trace back into paper-style tables.

``python -m repro report run.jsonl`` feeds the parsed records through
:func:`render_trace_report`: run metadata, span counts, the flushed
registry state, and the reconstructed causal timeline of one message
(generated → declared deps → requested → decided → processed), i.e.
the per-message view Nédelec et al. argue causal-broadcast cost is
only understandable through.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from collections.abc import Callable

from .events import (
    SPAN_DECISION,
    SPAN_GENERATED,
    SPAN_PROCESSED,
    SPAN_REQUEST,
)

__all__ = ["message_timeline", "render_trace_report"]


def _table_renderer() -> "Callable[..., str]":
    # Imported lazily: ``repro.analysis`` pulls in ``repro.core``, and a
    # module-level import here would close an import cycle when
    # ``core.message`` → ``net`` → ``sim.metrics`` reaches this package
    # while ``core`` is still initializing.
    from ..analysis.report import render_table

    return render_table


def _events(records: list[dict], kind: str) -> list[dict]:
    return [r for r in records if r.get("ev") == kind]


def message_timeline(records: list[dict], mid: str | None = None) -> dict:
    """Reconstruct one message's causal timeline from trace records.

    Returns a dict with the chosen ``mid``, its declared ``deps``, and
    a ``stages`` list of ``(stage, time, node)`` covering generated →
    requested → decided → processed-per-node; ``group_processed`` is
    the instant the whole group had it (None until every stage is
    observable).  Raises ``KeyError`` if the mid never appears.
    """
    generated = _events(records, SPAN_GENERATED)
    if mid is None:
        if not generated:
            raise KeyError("trace contains no generated message")
        chosen = generated[0]
    else:
        matches = [r for r in generated if r.get("mid") == mid]
        if not matches:
            raise KeyError(f"mid {mid!r} was never generated in this trace")
        chosen = matches[0]
    mid = chosen["mid"]
    origin = chosen.get("node")
    t_generated = chosen["t"]
    stages: list[tuple[str, float, int | None]] = [("generated", t_generated, origin)]

    requested = next(
        (
            r
            for r in _events(records, SPAN_REQUEST)
            if r.get("node") == origin and r["t"] >= t_generated
        ),
        None,
    )
    if requested is not None:
        stages.append(("requested", requested["t"], origin))

    t_floor = requested["t"] if requested is not None else t_generated
    decided = next(
        (r for r in _events(records, SPAN_DECISION) if r["t"] >= t_floor),
        None,
    )
    if decided is not None:
        stages.append(("decided", decided["t"], decided.get("node")))

    processed_at: dict[int, float] = {}
    for record in _events(records, SPAN_PROCESSED):
        if record.get("mid") == mid and record.get("node") is not None:
            processed_at.setdefault(record["node"], record["t"])
    for node in sorted(processed_at):
        stages.append((f"processed@p{node}", processed_at[node], node))

    return {
        "mid": mid,
        "origin": origin,
        "deps": list(chosen.get("deps", [])),
        "stages": stages,
        "group_processed": max(processed_at.values()) if processed_at else None,
    }


def _render_meta(records: list[dict]) -> str:
    meta = next((r for r in records if r.get("ev") == "meta"), None)
    if meta is None:
        return "trace: (no meta record)"
    parts = [f"{k}={v}" for k, v in sorted(meta.items()) if k != "ev"]
    return "trace: " + " ".join(parts)


def _render_span_counts(records: list[dict]) -> str:
    counts: dict[str, int] = {}
    for record in records:
        kind = record.get("ev", "?")
        if kind in ("meta", "metric"):
            continue
        counts[kind] = counts.get(kind, 0) + 1
    rows = [[kind, count] for kind, count in sorted(counts.items())]
    return _table_renderer()(["span", "events"], rows, title="Span events")


def _render_metrics(records: list[dict]) -> str:
    scalar_rows = []
    summary_rows = []
    for record in _events(records, "metric"):
        labels = record.get("labels", {})
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        if "value" in record:
            scalar_rows.append(
                [record["name"], label_text, record["family"], record["value"]]
            )
        else:
            summary = record.get("summary", {})
            summary_rows.append(
                [
                    record["name"],
                    label_text,
                    summary.get("count", 0),
                    summary.get("mean", float("nan")),
                    summary.get("p50", float("nan")),
                    summary.get("p95", float("nan")),
                    summary.get("p99", float("nan")),
                    summary.get("maximum", float("nan")),
                ]
            )
    sections = []
    render_table = _table_renderer()
    if scalar_rows:
        sections.append(
            render_table(
                ["metric", "labels", "family", "value"],
                scalar_rows,
                title="Counters and gauges",
            )
        )
    if summary_rows:
        sections.append(
            render_table(
                ["metric", "labels", "n", "mean", "p50", "p95", "p99", "max"],
                summary_rows,
                title="Histograms and series",
            )
        )
    return "\n\n".join(sections) if sections else "(no metric records)"


def _render_timeline(records: list[dict], mid: str | None) -> str:
    try:
        timeline = message_timeline(records, mid)
    except KeyError as exc:
        return f"timeline: {exc.args[0]}"
    deps = ", ".join(timeline["deps"]) or "(none)"
    rows = [
        [stage, time, f"p{node}" if node is not None else "-"]
        for stage, time, node in timeline["stages"]
    ]
    return _table_renderer()(
        ["stage", "t", "node"],
        rows,
        title=f"Timeline of {timeline['mid']} (declared deps: {deps})",
    )


def render_trace_report(records: list[dict], *, mid: str | None = None) -> str:
    """The ``python -m repro report`` rendering of one parsed trace."""
    return "\n\n".join(
        [
            _render_meta(records),
            _render_span_counts(records),
            _render_metrics(records),
            _render_timeline(records, mid),
        ]
    )
