"""Exporters: JSONL traces, Prometheus text, bench JSON.

Three consumers, three formats:

* **JSONL trace** — one JSON object per line; the first line is a
  ``meta`` record (clock kind, schema version, free-form run info),
  span events follow in emission order, and the registry state is
  flushed at the end as ``metric`` records.  ``python -m repro
  report`` renders these back into tables.
* **Prometheus text** — ``name{label="v"} value`` lines for counters
  and gauges, plus quantile rows for histograms, for scraping or
  diffing.
* **Bench JSON** — the ``BENCH_<name>.json`` artifact every benchmark
  module emits (via ``benchmarks/conftest.py``), seeding the perf
  trajectory CI uploads.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from .events import MetricRecord, ObsEvent, Recorder
from .metrics import Counter, Gauge, Histogram, Registry, Series

__all__ = [
    "events_as_dicts",
    "registry_records",
    "write_jsonl",
    "dump_jsonl",
    "read_jsonl",
    "prometheus_text",
    "bench_payload",
    "write_bench_json",
]

#: Bumped when the JSONL record layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1


def events_as_dicts(events: Iterable[ObsEvent]) -> list[dict]:
    """Span events as JSON-ready dicts (``ev`` discriminates kinds)."""
    out = []
    for event in events:
        record: dict = {"ev": event.kind, "t": event.time}
        if event.node is not None:
            record["node"] = event.node
        if event.mid is not None:
            record["mid"] = event.mid
        for key, value in event.extra.items():
            if value is not None:
                record[key] = value
        out.append(record)
    return out


def registry_records(registry: Registry) -> list[MetricRecord]:
    """Flush a registry's current state to :class:`MetricRecord` rows."""
    records = []
    for family, name, labels, metric in registry.walk():
        label_map = dict(labels)
        if isinstance(metric, Counter):
            records.append(
                MetricRecord(name, family, label_map, value=float(metric.value))
            )
        elif isinstance(metric, Gauge):
            records.append(MetricRecord(name, family, label_map, value=metric.value))
        elif isinstance(metric, (Histogram, Series)):
            summary = metric.summary()
            records.append(
                MetricRecord(name, family, label_map, summary=summary.as_dict())
            )
    return records


def _metric_record_dict(record: MetricRecord) -> dict:
    out: dict = {
        "ev": "metric",
        "name": record.name,
        "family": record.family,
        "labels": record.labels,
    }
    if record.value is not None:
        out["value"] = record.value
    if record.summary is not None:
        out["summary"] = record.summary
    return out


def dump_jsonl(recorder: Recorder, **meta: object) -> str:
    """Serialize a recorder's run to JSONL text (meta, events, metrics)."""
    header = {
        "ev": "meta",
        "version": TRACE_SCHEMA_VERSION,
        "clock": recorder.clock_kind,
        **meta,
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(rec, sort_keys=True) for rec in events_as_dicts(recorder.events))
    lines.extend(
        json.dumps(_metric_record_dict(rec), sort_keys=True)
        for rec in registry_records(recorder.registry)
    )
    return "\n".join(lines) + "\n"


def write_jsonl(path: str, recorder: Recorder, **meta: object) -> None:
    """Write the run's JSONL trace to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dump_jsonl(recorder, **meta))


def read_jsonl(source: str | IO[str]) -> list[dict]:
    """Parse a JSONL trace back into record dicts (blank lines skipped)."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = source.read()
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno} is not valid JSON: {exc}") from exc
    return records


# ----------------------------------------------------------------------
# Prometheus-style text dump
# ----------------------------------------------------------------------


def _prom_name(name: str) -> str:
    return "repro_" + "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _prom_labels(labels: tuple[tuple[str, str], ...], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: Registry) -> str:
    """Prometheus exposition-format dump of the registry state.

    Counters and gauges are single samples; histograms and series
    render as summary metrics (``_count``, ``_sum``, and exact
    ``quantile`` rows for p50/p95/p99).
    """
    lines: list[str] = []
    typed: set[str] = set()
    for family, name, labels, metric in registry.walk():
        prom = _prom_name(name)
        if isinstance(metric, Counter):
            if prom not in typed:
                typed.add(prom)
                lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom}{_prom_labels(labels)} {metric.value}")
        elif isinstance(metric, Gauge):
            if prom not in typed:
                typed.add(prom)
                lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom}{_prom_labels(labels)} {_prom_value(metric.value)}")
        elif isinstance(metric, (Histogram, Series)):
            if isinstance(metric, Series):
                samples = metric.values
                histogram = Histogram()
                for value in samples:
                    histogram.observe(value)
            else:
                histogram = metric
            if prom not in typed:
                typed.add(prom)
                lines.append(f"# TYPE {prom} summary")
            for q in (0.5, 0.95, 0.99):
                lines.append(
                    f"{prom}{_prom_labels(labels, (('quantile', str(q)),))} "
                    f"{_prom_value(histogram.percentile(q))}"
                )
            lines.append(f"{prom}_count{_prom_labels(labels)} {histogram.count}")
            lines.append(f"{prom}_sum{_prom_labels(labels)} {_prom_value(histogram.sum)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Bench exporter
# ----------------------------------------------------------------------


def bench_payload(name: str, results: list[dict]) -> dict:
    """The ``BENCH_<name>.json`` schema: summary stats keyed by test.

    ``results`` rows come from pytest-benchmark's ``Metadata.as_dict``
    (data excluded); each carries the timing stats plus whatever
    ``extra_info`` the benchmark attached (scenario tables, figure
    rows), so the perf trajectory keeps the qualitative context too.
    """
    return {
        "bench": name,
        "schema": 1,
        "results": {
            row.get("name", f"result-{i}"): {
                "stats": row.get("stats", {}),
                "extra_info": row.get("extra_info", {}),
                "group": row.get("group"),
            }
            for i, row in enumerate(results)
        },
    }


def write_bench_json(path: str, name: str, results: list[dict]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bench_payload(name, results), fh, indent=2, sort_keys=True)
        fh.write("\n")
