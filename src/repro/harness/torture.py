"""Randomized torture runs: fuzz the protocol, check the theorems.

``python -m repro`` grows a ``torture`` subcommand on top of this:
each iteration draws a random group size, parameters, workload, crash
schedule, and omission rates, runs the simulation, and audits the
delivery logs with the Definition 3.2 checkers.  Any violation is
reported with the seed that reproduces it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis.checkers import (
    check_local_causal_order,
    check_uniform_atomicity,
    check_uniform_ordering,
)
from ..core.config import UrcgcConfig
from ..net.faults import CrashSchedule, FaultPlan, OmissionModel
from ..types import ProcessId
from ..workloads.generators import BernoulliWorkload
from .cluster import SimCluster

__all__ = ["TortureResult", "torture_once", "torture"]


@dataclass(frozen=True)
class TortureResult:
    """Outcome of one randomized run."""

    seed: int
    n: int
    K: int
    crashes: int
    omission_rate: float
    messages: int
    quiesced: bool
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"seed={self.seed:<6d} n={self.n} K={self.K} "
            f"crashes={self.crashes} omission={self.omission_rate:.3f} "
            f"msgs={self.messages:<4d} "
            f"{'quiesced' if self.quiesced else 'timed out'}  {status}"
        )


def torture_once(seed: int) -> TortureResult:
    """One randomized scenario, fully checked."""
    rng = random.Random(seed)
    n = rng.randint(3, 9)
    K = rng.randint(1, 4)
    load = rng.uniform(0.1, 1.0)
    crash_count = rng.randint(0, max(0, n - 2))
    omission_rate = rng.choice([0.0, 0.0, 0.01, 0.02, 0.05])
    pids = [ProcessId(i) for i in range(n)]

    schedule = CrashSchedule()
    for i in range(crash_count):
        schedule.crash(ProcessId(n - 1 - i), rng.uniform(1.0, 10.0))
    faults = FaultPlan(crashes=schedule, rng=random.Random(seed + 1))
    if omission_rate:
        for pid in pids:
            faults.set_send_omission(pid, OmissionModel(omission_rate))
            faults.set_receive_omission(pid, OmissionModel(omission_rate))

    cluster = SimCluster(
        UrcgcConfig(n=n, K=K, R=2 * K + 4),
        workload=BernoulliWorkload(
            pids, load, rng=random.Random(seed + 2), stop_after_round=24
        ),
        faults=faults,
        max_rounds=500,
        seed=seed,
        trace=False,
    )
    quiesced = cluster.run_until_quiescent(drain_subruns=2 * K + 2)

    violations: list[str] = []
    active = set(cluster.active_pids())
    streams = {pid: cluster.services[pid].delivered for pid in active}
    for pid, stream in streams.items():
        violations.extend(
            str(v) for v in check_local_causal_order(pid, stream).violations
        )
    if active:
        violations.extend(
            str(v)
            for v in check_uniform_ordering(
                streams, converged=quiesced is not None
            ).violations
        )
    if quiesced is not None and active:
        log = cluster.delivery_log
        violations.extend(
            str(v)
            for v in check_uniform_atomicity(
                log.generated_at,
                {mid: set(by) for mid, by in log.processed_at.items()},
                active,
                discarded=log.discarded,
            ).violations
        )
    return TortureResult(
        seed=seed,
        n=n,
        K=K,
        crashes=crash_count,
        omission_rate=omission_rate,
        messages=len(cluster.delivery_log.generated_at),
        quiesced=quiesced is not None,
        violations=tuple(violations),
    )


def torture(iterations: int, *, start_seed: int = 0) -> list[TortureResult]:
    """Run ``iterations`` randomized scenarios; returns all results."""
    return [torture_once(start_seed + i) for i in range(iterations)]
