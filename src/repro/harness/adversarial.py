"""Adversarial chaos scenarios with per-guarantee survival verdicts.

Where :mod:`repro.harness.live_torture` samples *random* faults inside
the paper's general-omission envelope, this module scripts *named*
scenarios that step outside it — forged dependency vectors, an
equivocating coordinator, a zombie rejoin under a stale incarnation,
heartbeat suppression — plus the canonical coordinator crash, and
audits each one guarantee by guarantee.

Every scenario produces a :class:`ScenarioResult` holding one
:class:`GuaranteeReport` per protocol guarantee:

* **causal-delivery** — Definition 3.2 local causal order over every
  live node's delivery log;
* **total-order** — equal per-origin delivery subsequences (uniform
  ordering) plus, once quiescent, uniform atomicity;
* **view-agreement** — all live members ended with the same alive
  vector, and no live member was evicted from it.

A verdict is ``survived``, ``degraded``, or ``violated``; each report
also carries the *expected* worst-acceptable verdict for its scenario,
and the report is ``ok`` when the actual verdict is no worse than
expected.  A guarantee whose expected verdict is ``violated`` renders
as *violated-by-design*: the scenario deliberately exceeds what the
protocol promises.  The CI gate fails on any report that is not ok —
i.e. on a ``violated`` verdict for a guarantee documented as
surviving (or degrading) the fault.

``python -m repro chaos --scenario NAME|all`` is the CLI entry point;
:func:`scenarios_as_json` renders the artifact CI uploads.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Awaitable, Callable, Sequence

from ..core.config import FailureDetectorConfig, UrcgcConfig
from ..core.message import KIND_HEARTBEAT
from ..core.rejoin import KIND_JOIN
from ..net.addressing import BROADCAST_GROUP
from ..net.faults import FaultPlan
from ..runtime.chaos import ChaosFabric
from ..runtime.lan import AsyncLan
from ..runtime.node import AsyncGroup
from ..storage import GroupStorage, MemoryBackend
from ..types import ProcessId
from .adversary import DepVectorForger, Equivocator, JoinReplayTap
from .live_torture import audit_group

__all__ = [
    "GuaranteeReport",
    "ScenarioResult",
    "SCENARIOS",
    "run_scenario",
    "run_scenarios",
    "scenarios_as_json",
]

GUARANTEES = ("causal-delivery", "total-order", "view-agreement")

_RANK = {"survived": 0, "degraded": 1, "violated": 2}


@dataclass(frozen=True)
class GuaranteeReport:
    """One guarantee's fate under one adversarial scenario."""

    guarantee: str
    verdict: str
    expected: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.verdict not in _RANK:
            raise ValueError(f"unknown verdict {self.verdict!r}")
        if self.expected not in _RANK:
            raise ValueError(f"unknown expected verdict {self.expected!r}")

    @property
    def ok(self) -> bool:
        """The outcome is no worse than the scenario documents."""
        return _RANK[self.verdict] <= _RANK[self.expected]

    def describe(self) -> str:
        expected = (
            "violated-by-design" if self.expected == "violated" else self.expected
        )
        mark = "ok " if self.ok else "FAIL"
        text = f"{mark} {self.guarantee:<15s} {self.verdict:<9s} (expected <= {expected})"
        if self.detail:
            text += f"  {self.detail}"
        return text

    def as_dict(self) -> dict:
        return {
            "guarantee": self.guarantee,
            "verdict": self.verdict,
            "expected": self.expected,
            "by_design": self.expected == "violated",
            "ok": self.ok,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one named adversarial scenario."""

    scenario: str
    seed: int
    n: int
    quiesced: bool
    wall_time: float
    guarantees: tuple[GuaranteeReport, ...]
    evidence: dict[str, int]

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.guarantees)

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        evidence = " ".join(f"{k}={v}" for k, v in sorted(self.evidence.items()))
        lines = [
            f"{self.scenario:<22s} seed={self.seed} n={self.n} "
            f"{'quiesced' if self.quiesced else 'timed out'} "
            f"{self.wall_time:5.2f}s  {status}  [{evidence}]"
        ]
        lines.extend(f"    {report.describe()}" for report in self.guarantees)
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "n": self.n,
            "quiesced": self.quiesced,
            "wall_time": round(self.wall_time, 3),
            "ok": self.ok,
            "guarantees": [report.as_dict() for report in self.guarantees],
            "evidence": dict(self.evidence),
        }


# ----------------------------------------------------------------------
# the per-guarantee auditor
# ----------------------------------------------------------------------


def judge_group(
    group: AsyncGroup,
    *,
    quiesced: bool,
    expected: dict[str, str],
) -> tuple[GuaranteeReport, ...]:
    """Grade every guarantee over the group's final state.

    The Definition 3.2 checkers provide the pass/fail substance; this
    wrapper splits their verdicts per guarantee and downgrades
    ``violated`` to the scenario's documented expectation only in the
    report's ``ok`` flag — the verdict itself always tells the truth.
    """
    violations = audit_group(group, converged=quiesced)
    causal = [v for v in violations if "local-causal-order" in v]
    ordering = [v for v in violations if "local-causal-order" not in v]

    reports = []
    reports.append(
        GuaranteeReport(
            "causal-delivery",
            "violated" if causal else "survived",
            expected.get("causal-delivery", "survived"),
            causal[0] if causal else "",
        )
    )
    if ordering:
        order_verdict = "violated"
        order_detail = ordering[0]
    elif not quiesced:
        # Only prefix consistency could be audited; the full uniform
        # ordering + atomicity claim was not establishable.
        order_verdict = "degraded"
        order_detail = "group did not quiesce; audited prefixes only"
    else:
        order_verdict = "survived"
        order_detail = ""
    reports.append(
        GuaranteeReport(
            "total-order",
            order_verdict,
            expected.get("total-order", "survived"),
            order_detail,
        )
    )

    live = group.live_nodes
    vectors = {tuple(node.member.view.alive_vector()) for node in live}
    if len(vectors) > 1:
        view_verdict = "violated"
        view_detail = f"{len(vectors)} distinct alive vectors among live members"
    elif live and any(
        not next(iter(vectors))[int(node.pid)] for node in live
    ):
        evicted = [
            int(node.pid)
            for node in live
            if not next(iter(vectors))[int(node.pid)]
        ]
        view_verdict = "degraded"
        view_detail = f"live member(s) {evicted} evicted from the agreed view"
    else:
        view_verdict = "survived"
        view_detail = ""
    reports.append(
        GuaranteeReport(
            "view-agreement",
            view_verdict,
            expected.get("view-agreement", "survived"),
            view_detail,
        )
    )
    return tuple(reports)


# ----------------------------------------------------------------------
# scenario scaffolding
# ----------------------------------------------------------------------

_HEARTBEAT_FD = FailureDetectorConfig(kind="heartbeat")


def _build(
    n: int,
    K: int,
    *,
    round_interval: float,
    detector: FailureDetectorConfig | None = _HEARTBEAT_FD,
    rejoin: bool = False,
    storage: GroupStorage | None = None,
) -> tuple[AsyncGroup, ChaosFabric, FaultPlan]:
    plan = FaultPlan()
    fabric = ChaosFabric(AsyncLan(), plan)
    group = AsyncGroup(
        UrcgcConfig(
            n=n,
            K=K,
            R=2 * K + 4,
            enable_rejoin=rejoin,
            failure_detector=detector,
        ),
        lan=fabric,
        round_interval=round_interval,
        storage=storage,
    )
    return group, fabric, plan


async def _drain(
    group: AsyncGroup, *, budget: float, started: float
) -> bool:
    loop = asyncio.get_running_loop()
    try:
        remaining = budget - (loop.time() - started)
        await group.wait_until(group.quiescent, timeout=max(0.1, remaining))
        return True
    except asyncio.TimeoutError:
        return False


def _result(
    name: str,
    seed: int,
    group: AsyncGroup,
    *,
    quiesced: bool,
    wall_time: float,
    expected: dict[str, str],
    evidence: dict[str, int],
) -> ScenarioResult:
    return ScenarioResult(
        scenario=name,
        seed=seed,
        n=group.config.n,
        quiesced=quiesced,
        wall_time=wall_time,
        guarantees=judge_group(group, quiesced=quiesced, expected=expected),
        evidence=evidence,
    )


# ----------------------------------------------------------------------
# the scenarios
# ----------------------------------------------------------------------


async def _coordinator_crash(
    seed: int, *, budget: float, round_interval: float
) -> ScenarioResult:
    """The paper's canonical failover, observed through the heartbeat
    detector: kill a rotating coordinator mid-protocol and require
    every guarantee to hold over the survivors."""
    n, K = 4, 2
    group, _fabric, _plan = _build(n, K, round_interval=round_interval)
    loop = asyncio.get_running_loop()
    started = loop.time()
    group.start()
    try:
        for i in range(2 * n):
            group.nodes[ProcessId(i % n)].submit(f"cc-{seed}-{i}".encode())
        crashed = await group.crash_coordinator_at_subrun(
            2, partial_deliveries=1, timeout=budget / 4
        )
        for i in range(n):
            pid = ProcessId(i)
            if group.nodes[pid].is_live:
                group.nodes[pid].submit(f"cc-post-{seed}-{i}".encode())
        quiesced = await _drain(group, budget=budget, started=started)
        evidence = {
            "crashed": -1 if crashed is None else int(crashed),
            "suspicions": sum(
                len(node.suspicion_events) for node in group.nodes
            ),
        }
        return _result(
            "coordinator-crash",
            seed,
            group,
            quiesced=quiesced,
            wall_time=loop.time() - started,
            expected={},
            evidence=evidence,
        )
    finally:
        await group.stop()


async def _zombie_rejoin(
    seed: int, *, budget: float, round_interval: float
) -> ScenarioResult:
    """Crash, recover, then replay the victim's own captured JOIN
    request after it was re-admitted: the stale incarnation must be
    fenced, not re-enter the membership flow."""
    n, K = 4, 2
    victim = ProcessId(1)
    storage = GroupStorage(MemoryBackend(), snapshot_interval=8)
    group, fabric, plan = _build(
        n, K, round_interval=round_interval, rejoin=True, storage=storage
    )
    tap = JoinReplayTap(victim)
    plan.add_mutator(tap)
    loop = asyncio.get_running_loop()
    started = loop.time()
    group.start()
    try:
        await group.run_workload(
            [(ProcessId(i % n), f"zr-{seed}-{i}".encode()) for i in range(2 * n)],
            timeout=budget / 4,
        )
        await group.crash(victim)
        survivors = [ProcessId(i) for i in range(n) if ProcessId(i) != victim]
        for i, pid in enumerate(survivors):
            group.nodes[pid].submit(f"zr-mid-{seed}-{i}".encode())
        await asyncio.sleep(4 * 2 * round_interval)
        node = group.recover(victim)
        rejoined = True
        try:
            await group.wait_until(
                lambda: not node.crashed
                and not node.member.rejoining
                and not node.member.has_left,
                timeout=budget / 2,
            )
        except asyncio.TimeoutError:
            rejoined = False
        # The zombie: replay the stale incarnation's join broadcast.
        replayed = 0
        for payload in tap.captured:
            fabric.sendto(victim, BROADCAST_GROUP, payload, kind=KIND_JOIN)
            replayed += 1
        await asyncio.sleep(4 * 2 * round_interval)
        for pid in survivors:
            group.nodes[pid].submit(f"zr-post-{seed}-{pid}".encode())
        quiesced = await _drain(group, budget=budget, started=started)
        evidence = {
            "rejoined": int(rejoined),
            "joins_replayed": replayed,
            "stale_joins_fenced": sum(
                node.member.stale_joins_fenced for node in group.live_nodes
            ),
        }
        return _result(
            "zombie-rejoin",
            seed,
            group,
            quiesced=quiesced,
            wall_time=loop.time() - started,
            expected={},
            evidence=evidence,
        )
    finally:
        await group.stop()


async def _forged_deps(
    seed: int, *, budget: float, round_interval: float
) -> ScenarioResult:
    """Rewrite a member's DATA datagrams in flight — out-of-range
    dependency origins on some copies, truncation on others.  The
    hardened decode path must shed every forged copy as a loss and the
    history/recovery machinery must repair the gap."""
    n, K = 4, 2
    victim = ProcessId(0)
    group, _fabric, plan = _build(n, K, round_interval=round_interval)
    forger = DepVectorForger(victim, mode="out-of-range", stride=2)
    truncator = DepVectorForger(victim, mode="truncate", stride=3)
    plan.add_mutator(forger)
    plan.add_mutator(truncator)
    loop = asyncio.get_running_loop()
    started = loop.time()
    group.start()
    try:
        for i in range(3 * n):
            group.nodes[ProcessId(i % n)].submit(f"fd-{seed}-{i}".encode())
        quiesced = await _drain(group, budget=budget, started=started)
        evidence = {
            "forged": forger.forged,
            "truncated": truncator.forged,
            "decode_errors": sum(node.decode_errors for node in group.nodes),
        }
        return _result(
            "forged-deps",
            seed,
            group,
            quiesced=quiesced,
            wall_time=loop.time() - started,
            expected={},
            evidence=evidence,
        )
    finally:
        await group.stop()


async def _equivocation(
    seed: int, *, budget: float, round_interval: float
) -> ScenarioResult:
    """A coordinator whose DECISION broadcast tells different members
    different things (conflicting stability vectors under one decision
    number).  The engines' per-number decision log must flag the
    conflict and refuse the second story."""
    n, K = 4, 2
    victim = ProcessId(0)  # coordinator of subruns 0, n, 2n, ...
    group, _fabric, plan = _build(n, K, round_interval=round_interval)
    equivocator = Equivocator(victim)
    plan.add_mutator(equivocator)
    loop = asyncio.get_running_loop()
    started = loop.time()
    group.start()
    try:
        for i in range(3 * n):
            group.nodes[ProcessId(i % n)].submit(f"eq-{seed}-{i}".encode())
        quiesced = await _drain(group, budget=budget, started=started)
        evidence = {
            "equivocated_copies": equivocator.equivocated,
            "equivocations_detected": sum(
                node.member.equivocations_detected for node in group.nodes
            ),
        }
        return _result(
            "equivocation",
            seed,
            group,
            quiesced=quiesced,
            wall_time=loop.time() - started,
            expected={},
            evidence=evidence,
        )
    finally:
        await group.stop()


async def _heartbeat_suppression(
    seed: int, *, budget: float, round_interval: float
) -> ScenarioResult:
    """Silence one member's heartbeats without crashing it.  The
    eventually-perfect detector may falsely suspect the victim between
    its coordinator turns, but the timeout backoff must prevent any
    wrongful eviction: the victim stays in every live view."""
    n, K = 4, 2
    victim = ProcessId(2)
    group, _fabric, plan = _build(n, K, round_interval=round_interval)
    plan.suppress_kind(victim, KIND_HEARTBEAT)
    loop = asyncio.get_running_loop()
    started = loop.time()
    group.start()
    try:
        others = [ProcessId(i) for i in range(n) if ProcessId(i) != victim]
        # The victim submits nothing: between its coordinator turns the
        # suppressed heartbeats are its only liveness signal.
        for i in range(3 * n):
            group.nodes[others[i % len(others)]].submit(
                f"hs-{seed}-{i}".encode()
            )
        await _drain(group, budget=budget / 2, started=started)
        # Dwell long enough for suspicion timeouts to lapse between the
        # victim's coordinator turns (and for the backoff to stabilize
        # after each false suspicion), then make more progress.
        await asyncio.sleep(20 * n * 2 * round_interval)
        for i, pid in enumerate(others):
            group.nodes[pid].submit(f"hs-post-{seed}-{i}".encode())
        quiesced = await _drain(group, budget=budget, started=started)
        false_suspicions = 0
        for node in group.nodes:
            detector = node.member.detector
            false_suspicions += getattr(detector, "false_suspicions_total", 0)
        evidence = {
            "suspicions": sum(
                len(node.suspicion_events) for node in group.nodes
            ),
            "false_suspicions": false_suspicions,
            "victim_live": int(group.nodes[victim].is_live),
        }
        return _result(
            "heartbeat-suppression",
            seed,
            group,
            quiesced=quiesced,
            wall_time=loop.time() - started,
            # Transient false suspicion is acceptable by design; actual
            # eviction of the live victim is not.
            expected={"view-agreement": "degraded"},
            evidence=evidence,
        )
    finally:
        await group.stop()


ScenarioFn = Callable[..., Awaitable[ScenarioResult]]


def _svc_scenario(name: str) -> ScenarioFn:
    """Adapt a service-tier chaos scenario (:mod:`repro.svc.chaos`) to
    this registry's async signature.

    The tier scenarios are simulation-driven and fully deterministic in
    the seed; ``budget``/``round_interval`` govern the live asyncio
    runtime and do not apply (the sim's round budget bounds them).
    Imported lazily to keep :mod:`repro.svc` out of this module's
    import graph.
    """

    async def run(
        seed: int, *, budget: float, round_interval: float
    ) -> ScenarioResult:
        from ..svc.chaos import run_svc_scenario

        return run_svc_scenario(name, seed=seed)

    return run


#: name -> coroutine factory, the ``--scenario`` registry.
SCENARIOS: dict[str, ScenarioFn] = {
    "coordinator-crash": _coordinator_crash,
    "zombie-rejoin": _zombie_rejoin,
    "forged-deps": _forged_deps,
    "equivocation": _equivocation,
    "heartbeat-suppression": _heartbeat_suppression,
    # Service-tier failover/rebalance family (PROTOCOL §14.7-14.8).
    "frontend-failover": _svc_scenario("frontend-failover"),
    "shard-rebalance": _svc_scenario("shard-rebalance"),
    "failover-storm": _svc_scenario("failover-storm"),
}


def run_scenario(
    name: str,
    *,
    seed: int = 0,
    budget: float = 20.0,
    round_interval: float = 0.005,
) -> ScenarioResult:
    """Run one named scenario to completion and grade it."""
    try:
        fn = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None
    return asyncio.run(fn(seed, budget=budget, round_interval=round_interval))


def run_scenarios(
    names: Sequence[str] | None = None,
    *,
    seeds: Sequence[int] = (0,),
    budget: float = 20.0,
    round_interval: float = 0.005,
) -> list[ScenarioResult]:
    """Run each named scenario for each seed (all scenarios if None)."""
    chosen = list(names) if names else sorted(SCENARIOS)
    return [
        run_scenario(
            name, seed=seed, budget=budget, round_interval=round_interval
        )
        for name in chosen
        for seed in seeds
    ]


def scenarios_as_json(results: Sequence[ScenarioResult]) -> dict:
    """CI artifact: per-scenario verdicts plus a rollup."""
    return {
        "experiment": "adversarial-chaos",
        "scenarios": len(results),
        "clean": sum(1 for r in results if r.ok),
        "failing": [
            {"scenario": r.scenario, "seed": r.seed}
            for r in results
            if not r.ok
        ],
        "results": [r.as_dict() for r in results],
    }
