"""Per-figure experiment definitions (the paper's Section 6).

Each function runs the simulations for one table/figure and returns a
structured result whose ``render()`` prints the same rows/series the
paper reports.  The benchmarks under ``benchmarks/`` are thin wrappers
around these, so EXPERIMENTS.md can quote their output verbatim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..analysis.cost_models import (
    cbcast_agreement_time,
    cbcast_control_traffic,
    urcgc_agreement_time,
    urcgc_control_traffic,
    urcgc_history_bound,
)
from ..analysis.report import render_table
from ..core.config import UrcgcConfig
from ..types import ProcessId, Time
from ..workloads.generators import BernoulliWorkload, FixedBudgetWorkload
from ..workloads.scenarios import (
    consecutive_coordinator_crashes,
    crashes,
    general_omission,
    omission,
    reliable,
)
from .cbcast_cluster import CbcastCluster
from .cluster import SimCluster

__all__ = [
    "Figure4Result",
    "figure4_delay",
    "Figure5Result",
    "figure5_agreement",
    "Table1Result",
    "table1_traffic",
    "Figure6Result",
    "figure6_history",
]


def _pids(n: int) -> list[ProcessId]:
    return [ProcessId(i) for i in range(n)]


# ----------------------------------------------------------------------
# Figure 4: mean end-to-end delay D vs offered load
# ----------------------------------------------------------------------

FIGURE4_SCENARIOS = ("reliable", "crash", "omission-1/500", "omission-1/100")


@dataclass
class Figure4Result:
    """D (rtd) per scenario per offered load (messages per rtd)."""

    n: int
    K: int
    #: scenario -> list of (offered load msgs/rtd, mean delay D in rtd)
    curves: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        loads = [load for load, _ in self.curves[FIGURE4_SCENARIOS[0]]]
        for i, load in enumerate(loads):
            rows.append(
                [load] + [self.curves[s][i][1] for s in FIGURE4_SCENARIOS]
            )
        return render_table(
            ["load (msg/rtd)", *FIGURE4_SCENARIOS],
            rows,
            title=(
                f"Figure 4 — mean end-to-end delay D (rtd) vs offered load; "
                f"n={self.n}, K={self.K}"
            ),
        )

    def as_dict(self) -> dict:
        return {
            "experiment": "figure4",
            "n": self.n,
            "K": self.K,
            "curves": {
                scenario: [{"load": l, "delay": d} for l, d in points]
                for scenario, points in self.curves.items()
            },
        }


def figure4_delay(
    *,
    n: int = 10,
    K: int = 3,
    send_probabilities: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.7, 1.0),
    crash_count: int = 4,
    duration_rounds: int = 60,
    seed: int = 1,
) -> Figure4Result:
    """The four curves of Figure 4.

    "The observed values of D are the same under both reliable and
    crash conditions (4 crashes was considered).  The mean delay may
    grow when omission failures occur."
    """
    result = Figure4Result(n=n, K=K)
    pids = _pids(n)
    for scenario in FIGURE4_SCENARIOS:
        curve: list[tuple[float, float]] = []
        for p in send_probabilities:
            if scenario == "reliable":
                faults = reliable()
            elif scenario == "crash":
                # Spread the crashes over the early run.
                victims = {
                    ProcessId(n - 1 - i): 2.0 + 2.0 * i for i in range(crash_count)
                }
                faults = crashes(victims)
            elif scenario == "omission-1/500":
                faults = omission(pids, 500, rng=random.Random(seed))
            else:
                faults = omission(pids, 100, rng=random.Random(seed))
            workload = BernoulliWorkload(
                pids, p, rng=random.Random(seed), stop_after_round=duration_rounds
            )
            cluster = SimCluster(
                UrcgcConfig(n=n, K=K),
                workload=workload,
                faults=faults,
                max_rounds=duration_rounds * 4,
                seed=seed,
                trace=False,
            )
            cluster.run_until_quiescent(drain_subruns=2)
            report = cluster.delay_report()
            offered = workload.offered / ((duration_rounds + 1) / 2.0)
            curve.append((offered, report.mean_delay))
        result.curves[scenario] = curve
    return result


# ----------------------------------------------------------------------
# Figure 5: agreement time T vs consecutive coordinator crashes f
# ----------------------------------------------------------------------


@dataclass
class Figure5Result:
    n: int
    K: int
    #: rows of (f, urcgc measured, urcgc analytic, cbcast measured,
    #: cbcast analytic) — times in rtd.
    rows: list[tuple[int, float, float, float, float]] = field(default_factory=list)

    def render(self) -> str:
        return render_table(
            [
                "f",
                "urcgc T (sim)",
                "urcgc 2K+f",
                "cbcast T (sim)",
                "cbcast K(5f+6)",
            ],
            self.rows,
            title=(
                f"Figure 5 — group agreement time T (rtd) vs consecutive "
                f"coordinator crashes f; n={self.n}, K={self.K}"
            ),
        )

    def as_dict(self) -> dict:
        return {
            "experiment": "figure5",
            "n": self.n,
            "K": self.K,
            "rows": [
                {
                    "f": f,
                    "urcgc_sim": urcgc_sim,
                    "urcgc_paper": urcgc_paper,
                    "cbcast_sim": cbcast_sim,
                    "cbcast_paper": cbcast_paper,
                }
                for f, urcgc_sim, urcgc_paper, cbcast_sim, cbcast_paper in self.rows
            ],
        }


def _measure_urcgc_agreement(n: int, K: int, f: int, *, seed: int = 1) -> float:
    """Time from the first crash until every active member has removed
    all crashed processes and adopted a post-removal full-group
    decision (history cleanable again)."""
    first_subrun = 1
    if f > 0:
        faults = consecutive_coordinator_crashes(n, f, first_subrun=first_subrun)
    else:
        # f = 0 "describes the crash of a server process": a plain
        # member (never a coordinator during detection) fail-stops.
        faults = crashes({ProcessId(n - 1): 2.0})
    config = UrcgcConfig(n=n, K=K, R=2 * K + f + 1)
    pids = _pids(n)
    workload = BernoulliWorkload(pids, 0.2, rng=random.Random(seed))
    cluster = SimCluster(
        config,
        workload=workload,
        faults=faults,
        max_rounds=40 + 8 * (K + f),
        seed=seed,
        trace=False,
    )
    crashed = set(faults.crashes.crashed_by(1e9))
    crash_start: Time = min(
        (faults.crashes.crash_time(pid) for pid in crashed), default=0.0
    )
    agreed_at: list[Time | None] = [None]

    def probe(round_no: int) -> None:
        if agreed_at[0] is not None:
            return
        now = cluster.kernel.now
        if f > 0 and now <= crash_start:
            return
        for pid in cluster.active_pids():
            member = cluster.members[pid]
            decision = member.latest_decision
            if not decision.full_group:
                return
            if any(decision.alive[victim] for victim in crashed):
                return
        agreed_at[0] = now

    cluster.scheduler.subscribe(probe)
    cluster.kernel.run(stop_when=lambda: agreed_at[0] is not None)
    if agreed_at[0] is None:
        return float("nan")
    return agreed_at[0] - (crash_start if f > 0 else 0.0)


def _measure_cbcast_agreement(n: int, K: int, f: int, *, seed: int = 1) -> float:
    """Time from the first crash until every survivor has installed the
    final view (all f victims excluded) and is unblocked.

    The f victims are successive view managers: each crashes just after
    taking over the flush protocol, forcing a full restart (the paper's
    "started all over again" behaviour).
    """
    if f > 0:
        victim_times = {ProcessId(i): 2.0 + 2.0 * K * i for i in range(f)}
    else:
        # f = 0: a plain member crash; one flush round, no restarts.
        victim_times = {ProcessId(n - 1): 2.0}
    faults = crashes(victim_times)
    pids = _pids(n)
    workload = BernoulliWorkload(pids, 0.2, rng=random.Random(seed))
    cluster = CbcastCluster(
        n,
        K=K,
        workload=workload,
        faults=faults,
        max_rounds=200 + 40 * K * (f + 1),
        seed=seed,
        trace=False,
    )
    crash_start = min(victim_times.values())
    victims = set(victim_times)
    agreed_at: list[Time | None] = [None]

    def probe(round_no: int) -> None:
        if agreed_at[0] is not None or cluster.kernel.now <= crash_start:
            return
        for pid in cluster.active_pids():
            engine = cluster.engines[pid]
            if engine.blocked:
                return
            if any(engine.alive[victim] for victim in victims):
                return
        agreed_at[0] = cluster.kernel.now

    cluster.scheduler.subscribe(probe)
    cluster.kernel.run(stop_when=lambda: agreed_at[0] is not None)
    if agreed_at[0] is None:
        return float("nan")
    return agreed_at[0] - crash_start


def figure5_agreement(
    *,
    n: int = 10,
    K: int = 2,
    f_values: tuple[int, ...] = (0, 1, 2, 3, 4, 5),
    seed: int = 1,
) -> Figure5Result:
    result = Figure5Result(n=n, K=K)
    for f in f_values:
        urcgc_sim = _measure_urcgc_agreement(n, K, f, seed=seed)
        cbcast_sim = _measure_cbcast_agreement(n, K, f, seed=seed)
        result.rows.append(
            (
                f,
                urcgc_sim,
                urcgc_agreement_time(K, f),
                cbcast_sim,
                cbcast_agreement_time(K, f),
            )
        )
    return result


# ----------------------------------------------------------------------
# Table 1: control traffic, urcgc vs CBCAST, reliable vs crash
# ----------------------------------------------------------------------


@dataclass
class Table1Result:
    K: int
    f: int
    #: rows of (n, condition, protocol, msgs/subrun measured,
    #: msgs/subrun analytic, mean size measured, size analytic)
    rows: list[tuple[int, str, str, float, float, float, float]] = field(
        default_factory=list
    )

    def render(self) -> str:
        return render_table(
            [
                "n",
                "condition",
                "protocol",
                "ctrl msgs/subrun (sim)",
                "ctrl msgs/subrun (paper)",
                "mean ctrl size B (sim)",
                "ctrl size B (paper)",
            ],
            self.rows,
            title=(
                f"Table 1 — control traffic per subrun; K={self.K}, f={self.f}"
            ),
            precision=1,
        )

    def as_dict(self) -> dict:
        keys = (
            "n", "condition", "protocol",
            "msgs_per_subrun_sim", "msgs_per_subrun_paper",
            "mean_size_sim", "size_paper",
        )
        return {
            "experiment": "table1",
            "K": self.K,
            "f": self.f,
            "rows": [dict(zip(keys, row)) for row in self.rows],
        }


def _urcgc_traffic(n: int, K: int, crash: bool, seed: int) -> tuple[float, float]:
    pids = _pids(n)
    faults = crashes({ProcessId(n - 1): 2.0}) if crash else reliable()
    subruns = 24
    cluster = SimCluster(
        UrcgcConfig(n=n, K=K),
        workload=FixedBudgetWorkload(pids, total=2 * n),
        faults=faults,
        max_rounds=subruns * 2,
        seed=seed,
        trace=False,
    )
    cluster.run()
    stats = cluster.network.stats
    control = stats.total(control_only=True)
    # n-unicast accounting: multicast decisions fan out to n-1 copies,
    # so the carried (delivered) count is the honest Table 1 figure on
    # a reliable network; under crash we count offered transmissions.
    messages = control.delivered if not crash else control.delivered + control.dropped
    sizes = [
        stats.kind(kind).mean_size
        for kind in stats.kinds()
        if kind != "data" and stats.kind(kind).sent
    ]
    mean_size = sum(sizes) / len(sizes) if sizes else 0.0
    return messages / subruns, mean_size


def _cbcast_traffic(n: int, K: int, crash: bool, seed: int) -> tuple[float, float]:
    pids = _pids(n)
    faults = crashes({ProcessId(n - 1): 2.0}) if crash else reliable()
    subruns = 24
    cluster = CbcastCluster(
        n,
        K=K,
        workload=FixedBudgetWorkload(pids, total=2 * n),
        faults=faults,
        max_rounds=subruns * 2,
        seed=seed,
        trace=False,
    )
    cluster.run()
    stats = cluster.network.stats
    control = stats.total(control_only=True)
    messages = control.delivered if not crash else control.delivered + control.dropped
    sizes = [
        stats.kind(kind).mean_size
        for kind in stats.kinds()
        if kind != "data" and stats.kind(kind).sent
    ]
    mean_size = sum(sizes) / len(sizes) if sizes else 0.0
    return messages / subruns, mean_size


def table1_traffic(
    *,
    ns: tuple[int, ...] = (5, 10, 15, 40),
    K: int = 3,
    f: int = 0,
    seed: int = 1,
) -> Table1Result:
    result = Table1Result(K=K, f=f)
    for n in ns:
        for crash in (False, True):
            condition = "crash" if crash else "reliable"
            sim_msgs, sim_size = _urcgc_traffic(n, K, crash, seed)
            paper = urcgc_control_traffic(n, K=K, f=f, crash=crash)
            paper_msgs = paper.messages / ((2 * K + f) if crash else 1)
            result.rows.append(
                (n, condition, "urcgc", sim_msgs, float(paper_msgs),
                 sim_size, paper.message_size_bytes)
            )
            sim_msgs, sim_size = _cbcast_traffic(n, K, crash, seed)
            paper = cbcast_control_traffic(n, K=K, f=f, crash=crash)
            paper_msgs = paper.messages / ((2 * K + f) if crash else 1)
            result.rows.append(
                (n, condition, "cbcast", sim_msgs, float(paper_msgs),
                 sim_size, paper.message_size_bytes)
            )
    return result


# ----------------------------------------------------------------------
# Figure 6: history length over time; flow control
# ----------------------------------------------------------------------


@dataclass
class Figure6Result:
    n: int
    total_messages: int
    flow_threshold: int
    #: label -> (history.max series points, termination time, peak)
    runs: dict[str, tuple[list[tuple[float, float]], float | None, float]] = field(
        default_factory=dict
    )

    def render(self) -> str:
        rows = []
        for label, (series, done, peak) in self.runs.items():
            rows.append(
                [
                    label,
                    peak,
                    done if done is not None else float("nan"),
                    urcgc_history_bound(self.n, K=int(label.split("K=")[1].split(",")[0]))
                    if "K=" in label
                    else 0,
                ]
            )
        title = (
            f"Figure 6 — history length; n={self.n}, "
            f"{self.total_messages} messages, flow threshold="
            f"{self.flow_threshold if self.flow_threshold else 'off'}"
        )
        return render_table(
            ["run", "peak history", "terminate (rtd)", "paper bound 2(2K+f)n"],
            rows,
            title=title,
            precision=1,
        )

    def as_dict(self) -> dict:
        return {
            "experiment": "figure6",
            "n": self.n,
            "total_messages": self.total_messages,
            "flow_threshold": self.flow_threshold,
            "runs": {
                label: {
                    "peak_history": peak,
                    "terminate_rtd": done,
                    "series": [{"t": t, "history": v} for t, v in series],
                }
                for label, (series, done, peak) in self.runs.items()
            },
        }


def figure6_history(
    *,
    n: int = 40,
    total_messages: int = 480,
    K_values: tuple[int, ...] = (2, 3, 4),
    flow_threshold: int = 0,
    omission_one_in: int = 500,
    seed: int = 1,
    max_rounds: int = 400,
) -> Figure6Result:
    """Figure 6a (``flow_threshold=0``) and 6b (``flow_threshold=8n``).

    "Simulations consider n = 40, 480 messages to be processed ...
    for different values of K and under reliable and faulty (general
    omission with 1 crash failure and 1/500 omission failures)
    conditions.  Failures are considered to occur during the first
    5 rtd."
    """
    result = Figure6Result(
        n=n, total_messages=total_messages, flow_threshold=flow_threshold
    )
    pids = _pids(n)
    for K in K_values:
        for faulty in (False, True):
            if faulty:
                # "Failures are considered to occur during the first
                # 5 rtd": the crash and the omission window both land
                # inside it.
                faults = general_omission(
                    pids,
                    crash_schedule={ProcessId(n - 1): 4.0},
                    one_in=omission_one_in,
                    rng=random.Random(seed),
                    window=(0.0, 5.0),
                )
            else:
                faults = reliable()
            cluster = SimCluster(
                UrcgcConfig(n=n, K=K, flow_threshold=flow_threshold),
                workload=FixedBudgetWorkload(pids, total=total_messages),
                faults=faults,
                max_rounds=max_rounds,
                seed=seed,
                trace=False,
            )
            done = cluster.run_until_quiescent(drain_subruns=2 * K + 2)
            series = list(cluster.max_history_series())
            label = f"K={K}, {'general-omission' if faulty else 'reliable'}"
            result.runs[label] = (series, done, cluster.max_history_series().max())
    return result
