"""Simulation driver for the Psync baseline.

Same substrate as the urcgc and CBCAST drivers.  Psync's failure
handling is the ``mask_out`` operation (driven, like CBCAST's
suspicions, by a detector with urcgc-equivalent latency of ``K``
subruns) and its flow control is a *bounded pending buffer that drops
overflow* — "thus increasing the rate of omission failures", the
behaviour Figure 6's discussion contrasts with urcgc's throttling.
"""

from __future__ import annotations

from ..baselines.psync.protocol import PsyncData, PsyncEngine
from ..core.effects import Deliver, Effect, Send
from ..errors import ConfigError
from ..net.addressing import BROADCAST_GROUP
from ..net.faults import FaultPlan
from ..net.network import DatagramNetwork
from ..net.packet import Packet
from ..net.wire import decode_message, encode_message
from ..sim.kernel import Kernel
from ..sim.rounds import RoundScheduler
from ..types import ProcessId, Time
from ..workloads.generators import NullWorkload, Workload

__all__ = ["PsyncCluster"]


class PsyncCluster:
    """One simulated Psync conversation."""

    def __init__(
        self,
        n: int,
        *,
        K: int = 3,
        pending_bound: int | None = None,
        workload: Workload | None = None,
        faults: FaultPlan | None = None,
        max_rounds: int = 200,
        seed: int = 0,
        trace: bool = True,
    ) -> None:
        if n < 2:
            raise ConfigError(f"a conversation needs at least 2 processes, got {n}")
        self.n = n
        self.K = K
        self.kernel = Kernel(seed=seed, trace=trace)
        self.network = DatagramNetwork(self.kernel, faults=faults)
        self.workload: Workload = workload or NullWorkload()
        self.scheduler = RoundScheduler(self.kernel, max_rounds=max_rounds)
        self.engines: list[PsyncEngine] = []
        self._detected: set[ProcessId] = set()
        self.delivered: dict[ProcessId, list[PsyncData]] = {}

        for i in range(n):
            pid = ProcessId(i)
            engine = PsyncEngine(pid, n, pending_bound=pending_bound)
            self.network.attach(pid, lambda packet, pid=pid: self._on_packet(pid, packet))
            self.network.join(BROADCAST_GROUP, pid)
            self.engines.append(engine)
            self.delivered[pid] = []

        self.scheduler.subscribe(self._on_round)
        self.scheduler.start()

    # ------------------------------------------------------------------

    @property
    def now(self) -> Time:
        return self.kernel.now

    def is_active(self, pid: ProcessId) -> bool:
        return not self.network.faults.is_crashed(pid, self.kernel.now)

    def active_pids(self) -> list[ProcessId]:
        return [ProcessId(i) for i in range(self.n) if self.is_active(ProcessId(i))]

    def induced_omissions(self) -> int:
        """Messages Psync's flow control destroyed across the group."""
        return sum(e.graph.induced_omissions for e in self.engines)

    def run(self, **kwargs) -> None:
        self.kernel.run(**kwargs)

    # ------------------------------------------------------------------

    def _on_round(self, round_no: int) -> None:
        now = self.kernel.now
        self._detect_failures(now)
        for pid, payload in self.workload.submissions(round_no):
            if self.is_active(pid):
                self.engines[pid].submit(payload)
        for i in range(self.n):
            pid = ProcessId(i)
            if not self.is_active(pid):
                self.engines[i].crash()
                continue
            self._execute(pid, self.engines[i].on_round(round_no))
        self.kernel.metrics.sample(
            "psync.pending.max",
            now,
            max((e.graph.pending_count for e in self.engines), default=0),
        )

    def _detect_failures(self, now: Time) -> None:
        for i in range(self.n):
            pid = ProcessId(i)
            if pid in self._detected:
                continue
            crash_time = self.network.faults.crashes.crash_time(pid)
            if crash_time is None or now < crash_time + self.K:
                continue
            self._detected.add(pid)
            for j in range(self.n):
                target = ProcessId(j)
                if target != pid and self.is_active(target):
                    self._execute(target, self.engines[j].mask_out(pid))

    def _on_packet(self, pid: ProcessId, packet) -> None:
        if not self.is_active(pid):
            return
        message = decode_message(packet.payload)
        self._execute(pid, self.engines[pid].on_message(message))

    def _execute(self, pid: ProcessId, effects: list[Effect]) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                self.network.send(
                    Packet(pid, effect.dst, encode_message(effect.message), kind=effect.kind)
                )
            elif isinstance(effect, Deliver):
                self.delivered[pid].append(effect.message)
