"""Randomized chaos runs against the *live* asyncio runtime.

The live analogue of :mod:`repro.harness.torture`: each iteration
draws a seed, a group size, and a fault plan (coordinator crash with
partial broadcast, partition-then-heal, send/receive omission,
duplication, delay jitter), runs an
:class:`~repro.runtime.node.AsyncGroup` over a
:class:`~repro.runtime.chaos.ChaosFabric` until quiescence (or a
wall-clock budget), then audits the per-node delivery logs with the
Definition 3.2 checkers.  A violation reports the seed that reproduces
it; :func:`results_as_json` renders a CI-consumable summary.

``python -m repro chaos`` is the command-line entry point.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..analysis.checkers import (
    check_local_causal_order,
    check_uniform_atomicity,
    check_uniform_ordering,
)
from ..core.config import UrcgcConfig
from ..core.message import UserMessage
from ..core.mid import Mid
from ..net.faults import FaultPlan
from ..runtime.chaos import ChaosFabric
from ..runtime.lan import AsyncLan
from ..runtime.node import AsyncGroup
from ..types import ProcessId

__all__ = [
    "LiveTortureResult",
    "audit_streams",
    "audit_group",
    "live_torture_once",
    "live_torture",
    "results_as_json",
]


@dataclass(frozen=True)
class LiveTortureResult:
    """Outcome of one randomized live run."""

    seed: int
    n: int
    K: int
    crashed: int | None
    partitioned: bool
    omission_rate: float
    duplication: float
    jitter: float
    messages: int
    quiesced: bool
    wall_time: float
    drop_reasons: dict[str, int]
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} VIOLATIONS"
        crash = f"crash=p{self.crashed}" if self.crashed is not None else "crash=-"
        return (
            f"seed={self.seed:<6d} n={self.n} K={self.K} {crash} "
            f"partition={'yes' if self.partitioned else 'no '} "
            f"omission={self.omission_rate:.3f} dup={self.duplication:.2f} "
            f"msgs={self.messages:<3d} "
            f"{'quiesced' if self.quiesced else 'timed out'} "
            f"{self.wall_time:5.2f}s  {status}"
        )

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n": self.n,
            "K": self.K,
            "crashed": self.crashed,
            "partitioned": self.partitioned,
            "omission_rate": self.omission_rate,
            "duplication": self.duplication,
            "jitter": self.jitter,
            "messages": self.messages,
            "quiesced": self.quiesced,
            "wall_time": round(self.wall_time, 3),
            "drop_reasons": dict(self.drop_reasons),
            "violations": list(self.violations),
        }


# ----------------------------------------------------------------------
# auditing
# ----------------------------------------------------------------------


def audit_streams(
    streams: Mapping[ProcessId, Sequence[UserMessage]],
    generated: Iterable[Mid],
    processed_by: Mapping[Mid, set[ProcessId]],
    active: set[ProcessId],
    discarded: set[Mid],
    *,
    converged: bool,
) -> list[str]:
    """Run every Definition 3.2 checker over collected delivery logs.

    ``converged=True`` asserts the quiescent-group clauses (equal
    per-origin subsequences and Uniform Atomicity over the active
    set); ``converged=False`` audits an in-flight group, where only
    prefix consistency and local causal order must hold.  ``discarded``
    mids — orphan discards and crash-void ranges — are exempt from
    atomicity and excised from the ordering comparison (a site may have
    processed a message shortly before the group voided it).
    """
    violations: list[str] = []
    voided = frozenset(discarded)
    for pid, stream in streams.items():
        violations.extend(
            str(v)
            for v in check_local_causal_order(pid, stream, voided=voided).violations
        )
    if streams:
        violations.extend(
            str(v)
            for v in check_uniform_ordering(
                dict(streams), converged=converged, voided=voided
            ).violations
        )
    if converged and active:
        violations.extend(
            str(v)
            for v in check_uniform_atomicity(
                generated,
                {mid: set(by) for mid, by in processed_by.items()},
                active,
                discarded=frozenset(discarded),
            ).violations
        )
    return violations


def audit_group(group: AsyncGroup, *, converged: bool) -> list[str]:
    """Collect a live group's delivery logs and audit them.

    Crashed nodes contribute what they generated, processed, and
    discarded before dying (their history matters for atomicity), but
    only live nodes form the *active* set the guarantees quantify
    over.
    """
    active = {node.pid for node in group.live_nodes}
    streams = {node.pid: list(node.delivered) for node in group.live_nodes}
    generated: list[Mid] = []
    processed_by: dict[Mid, set[ProcessId]] = {}
    discarded: set[Mid] = set()
    for node in group.nodes:
        generated.extend(node.generated_mids)
        discarded.update(node.discarded_mids)
        for message in node.delivered:
            processed_by.setdefault(message.mid, set()).add(node.pid)
    return audit_streams(
        streams, generated, processed_by, active, discarded, converged=converged
    )


# ----------------------------------------------------------------------
# one randomized live scenario
# ----------------------------------------------------------------------


async def _chaos_run(
    seed: int, *, budget: float, round_interval: float
) -> LiveTortureResult:
    rng = random.Random(seed)
    n = rng.randint(3, 6)
    K = rng.randint(2, 3)
    omission_rate = rng.choice([0.0, 0.0, 0.01, 0.02])
    duplication = rng.choice([0.0, 0.0, 0.1, 0.25])
    jitter = rng.choice([0.0, 0.5, 1.5]) * round_interval
    message_count = rng.randint(n, 3 * n)
    do_partition = rng.random() < 0.5
    do_crash = rng.random() < 0.5
    pids = [ProcessId(i) for i in range(n)]
    subrun_seconds = 2 * round_interval

    plan = FaultPlan(rng=random.Random(seed + 1))
    if omission_rate:
        plan.set_uniform_omission(pids, omission_rate)
    fabric = ChaosFabric(
        AsyncLan(),
        plan,
        duplication=duplication,
        jitter=jitter,
        seed=seed + 2,
    )
    group = AsyncGroup(
        UrcgcConfig(n=n, K=K, R=2 * K + 4),
        lan=fabric,
        round_interval=round_interval,
    )
    loop = asyncio.get_running_loop()
    started = loop.time()
    crashed: int | None = None
    group.start()
    try:
        for i in range(message_count):
            origin = ProcessId(rng.randrange(n))
            group.nodes[origin].submit(f"chaos-{seed}-{i}".encode())

        if do_partition:
            await asyncio.sleep(rng.uniform(0.5, 2.0) * subrun_seconds)
            split = list(pids)
            rng.shuffle(split)
            cut = rng.randint(1, n - 1)
            plan.partitions.partition(split[:cut], split[cut:])
            await asyncio.sleep(rng.uniform(0.5, 1.5) * subrun_seconds)
            plan.partitions.heal()

        if do_crash:
            partial = rng.choice([None, rng.randint(0, max(0, n - 2))])
            crashed = await group.crash_coordinator_at_subrun(
                rng.randint(1, 4),
                partial_deliveries=partial,
                timeout=budget / 4,
            )

        quiesced = True
        try:
            remaining = budget - (loop.time() - started)
            await group.wait_until(group.quiescent, timeout=max(0.1, remaining))
        except asyncio.TimeoutError:
            quiesced = False
        violations = audit_group(group, converged=quiesced)
    finally:
        await group.stop()
    return LiveTortureResult(
        seed=seed,
        n=n,
        K=K,
        crashed=None if crashed is None else int(crashed),
        partitioned=do_partition,
        omission_rate=omission_rate,
        duplication=duplication,
        jitter=jitter,
        messages=message_count,
        quiesced=quiesced,
        wall_time=loop.time() - started,
        drop_reasons=dict(fabric.stats.drop_reasons),
        violations=tuple(violations),
    )


def live_torture_once(
    seed: int, *, budget: float = 20.0, round_interval: float = 0.005
) -> LiveTortureResult:
    """One randomized live chaos scenario, fully checked."""
    return asyncio.run(_chaos_run(seed, budget=budget, round_interval=round_interval))


def live_torture(
    iterations: int,
    *,
    start_seed: int = 0,
    budget: float = 20.0,
    round_interval: float = 0.005,
) -> list[LiveTortureResult]:
    """Run ``iterations`` randomized live scenarios; returns all results."""
    return [
        live_torture_once(
            start_seed + i, budget=budget, round_interval=round_interval
        )
        for i in range(iterations)
    ]


def results_as_json(results: Sequence[LiveTortureResult]) -> dict:
    """CI-consumable summary: per-run records plus rollup counters."""
    return {
        "experiment": "chaos",
        "iterations": len(results),
        "clean": sum(1 for r in results if r.ok),
        "quiesced": sum(1 for r in results if r.quiesced),
        "failing_seeds": [r.seed for r in results if not r.ok],
        "results": [r.as_dict() for r in results],
    }
