"""Adversarial packet mutators for the chaos harness (PROTOCOL §13).

Omission-model chaos (crash, loss, partition) exercises the paper's
*assumed* fault envelope.  This module steps outside it: each mutator
is a :data:`~repro.net.faults.PacketMutator` that rewrites datagrams
in flight the way a buggy or Byzantine peer would, so the receive-path
defenses (decode hardening, semantic validation, equivocation
detection, incarnation fencing) can be demonstrated end to end by
:mod:`repro.harness.adversarial`.

Three families:

* :class:`DepVectorForger` — corrupts the causal metadata of DATA
  messages: out-of-range dependency origins or plain truncation.  The
  receiver's decode/validation layer must drop these as losses.
* :class:`Equivocator` — rewrites a coordinator's DECISION *per
  destination*, so different members observe conflicting decisions
  with the same number and coordinator.  The engines' decision-log
  cross-check must reject the conflicting copy.
* :class:`JoinReplayTap` — records JOIN request datagrams so a
  scenario can later replay a stale incarnation's join (a "zombie"):
  incarnation fencing must refuse it.

Mutators select their victims by ``packet.kind`` and source pid and
return ``None`` (no rewrite) for everything else, so they compose with
any other traffic on the fabric.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.message import (
    KIND_DATA,
    KIND_DECISION,
    DecisionMessage,
    UserMessage,
)
from ..core.mid import Mid
from ..core.rejoin import KIND_JOIN
from ..errors import WireFormatError
from ..net.packet import Packet
from ..net.wire import decode_message, encode_message
from ..types import ProcessId, SeqNo, Time

__all__ = ["DepVectorForger", "Equivocator", "JoinReplayTap", "FORGED_ORIGIN"]

#: Dependency origin no real group can contain (u16 max): semantic
#: validation rejects any member index >= n.
FORGED_ORIGIN = ProcessId(0xFFFF)


class DepVectorForger:
    """Forge the dependency vector of DATA messages from ``victim``.

    Every ``stride``-th DATA datagram from the victim is rewritten for
    each destination: either its dependency list gains a mid with an
    impossible origin (``mode="out-of-range"``) or the datagram is cut
    short mid-vector (``mode="truncate"``).  Both must be dropped by
    the receiver — the first by semantic validation, the second by the
    structural decoder — and recovered like an ordinary omission.
    """

    def __init__(self, victim: ProcessId, *, mode: str = "out-of-range", stride: int = 2) -> None:
        if mode not in ("out-of-range", "truncate"):
            raise ValueError(f"unknown forge mode {mode!r}")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.victim = victim
        self.mode = mode
        self.stride = stride
        #: Datagram copies this forger rewrote.
        self.forged = 0
        self._seen = 0

    def __call__(self, packet: Packet, dst: ProcessId, now: Time) -> bytes | None:
        if packet.kind != KIND_DATA or packet.src != self.victim:
            return None
        self._seen += 1
        if self._seen % self.stride:
            return None
        if self.mode == "truncate":
            if len(packet.payload) < 4:
                return None
            self.forged += 1
            return packet.payload[: len(packet.payload) - 3]
        try:
            message = decode_message(packet.payload)
        except WireFormatError:
            return None
        if not isinstance(message, UserMessage):
            return None
        forged = replace(
            message,
            deps=(*message.deps, Mid(FORGED_ORIGIN, SeqNo(1))),
        )
        self.forged += 1
        return encode_message(forged)


class Equivocator:
    """Make coordinator ``victim`` appear to equivocate its DECISIONs.

    Destination copies with odd pids receive a *different* decision
    under the same number and coordinator: the stability vector is
    inflated by one for the coordinator's own slot (a lie about what
    is safe to clean).  The copy is wire-valid and semantically in
    range, so only the per-number decision-log cross-check in the
    engine can catch the conflict.
    """

    def __init__(self, victim: ProcessId) -> None:
        self.victim = victim
        #: DECISION copies rewritten into the conflicting variant.
        self.equivocated = 0

    def __call__(self, packet: Packet, dst: ProcessId, now: Time) -> bytes | None:
        if packet.kind != KIND_DECISION or packet.src != self.victim:
            return None
        if int(dst) % 2 == 0:
            return None  # even pids see the honest decision
        try:
            message = decode_message(packet.payload)
        except WireFormatError:
            return None
        if not isinstance(message, DecisionMessage):
            return None
        decision = message.decision
        stable = list(decision.stable)
        slot = int(decision.coordinator) % len(stable)
        stable[slot] = SeqNo(int(stable[slot]) + 1)
        self.equivocated += 1
        return encode_message(
            DecisionMessage(replace(decision, stable=tuple(stable)))
        )


class JoinReplayTap:
    """Record JOIN datagrams for later zombie replay.

    A passive tap: it never rewrites anything (always returns
    ``None``), but keeps the raw bytes of every JOIN request ``victim``
    broadcasts.  A scenario replays :attr:`captured` onto the fabric
    after the victim has been re-admitted under a newer incarnation —
    the replayed join carries the stale incarnation and must be fenced.
    """

    def __init__(self, victim: ProcessId) -> None:
        self.victim = victim
        #: Raw JOIN payloads in capture order (deduplicated).
        self.captured: list[bytes] = []

    def __call__(self, packet: Packet, dst: ProcessId, now: Time) -> bytes | None:
        if packet.kind == KIND_JOIN and packet.src == self.victim:
            if packet.payload not in self.captured:
                self.captured.append(packet.payload)
        return None
