"""Experiment harness: simulation drivers, per-figure experiments,
parameter sweeps, and the experiment registry."""

from .cbcast_cluster import CbcastCluster
from .cluster import SimCluster
from .sweep import SweepResult, sweep

__all__ = ["CbcastCluster", "SimCluster", "SweepResult", "sweep"]
