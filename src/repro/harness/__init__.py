"""Experiment harness: simulation drivers, per-figure experiments,
parameter sweeps, and the experiment registry."""

from .cbcast_cluster import CbcastCluster
from .cluster import SimCluster
from .live_torture import LiveTortureResult, live_torture, live_torture_once
from .sweep import SweepResult, sweep

__all__ = [
    "CbcastCluster",
    "SimCluster",
    "LiveTortureResult",
    "live_torture",
    "live_torture_once",
    "SweepResult",
    "sweep",
]
