"""The simulation driver: a full urcgc group over the simulated LAN.

:class:`SimCluster` instantiates one :class:`~repro.core.member.Member`
per process, attaches each to the datagram network through its own
:class:`~repro.net.transport.MulticastTransport` entity (the Section 5
stack: urcgc entity over a t-SAP), drives rounds with the
:class:`~repro.sim.rounds.RoundScheduler`, executes engine effects, and
collects every metric the paper's evaluation reports — end-to-end
delays, control traffic, history and waiting-list occupancy.
"""

from __future__ import annotations

import time

from ..analysis.delay import DeliveryLog
from ..core.batcher import Batcher, expand_message
from ..core.config import UrcgcConfig
from ..core.effects import (
    Confirm,
    DecisionApplied,
    Deliver,
    Discarded,
    Effect,
    Left,
    SuspicionChange,
)
from ..core.member import Member
from ..core.message import (
    DecisionMessage,
    GenerateBatch,
    RequestMessage,
    UserMessage,
)
from ..core.service import UrcgcService
from ..core.validate import validate_message
from ..errors import WireFormatError
from ..net.addressing import BROADCAST_GROUP
from ..net.faults import FaultPlan
from ..net.network import DatagramNetwork
from ..net.transport import MulticastTransport
from ..net.wire import BatchFrame, decode_message, encode_message
from ..obs import NULL_RECORDER, Recorder, write_jsonl
from ..sim.kernel import Kernel
from ..sim.rounds import RoundScheduler
from ..storage import GroupStorage, NodeStorage, snapshot_of
from ..types import ProcessId, Time
from ..workloads.generators import NullWorkload, Workload

__all__ = ["SimCluster"]


class SimCluster:
    """One simulated urcgc group.

    Parameters
    ----------
    config:
        Protocol parameters shared by every member.
    workload:
        Submission source queried at every round.
    faults:
        Fault plan (defaults to a reliable network).
    h:
        Transport-level required replies; the paper simulates ``h = 1``
        (raw datagram, recovery handled by urcgc's history).
    mtu:
        Optional transport MTU: frames above it go through the
        fragmentation sublayer.
    max_rounds:
        Hard stop for the round scheduler.
    seed, trace:
        Kernel determinism and tracing controls.
    storage:
        Optional :class:`~repro.storage.GroupStorage`: every member
        then write-ahead-logs its traffic and snapshots on the
        storage's cadence, exactly like the live runtime — the
        deterministic code path the recovery property tests replay.
    """

    def __init__(
        self,
        config: UrcgcConfig,
        *,
        workload: Workload | None = None,
        faults: FaultPlan | None = None,
        h: int = 1,
        mtu: int | None = None,
        max_rounds: int = 200,
        seed: int = 0,
        trace: bool = True,
        one_way_delay: Time = 0.5,
        medium=None,
        storage: GroupStorage | None = None,
    ) -> None:
        self.config = config
        self.kernel = Kernel(seed=seed, trace=trace)
        #: Span recorder (no-op unless ``config.observability``); it
        #: shares the kernel's registry, so `history.*` series and the
        #: network counters land in the same exported state.
        self.recorder: Recorder = (
            Recorder(
                clock=lambda: float(self.kernel.now),
                clock_kind="sim",
                registry=self.kernel.metrics,
            )
            if config.observability
            else NULL_RECORDER
        )
        self._obs = self.recorder.enabled
        self.network = DatagramNetwork(
            self.kernel, faults=faults, one_way_delay=one_way_delay, medium=medium
        )
        if self._obs:
            self.network.stats.bind(self.kernel.metrics)
        self.workload: Workload = workload or NullWorkload()
        self.scheduler = RoundScheduler(self.kernel, max_rounds=max_rounds)
        self.delivery_log = DeliveryLog()
        self.members: list[Member] = []
        self.services: list[UrcgcService] = []
        self.transports: list[MulticastTransport] = []
        self._quiescent_at: Time | None = None
        self.storage = storage
        #: Datagrams dropped by the hardened decode path (malformed or
        #: semantically out-of-range PDUs), cluster-wide.
        self.decode_errors = 0
        #: Batch-expanded duplicates suppressed before the engine.
        self.dup_suppressed = 0
        #: Suspicion transitions reported by members' failure
        #: detectors, as (pid, effect) pairs in occurrence order.
        self.suspicion_events: list[tuple[ProcessId, SuspicionChange]] = []
        #: Per-member delivery logs, kept only when storage is enabled
        #: (snapshots serialize them).
        self.delivered: list[list[UserMessage]] | None = (
            [[] for _ in range(config.n)] if storage is not None else None
        )

        for i in range(config.n):
            pid = ProcessId(i)
            member = Member(pid, config)
            service = UrcgcService(member)
            transport = MulticastTransport(
                self.kernel,
                self.network,
                pid,
                on_data=lambda src, data, pid=pid: self._on_data(pid, src, data),
                h=h,
                mtu=mtu,
            )
            self.network.join(BROADCAST_GROUP, pid)
            self.members.append(member)
            self.services.append(service)
            self.transports.append(transport)

        #: Per-member wire batchers (None when batching is off): the
        #: bookkeeping in ``_execute`` always sees the original sends;
        #: only the transmission path goes through ``pack``.
        self._batchers: list[Batcher] | None = (
            [
                Batcher(
                    config.batching,
                    registry=self.kernel.metrics if self._obs else None,
                    clock=time.perf_counter if self._obs else None,
                )
                for _ in range(config.n)
            ]
            if config.batching is not None
            else None
        )

        self.scheduler.subscribe(self._on_round)
        self.scheduler.start()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    @property
    def now(self) -> Time:
        return self.kernel.now

    def is_active(self, pid: ProcessId) -> bool:
        """Active = not crashed and not left (the paper's group)."""
        return not self.network.faults.is_crashed(
            pid, self.kernel.now
        ) and not self.members[pid].has_left

    def active_pids(self) -> list[ProcessId]:
        return [ProcessId(i) for i in range(self.config.n) if self.is_active(ProcessId(i))]

    def quiescent(self) -> bool:
        """All active members agree on what was processed, have no
        pending submissions or waiting messages, and the workload has
        nothing more to submit."""
        finished = getattr(self.workload, "finished", None)
        if finished is not None and not finished(self.scheduler.current_round):
            return False
        active = self.active_pids()
        if not active:
            return True
        vectors = set()
        for pid in active:
            member = self.members[pid]
            if member.pending_submissions or member.waiting_length:
                return False
            vectors.add(member.last_processed_vector())
        return len(vectors) == 1

    @property
    def quiescent_at(self) -> Time | None:
        """First time quiescence was observed at a round boundary."""
        return self._quiescent_at

    def delay_report(self):
        """Delay statistics over the final active membership."""
        return self.delivery_log.report(set(self.active_pids()))

    def history_series(self, pid: ProcessId):
        return self.kernel.metrics.series_for(f"history.p{pid}")

    def max_history_series(self):
        """Per-round maximum history length over active members."""
        return self.kernel.metrics.series_for("history.max")

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def run(self, *, max_events: int | None = None) -> None:
        """Run to completion (queue drained or max_rounds reached)."""
        self.kernel.run(max_events=max_events)

    def resume_rounds(self) -> None:
        """Un-stop the round scheduler (see
        :meth:`~repro.sim.rounds.RoundScheduler.resume`): the service
        tier keeps a cluster alive across quiescent phases and re-runs
        it for failover salvage and topic handoff."""
        self._quiescent_at = None
        self.scheduler.resume()

    def crash(self, pid: ProcessId, *, partial_deliveries: int | None = None) -> None:
        """Crash ``pid`` *now* (mid-run fault injection).

        Unlike a pre-declared :class:`FaultPlan` crash this needs no
        schedule: the member stops sending and receiving from the
        current instant, and the survivors' loss-declaration machinery
        (K missed turns, orphan discard, eviction) takes over.  The
        service-tier failover path drives this.
        """
        self.network.faults.crashes.crash(
            pid, self.kernel.now, partial_deliveries=partial_deliveries
        )

    def run_until_quiescent(self, *, drain_subruns: int = 0) -> Time | None:
        """Run until the group goes *stably* quiescent, then optionally
        keep running ``drain_subruns`` more subruns (history cleaning
        trails quiescence by up to a subrun under reliable conditions).

        A workload may submit again after a momentarily-quiet round, so
        quiescence is re-checked after the drain window; if new work
        arrived, the run continues until the group is quiet again.
        Returns the (final) quiescence time, or None if max_rounds was
        reached first.
        """
        while True:
            self.kernel.run(stop_when=lambda: self._quiescent_at is not None)
            if self._quiescent_at is None:
                return None  # max_rounds exhausted without quiescence
            if drain_subruns:
                horizon = self._quiescent_at + 2 * drain_subruns
                self.kernel.run(until=horizon)
            if self.quiescent():
                break
            # More submissions landed after the quiet instant: unlatch
            # and keep running.
            self._quiescent_at = None
        self.scheduler.stop()
        self.kernel.run()
        return self._quiescent_at

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def write_trace(self, path: str, **meta: object) -> None:
        """Export the run's JSONL trace (requires observability on)."""
        if not self._obs:
            raise RuntimeError(
                "observability is disabled; construct the cluster with "
                "UrcgcConfig(observability=True)"
            )
        write_jsonl(path, self.recorder, runner="sim", n=self.config.n, **meta)

    def _on_round(self, round_no: int) -> None:
        now = self.kernel.now
        if self._obs and round_no % 2 == 0:
            self.recorder.subrun(round_no // 2, time=now)
        for pid, payload in self.workload.submissions(round_no):
            if self.is_active(pid):
                self.services[pid].data_rq(payload)
        for i in range(self.config.n):
            pid = ProcessId(i)
            if not self.is_active(pid):
                continue
            effects = self.members[i].on_round(round_no)
            self._execute(pid, effects)
        self._sample_metrics(now, round_no)
        if self._quiescent_at is None and round_no > 0 and self.quiescent():
            has_pending = any(
                self.members[pid].pending_submissions for pid in self.active_pids()
            )
            if not has_pending:
                self._quiescent_at = now
                self.kernel.trace.emit(now, "cluster.quiescent", None, round=round_no)

    def _sample_metrics(self, now: Time, round_no: int) -> None:
        metrics = self.kernel.metrics
        max_history = 0
        max_waiting = 0
        for i in range(self.config.n):
            pid = ProcessId(i)
            if not self.is_active(pid):
                continue
            member = self.members[i]
            metrics.sample(f"history.p{pid}", now, member.history_length)
            max_history = max(max_history, member.history_length)
            max_waiting = max(max_waiting, member.waiting_length)
        metrics.sample("history.max", now, max_history)
        metrics.sample("waiting.max", now, max_waiting)

    def _on_data(self, pid: ProcessId, src: ProcessId, data: bytes) -> None:
        if not self.is_active(pid):
            return
        try:
            decoded = decode_message(data)
            expanded = list(expand_message(decoded))
        except WireFormatError:
            # Malformed bytes (bad tag, truncated vector, garbage) are
            # a loss at this endpoint, never a crash of the simulation.
            self._count_decode_error(pid, "parse")
            return
        batched = isinstance(decoded, (BatchFrame, GenerateBatch))
        member = self.members[pid]
        for message in expanded:
            if member.has_left:
                break
            problem = validate_message(message, self.config.n)
            if problem is not None:
                # Structurally valid but semantically out of range
                # (forged vector, member index >= n): drop the PDU.
                self._count_decode_error(pid, "range")
                continue
            if (
                batched
                and isinstance(message, UserMessage)
                and member.already_seen(message.mid)
            ):
                # A duplicated batch frame re-expands every sub-message;
                # suppress the copies once here so duplication x
                # batching is not multiply-counted by the engine.
                self.dup_suppressed += 1
                if self._obs:
                    self.kernel.metrics.count("batch.dup_suppressed", node=int(pid))
                continue
            effects = member.on_message(message)
            self._execute(pid, effects)

    def _count_decode_error(self, pid: ProcessId, reason: str) -> None:
        self.decode_errors += 1
        if self._obs:
            self.kernel.metrics.count(
                "net.decode_error", node=int(pid), reason=reason
            )

    def _node_storage(self, pid: ProcessId) -> "NodeStorage | None":
        if self.storage is None:
            return None
        node_storage = self.storage.node(pid)
        if self._obs and node_storage._registry is None:
            node_storage.bind_registry(self.kernel.metrics)
        return node_storage

    def _execute(self, pid: ProcessId, effects: list[Effect]) -> None:
        now = self.kernel.now
        node_storage = self._node_storage(pid)
        sends = self.services[pid].dispatch(effects)
        for effect in effects:
            if isinstance(effect, Deliver):
                self.delivery_log.on_processed(effect.message.mid, pid, now)
                if self._obs:
                    self.recorder.processed(effect.message.mid, node=pid, time=now)
                if self.delivered is not None:
                    self.delivered[pid].append(effect.message)
                if (
                    node_storage is not None
                    and effect.message.mid.origin != pid
                ):
                    node_storage.log_processed(effect.message)
            elif isinstance(effect, DecisionApplied):
                if self._obs:
                    self.recorder.decision(
                        int(effect.decision.number), node=pid, applied=True, time=now
                    )
                if node_storage is not None:
                    node_storage.log_decision(effect.decision)
            elif isinstance(effect, Discarded):
                # The lost message is destroyed along with its
                # dependents: the "or none of them" branch of atomicity.
                self.delivery_log.on_discarded((effect.lost, *effect.discarded))
                if self._obs:
                    self.recorder.discarded(
                        effect.lost, node=pid, count=1 + len(effect.discarded), time=now
                    )
                self.kernel.trace.emit(
                    now, "member.discarded", pid,
                    lost=effect.lost, count=len(effect.discarded),
                )
            elif isinstance(effect, SuspicionChange):
                self.suspicion_events.append((pid, effect))
                if self._obs:
                    self.recorder.suspect(
                        effect.pid,
                        suspected=effect.suspected,
                        node=int(pid),
                        reason=effect.reason,
                        time=now,
                    )
                    self.kernel.metrics.count(
                        "fd.suspect" if effect.suspected else "fd.unsuspect",
                        node=int(pid),
                    )
                self.kernel.trace.emit(
                    now, "member.suspect", pid,
                    target=int(effect.pid), suspected=effect.suspected,
                )
            elif isinstance(effect, Left):
                self.kernel.trace.emit(now, "member.left", pid, reason=effect.reason)
            elif isinstance(effect, Confirm):
                self.kernel.trace.emit(now, "member.confirm", pid, mid=effect.mid)
        for send in sends:
            message = send.message
            if isinstance(message, UserMessage) and message.mid.origin == pid:
                self.delivery_log.on_generated(message.mid, now)
                if self._obs:
                    self.recorder.generated(
                        message.mid, message.deps, node=pid, time=now
                    )
                if node_storage is not None:
                    # Log-before-send, as in the live runtime.
                    node_storage.log_generated(message)
            elif isinstance(message, RequestMessage):
                if self._obs:
                    self.recorder.request(int(message.subrun), node=pid, time=now)
            elif isinstance(message, DecisionMessage):
                decision = message.decision
                if self._obs:
                    self.recorder.decision(int(decision.number), node=pid, time=now)
                self.kernel.trace.emit(
                    now,
                    "decision.broadcast",
                    pid,
                    number=int(decision.number),
                    chain=decision.chain,
                    full_group=decision.full_group,
                    alive=sum(decision.alive),
                )
        wire_sends = (
            self._batchers[pid].pack(sends) if self._batchers is not None else sends
        )
        for send in wire_sends:
            self.transports[pid].t_data_rq(
                send.dst, encode_message(send.message), kind=send.kind
            )
        if node_storage is not None and node_storage.should_snapshot():
            node_storage.save_snapshot(
                snapshot_of(
                    self.members[pid],
                    self.delivered[pid] if self.delivered is not None else (),
                    round_no=self.scheduler.current_round,
                )
            )
