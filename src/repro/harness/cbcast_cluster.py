"""Simulation driver for the CBCAST baseline.

Mirrors :class:`~repro.harness.cluster.SimCluster` so the two protocols
run over the identical network substrate, workloads, and fault plans —
the comparison in Figure 5 and Table 1 is therefore apples-to-apples.

CBCAST (as modelled in the paper) has no embedded failure detection;
the driver provides one with the same latency urcgc pays: a crash is
reported to the survivors ``K`` subruns after it happens (urcgc needs
``K`` missed requests to declare a crash).
"""

from __future__ import annotations

from ..analysis.delay import DeliveryLog
from ..baselines.cbcast.messages import CbcastData
from ..baselines.cbcast.protocol import CbcastEngine
from ..core.effects import Deliver, Effect, Send
from ..core.mid import Mid
from ..errors import ConfigError
from ..net.addressing import BROADCAST_GROUP
from ..net.faults import FaultPlan
from ..net.network import DatagramNetwork
from ..net.wire import decode_message, encode_message
from ..sim.kernel import Kernel
from ..sim.rounds import RoundScheduler
from ..types import ProcessId, SeqNo, Time
from ..workloads.generators import NullWorkload, Workload

__all__ = ["CbcastCluster"]


class CbcastCluster:
    """One simulated CBCAST group."""

    def __init__(
        self,
        n: int,
        *,
        K: int = 3,
        workload: Workload | None = None,
        faults: FaultPlan | None = None,
        max_rounds: int = 200,
        seed: int = 0,
        trace: bool = True,
        gossip_when_idle: bool = True,
    ) -> None:
        if n < 2:
            raise ConfigError(f"a group needs at least 2 processes, got n={n}")
        self.n = n
        self.K = K
        self.kernel = Kernel(seed=seed, trace=trace)
        self.network = DatagramNetwork(self.kernel, faults=faults)
        self.workload: Workload = workload or NullWorkload()
        self.scheduler = RoundScheduler(self.kernel, max_rounds=max_rounds)
        self.delivery_log = DeliveryLog()
        self.engines: list[CbcastEngine] = []
        self._detected: set[ProcessId] = set()

        for i in range(n):
            pid = ProcessId(i)
            engine = CbcastEngine(pid, n, gossip_when_idle=gossip_when_idle)
            self.network.attach(pid, lambda packet, pid=pid: self._on_packet(pid, packet))
            self.network.join(BROADCAST_GROUP, pid)
            self.engines.append(engine)

        self.scheduler.subscribe(self._on_round)
        self.scheduler.start()

    # ------------------------------------------------------------------

    @property
    def now(self) -> Time:
        return self.kernel.now

    def is_active(self, pid: ProcessId) -> bool:
        return not self.network.faults.is_crashed(pid, self.kernel.now)

    def active_pids(self) -> list[ProcessId]:
        return [ProcessId(i) for i in range(self.n) if self.is_active(ProcessId(i))]

    def blocked_pids(self) -> list[ProcessId]:
        return [
            ProcessId(i)
            for i in range(self.n)
            if self.is_active(ProcessId(i)) and self.engines[i].blocked
        ]

    def delay_report(self):
        return self.delivery_log.report(set(self.active_pids()))

    def run(self, **kwargs) -> None:
        self.kernel.run(**kwargs)

    # ------------------------------------------------------------------

    def _on_round(self, round_no: int) -> None:
        now = self.kernel.now
        self._detect_failures(now)
        for pid, payload in self.workload.submissions(round_no):
            if self.is_active(pid) and not self.engines[pid].blocked:
                self.engines[pid].submit(payload)
        for i in range(self.n):
            pid = ProcessId(i)
            if not self.is_active(pid):
                self.engines[i].crash()
                continue
            self._execute(pid, self.engines[i].on_round(round_no))
        blocked = len(self.blocked_pids())
        self.kernel.metrics.sample("cbcast.blocked", now, blocked)
        self.kernel.metrics.sample(
            "cbcast.unstable.max",
            now,
            max(
                (self.engines[p].unstable_count for p in self.active_pids()),
                default=0,
            ),
        )

    def _detect_failures(self, now: Time) -> None:
        """Report each crash to survivors K subruns after it happened."""
        for i in range(self.n):
            pid = ProcessId(i)
            if pid in self._detected:
                continue
            crash_time = self.network.faults.crashes.crash_time(pid)
            if crash_time is None or now < crash_time + self.K:
                continue
            self._detected.add(pid)
            self.kernel.trace.emit(now, "cbcast.suspect", None, suspect=pid)
            for j in range(self.n):
                target = ProcessId(j)
                if target != pid and self.is_active(target):
                    self._execute(target, self.engines[j].suspect(pid))

    def _on_packet(self, pid: ProcessId, packet) -> None:
        if not self.is_active(pid):
            return
        message = decode_message(packet.payload)
        self._execute(pid, self.engines[pid].on_message(message))

    def _execute(self, pid: ProcessId, effects: list[Effect]) -> None:
        now = self.kernel.now
        for effect in effects:
            if isinstance(effect, Send):
                message = effect.message
                if (
                    isinstance(message, CbcastData)
                    and message.sender == pid
                    and not message.retransmission
                ):
                    self.delivery_log.on_generated(self._mid_of(message), now)
                from ..net.packet import Packet

                self.network.send(
                    Packet(pid, effect.dst, encode_message(message), kind=effect.kind)
                )
            elif isinstance(effect, Deliver):
                self.delivery_log.on_processed(self._mid_of(effect.message), pid, now)

    @staticmethod
    def _mid_of(message: CbcastData) -> Mid:
        return Mid(message.sender, SeqNo(message.vt[message.sender]))
