"""Experiment registry and command-line entry point.

``python -m repro.harness.runner list`` shows every reproducible
table/figure; ``python -m repro.harness.runner run figure4`` runs one
and prints its rendering (the same output the benchmarks assert on and
EXPERIMENTS.md quotes).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from . import ablations, experiments
from .compare import compare_protocols

__all__ = ["EXPERIMENTS", "run_experiment", "main"]


def _figure6a() -> "experiments.Figure6Result":
    return experiments.figure6_history(flow_threshold=0)


def _figure6b() -> "experiments.Figure6Result":
    # A threshold low enough to bind in our (faster-cleaning)
    # implementation; the paper used 8n — see EXPERIMENTS.md.
    return experiments.figure6_history(K_values=(3,), flow_threshold=60)


#: Experiment id -> (description, zero-argument runner).
EXPERIMENTS: dict[str, tuple[str, Callable[[], object]]] = {
    "figure4": (
        "Mean end-to-end delay D vs offered load (reliable / crash / omission)",
        experiments.figure4_delay,
    ),
    "figure5": (
        "Group agreement time T vs consecutive coordinator crashes f",
        experiments.figure5_agreement,
    ),
    "table1": (
        "Control messages per subrun and sizes, urcgc vs CBCAST",
        experiments.table1_traffic,
    ),
    "figure6a": (
        "History length over time without flow control",
        _figure6a,
    ),
    "figure6b": (
        "History length with the distributed flow control engaged",
        _figure6b,
    ),
    "ablation-circulation": (
        "Decision circulation on/off under omission",
        ablations.ablate_circulation,
    ),
    "ablation-causality": (
        "Declared vs conservative vs temporal (vector clock) causality",
        ablations.ablate_causality,
    ),
    "ablation-flow-threshold": (
        "Flow-control threshold sweep around the paper's 8n",
        ablations.ablate_flow_threshold,
    ),
    "ablation-flow-style": (
        "urcgc throttling vs Psync drop-based flow control",
        ablations.ablate_flow_control_style,
    ),
    "ablation-transport-h": (
        "Transport-level reliability (h) vs history recovery",
        ablations.ablate_transport_h,
    ),
    "ablation-bus": (
        "Delay vs offered load on a saturable Ethernet bus",
        ablations.ablate_bus_saturation,
    ),
    "compare-reliable": (
        "urcgc vs CBCAST head-to-head, fault-free",
        lambda: compare_protocols(scenario="reliable"),
    ),
    "compare-crash": (
        "urcgc vs CBCAST head-to-head, one crash",
        lambda: compare_protocols(scenario="crash"),
    ),
    "compare-omission": (
        "urcgc vs CBCAST head-to-head over a lossy subnet",
        lambda: compare_protocols(scenario="omission-1/50"),
    ),
}


def run_experiment(name: str, *, as_json: bool = False) -> str:
    """Run one registered experiment; return its rendering (or JSON)."""
    try:
        _, runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    result = runner()
    if as_json:
        import json

        payload = result.as_dict()  # type: ignore[attr-defined]
        if "experiment" not in payload:
            payload = {"experiment": name, **payload}
        return json.dumps(payload, indent=2)
    return result.render()  # type: ignore[attr-defined]


def _report_command(trace: str | None, *, mid: str | None, demo: bool) -> int:
    """The ``report`` subcommand: parse (or demo-produce) a JSONL trace
    and print its rendering."""
    from ..obs import read_jsonl, render_trace_report

    if demo:
        from ..core.config import UrcgcConfig
        from ..types import ProcessId
        from ..workloads.generators import FixedBudgetWorkload
        from .cluster import SimCluster

        config = UrcgcConfig(n=4, observability=True)
        pids = [ProcessId(0), ProcessId(1)]
        cluster = SimCluster(config, workload=FixedBudgetWorkload(pids, 6))
        cluster.run_until_quiescent(drain_subruns=2)
        if trace is not None:
            cluster.write_trace(trace, experiment="demo")
            records = read_jsonl(trace)
        else:
            from ..obs import events_as_dicts, registry_records

            records = [{"ev": "meta", "runner": "sim", "clock": "sim"}]
            records += events_as_dicts(cluster.recorder.events)
            for metric in registry_records(cluster.recorder.registry):
                record: dict = {"ev": "metric", "name": metric.name,
                               "family": metric.family, "labels": metric.labels}
                if metric.value is not None:
                    record["value"] = metric.value
                if metric.summary is not None:
                    record["summary"] = metric.summary
                records.append(record)
        print(render_trace_report(records, mid=mid))
        return 0
    if trace is None:
        print("report: a TRACE path is required (or pass --demo)", file=sys.stderr)
        return 2
    try:
        records = read_jsonl(trace)
    except OSError as exc:
        print(f"report: cannot read {trace}: {exc}", file=sys.stderr)
        return 2
    print(render_trace_report(records, mid=mid))
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["lint"]:
        # Dispatched before argparse: the lint CLI owns its own flags
        # (argparse.REMAINDER cannot forward leading optionals).
        from ..lint.cli import main as lint_main

        return lint_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("name", choices=sorted(EXPERIMENTS) + ["all"])
    run_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    torture_parser = sub.add_parser(
        "torture", help="fuzz random scenarios and audit the URCGC theorems"
    )
    torture_parser.add_argument("-n", "--iterations", type=int, default=20)
    torture_parser.add_argument("--seed", type=int, default=0)
    chaos_parser = sub.add_parser(
        "chaos",
        help="live fault-injected asyncio runs, audited with the "
        "Definition 3.2 checkers",
    )
    chaos_parser.add_argument("-n", "--iterations", type=int, default=10)
    chaos_parser.add_argument("--seed", type=int, default=0)
    chaos_parser.add_argument(
        "--budget",
        type=float,
        default=20.0,
        help="wall-clock seconds allowed per iteration",
    )
    chaos_parser.add_argument(
        "--round-interval",
        type=float,
        default=0.005,
        help="seconds per protocol round at every node",
    )
    chaos_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    chaos_parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME|all",
        help="run a named adversarial scenario (or 'all') with "
        "per-guarantee survival verdicts instead of randomized runs; "
        "--seed picks the base seed and -n the seeds per scenario",
    )
    recover_parser = sub.add_parser(
        "recover",
        help="crash-and-recover torture: WAL + snapshot restore, rejoin "
        "as a new incarnation, audited across incarnations",
    )
    recover_parser.add_argument("-n", "--iterations", type=int, default=10)
    recover_parser.add_argument("--seed", type=int, default=0)
    recover_parser.add_argument(
        "--budget",
        type=float,
        default=30.0,
        help="wall-clock seconds allowed per iteration",
    )
    recover_parser.add_argument(
        "--round-interval",
        type=float,
        default=0.004,
        help="seconds per protocol round at every node",
    )
    recover_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    serve_parser = sub.add_parser(
        "serve",
        help="service-tier demo: simulated chat clients over sharded "
        "URCGC groups, audited per shard (Definition 3.2) and across "
        "shards (bridge ordering)",
    )
    serve_parser.add_argument("--shards", type=int, default=4)
    serve_parser.add_argument("--members", type=int, default=3)
    serve_parser.add_argument(
        "--clients",
        type=int,
        default=1_000_000,
        help="client id space (sessions are sampled from it)",
    )
    serve_parser.add_argument(
        "--sessions", type=int, default=48, help="concurrently active sessions"
    )
    serve_parser.add_argument(
        "--messages", type=int, default=160, help="total publishes"
    )
    serve_parser.add_argument("--topics", type=int, default=64)
    serve_parser.add_argument(
        "--zipf-s", type=float, default=1.1, help="topic popularity exponent"
    )
    serve_parser.add_argument(
        "--multi-ratio",
        type=float,
        default=0.2,
        help="fraction of multi-topic (bridge-eligible) publishes",
    )
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument(
        "--kill-frontends",
        type=int,
        default=0,
        metavar="N",
        help="kill N frontends spread across the run (client failover; "
        "kills that would cost a shard its majority are skipped)",
    )
    serve_parser.add_argument(
        "--ring-changes",
        type=int,
        default=0,
        metavar="N",
        help="add N shards spread across the run (topic handoff through "
        "the causal bridge)",
    )
    serve_parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the obs registry report to PATH",
    )
    sub.add_parser(
        "lint",
        help="protocol-aware static analysis (determinism, async-safety, "
        "wire-schema, hygiene rules)",
        add_help=False,
    )
    report_parser = sub.add_parser(
        "report",
        help="render a JSONL observability trace: span counts, registry "
        "state, and one message's causal timeline",
    )
    report_parser.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="path to a trace written by SimCluster/AsyncGroup.write_trace",
    )
    report_parser.add_argument(
        "--mid",
        default=None,
        help="message id to reconstruct (e.g. 'p0:1'); default: first generated",
    )
    report_parser.add_argument(
        "--demo",
        action="store_true",
        help="run a small observed simulation first and report on it; "
        "with a TRACE argument the demo trace is also written there",
    )
    args = parser.parse_args(argv)
    if args.command == "report":
        return _report_command(args.trace, mid=args.mid, demo=args.demo)
    if args.command == "serve":
        from ..svc.serve import registry_report, serve

        result = serve(
            shards=args.shards,
            members=args.members,
            clients=args.clients,
            sessions=args.sessions,
            messages=args.messages,
            topics=args.topics,
            zipf_s=args.zipf_s,
            multi_ratio=args.multi_ratio,
            seed=args.seed,
            kill_frontends=args.kill_frontends,
            ring_changes=args.ring_changes,
        )
        print(result.describe())
        for violation in result.violations[:10]:
            print(f"    {violation}")
        report = registry_report(result.registry)
        print(report)
        if args.report is not None:
            with open(args.report, "w", encoding="utf-8") as fh:
                fh.write(result.describe() + "\n\n" + report + "\n")
        return 0 if result.ok else 1
    if args.command == "recover":
        from .recover_torture import recover_torture, results_as_json

        results = recover_torture(
            args.iterations,
            start_seed=args.seed,
            budget=args.budget,
            round_interval=args.round_interval,
        )
        if args.json:
            import json

            print(json.dumps(results_as_json(results), indent=2))
        else:
            for result in results:
                print(result.describe())
                for violation in result.violations[:5]:
                    print(f"    {violation}")
                if not result.ok:
                    print(
                        f"    reproduce: python -m repro recover "
                        f"--iterations 1 --seed {result.seed}"
                    )
            clean = sum(1 for r in results if r.ok)
            print(f"{clean}/{args.iterations} scenarios clean")
        return 1 if any(not r.ok for r in results) else 0
    if args.command == "chaos" and args.scenario is not None:
        from .adversarial import SCENARIOS, run_scenarios, scenarios_as_json

        if args.scenario != "all" and args.scenario not in SCENARIOS:
            known = ", ".join(sorted(SCENARIOS))
            parser.error(f"unknown scenario {args.scenario!r} (known: {known}, all)")
        names = None if args.scenario == "all" else [args.scenario]
        results = run_scenarios(
            names,
            seeds=range(args.seed, args.seed + max(1, args.iterations)),
            budget=args.budget,
            round_interval=args.round_interval,
        )
        if args.json:
            import json

            print(json.dumps(scenarios_as_json(results), indent=2))
        else:
            for result in results:
                print(result.describe())
                if not result.ok:
                    print(
                        f"    reproduce: python -m repro chaos "
                        f"--scenario {result.scenario} -n 1 --seed {result.seed}"
                    )
            clean = sum(1 for r in results if r.ok)
            print(f"{clean}/{len(results)} scenario runs clean")
        return 1 if any(not r.ok for r in results) else 0
    if args.command == "chaos":
        from .live_torture import live_torture, results_as_json

        results = live_torture(
            args.iterations,
            start_seed=args.seed,
            budget=args.budget,
            round_interval=args.round_interval,
        )
        if args.json:
            import json

            print(json.dumps(results_as_json(results), indent=2))
        else:
            for result in results:
                print(result.describe())
                for violation in result.violations[:5]:
                    print(f"    {violation}")
                if not result.ok:
                    print(
                        f"    reproduce: python -m repro chaos "
                        f"--iterations 1 --seed {result.seed}"
                    )
            clean = sum(1 for r in results if r.ok)
            print(f"{clean}/{args.iterations} scenarios clean")
        return 1 if any(not r.ok for r in results) else 0
    if args.command == "torture":
        from .torture import torture

        failures = 0
        for result in torture(args.iterations, start_seed=args.seed):
            print(result.describe())
            if not result.ok:
                failures += 1
                for violation in result.violations[:5]:
                    print(f"    {violation}")
        print(f"{args.iterations - failures}/{args.iterations} scenarios clean")
        return 1 if failures else 0
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        print("experiments (python -m repro run <name>):")
        for name, (description, _) in sorted(EXPERIMENTS.items()):
            print(f"  {name:{width}s}  {description}")
        print()
        print("other subcommands:")
        subcommands = {
            "run": "run one experiment (or 'all'); --json for machine output",
            "torture": "randomized simulator scenarios audited against the "
            "URCGC theorems",
            "chaos": "live fault-injected asyncio runs (Definition 3.2 audit); "
            "--scenario NAME|all for adversarial per-guarantee verdicts",
            "recover": "crash-and-recover runs: WAL/snapshot restore + rejoin",
            "serve": "service-tier demo: chat clients over sharded groups "
            "(per-shard Definition 3.2 + cross-shard bridge audit)",
            "lint": "protocol-aware static analysis (D/A/W/H rule families)",
            "report": "render a JSONL observability trace (--demo to produce one)",
        }
        sub_width = max(len(name) for name in subcommands)
        for name, description in subcommands.items():
            print(f"  {name:{sub_width}s}  {description}")
        return 0
    names = sorted(EXPERIMENTS) if args.name == "all" else [args.name]
    for i, name in enumerate(names):
        if i:
            print()
        print(run_experiment(name, as_json=args.json))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
