"""Ablation experiments for the design choices DESIGN.md calls out.

Each ablation switches off (or sweeps) one mechanism of the urcgc
design and measures what the paper says that mechanism buys:

1. **Decision circulation** — requests stop forwarding the latest
   decision.  Coordinators that missed the previous decision broadcast
   then fork the chain, their decisions get rejected, and history
   cleaning stalls.
2. **Causality interpretation** — application-declared (minimal) deps
   vs the conservative every-reception policy vs CBCAST's temporal
   (vector clock) causality; measured as the delay collateral a slow
   sender imposes on an unrelated one.
3. **Flow-control threshold** — the memory/latency trade-off around
   the paper's ``8n``.
4. **Transport ``h``** — moving retransmission from the urcgc history
   into the transport layer.
"""

from __future__ import annotations

import random

from ..core.config import UrcgcConfig
from ..net.faults import FaultPlan, OmissionModel
from ..types import ProcessId
from ..workloads.generators import BernoulliWorkload, FixedBudgetWorkload
from ..workloads.scenarios import general_omission, omission
from .cbcast_cluster import CbcastCluster
from .cluster import SimCluster
from .sweep import SweepResult, sweep

__all__ = [
    "ablate_circulation",
    "ablate_causality",
    "ablate_flow_threshold",
    "ablate_transport_h",
    "ablate_flow_control_style",
    "ablate_bus_saturation",
]


def _pids(n: int) -> list[ProcessId]:
    return [ProcessId(i) for i in range(n)]


def ablate_circulation(
    *, n: int = 8, K: int = 3, one_in: int = 12, seed: int = 3
) -> SweepResult:
    """Decision circulation on vs off under heavy omission.

    Without circulation a coordinator that missed the previous
    decision broadcast computes from stale state; its forked decision
    is rejected by the group, so cleaning decisions happen less often
    and histories run longer.
    """

    def run(circulate: bool) -> dict:
        pids = _pids(n)
        cluster = SimCluster(
            UrcgcConfig(n=n, K=K, circulate_decisions=circulate, flow_threshold=0),
            workload=FixedBudgetWorkload(pids, total=8 * n),
            faults=omission(pids, one_in, rng=random.Random(seed)),
            max_rounds=1200,
            seed=seed,
            trace=False,
        )
        done = cluster.run_until_quiescent(drain_subruns=2 * K)
        forked = sum(m.forked_decisions_rejected for m in cluster.members)
        cleanings = max(m.full_group_decisions_seen for m in cluster.members)
        return {
            "forked decisions": forked,
            "full-group decisions": cleanings,
            "peak history": cluster.max_history_series().max(),
            "quiesce (rtd)": done if done is not None else float("nan"),
        }

    return sweep({"circulate": [True, False]}, run)


def ablate_causality(
    *, n: int = 5, rounds: int = 40, slow_sender_drop: float = 0.4, seed: int = 5
) -> SweepResult:
    """What a slow sender costs an unrelated one, per causality flavour.

    p1 and p2 broadcast every round; the observer p0 loses part of its
    incoming traffic (receive omission), so it regularly misses p1's
    messages that p2 *did* receive.  Under application-declared
    causality with no declared relation between the senders, p2's
    messages never wait for p1's at p0.  Under the conservative
    every-reception policy — and inherently under CBCAST's temporal
    (vector clock) causality — p2's messages carry a dependency on the
    p1 traffic p2 saw, so p0's losses of p1 messages block p2's
    unrelated messages too.  urcgc heals the losses from history;
    CBCAST (as the paper models it) has no recovery path, so the
    blocking is permanent.
    """
    pids = _pids(n)

    def slow_sender_faults() -> FaultPlan:
        plan = FaultPlan(rng=random.Random(seed))
        plan.set_receive_omission(ProcessId(0), OmissionModel(slow_sender_drop))
        return plan

    def origin2_stats(log, final_members) -> tuple[float, int]:
        """(mean group delay, count never completed) for p2's messages."""
        delays = []
        incomplete = 0
        for mid, start in log.generated_at.items():
            if mid.origin != 2 or mid in log.discarded:
                continue
            times = [
                t for p, t in log.processed_at.get(mid, {}).items()
                if p in final_members
            ]
            if len(times) == len(final_members):
                delays.append(max(times) - start)
            else:
                incomplete += 1
        mean = sum(delays) / len(delays) if delays else float("nan")
        return mean, incomplete

    def run(flavour: str) -> dict:
        workload = BernoulliWorkload(
            [ProcessId(1), ProcessId(2)], 1.0, stop_after_round=rounds
        )
        if flavour == "cbcast-temporal":
            cluster = CbcastCluster(
                n,
                workload=workload,
                faults=slow_sender_faults(),
                max_rounds=rounds * 6,
                seed=seed,
                trace=False,
            )
            cluster.run()
            log = cluster.delivery_log
            members = set(cluster.active_pids())
            peak_waiting = max(
                (e.queue.delayed_count for e in cluster.engines), default=0
            )
            # CBCAST (as the paper models it) has no history recovery:
            # a loss under temporal causality blocks unrelated traffic
            # permanently, showing up as incomplete messages.
            delay, incomplete = origin2_stats(log, members)
            return {
                "unrelated-sender delay": delay,
                "never completed": incomplete,
                "peak waiting": peak_waiting,
            }
        auto = flavour == "urcgc-conservative"
        cluster = SimCluster(
            UrcgcConfig(n=n, auto_significant=auto),
            workload=workload,
            faults=slow_sender_faults(),
            max_rounds=rounds * 6,
            seed=seed,
            trace=False,
        )
        cluster.run_until_quiescent(drain_subruns=3)
        peak_waiting = int(cluster.kernel.metrics.series_for("waiting.max").max())
        delay, incomplete = origin2_stats(
            cluster.delivery_log, set(cluster.active_pids())
        )
        return {
            "unrelated-sender delay": delay,
            "never completed": incomplete,
            "peak waiting": peak_waiting,
        }

    return sweep(
        {"flavour": ["urcgc-declared", "urcgc-conservative", "cbcast-temporal"]},
        run,
    )


def ablate_flow_threshold(
    *, n: int = 20, total: int = 400, K: int = 3, seed: int = 7
) -> SweepResult:
    """Sweep the flow-control threshold around the paper's 8n."""

    def run(threshold: int) -> dict:
        pids = _pids(n)
        faults = general_omission(
            pids,
            crash_schedule={ProcessId(n - 1): 4.0},
            one_in=200,
            rng=random.Random(seed),
        )
        cluster = SimCluster(
            UrcgcConfig(n=n, K=K, flow_threshold=threshold),
            workload=FixedBudgetWorkload(pids, total=total),
            faults=faults,
            max_rounds=1500,
            seed=seed,
            trace=False,
        )
        done = cluster.run_until_quiescent(drain_subruns=2 * K)
        blocked = sum(m.flow_blocked_rounds for m in cluster.members)
        return {
            "peak history": cluster.max_history_series().max(),
            "complete (rtd)": done if done is not None else float("nan"),
            "blocked rounds": blocked,
        }

    return sweep({"threshold": [0, 2 * n, 4 * n, 8 * n]}, run)


def ablate_flow_control_style(
    *, n: int = 6, total: int = 120, seed: int = 11
) -> SweepResult:
    """urcgc's throttling vs Psync's dropping (Section 6's closing
    comparison).

    Both protocols bound their buffers under a receiver that loses part
    of its traffic.  urcgc pauses *generation* until histories drain —
    every offered message still reaches everyone.  Psync *deletes*
    overflow from the waiting buffer, "thus increasing the rate of
    omission failures": deliveries are silently lost.
    """
    pids = _pids(n)

    def lossy_plan() -> FaultPlan:
        plan = FaultPlan(rng=random.Random(seed))
        plan.set_receive_omission(ProcessId(0), OmissionModel(0.25))
        return plan

    def run(style: str) -> dict:
        workload = FixedBudgetWorkload(pids, total=total)
        if style == "urcgc-throttle":
            cluster = SimCluster(
                UrcgcConfig(n=n, flow_threshold=2 * n),
                workload=workload,
                faults=lossy_plan(),
                max_rounds=1000,
                seed=seed,
                trace=False,
            )
            cluster.run_until_quiescent(drain_subruns=4)
            report = cluster.delay_report()
            return {
                "lost deliveries": report.incomplete_messages
                + report.discarded_messages,
                "peak buffer": int(cluster.max_history_series().max()),
                "blocked/dropped": sum(
                    m.flow_blocked_rounds for m in cluster.members
                ),
            }
        from .psync_cluster import PsyncCluster

        cluster = PsyncCluster(
            n,
            pending_bound=2 * n,
            workload=workload,
            faults=lossy_plan(),
            max_rounds=1000,
            seed=seed,
            trace=False,
        )
        cluster.run()
        delivered_counts = [len(cluster.delivered[p]) for p in pids]
        lost = sum(total - c for c in delivered_counts)
        peak = int(cluster.kernel.metrics.series_for("psync.pending.max").max())
        return {
            "lost deliveries": lost,
            "peak buffer": peak,
            "blocked/dropped": cluster.induced_omissions(),
        }

    return sweep({"style": ["urcgc-throttle", "psync-drop"]}, run)


def ablate_bus_saturation(
    *, n: int = 8, seed: int = 13
) -> SweepResult:
    """Delay vs offered load on a saturable Ethernet bus.

    The default fixed-delay medium makes D load-independent (the
    paper's flat reliable curve); the shared-bus refinement shows the
    congestion knee as the group's traffic approaches the bus capacity.

    The sweep uses a large K: with the paper's small K, congestion
    delays *requests* past the decision round and the coordinators
    falsely evict healthy members — a real deployment hazard of the
    rotating-coordinator design worth knowing about (the group then
    shrinks until the remaining traffic fits the bus).
    """
    from ..net.topology import EthernetBus

    pids = _pids(n)

    def run(p_send: float) -> dict:
        bus = EthernetBus(bandwidth=3_500)
        workload = BernoulliWorkload(
            pids, p_send, rng=random.Random(seed), stop_after_round=40
        )
        cluster = SimCluster(
            UrcgcConfig(n=n, K=8, R=20),
            workload=workload,
            medium=bus,
            max_rounds=400,
            seed=seed,
            trace=False,
        )
        cluster.run_until_quiescent(drain_subruns=3)
        report = cluster.delay_report()
        elapsed = cluster.now or 1.0
        return {
            "offered (msg/rtd)": workload.offered / elapsed,
            "D (rtd)": report.mean_delay,
            "bus utilization": bus.utilization(elapsed),
        }

    return sweep({"p_send": [0.1, 0.3, 0.6, 1.0]}, run)


def ablate_transport_h(
    *, n: int = 6, total: int = 60, one_in: int = 25, seed: int = 9
) -> SweepResult:
    """Transport-level reliability vs urcgc history recovery.

    With ``h = 1`` (the paper's setting) losses surface as recovery
    traffic at the urcgc layer; higher ``h`` buys transport acks and
    retransmissions instead, shrinking history recoveries.
    """

    def run(h: int) -> dict:
        pids = _pids(n)
        cluster = SimCluster(
            UrcgcConfig(n=n),
            workload=FixedBudgetWorkload(pids, total=total),
            faults=omission(pids, one_in, rng=random.Random(seed)),
            h=h,
            max_rounds=1000,
            seed=seed,
            trace=False,
        )
        done = cluster.run_until_quiescent(drain_subruns=4)
        stats = cluster.network.stats
        return {
            "recovery rqs": stats.kind("ctrl-recovery-rq").sent,
            "transport acks": stats.kind("t-ack").sent,
            "mean delay": cluster.delay_report().mean_delay,
            "complete (rtd)": done if done is not None else float("nan"),
        }

    return sweep({"h": [1, 2, n - 1]}, run)
