"""Crash-recovery torture runs against the live asyncio runtime.

The durable-state analogue of :mod:`repro.harness.live_torture`: each
iteration draws a seed, spins up an :class:`~repro.runtime.node.
AsyncGroup` with write-ahead logging and snapshots over a
:class:`~repro.storage.MemoryBackend`, fail-stops one node mid-run
(sometimes the rotating coordinator, the paper's hardest case), lets
the survivors make progress, then *recovers* the victim from its
snapshot + WAL as a new incarnation and drives traffic through it
again.

The audit asserts the two recovery guarantees on top of Definition
3.2:

* **prefix consistency** — the recovered incarnation's delivery log
  extends the pre-crash log: same mids, same order, nothing reordered
  or lost below the crash point;
* **Uniform Atomicity & Uniform Ordering across incarnations** — the
  rejoined node's full log (both incarnations) is audited together
  with the survivors', with crash-voided mids exempted exactly like
  orphan discards.

``python -m repro recover`` is the command-line entry point.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Sequence

from ..core.config import UrcgcConfig
from ..net.faults import FaultPlan
from ..runtime.chaos import ChaosFabric
from ..runtime.lan import AsyncLan
from ..runtime.node import AsyncGroup
from ..storage import GroupStorage, MemoryBackend
from ..types import ProcessId
from .live_torture import audit_group

__all__ = [
    "RecoverTortureResult",
    "recover_torture_once",
    "recover_torture",
    "results_as_json",
]


@dataclass(frozen=True)
class RecoverTortureResult:
    """Outcome of one randomized crash-and-recover run."""

    seed: int
    n: int
    K: int
    snapshot_interval: int
    victim: int
    coordinator_crash: bool
    pre_crash_deliveries: int
    post_recovery_deliveries: int
    snapshots_taken: int
    wal_replayed: int
    recovered: bool
    quiesced: bool
    wall_time: float
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} VIOLATIONS"
        role = "coord" if self.coordinator_crash else "member"
        return (
            f"seed={self.seed:<6d} n={self.n} K={self.K} "
            f"victim=p{self.victim}({role}) snap={self.snapshot_interval:<4d} "
            f"log {self.pre_crash_deliveries}->{self.post_recovery_deliveries} "
            f"replayed={self.wal_replayed:<3d} "
            f"{'recovered' if self.recovered else 'STUCK    '} "
            f"{'quiesced' if self.quiesced else 'timed out'} "
            f"{self.wall_time:5.2f}s  {status}"
        )

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n": self.n,
            "K": self.K,
            "snapshot_interval": self.snapshot_interval,
            "victim": self.victim,
            "coordinator_crash": self.coordinator_crash,
            "pre_crash_deliveries": self.pre_crash_deliveries,
            "post_recovery_deliveries": self.post_recovery_deliveries,
            "snapshots_taken": self.snapshots_taken,
            "wal_replayed": self.wal_replayed,
            "recovered": self.recovered,
            "quiesced": self.quiesced,
            "wall_time": round(self.wall_time, 3),
            "violations": list(self.violations),
        }


def _check_prefix(pre_mids: list, post_mids: list) -> list[str]:
    """The recovered log must extend the pre-crash log."""
    if post_mids[: len(pre_mids)] == pre_mids:
        return []
    for i, (a, b) in enumerate(zip(post_mids, pre_mids)):
        if a != b:
            return [
                f"[prefix-consistency] p?: recovered log diverges at index {i}: "
                f"replayed {a} where the pre-crash log had {b}"
            ]
    return [
        f"[prefix-consistency] recovered log has {len(post_mids)} entries but "
        f"lost part of the {len(pre_mids)}-entry pre-crash log"
    ]


async def _recover_run(
    seed: int, *, budget: float, round_interval: float
) -> RecoverTortureResult:
    rng = random.Random(seed)
    n = rng.randint(3, 5)
    K = rng.randint(2, 3)
    snapshot_interval = rng.choice([8, 32, 1000])
    coordinator_crash = rng.random() < 0.5
    phase_messages = rng.randint(n, 2 * n)
    pids = [ProcessId(i) for i in range(n)]
    subrun_seconds = 2 * round_interval

    plan = FaultPlan(rng=random.Random(seed + 1))
    fabric = ChaosFabric(AsyncLan(), plan, seed=seed + 2)
    storage = GroupStorage(MemoryBackend(), snapshot_interval=snapshot_interval)
    group = AsyncGroup(
        UrcgcConfig(n=n, K=K, R=2 * K + 4, enable_rejoin=True),
        lan=fabric,
        round_interval=round_interval,
        storage=storage,
    )
    loop = asyncio.get_running_loop()
    started = loop.time()
    violations: list[str] = []
    recovered = False
    quiesced = False
    pre_crash = 0
    wal_replayed = 0
    group.start()
    try:
        # Phase 1: everyone generates; reach quiescence so the victim's
        # durable state holds real traffic (and, with a small
        # snapshot_interval, at least one snapshot + compaction).
        await group.run_workload(
            [(pids[i % n], f"pre-{seed}-{i}".encode()) for i in range(phase_messages)],
            timeout=budget / 3,
        )

        # Fail-stop the victim — sometimes the rotating coordinator
        # mid-decision, the paper's hardest failover case.
        if coordinator_crash:
            subrun = group.nodes[0].current_subrun + 1
            victim = await group.crash_coordinator_at_subrun(
                subrun, timeout=budget / 4
            )
            if victim is None:  # pragma: no cover - no live node left
                victim = pids[0]
                await group.crash(victim)
        else:
            victim = pids[rng.randrange(n)]
            await group.crash(victim)
        node = group.nodes[victim]
        pre_mids = [message.mid for message in node.delivered]
        pre_crash = len(pre_mids)

        # Phase 2: survivors make progress while the victim is down,
        # so recovery genuinely has to catch up by state transfer.
        survivors = [pid for pid in pids if pid != victim]
        for i in range(phase_messages):
            group.nodes[survivors[i % len(survivors)]].submit(
                f"mid-{seed}-{i}".encode()
            )
        await asyncio.sleep(rng.uniform(2.0, 5.0) * subrun_seconds)

        # Recover: reload snapshot + WAL, rejoin as a new incarnation.
        group.recover(victim)
        wal_replayed = storage.node(victim).records_since_snapshot
        try:
            await group.wait_until(
                lambda: not node.crashed
                and not node.member.rejoining
                and not node.member.has_left,
                timeout=budget / 2,
            )
            recovered = True
        except asyncio.TimeoutError:
            violations.append(
                f"[recovery] p{victim}: rejoin did not complete within budget"
            )

        # Phase 3: the new incarnation generates alongside everyone.
        if recovered:
            await group.run_workload(
                [
                    (pids[i % n], f"post-{seed}-{i}".encode())
                    for i in range(phase_messages)
                ],
                timeout=budget / 3,
            )
        try:
            remaining = budget - (loop.time() - started)
            await group.wait_until(group.quiescent, timeout=max(0.1, remaining))
            quiesced = True
        except asyncio.TimeoutError:
            quiesced = False

        post_mids = [message.mid for message in node.delivered]
        violations.extend(_check_prefix(pre_mids, post_mids))
        violations.extend(audit_group(group, converged=quiesced and recovered))
    finally:
        await group.stop()
    node = group.nodes[victim]
    return RecoverTortureResult(
        seed=seed,
        n=n,
        K=K,
        snapshot_interval=snapshot_interval,
        victim=int(victim),
        coordinator_crash=coordinator_crash,
        pre_crash_deliveries=pre_crash,
        post_recovery_deliveries=len(node.delivered),
        snapshots_taken=storage.node(victim).snapshots_taken,
        wal_replayed=wal_replayed,
        recovered=recovered,
        quiesced=quiesced,
        wall_time=loop.time() - started,
        violations=tuple(violations),
    )


def recover_torture_once(
    seed: int, *, budget: float = 30.0, round_interval: float = 0.004
) -> RecoverTortureResult:
    """One randomized crash-and-recover scenario, fully checked."""
    return asyncio.run(
        _recover_run(seed, budget=budget, round_interval=round_interval)
    )


def recover_torture(
    iterations: int,
    *,
    start_seed: int = 0,
    budget: float = 30.0,
    round_interval: float = 0.004,
) -> list[RecoverTortureResult]:
    """Run ``iterations`` crash-and-recover scenarios; returns all."""
    return [
        recover_torture_once(
            start_seed + i, budget=budget, round_interval=round_interval
        )
        for i in range(iterations)
    ]


def results_as_json(results: Sequence[RecoverTortureResult]) -> dict:
    """CI-consumable summary: per-run records plus rollup counters."""
    return {
        "experiment": "recover",
        "iterations": len(results),
        "clean": sum(1 for r in results if r.ok),
        "recovered": sum(1 for r in results if r.recovered),
        "quiesced": sum(1 for r in results if r.quiesced),
        "failing_seeds": [r.seed for r in results if not r.ok],
        "results": [r.as_dict() for r in results],
    }
