"""Generic parameter sweeps over simulations.

A sweep runs one factory across the cartesian product of parameter
axes, collects a scalar (or record) per point, and renders the result
as a table.  The ablation benchmarks are built on this.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..analysis.report import render_table

__all__ = ["SweepResult", "sweep"]


@dataclass
class SweepResult:
    """Outcome of :func:`sweep`: one row per parameter combination."""

    axes: tuple[str, ...]
    metrics: tuple[str, ...]
    rows: list[tuple[Any, ...]] = field(default_factory=list)

    def render(self, *, title: str | None = None, precision: int = 3) -> str:
        return render_table(
            [*self.axes, *self.metrics], self.rows, title=title, precision=precision
        )

    def column(self, name: str) -> list[Any]:
        """All values of one axis/metric column."""
        names = [*self.axes, *self.metrics]
        try:
            index = names.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}; have {names}") from None
        return [row[index] for row in self.rows]

    def where(self, **criteria: Any) -> list[tuple[Any, ...]]:
        """Rows whose axis values match all criteria."""
        indices = {name: self.axes.index(name) for name in criteria}
        return [
            row
            for row in self.rows
            if all(row[indices[name]] == value for name, value in criteria.items())
        ]

    def as_dict(self) -> dict:
        """JSON-friendly representation (one object per row)."""
        names = [*self.axes, *self.metrics]
        return {
            "axes": list(self.axes),
            "metrics": list(self.metrics),
            "rows": [dict(zip(names, row)) for row in self.rows],
        }


def sweep(
    axes: Mapping[str, Sequence[Any]],
    run: Callable[..., Mapping[str, Any]],
) -> SweepResult:
    """Run ``run(**point)`` for every point in the axes product.

    ``run`` returns a mapping of metric name to value; metric names
    must be identical across points.
    """
    axis_names = tuple(axes)
    metric_names: tuple[str, ...] | None = None
    result_rows: list[tuple[Any, ...]] = []
    for values in itertools.product(*(axes[name] for name in axis_names)):
        point = dict(zip(axis_names, values))
        metrics = run(**point)
        if metric_names is None:
            metric_names = tuple(metrics)
        elif tuple(metrics) != metric_names:
            raise ValueError(
                f"inconsistent metrics at {point}: {tuple(metrics)} != {metric_names}"
            )
        result_rows.append(values + tuple(metrics[name] for name in metric_names))
    return SweepResult(
        axes=axis_names, metrics=metric_names or (), rows=result_rows
    )
